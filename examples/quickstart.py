"""Quickstart: the paper's Fig 7 three-line integration, working.

Generates a small on-disk dataset, starts a two-rank NoPFS job group
(staging buffers, cache tiers, clairvoyant prefetchers, in-process
"MPI"), and trains... well, iterates — printing where every rank's
samples actually came from.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.loader import NoPFSDataLoader, SyntheticFileDataset
from repro.runtime import DistributedJobGroup, MemoryBackend

NUM_SAMPLES = 400
SAMPLE_BYTES = 2_048
NUM_WORKERS = 2
BATCH_SIZE = 8
NUM_EPOCHS = 3
SEED = 42


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # The "PFS": real files on disk.
        dataset = SyntheticFileDataset.generate(
            Path(tmp) / "data",
            num_samples=NUM_SAMPLES,
            mean_bytes=SAMPLE_BYTES,
            num_classes=10,
            seed=SEED,
        )
        print(f"dataset: {len(dataset)} samples, {dataset.total_bytes():,} bytes")

        # --- the Fig 7 pattern -------------------------------------------
        # job   = Job(data_dir, batch_size, num_epochs, seed, drop_last)
        # ds    = NoPFSImageFolder(data_dir, job, transforms)
        # loader = NoPFSDataLoader(ds)
        group = DistributedJobGroup(
            dataset,
            num_workers=NUM_WORKERS,
            batch_size=BATCH_SIZE,
            num_epochs=NUM_EPOCHS,
            seed=SEED,
            tier_factories=[lambda rank: MemoryBackend(256 << 10)],
            staging_bytes=64 << 10,
            staging_threads=2,
        )
        with group:
            loaders = [NoPFSDataLoader(job) for job in group.jobs]
            # Drive rank 0 in this thread; rank 1 on a helper thread.
            import threading

            def consume(loader: NoPFSDataLoader, sink: list) -> None:
                for epoch in range(NUM_EPOCHS):
                    for batch in loader.epoch(epoch):
                        sink.append(len(batch))

            sinks: list[list[int]] = [[], []]
            helper = threading.Thread(
                target=consume, args=(loaders[1], sinks[1]), daemon=True
            )
            helper.start()
            consume(loaders[0], sinks[0])
            helper.join()

        for job in group.jobs:
            stats = job.stats.as_dict()
            print(
                f"rank {job.rank}: consumed {job.total_samples} samples | "
                f"local {stats['local_hits']}, remote {stats['remote_hits']}, "
                f"PFS {stats['dataset_reads']} "
                f"(heuristic false positives: {stats['heuristic_false_positives']})"
            )
        print(
            f"cross-rank traffic: {group.group.remote_requests} requests, "
            f"{group.group.remote_bytes_served:,} bytes served"
        )


if __name__ == "__main__":
    main()
