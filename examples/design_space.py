"""Storage design-space exploration (the Fig 9 / Sec 6.2 use case).

"Our simulator can also be used to quantify the impact of changes to a
system on training time. This can be used to identify promising
hardware upgrades or when designing new systems."

Question answered here: you are speccing nodes for a 150 GB image
workload — how much RAM and SSD should each node have?

Run:  python examples/design_space.py
"""

from __future__ import annotations

from repro.datasets import DatasetModel
from repro.experiments.common import format_table
from repro.perfmodel import sec6_cluster
from repro.sim import NoiseConfig, NoPFSPolicy, SimulationConfig, Simulator, analytic_lower_bound
from repro.units import GB

DATASET = DatasetModel("planned-workload", 300_000, 0.5, 0.2)  # ~150 GB
RAM_OPTIONS_GB = (4, 8, 16, 32)
SSD_OPTIONS_GB = (0, 32, 64)


def main() -> None:
    base = sec6_cluster()
    lb = None
    rows = []
    for ram in RAM_OPTIONS_GB:
        row = [f"{ram} GB RAM"]
        for ssd in SSD_OPTIONS_GB:
            system = base.with_class_capacities([ram * GB, ssd * GB])
            config = SimulationConfig(
                dataset=DATASET,
                system=system,
                batch_size=32,
                num_epochs=4,
                noise=NoiseConfig.disabled(),
            )
            if lb is None:
                lb = analytic_lower_bound(config)
            total = Simulator(config).run(NoPFSPolicy()).total_time_s
            row.append(f"{total / 60:.1f} min ({total / lb:.2f}x LB)")
        rows.append(row)
    headers = ["config \\ SSD"] + [f"{s} GB" for s in SSD_OPTIONS_GB]
    print("NoPFS end-to-end time by node storage configuration")
    print(format_table(headers, rows))
    print(f"\nlower bound: {lb / 60:.1f} min")
    print(
        "Reading: pick the cheapest cell close to the lower bound — "
        "beyond full-dataset coverage, extra storage buys nothing."
    )


if __name__ == "__main__":
    main()
