"""End-to-end SGD through swappable loaders — the paper's integration claim.

Trains the same NumPy MLP on the same clairvoyant sample stream through
three loaders (naive synchronous, PyTorch-style double buffering, and
NoPFS) over a deliberately *slow* dataset (per-read latency emulating a
contended PFS). The learning curves are bit-identical; only the
wall-clock differs — NoPFS wins because after epoch 0 it serves from
its cache instead of re-paying the latency.

Run:  python examples/train_mlp.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import StreamConfig
from repro.loader import (
    DoubleBufferLoader,
    NaiveLoader,
    NoPFSDataLoader,
    SyntheticFileDataset,
)
from repro.runtime import DistributedJobGroup, MemoryBackend
from repro.training import train_classifier

NUM_SAMPLES = 300
SAMPLE_BYTES = 512
FEATURES = 32
CLASSES = 3
BATCH = 10
EPOCHS = 4
SEED = 7
READ_LATENCY_S = 0.002  # the "contended PFS"


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        SyntheticFileDataset.generate(
            Path(tmp) / "data",
            num_samples=NUM_SAMPLES,
            mean_bytes=SAMPLE_BYTES,
            num_classes=CLASSES,
            seed=SEED,
            learnable=True,
        )
        slow = SyntheticFileDataset(Path(tmp) / "data", latency_s=READ_LATENCY_S)
        cfg = StreamConfig(SEED, NUM_SAMPLES, 1, BATCH, EPOCHS)

        results = {}
        timings = {}

        t0 = time.perf_counter()
        results["naive"] = train_classifier(
            NaiveLoader(slow, cfg, 0), FEATURES, CLASSES, seed=1
        )
        timings["naive"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        results["double-buffer"] = train_classifier(
            DoubleBufferLoader(slow, cfg, 0, prefetch_factor=2),
            FEATURES,
            CLASSES,
            seed=1,
        )
        timings["double-buffer"] = time.perf_counter() - t0

        group = DistributedJobGroup(
            slow,
            num_workers=1,
            batch_size=BATCH,
            num_epochs=EPOCHS,
            seed=SEED,
            tier_factories=[lambda r: MemoryBackend(4 << 20)],
            staging_bytes=128 << 10,
            staging_threads=4,
        )
        with group:
            t0 = time.perf_counter()
            results["nopfs"] = train_classifier(
                NoPFSDataLoader(group.jobs[0]), FEATURES, CLASSES, seed=1
            )
            timings["nopfs"] = time.perf_counter() - t0

        print(f"{'loader':14s} {'wall (s)':>9s} {'final loss':>11s} {'train acc':>10s}")
        for name, res in results.items():
            print(
                f"{name:14s} {timings[name]:9.2f} {res.losses[-1]:11.4f} "
                f"{res.train_accuracy:10.2%}"
            )

        for other in ("double-buffer", "nopfs"):
            assert np.allclose(results["naive"].losses, results[other].losses), (
                "loaders must produce identical training trajectories"
            )
        print("\nidentical learning curves across loaders: OK")
        print(f"NoPFS wall-clock speedup vs naive: {timings['naive'] / timings['nopfs']:.2f}x")


if __name__ == "__main__":
    main()
