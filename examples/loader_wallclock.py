"""Real wall-clock loader shootout on a slow filesystem.

Unlike the simulator studies, this measures *actual elapsed time* of
the functional loaders over an artificially slow dataset (per-read
latency emulating PFS contention), across multiple epochs:

* the naive loader pays the latency for every sample, every epoch;
* double buffering hides a little of it behind compute-free iteration;
* NoPFS pays it (at most) once per sample — tier prefetchers cache the
  dataset during epoch 0 and later epochs are served from memory.

Run:  python examples/loader_wallclock.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.core import StreamConfig
from repro.loader import (
    DoubleBufferLoader,
    NaiveLoader,
    NoPFSDataLoader,
    SyntheticFileDataset,
)
from repro.runtime import DistributedJobGroup, MemoryBackend

NUM_SAMPLES = 400
BATCH = 16
EPOCHS = 3
SEED = 11
LATENCY_S = 0.001


def time_epochs(iterator_factory) -> list[float]:
    """Wall time of each epoch of a loader."""
    times = []
    for epoch in range(EPOCHS):
        t0 = time.perf_counter()
        for _ in iterator_factory(epoch):
            pass
        times.append(time.perf_counter() - t0)
    return times


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        SyntheticFileDataset.generate(
            Path(tmp) / "d", NUM_SAMPLES, mean_bytes=1024, seed=SEED
        )
        slow = SyntheticFileDataset(Path(tmp) / "d", latency_s=LATENCY_S)
        cfg = StreamConfig(SEED, NUM_SAMPLES, 1, BATCH, EPOCHS)

        naive = NaiveLoader(slow, cfg, 0)
        naive_times = time_epochs(lambda e: naive.epoch(e))

        dbl = DoubleBufferLoader(slow, cfg, 0)
        dbl_times = time_epochs(lambda e: dbl.epoch(e))

        group = DistributedJobGroup(
            slow,
            num_workers=1,
            batch_size=BATCH,
            num_epochs=EPOCHS,
            seed=SEED,
            tier_factories=[lambda r: MemoryBackend(8 << 20)],
            staging_bytes=256 << 10,
            staging_threads=4,
        )
        with group:
            loader = NoPFSDataLoader(group.jobs[0])
            nopfs_times = time_epochs(lambda e: loader.epoch(e))
            stats = group.jobs[0].stats.as_dict()

        print(f"{'loader':14s} " + " ".join(f"epoch{i:>5d}" for i in range(EPOCHS)))
        for name, times in (
            ("naive", naive_times),
            ("double-buffer", dbl_times),
            ("nopfs", nopfs_times),
        ):
            print(f"{name:14s} " + " ".join(f"{t:9.3f}" for t in times))
        print(
            f"\nNoPFS sources: local={stats['local_hits']}, "
            f"PFS={stats['dataset_reads']}"
        )
        warm_speedup = naive_times[-1] / max(nopfs_times[-1], 1e-9)
        print(f"warm-epoch speedup vs naive: {warm_speedup:.1f}x")


if __name__ == "__main__":
    main()
