"""Sweep as many scenarios as you can imagine — in parallel, cached.

Declares a ScenarioGrid over two datasets, two cluster sizes, three
policies and two batch sizes (24 simulations), fans it out over worker
processes with results memoized on disk, and prints a ranking. Run it
twice: the second invocation answers from the cache without simulating
anything.

Run:  python examples/sweep_scenarios.py [n_jobs] [cache_dir]
"""

from __future__ import annotations

import sys

from repro.datasets import imagenet1k, mnist
from repro.experiments.common import format_table
from repro.perfmodel import sec6_cluster
from repro.sim import NaivePolicy, NoPFSPolicy, StagingBufferPolicy
from repro.sweep import ScenarioGrid, SweepRunner


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    cache_dir = sys.argv[2] if len(sys.argv) > 2 else ".sweep-cache"

    grid = ScenarioGrid(
        datasets=[mnist(0), imagenet1k(0).scaled(0.002)],
        systems=[sec6_cluster(num_workers=2), sec6_cluster(num_workers=4)],
        policies=[NaivePolicy(), StagingBufferPolicy(), NoPFSPolicy()],
        batch_sizes=[16, 32],
        epoch_counts=[3],
    )
    print(f"grid: {len(grid)} cells -> {cache_dir} (n_jobs={n_jobs})")

    runner = SweepRunner(n_jobs=n_jobs, cache_dir=cache_dir)
    outcome = runner.run(grid)
    print(outcome.stats.render(), "\n")

    rows = [
        (dataset, f"{system} (N={workers})", policy, batch, res.total_time_s,
         res.median_epoch_time_s())
        for (dataset, system, workers, policy, batch, _, _), res in sorted(
            outcome.results.items(), key=lambda kv: kv[1].total_time_s
        )
    ]
    headers = ("dataset", "system", "policy", "B", "total (s)", "median epoch (s)")
    print(format_table(headers, rows))


if __name__ == "__main__":
    main()
