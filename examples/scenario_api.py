"""Scenarios as data: describe, serialize, and run experiments by name.

Builds the paper's Fig 8a-style policy comparison entirely from
registry names (no policy class imports), round-trips every scenario
through JSON, and sweeps them through a cache-backed Session — run it
twice and the second pass simulates nothing.

Run:  python examples/scenario_api.py [cache_dir]
"""

from __future__ import annotations

import sys

from repro import Scenario, Session
from repro.api import FIG8_POLICIES
from repro.experiments.common import format_table


def main() -> None:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else ".scenario-cache"

    base = dict(
        dataset="mnist",
        system="sec6_cluster:4",
        batch_size=32,
        num_epochs=3,
        scale=0.5,
    )
    scenarios = [Scenario(policy=spec, **base) for spec in FIG8_POLICIES]

    # Scenarios are plain data: JSON round-trips are exact, and the
    # fingerprint is the sweep-cache key itself.
    for s in scenarios:
        assert Scenario.from_json(s.to_json()) == s

    session = Session(jobs=2, cache_dir=cache_dir)
    outcome = session.sweep(scenarios, tags=[s.policy.name for s in scenarios])
    print(outcome.stats.render(), "\n")

    rows = [
        (tag, res.total_time_s, res.median_epoch_time_s())
        for tag, res in sorted(outcome.results.items(), key=lambda kv: kv[1].total_time_s)
    ]
    print(format_table(("policy", "total (s)", "median epoch (s)"), rows))


if __name__ == "__main__":
    main()
