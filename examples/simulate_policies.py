"""Compare every I/O policy on a custom cluster with the Sec 6 simulator.

A Fig 8-style study on your own scenario: pick a dataset shape, a
machine, and see which loading strategy wins — and why, via the
per-location time breakdown.

Run:  python examples/simulate_policies.py
"""

from __future__ import annotations

from repro.datasets import DatasetModel
from repro.experiments.common import format_table
from repro.perfmodel import sec6_cluster
from repro.api import fig8_lineup
from repro.sim import SimulationConfig, Simulator, analytic_lower_bound
from repro.units import GB

# A 60 GB dataset of ~0.25 MB samples on a 4-node cluster whose workers
# have 8 GB RAM + 24 GB SSD of cache each: D < S < ND — workers must
# cooperate to cache it.
DATASET = DatasetModel("custom-images", 240_000, 0.25, 0.1)
SYSTEM = sec6_cluster().with_class_capacities([8 * GB, 24 * GB])


def main() -> None:
    config = SimulationConfig(
        dataset=DATASET, system=SYSTEM, batch_size=32, num_epochs=4
    )
    print(
        f"scenario: {config.scenario}  "
        f"(S={DATASET.total_size_mb / GB:.1f} GB, "
        f"D={SYSTEM.total_cache_mb / GB:.1f} GB, "
        f"N*D={SYSTEM.aggregate_cache_mb / GB:.1f} GB)"
    )
    lb = analytic_lower_bound(config)
    sim = Simulator(config)
    results = sim.run_many(fig8_lineup())

    rows = []
    for name, res in sorted(results.items(), key=lambda kv: kv[1].total_time_s):
        bd = res.location_breakdown_s()
        total = res.total_time_s
        rows.append(
            (
                name,
                f"{total:.1f}",
                f"{total / lb:.2f}",
                "yes" if res.accesses_full_dataset else "NO",
                f"{bd['pfs'] / total:.0%}",
                f"{bd['remote'] / total:.0%}",
                f"{bd['local'] / total:.0%}",
            )
        )
    rows.append(("(lower bound)", f"{lb:.1f}", "1.00", "-", "-", "-", "-"))
    print(
        format_table(
            ("policy", "time (s)", "x LB", "full dataset", "pfs", "remote", "local"),
            rows,
        )
    )


if __name__ == "__main__":
    main()
