#!/usr/bin/env python
"""Sim-vs-runtime parity harness CLI.

Runs every requested policy through both worlds — the analytic engine
and the threaded runtime's primitives (see :mod:`repro.ports.worlds`) —
and diffs the per-epoch reports under the declared tolerances.

Exit status: 0 when parity holds, 1 on any mismatch. The JSON report is
fully deterministic, so CI can run the harness twice and ``diff`` the
files to prove it.

Usage::

    PYTHONPATH=src python tools/parity.py
    PYTHONPATH=src python tools/parity.py --profile small --workers 4 \\
        --epochs 4 --out parity-report.json
    PYTHONPATH=src python tools/parity.py --policies nopfs naive
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api.presets import FIG8_POLICIES  # noqa: E402
from repro.ports.fakes import FAKE_PROFILES  # noqa: E402
from repro.ports.parity import (  # noqa: E402
    ParityTolerance,
    default_config,
    run_parity,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile",
        default="tiny",
        choices=sorted(FAKE_PROFILES),
        help="fake dataset profile (default: tiny)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="simulated workers (default: 4)"
    )
    parser.add_argument(
        "--batch-size", type=int, default=4, help="per-worker batch size (default: 4)"
    )
    parser.add_argument(
        "--epochs", type=int, default=3, help="epochs per policy (default: 3)"
    )
    parser.add_argument(
        "--policies",
        nargs="+",
        default=list(FIG8_POLICIES),
        metavar="SPEC",
        help="policy specs to compare (default: the Fig 8 lineup)",
    )
    parser.add_argument(
        "--ordering-margin",
        type=float,
        default=0.05,
        help="relative sim-time separation that must preserve runtime "
        "ordering (default: 0.05)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the JSON parity report to this path",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-policy summary"
    )
    args = parser.parse_args(argv)

    config = default_config(
        profile=args.profile,
        num_workers=args.workers,
        batch_size=args.batch_size,
        num_epochs=args.epochs,
    )
    report = run_parity(
        config=config,
        policies=args.policies,
        tolerance=ParityTolerance(ordering_margin=args.ordering_margin),
    )

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report.to_json() + "\n")
        if not args.quiet:
            print(f"wrote {args.out}")
    if not args.quiet:
        print("\n".join(report.summary_lines()))
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
