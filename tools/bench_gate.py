#!/usr/bin/env python3
"""Benchmark-trajectory gate: compare BENCH_*.json against baselines.

Stdlib-only (runs anywhere the repo checks out). CI has always
*recorded* pytest-benchmark timings (``BENCH_engine.json``,
``BENCH_sweep.json``) but never compared them — this tool closes the
loop: every benchmark's throughput (cells/sec, the reciprocal of
pytest-benchmark's mean) is checked against the committed
``benchmarks/baselines.json`` and the build fails when any benchmark
regresses beyond its tolerance.

Usage::

    # the CI gate: fail on regression vs the committed baselines
    python tools/bench_gate.py BENCH_engine.json BENCH_sweep.json

    # also show the delta vs the previous run's downloaded artifacts
    python tools/bench_gate.py BENCH_engine.json BENCH_sweep.json \
        --previous .bench-prev/BENCH_engine.json \
        --summary "$GITHUB_STEP_SUMMARY"

    # legitimate perf change: refresh the committed baselines
    python tools/bench_gate.py BENCH_engine.json BENCH_sweep.json \
        --write-baseline

Each input file's suite is its filename's ``BENCH_<suite>.json`` stem.
``benchmarks/baselines.json`` holds, per suite and benchmark name, the
reference ``cells_per_sec`` plus an optional per-benchmark tolerance
overriding the global one. The default tolerance is deliberately loose
(CI machines are noisy); it exists to catch order-of-magnitude
regressions — an accidentally quadratic kernel, a lost cache — not 5%
jitter.

Exit codes: 0 pass, 1 regression (or a baselined benchmark missing
from the input), 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_BASELINES = REPO_ROOT / "benchmarks" / "baselines.json"

#: Global fallback when baselines.json carries no tolerance: current
#: throughput may drop to (1 - tolerance) x baseline before failing.
DEFAULT_TOLERANCE = 0.5


def suite_of(path: Path) -> str:
    """A BENCH file's suite name (``BENCH_engine.json`` -> ``engine``)."""
    stem = path.stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def load_series(path: Path) -> dict[str, float]:
    """``{benchmark name: cells_per_sec}`` from one pytest-benchmark file.

    Throughput is ``1 / stats.mean`` — one "cell" per benchmark round,
    matching the sweep layer's cells/sec vocabulary.
    """
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}")
    series: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        mean = bench.get("stats", {}).get("mean")
        name = bench.get("name")
        if name and mean and mean > 0:
            series[name] = 1.0 / float(mean)
    return series


def load_baselines(path: Path) -> dict:
    """The committed baselines document (validated shape)."""
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise SystemExit(f"error: cannot read baselines {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: baselines {path} is not valid JSON: {exc}")
    if not isinstance(data, dict) or not isinstance(data.get("suites"), dict):
        raise SystemExit(
            f"error: baselines {path} must be an object with a 'suites' map"
        )
    return data


def write_baselines(
    path: Path, current: dict[str, dict[str, float]], tolerance: float
) -> None:
    """Refresh ``path`` from the current series, keeping the tolerance."""
    doc = {
        "comment": (
            "Benchmark-trajectory baselines (cells/sec = 1/mean of the "
            "pytest-benchmark series). Refresh after a legitimate perf "
            "change with: python tools/bench_gate.py BENCH_*.json "
            "--write-baseline"
        ),
        "tolerance": tolerance,
        "suites": {
            suite: {
                name: {"cells_per_sec": round(value, 4)}
                for name, value in sorted(series.items())
            }
            for suite, series in sorted(current.items())
        },
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")


def compare(
    current: dict[str, dict[str, float]],
    baselines: dict,
    tolerance_override: float | None,
) -> tuple[list[str], list[str]]:
    """(failures, report lines) of current series vs the baselines."""
    global_tol = (
        tolerance_override
        if tolerance_override is not None
        else float(baselines.get("tolerance", DEFAULT_TOLERANCE))
    )
    failures: list[str] = []
    lines: list[str] = []
    for suite, expected in sorted(baselines["suites"].items()):
        series = current.get(suite)
        if series is None:
            failures.append(f"suite {suite!r} has no BENCH input file")
            continue
        for name, spec in sorted(expected.items()):
            base = float(spec["cells_per_sec"])
            tol = (
                tolerance_override
                if tolerance_override is not None
                else float(spec.get("tolerance", global_tol))
            )
            got = series.get(name)
            if got is None:
                failures.append(f"{suite}:{name}: benchmark missing from input")
                continue
            floor = base * (1.0 - tol)
            delta = (got - base) / base
            status = "ok" if got >= floor else "REGRESSION"
            lines.append(
                f"{status:>10}  {suite}:{name}: {got:.2f} cells/s "
                f"(baseline {base:.2f}, {delta:+.1%}, floor {floor:.2f})"
            )
            if got < floor:
                failures.append(
                    f"{suite}:{name}: {got:.2f} cells/s is below the "
                    f"regression floor {floor:.2f} "
                    f"(baseline {base:.2f}, tolerance {tol:.0%})"
                )
    for suite, series in sorted(current.items()):
        known = baselines["suites"].get(suite, {})
        for name in sorted(set(series) - set(known)):
            lines.append(
                f"{'new':>10}  {suite}:{name}: {series[name]:.2f} cells/s "
                "(no baseline yet; add via --write-baseline)"
            )
    return failures, lines


def previous_delta(
    current: dict[str, dict[str, float]], previous_paths: list[Path]
) -> list[str]:
    """Markdown old-vs-new rows against the previous run's artifacts.

    Missing/unreadable previous files are tolerated (the first run of a
    repo, an expired artifact): the row notes the absence instead. With
    no previous paths at all, every current benchmark still gets a row
    (previous "—") so the job summary always carries the per-benchmark
    table.
    """
    rows = ["| benchmark | previous | current | delta |", "|---|---|---|---|"]
    if not previous_paths:
        for suite, series in sorted(current.items()):
            for name, value in sorted(series.items()):
                rows.append(f"| {suite}:{name} | — | {value:.2f} | — |")
        if len(rows) == 2:
            rows.append("| _none_ | | | |")
        return rows
    seen_any = False
    for path in previous_paths:
        suite = suite_of(path)
        if not path.is_file():
            rows.append(f"| {suite}:* | _no previous artifact_ | | |")
            continue
        try:
            prev = load_series(path)
        except SystemExit:
            rows.append(f"| {suite}:* | _unreadable previous artifact_ | | |")
            continue
        series = current.get(suite, {})
        for name in sorted(set(prev) | set(series)):
            old, new = prev.get(name), series.get(name)
            if old is None or new is None:
                old_s = f"{old:.2f}" if old is not None else "—"
                new_s = f"{new:.2f}" if new is not None else "—"
                rows.append(f"| {suite}:{name} | {old_s} | {new_s} | |")
                continue
            seen_any = True
            rows.append(
                f"| {suite}:{name} | {old:.2f} | {new:.2f} | "
                f"{(new - old) / old:+.1%} |"
            )
    if not seen_any and len(rows) == 2:
        rows.append("| _none_ | | | |")
    return rows


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "bench_files", nargs="+", type=Path,
        help="pytest-benchmark JSON files (BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--baselines", type=Path, default=DEFAULT_BASELINES,
        help="committed baselines file (default: benchmarks/baselines.json)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="refresh the baselines from the given BENCH files and exit",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="override every tolerance (fraction, e.g. 0.1 = allow -10%%)",
    )
    parser.add_argument(
        "--previous", nargs="*", type=Path, default=[],
        help="previous run's BENCH files (artifact downloads) for the "
        "old-vs-new delta; missing files are tolerated",
    )
    parser.add_argument(
        "--summary", type=Path, default=None,
        help="append a markdown summary here (e.g. $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)

    missing = [str(p) for p in args.bench_files if not p.is_file()]
    if missing:
        print(f"error: no such BENCH file(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    current = {suite_of(p): load_series(p) for p in args.bench_files}

    if args.write_baseline:
        tolerance = args.tolerance
        if tolerance is None:
            tolerance = (
                float(load_baselines(args.baselines).get("tolerance", DEFAULT_TOLERANCE))
                if args.baselines.is_file()
                else DEFAULT_TOLERANCE
            )
        write_baselines(args.baselines, current, tolerance)
        total = sum(len(s) for s in current.values())
        print(f"wrote {args.baselines} ({total} benchmarks, tolerance {tolerance:.0%})")
        return 0

    if not args.baselines.is_file():
        print(
            f"error: no baselines at {args.baselines}; create them with "
            "--write-baseline",
            file=sys.stderr,
        )
        return 2
    baselines = load_baselines(args.baselines)
    failures, lines = compare(current, baselines, args.tolerance)
    for line in lines:
        print(line)

    summary_parts = ["## Benchmark gate", ""]
    summary_parts += ["```", *lines, "```", ""]
    # Always emit the delta table: on a first run (no artifact yet) the
    # rows carry the current numbers with "—" placeholders, so the job
    # summary has a per-benchmark line either way.
    summary_parts += ["### vs previous run", ""]
    summary_parts += previous_delta(current, args.previous)
    summary_parts += [""]
    if failures:
        summary_parts += ["**FAILED:**", ""]
        summary_parts += [f"- {f}" for f in failures]
    else:
        summary_parts += ["All benchmarks within tolerance."]
    if args.summary is not None:
        with args.summary.open("a") as fh:
            fh.write("\n".join(summary_parts) + "\n")

    if args.previous:
        print()
        print("vs previous run:")
        for row in previous_delta(current, args.previous):
            print(f"  {row}")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print()
    print(f"bench gate passed ({sum(len(s) for s in current.values())} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
