#!/usr/bin/env python3
"""Docs checker: markdown link validation + code-block execution.

Stdlib-only (runs anywhere the repo checks out). Two passes over every
markdown file given on the command line:

1. **Links** — every relative markdown link target (``[text](path)``,
   optionally with a ``#anchor``) must exist on disk, resolved against
   the linking file's directory. ``http(s)``/``mailto`` links are
   skipped (no network in CI).
2. **Code blocks** — every fenced ``python`` block is executed in its
   own interpreter in a scratch directory with ``PYTHONPATH`` pointing
   at the repo's ``src``, so documented examples stay runnable as-is.
   Blocks fenced ``python no-run`` (or any other info string) are
   skipped; ``bash`` recipes are never executed.

Usage::

    python tools/docs_check.py README.md docs/*.md
    python tools/docs_check.py --links-only README.md docs/*.md

Exits non-zero on the first category of failure, printing every
offender first.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Inline markdown links: [text](target). Images (![...]) match too.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Fenced code blocks with their info string.
_FENCE_RE = re.compile(r"^```([^\n`]*)\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def extract_links(text: str) -> list[str]:
    """All inline link targets in a markdown document."""
    return _LINK_RE.findall(text)


def check_links(paths: list[Path]) -> list[str]:
    """Broken relative links across ``paths`` (empty = all good)."""
    problems: list[str] = []
    for path in paths:
        for target in extract_links(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                problems.append(f"{path}: broken link -> {target}")
    return problems


def extract_python_blocks(text: str) -> list[str]:
    """The bodies of fenced blocks whose info string is exactly ``python``.

    ``python no-run`` (and every non-``python`` language) is excluded.
    """
    blocks: list[str] = []
    for info, body in _FENCE_RE.findall(text):
        if info.strip() == "python":
            blocks.append(body)
    return blocks


def run_blocks(paths: list[Path], timeout_s: float) -> list[str]:
    """Execute every runnable ``python`` block; return failures."""
    problems: list[str] = []
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for path in paths:
        for i, block in enumerate(extract_python_blocks(path.read_text()), 1):
            with tempfile.TemporaryDirectory(prefix="docs-check-") as scratch:
                try:
                    proc = subprocess.run(
                        [sys.executable, "-c", block],
                        cwd=scratch,
                        env=env,
                        capture_output=True,
                        text=True,
                        timeout=timeout_s,
                    )
                except subprocess.TimeoutExpired:
                    problems.append(f"{path}: python block #{i} timed out")
                    continue
            if proc.returncode != 0:
                tail = "\n".join(proc.stderr.strip().splitlines()[-5:])
                problems.append(
                    f"{path}: python block #{i} exited {proc.returncode}\n{tail}"
                )
            else:
                print(f"ok: {path} python block #{i}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=Path, help="markdown files to check")
    parser.add_argument(
        "--links-only", action="store_true", help="skip code-block execution"
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0, help="per-block timeout (seconds)"
    )
    args = parser.parse_args(argv)

    missing = [str(p) for p in args.files if not p.is_file()]
    if missing:
        print(f"no such file(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    problems = check_links(args.files)
    if not args.links_only:
        problems += run_blocks(args.files, args.timeout)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        n = len(args.files)
        print(f"docs check passed ({n} file{'s' if n != 1 else ''})")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
