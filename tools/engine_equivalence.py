#!/usr/bin/env python
"""CI smoke: the epoch-matrix engine's sweep cache ≡ the seed engine's.

Builds two sweep caches over the same cells — one filled by the frozen
scalar reference engine (``tests/sim/reference_engine.py``, the seed
per-worker loop), one by the production vectorized engine — writing
both through :class:`repro.sweep.cache.ResultCache`. Because entries
are content-addressed by ``(config, policy, code)`` and serialized
canonically, a plain ``diff -r`` between the two directories proves the
engines produce byte-identical ``SimulationResult`` JSON (and therefore
identical cache entries) for every cell, the same way the PR 4 smoke
proves executor equivalence.

Cells: the standard demo grid plus the full Fig 8 nine-policy lineup on
a scaled-down MNIST scenario, so every registered policy — including
the unsupported/PolicyError path — flows through both engines.

``--kernels`` runs the production engine under a named kernel backend
(``repro list kernels``), ``--share-seeds`` routes every cell through
the seed-sharing path (``Simulator.run_seed`` from a base simulator on
a *different* seed), and ``--run-many`` evaluates each scenario's cells
together through the epoch-major multi-policy path
(``Simulator.run_many_outcomes`` / ``run_many_seed``) — all execution
knobs with a bitwise-identity contract, so the byte-diff must stay
empty for every combination. Pairing ``--run-many`` with a
``REPRO_PERM_CACHE_MAX_ELEMENTS=0`` environment exercises the
cache-disabled rolling-slot sharing on these small scenarios.

Usage::

    python tools/engine_equivalence.py REFERENCE_DIR ENGINE_DIR
    python tools/engine_equivalence.py REFERENCE_DIR ENGINE_DIR \
        --kernels numba --share-seeds
    python tools/engine_equivalence.py REFERENCE_DIR ENGINE_DIR --run-many
    diff -r REFERENCE_DIR ENGINE_DIR
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(_ROOT), str(_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.api import fig8_lineup  # noqa: E402
from repro.datasets import mnist  # noqa: E402
from repro.errors import PolicyError  # noqa: E402
from repro.perfmodel import sec6_cluster  # noqa: E402
from repro.sim import SimulationConfig, Simulator  # noqa: E402
from repro.sweep.cache import CachedOutcome, ResultCache, cell_key  # noqa: E402
from repro.sweep.cli import demo_grid  # noqa: E402
from repro.sweep.grid import ScenarioGrid  # noqa: E402
from tests.sim.reference_engine import ReferenceSimulator  # noqa: E402


def _cells():
    cells = demo_grid().cells()
    lineup_grid = ScenarioGrid(
        datasets=[mnist(1).scaled(0.2)],
        systems=[sec6_cluster(num_workers=2)],
        policies=fig8_lineup(),
        batch_sizes=[16],
        epoch_counts=[2],
    )
    cells.extend(lineup_grid.cells())
    return cells


def _outcome(run) -> CachedOutcome:
    try:
        return CachedOutcome(result=run(), error=None)
    except PolicyError as exc:
        return CachedOutcome(result=None, error=str(exc))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("reference_dir", help="cache filled by the frozen seed engine")
    parser.add_argument("engine_dir", help="cache filled by the production engine")
    parser.add_argument(
        "--kernels", default=None, metavar="BACKEND",
        help="run the production engine under this kernel backend "
        "(default numpy; numba falls back with a warning when missing)",
    )
    parser.add_argument(
        "--share-seeds", action="store_true",
        help="route every cell through Simulator.run_seed from a base "
        "simulator on a different seed (the seed-sharing path)",
    )
    parser.add_argument(
        "--run-many", action="store_true",
        help="evaluate each scenario's cells together through the "
        "epoch-major multi-policy path (run_many_outcomes, or "
        "run_many_seed with --share-seeds)",
    )
    args = parser.parse_args(argv)
    reference_cache = ResultCache(args.reference_dir)
    engine_cache = ResultCache(args.engine_dir)

    simulators: dict[str, tuple[ReferenceSimulator, Simulator]] = {}
    #: scenario JSON -> {id(policy): outcome} under --run-many.
    many_outcomes: dict[str, dict[int, CachedOutcome]] = {}
    mismatches = 0
    cells = _cells()
    for cell in cells:
        config: SimulationConfig = cell.config
        key = cell_key(config, cell.policy)
        scenario = json.dumps(config.to_dict(), sort_keys=True)
        if scenario not in simulators:
            engine_config = config
            if args.share_seeds:
                # The engine simulator lives on a *different* seed; every
                # run below reaches the cell's true seed via run_seed.
                engine_config = dataclasses.replace(config, seed=config.seed + 1)
            simulators[scenario] = (
                ReferenceSimulator(config),
                Simulator(engine_config, kernel_backend=args.kernels),
            )
        reference_sim, engine_sim = simulators[scenario]

        ref = _outcome(lambda: reference_sim.run(cell.policy))
        if args.run_many:
            batch = many_outcomes.get(scenario)
            if batch is None:
                peers = [
                    c
                    for c in cells
                    if json.dumps(c.config.to_dict(), sort_keys=True) == scenario
                ]
                policies = [c.policy for c in peers]
                if args.share_seeds:
                    raw = engine_sim.run_many_seed(policies, config.seed)
                else:
                    raw = engine_sim.run_many_outcomes(policies)
                batch = many_outcomes[scenario] = {
                    id(policy): (
                        CachedOutcome(result=None, error=str(outcome))
                        if isinstance(outcome, PolicyError)
                        else CachedOutcome(result=outcome, error=None)
                    )
                    for policy, outcome in zip(policies, raw)
                }
            new = batch[id(cell.policy)]
        elif args.share_seeds:
            new = _outcome(lambda: engine_sim.run_seed(cell.policy, config.seed))
        else:
            new = _outcome(lambda: engine_sim.run(cell.policy))
        reference_cache.put(key, ref)
        engine_cache.put(key, new)

        ref_desc = ref.error if ref.result is None else ref.result.to_dict()
        new_desc = new.error if new.result is None else new.result.to_dict()
        status = "ok" if ref_desc == new_desc else "MISMATCH"
        mismatches += status != "ok"
        print(f"[{status}] {cell.policy.name} @ {config.scenario} B={config.batch_size}")

    print(f"{len(cells)} cells, {mismatches} mismatches")
    return 1 if mismatches else 0


if __name__ == "__main__":
    raise SystemExit(main())
