#!/usr/bin/env python
"""Per-phase timing breakdown for one simulator cell.

Times where a single ``Simulator.run`` actually spends its wall clock,
by phase:

``plan``
    :meth:`~repro.sim.engine.Simulator.plan_epoch` — policy scalars,
    epoch id resolution.
``resolve_fetch``
    The fetch-source resolution (:func:`repro.perfmodel.resolve_fetch`).
``rng``
    Noise generator construction — the state-cached
    :meth:`~repro.sim.plancache.PlanCache.noise_generators` path, or
    (with ``--fresh-rng``) the historical fresh
    :func:`repro.rng.generator` per worker, so the fast path's RNG
    share is measurable before/after.
``noise``
    :func:`~repro.sim.noise.apply_noise_matrix` — the draws and the
    multiplier scatter (generator construction excluded; see ``rng``).
``accumulate``
    The kernel-bundle reductions (batch totals, source totals, row
    accumulation, latency add, interference) plus the lockstep scan.

Everything not covered lands in ``other`` (result assembly, write
times, Python glue). The tool only *observes* — every wrapper calls
straight through — so the simulated results are the production
engine's, bitwise.

Usage::

    python tools/profile_cell.py --workers 64 --repeats 5
    python tools/profile_cell.py --fresh-rng --json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import Callable

_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(_ROOT), str(_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.api import make_policy  # noqa: E402
from repro.datasets import DatasetModel  # noqa: E402
from repro.perfmodel import sec6_cluster  # noqa: E402
from repro.rng import generator  # noqa: E402
from repro.sim import SimulationConfig, Simulator  # noqa: E402
from repro.sim import engine as engine_mod  # noqa: E402

PHASES = ("plan", "resolve_fetch", "rng", "noise", "accumulate")

#: The kernel-bundle fields folded into the ``accumulate`` phase.
_KERNEL_FIELDS = (
    "hash01",
    "warmup_remote_classes",
    "batch_totals",
    "source_totals",
    "accumulate_rows",
    "add_pfs_latency",
    "interference_factors",
)


def _timed(fn: Callable, phases: dict[str, float], bucket: str) -> Callable:
    """A pass-through wrapper accumulating ``fn``'s wall time."""

    def wrapper(*args, **kwargs):
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            phases[bucket] += time.perf_counter() - start

    return wrapper


def _scenario(args: argparse.Namespace) -> SimulationConfig:
    samples = args.workers * args.batch * args.iterations
    dataset = DatasetModel("profile-cell", samples, 0.15, 0.05)
    return SimulationConfig(
        dataset=dataset,
        system=sec6_cluster(num_workers=args.workers),
        batch_size=args.batch,
        num_epochs=args.epochs,
        seed=args.seed,
    )


def profile_cell(args: argparse.Namespace) -> dict:
    """Run the cell ``--repeats`` times and return the phase breakdown."""
    phases = {name: 0.0 for name in PHASES}
    config = _scenario(args)
    base_backend = engine_mod.resolve_kernel_backend(None)
    timed_backend = dataclasses.replace(
        base_backend,
        **{
            field: _timed(getattr(base_backend, field), phases, "accumulate")
            for field in _KERNEL_FIELDS
        },
    )
    sim = Simulator(config, kernel_backend=timed_backend)
    sim.plan_epoch = _timed(sim.plan_epoch, phases, "plan")
    if args.fresh_rng:
        seed = config.seed

        def fresh_noise_generators(epoch: int, rows: slice):
            return [
                generator(seed, "noise", epoch, worker)
                for worker in range(rows.start, rows.stop)
            ]

        sim.plan_cache.noise_generators = _timed(
            fresh_noise_generators, phases, "rng"
        )
    else:
        sim.plan_cache.noise_generators = _timed(
            sim.plan_cache.noise_generators, phases, "rng"
        )

    policy = make_policy(args.policy)
    saved = {
        "resolve_fetch": engine_mod.resolve_fetch,
        "apply_noise_matrix": engine_mod.apply_noise_matrix,
        "lockstep_epoch": engine_mod.lockstep_epoch,
    }
    engine_mod.resolve_fetch = _timed(saved["resolve_fetch"], phases, "resolve_fetch")
    engine_mod.apply_noise_matrix = _timed(saved["apply_noise_matrix"], phases, "noise")
    engine_mod.lockstep_epoch = _timed(saved["lockstep_epoch"], phases, "accumulate")
    total = 0.0
    try:
        for _ in range(args.repeats):
            start = time.perf_counter()
            sim.run(policy)
            total += time.perf_counter() - start
    finally:
        for name, fn in saved.items():
            setattr(engine_mod, name, fn)

    covered = sum(phases.values())
    phases["other"] = max(0.0, total - covered)
    states = sim.plan_cache.noise_states
    return {
        "policy": policy.name,
        "scenario": config.scenario,
        "workers": args.workers,
        "batch_size": args.batch,
        "iterations": args.iterations,
        "epochs": args.epochs,
        "seed": args.seed,
        "repeats": args.repeats,
        "rng_mode": "fresh" if args.fresh_rng else "state-cache",
        "total_s": total,
        "phases_s": dict(phases),
        "shares": {
            name: (seconds / total if total > 0 else 0.0)
            for name, seconds in phases.items()
        },
        "rng_states": {"derived": states.derived, "cloned": states.cloned},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--workers", type=int, default=64, help="N (default 64)")
    parser.add_argument("--batch", type=int, default=16, help="B (default 16)")
    parser.add_argument(
        "--iterations", type=int, default=16, help="T per epoch (default 16)"
    )
    parser.add_argument("--epochs", type=int, default=3, help="E (default 3)")
    parser.add_argument("--seed", type=int, default=5, help="scenario seed")
    parser.add_argument(
        "--policy", default="staging_buffer",
        help="policy spec (repro list policies; default staging_buffer)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="runs to accumulate over (default 5)",
    )
    parser.add_argument(
        "--fresh-rng", action="store_true",
        help="build noise generators fresh per worker (the pre-state-cache "
        "path) instead of through the generator-state cache",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the breakdown as JSON"
    )
    args = parser.parse_args(argv)
    report = profile_cell(args)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(
        f"{report['policy']} @ {report['scenario']} "
        f"(x{report['repeats']}, rng={report['rng_mode']})"
    )
    print(f"  total        {report['total_s'] * 1e3:9.2f} ms")
    for name in (*PHASES, "other"):
        seconds = report["phases_s"][name]
        share = report["shares"][name]
        print(f"  {name:<12} {seconds * 1e3:9.2f} ms  {share:6.1%}")
    states = report["rng_states"]
    print(f"  rng states   derived={states['derived']} cloned={states['cloned']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
