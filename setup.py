"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so
`pip install -e . --no-use-pep517` works on offline machines where the
`wheel` package (required for PEP 660 editable installs) is unavailable.
"""

from setuptools import setup

setup()
