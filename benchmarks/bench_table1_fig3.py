"""Benchmarks regenerating Table 1 and Fig 3 (+ the Sec 3.1 numbers)."""

import pytest

from repro.experiments import fig3, table1


def test_table1(benchmark, report):
    """Table 1: capability matrix, regenerated from policy metadata."""
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    report("table1", result.render())
    assert result.all_match


def test_fig3_access_frequency(benchmark, report):
    """Fig 3 + Sec 3.1: full-scale ImageNet-1k frequency distribution.

    Runs the paper's exact configuration (N=16, E=90, F=1,281,167): the
    analytic expectation must land on ~31,635 and the exact-shuffle
    Monte-Carlo count must agree within a few percent (paper: 31,863).
    """
    result = benchmark.pedantic(fig3.run, rounds=1, iterations=1)
    report("fig3", result.render())
    assert result.expected_hot == pytest.approx(31_635, rel=0.01)
    assert result.measured_hot == pytest.approx(result.expected_hot, rel=0.05)
