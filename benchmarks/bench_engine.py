"""Simulation-engine throughput: epoch-matrix kernels vs the seed loop.

Benchmarks the innermost hot path under every sweep cell — one
``Simulator.run`` — at two scales:

* **N=64** (the PR 5 acceptance scenario): the vectorized epoch-matrix
  engine must beat the retained scalar reference
  (``tests/sim/reference_engine.py``) while producing
  bitwise-identical results.
* **N=1024** (the paper-scale tier): a Sec 7-sized scenario —
  1024 workers over a multi-million-sample stream — must complete
  with streaming tiles (``tile_rows=PAPER_SCALE_TILE_ROWS``) under the
  documented peak-memory bound, bitwise-identical to the untiled run.

CI uploads the pytest-benchmark timings as ``BENCH_engine.json`` plus
the rendered comparisons; ``tools/bench_gate.py`` compares the timings
against ``benchmarks/baselines.json`` and fails the build on
regression.
"""

import json
import sys
import time
import tracemalloc
import warnings
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.datasets import DatasetModel  # noqa: E402
from repro.errors import PolicyError  # noqa: E402
from repro.perfmodel import Source, sec6_cluster  # noqa: E402
from repro.sim import (  # noqa: E402
    KERNEL_BACKENDS,
    NaivePolicy,
    NoPFSPolicy,
    ScenarioContext,
    SimulationConfig,
    Simulator,
    StagingBufferPolicy,
)
from tests.sim.reference_engine import ReferenceSimulator  # noqa: E402

#: N >= 64 per the acceptance criterion: enough workers that per-worker
#: Python overhead (the seed engine's cost model) is the dominant term.
NUM_WORKERS = 64

#: The paper's headline scale (Sec 7: up to 1024 workers).
PAPER_SCALE_WORKERS = 1024
#: Streaming tile height for the paper-scale runs: 64-worker bands keep
#: every per-sample float matrix at ~1.5 MB while the untiled run
#: materializes ~25 MB per temporary.
PAPER_SCALE_TILE_ROWS = 64
#: Documented peak-allocation bound (tracemalloc, MB) for the tiled
#: N=1024 run. Measured ~134 MB (dominated by the policy's placement
#: lookups and the cached id permutations, not per-sample floats); the
#: untiled run peaks ~504 MB. The bound carries slack for allocator
#: variance across numpy versions, not for regressions.
PAPER_SCALE_TILED_PEAK_MB = 256.0


def _scenario(num_workers=NUM_WORKERS, batch=16, iterations=16, epochs=3, seed=5):
    num_samples = num_workers * batch * iterations
    dataset = DatasetModel("bench-engine", num_samples, 0.15, 0.02)
    return SimulationConfig(
        dataset=dataset,
        system=sec6_cluster(num_workers=num_workers),
        batch_size=batch,
        num_epochs=epochs,
        seed=seed,
    )


def _lineup():
    return [NaivePolicy(), StagingBufferPolicy(), NoPFSPolicy()]


def _time_engine(run_cell, policies, repeats=3):
    """Best-of-``repeats`` wall time to simulate the whole lineup."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for policy in policies:
            run_cell(policy)
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_speedup(report):
    """Epoch-matrix engine > scalar engine on an N=64 scenario, bitwise-equal."""
    config = _scenario()
    sim = Simulator(config)
    reference = ReferenceSimulator(config, ctx=sim.ctx)

    # Identical results come first; this also warms the shared context
    # (stream permutations, frequency counts) so the timed runs compare
    # engine arithmetic, not one-off scenario setup.
    for policy_new, policy_ref in zip(_lineup(), _lineup()):
        new = json.dumps(sim.run(policy_new).to_dict(), sort_keys=True)
        ref = json.dumps(reference.run(policy_ref).to_dict(), sort_keys=True)
        assert new == ref, f"engine results diverge for {policy_new.name}"

    new_s = _time_engine(sim.run, _lineup())
    old_s = _time_engine(reference.run, _lineup())
    speedup = old_s / new_s
    cells = len(_lineup())

    report(
        "engine",
        "\n".join(
            [
                f"scenario: N={NUM_WORKERS} workers, "
                f"F={config.dataset.num_samples} samples, "
                f"E={config.num_epochs} epochs, B={config.batch_size}",
                f"scalar reference: {old_s:7.3f}s  ({cells / old_s:6.2f} cells/s)",
                f"epoch-matrix:     {new_s:7.3f}s  ({cells / new_s:6.2f} cells/s)",
                f"speedup: {speedup:.2f}x (bitwise-identical results)",
            ]
        ),
    )
    assert speedup > 1.0, (
        f"vectorized engine ({new_s:.3f}s) must beat the scalar reference "
        f"({old_s:.3f}s) on an N={NUM_WORKERS} scenario"
    )


def test_engine_throughput(benchmark):
    """Timing series for BENCH_engine.json: one three-epoch N=64 cell."""
    sim = Simulator(_scenario())
    sim.run(NaivePolicy())  # warm the scenario state once
    benchmark.pedantic(sim.run, args=(NoPFSPolicy(),), rounds=3, iterations=1)


# -- paper scale (N=1024) --------------------------------------------------


def _paper_scenario():
    """A Sec 7-sized cell: N=1024 workers, ~3.1M samples, 2 epochs."""
    return _scenario(
        num_workers=PAPER_SCALE_WORKERS, batch=32, iterations=96, epochs=2
    )


def _traced_run(sim, policy):
    """(result, wall seconds, tracemalloc peak MB) of one engine run."""
    tracemalloc.start()
    start = time.perf_counter()
    result = sim.run(policy)
    wall = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, wall, peak / 2**20


def test_engine_paper_scale(report):
    """N=1024: tiled run is bitwise-equal to untiled and memory-bounded.

    Peak memory is measured with ``tracemalloc`` (it traces every numpy
    buffer and, unlike RSS, is deterministic across allocator reuse),
    after warming the shared scenario context so both runs are charged
    only for their own working set.
    """
    config = _paper_scenario()
    ctx = ScenarioContext(config)
    for epoch in range(config.num_epochs):
        ctx.epoch_matrix(epoch)

    untiled, untiled_s, untiled_mb = _traced_run(
        Simulator(config, ctx=ctx), NoPFSPolicy()
    )
    tiled, tiled_s, tiled_mb = _traced_run(
        Simulator(config, tile_rows=PAPER_SCALE_TILE_ROWS, ctx=ctx), NoPFSPolicy()
    )

    assert json.dumps(tiled.to_dict(), sort_keys=True) == json.dumps(
        untiled.to_dict(), sort_keys=True
    ), "tiled paper-scale run diverges from untiled execution"
    assert tiled_mb < PAPER_SCALE_TILED_PEAK_MB, (
        f"tiled N={PAPER_SCALE_WORKERS} run peaked at {tiled_mb:.1f} MB; "
        f"documented bound is {PAPER_SCALE_TILED_PEAK_MB:.0f} MB"
    )

    cells = config.num_epochs * config.iterations_per_epoch * ctx.num_workers
    report(
        "engine_paper_scale",
        "\n".join(
            [
                f"scenario: N={PAPER_SCALE_WORKERS} workers, "
                f"F={config.dataset.num_samples:,} samples, "
                f"E={config.num_epochs} epochs, B={config.batch_size}",
                f"untiled:              {untiled_s:6.2f}s  peak {untiled_mb:7.1f} MB",
                f"tiled (tile_rows={PAPER_SCALE_TILE_ROWS}):  "
                f"{tiled_s:6.2f}s  peak {tiled_mb:7.1f} MB",
                f"matrix cells/s (tiled): {cells / tiled_s:,.0f}",
                "results: bitwise-identical",
            ]
        ),
    )


def test_engine_paper_scale_throughput(benchmark):
    """Timing series for BENCH_engine.json: one tiled N=1024 cell."""
    config = _paper_scenario()
    sim = Simulator(config, tile_rows=PAPER_SCALE_TILE_ROWS)
    sim.run(NaivePolicy())  # warm the scenario state once
    benchmark.pedantic(sim.run, args=(NoPFSPolicy(),), rounds=2, iterations=1)


# -- kernel backends (ISSUE 9) ---------------------------------------------


def test_engine_backend_comparison(report):
    """Every registered kernel backend reproduces the default bitwise.

    Where a compiled backend is unavailable (no numba in the
    environment) its registration falls back to numpy with a warning —
    the comparison then times the fallback, which must *still* be
    bitwise-identical, so the report stays meaningful either way.
    """
    config = _scenario()
    baseline = {
        policy.name: json.dumps(Simulator(config).run(policy).to_dict(),
                                sort_keys=True)
        for policy in _lineup()
    }
    cells = len(_lineup())
    lines = [
        f"scenario: N={NUM_WORKERS} workers, "
        f"F={config.dataset.num_samples} samples, "
        f"E={config.num_epochs} epochs, B={config.batch_size}",
    ]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # numba fallback
        for name in KERNEL_BACKENDS.names():
            backend = KERNEL_BACKENDS.resolve(name)
            sim = Simulator(config, kernel_backend=backend)
            for policy in _lineup():
                got = json.dumps(sim.run(policy).to_dict(), sort_keys=True)
                assert got == baseline[policy.name], (
                    f"backend {name!r} diverges from numpy for {policy.name}"
                )
            secs = _time_engine(sim.run, _lineup())
            kind = "compiled" if backend.compiled else "interpreted"
            lines.append(
                f"{name:>8} ({kind:>11}): {secs:7.3f}s "
                f"({cells / secs:6.2f} cells/s)  [bitwise-identical]"
            )
    report("engine_backends", "\n".join(lines))


def test_engine_backend_throughput(benchmark):
    """Timing series for BENCH_engine.json: the N=64 cell through the
    registry's explicit ``numpy`` spec (the `--kernels numpy` path)."""
    sim = Simulator(_scenario(), kernel_backend="numpy")
    sim.run(NaivePolicy())  # warm the scenario state once
    benchmark.pedantic(sim.run, args=(NoPFSPolicy(),), rounds=3, iterations=1)


# -- seed-sharing multi-cell execution (ISSUE 9) ---------------------------

#: Fig 8-style replication seeds: same scenario, five noise seeds.
FIG8_SEEDS = [3, 7, 11, 19, 23]


def _run_lineup_fresh(config):
    """{(seed, policy): result} via per-cell execution.

    The baseline mirrors what the executors' per-cell path
    (``_simulate_cell``) does for every one of the grid's 15 cells:
    deserialize the cell's config and build a fresh
    :class:`Simulator` — scenario context, permutations and all — for
    that single run. This is exactly the work the batched seed-sharing
    path replaces.
    """
    out = {}
    for seed in FIG8_SEEDS:
        for policy in _lineup():
            sim = Simulator(
                SimulationConfig.from_dict({**config.to_dict(), "seed": seed})
            )
            try:
                out[(seed, policy.name)] = sim.run(policy)
            except PolicyError:
                out[(seed, policy.name)] = None
    return out


def _run_lineup_shared(config):
    """Same cells via one base Simulator's seed-sharing path.

    The base lives on the grid's first seed — exactly what the batched
    executor does (``_simulate_batch`` builds its simulator from the
    batch's first cell), so the base context is itself one of the
    measured cells, not bookkeeping overhead.
    """
    base = Simulator(
        SimulationConfig.from_dict({**config.to_dict(), "seed": FIG8_SEEDS[0]})
    )
    out = {}
    for policy in _lineup():
        try:
            for seed, result in base.run_seeds(policy, FIG8_SEEDS).items():
                out[(seed, policy.name)] = result
        except PolicyError:
            for seed in FIG8_SEEDS:
                out[(seed, policy.name)] = None
    return out, base


def _best_of(fn, repeats=3):
    """Best-of-``repeats`` wall seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_seed_sharing(report):
    """A Fig 8-style 5-seed grid: sharing beats per-cell runs, bitwise-equal.

    The paper's headline figures replicate every scenario across noise
    seeds; the batched executor folds those replicas into one worker
    batch, where ``Simulator.run_seeds`` pays for the scenario context,
    the dataset sizes, the shareable prepared policies and the plan
    scalars once per seed (or once overall) instead of once per *cell*.
    The shared path must stay bitwise-identical to per-cell execution
    *and* finish faster.
    """
    config = _scenario()
    fresh = _run_lineup_fresh(config)
    shared, base = _run_lineup_shared(config)
    for key in fresh:
        a, b = fresh[key], shared[key]
        a_json = None if a is None else json.dumps(a.to_dict(), sort_keys=True)
        b_json = None if b is None else json.dumps(b.to_dict(), sort_keys=True)
        assert a_json == b_json, f"seed-shared run diverges for {key}"

    fresh_s = _best_of(lambda: _run_lineup_fresh(config), repeats=5)
    shared_s = _best_of(lambda: _run_lineup_shared(config), repeats=5)
    speedup = fresh_s / shared_s
    cells = len(FIG8_SEEDS) * len(_lineup())

    share = base.seed_share
    scalar_hits = sum(
        base.seed_variant(seed).plan_cache.scalar_hits for seed in FIG8_SEEDS
    )
    report(
        "engine_seed_sharing",
        "\n".join(
            [
                f"grid: {len(_lineup())} policies x {len(FIG8_SEEDS)} seeds "
                f"on the N={NUM_WORKERS} scenario ({cells} cells)",
                f"per-cell:     {fresh_s:7.3f}s  ({cells / fresh_s:6.2f} cells/s)",
                f"seed-sharing: {shared_s:7.3f}s  ({cells / shared_s:6.2f} cells/s)",
                f"speedup: {speedup:.2f}x (bitwise-identical results)",
                f"shared prepares: {share.prep_hits} hits / "
                f"{share.prep_misses} misses across {share.variants} variants; "
                f"plan scalars: {scalar_hits} adopted-entry hits",
            ]
        ),
    )
    assert speedup > 1.0, (
        f"seed-sharing ({shared_s:.3f}s) must beat per-cell execution "
        f"({fresh_s:.3f}s) on a {len(FIG8_SEEDS)}-seed Fig 8-style grid"
    )


def test_engine_seed_sharing_throughput(benchmark):
    """Timing series for BENCH_engine.json: the 5-seed lineup through
    one base simulator's sharing path (base construction included —
    amortizing it is the feature under test)."""
    config = _scenario()
    benchmark.pedantic(
        lambda: _run_lineup_shared(config), rounds=3, iterations=1
    )


# -- noise-RNG fast path (ISSUE 10) ----------------------------------------

#: Required speedup of the production noise path (generator-state cache
#: + fused lognormal draws + lazy source masks) over the frozen PR 9
#: baseline on the noisiest N=64 cell. Measured ~1.4x; the gate keeps
#: margin for CI jitter, not for regressions.
NOISE_FAST_PATH_MIN_SPEEDUP = 1.15


def _pr9_apply_noise_matrix(fetch_times, sources, noise, rngs):
    """The PR 9 noise kernel, frozen verbatim as the speedup baseline.

    Eager whole-matrix masks for every source class, separate lognormal
    draws per (worker, source) segment — the code
    :func:`repro.sim.noise.apply_noise_matrix` replaced. Kept here so
    the fast-path gate always measures against the real predecessor.
    """
    import numpy as np

    from repro.sim.noise import _lognormal_mean_one

    times = np.asarray(fetch_times, dtype=np.float64)
    if not noise.enabled or times.size == 0:
        return times.copy()
    src = np.asarray(sources)
    masks = {
        name: src == int(code)
        for name, code in (
            ("pfs", Source.PFS),
            ("remote", Source.REMOTE),
            ("local", Source.LOCAL),
        )
    }
    counts = {name: mask.sum(axis=1) for name, mask in masks.items()}

    mult = np.ones_like(times)
    for worker, rng in enumerate(rngs):
        n_pfs = int(counts["pfs"][worker])
        if n_pfs:
            draw = _lognormal_mean_one(rng, noise.pfs_sigma, n_pfs)
            if noise.pfs_tail_prob > 0:
                tails = rng.random(n_pfs) < noise.pfs_tail_prob
                draw = np.where(tails, draw * noise.pfs_tail_scale, draw)
            mult[worker, masks["pfs"][worker]] = draw
        n_remote = int(counts["remote"][worker])
        if n_remote:
            mult[worker, masks["remote"][worker]] = _lognormal_mean_one(
                rng, noise.remote_sigma, n_remote
            )
        n_local = int(counts["local"][worker])
        if n_local:
            mult[worker, masks["local"][worker]] = _lognormal_mean_one(
                rng, noise.local_sigma, n_local
            )
    return times * mult


def _pr9_noise_sim(config, ctx):
    """A simulator forced onto PR 9's fresh-generator noise RNG path."""
    from repro.rng import generator

    sim = Simulator(config, ctx=ctx)
    seed = config.seed

    def fresh_noise_generators(epoch, rows):
        return [
            generator(seed, "noise", epoch, worker)
            for worker in range(rows.start, rows.stop)
        ]

    sim.plan_cache.noise_generators = fresh_noise_generators
    return sim


def _time_noise_cell(sim, policy, repeats=7):
    """Best-of-``repeats`` wall seconds for one noisy cell run."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        sim.run(policy)
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_noise_fast_path(report):
    """The noisy N=64 cell beats the PR 9 noise path >= 1.15x, bitwise-equal.

    The all-PFS :class:`NaivePolicy` cell is the noisiest the engine
    runs (every sample draws PFS jitter + a tail uniform), so it
    isolates what PR 10 changed: per-worker generators served by state
    rewind instead of fresh SeedSequence expansion, consecutive
    lognormal segments fused into one broadcast draw, and source masks
    built lazily. The legacy side runs the frozen PR 9 kernel
    (:func:`_pr9_apply_noise_matrix`) with fresh per-worker generators
    — and must still produce byte-identical results.
    """
    from repro.sim import engine as engine_mod

    config = _scenario()
    policy = NaivePolicy()
    fast = Simulator(config)
    legacy = _pr9_noise_sim(config, fast.ctx)

    fast_json = json.dumps(fast.run(policy).to_dict(), sort_keys=True)
    saved = engine_mod.apply_noise_matrix
    engine_mod.apply_noise_matrix = _pr9_apply_noise_matrix
    try:
        legacy_json = json.dumps(legacy.run(policy).to_dict(), sort_keys=True)
        assert fast_json == legacy_json, "fast noise path diverges from PR 9"
        legacy_s = _time_noise_cell(legacy, policy)
    finally:
        engine_mod.apply_noise_matrix = saved
    fast_s = _time_noise_cell(fast, policy)
    speedup = legacy_s / fast_s

    states = fast.plan_cache.noise_states
    report(
        "engine_noise_fast_path",
        "\n".join(
            [
                f"scenario: N={NUM_WORKERS} workers, "
                f"F={config.dataset.num_samples} samples, "
                f"E={config.num_epochs} epochs, B={config.batch_size}, "
                f"policy {policy.name} (all-PFS noise + tails)",
                f"PR 9 noise path: {legacy_s * 1e3:7.2f} ms/cell",
                f"fast path:       {fast_s * 1e3:7.2f} ms/cell",
                f"speedup: {speedup:.2f}x (bitwise-identical results)",
                f"rng states: {states.derived} derived, "
                f"{states.cloned} cloned across the repeats",
            ]
        ),
    )
    assert speedup >= NOISE_FAST_PATH_MIN_SPEEDUP, (
        f"noise fast path ({fast_s * 1e3:.2f} ms) must beat the PR 9 "
        f"baseline ({legacy_s * 1e3:.2f} ms) by "
        f">= {NOISE_FAST_PATH_MIN_SPEEDUP}x; got {speedup:.2f}x"
    )


def test_engine_noise_fast_path_throughput(benchmark):
    """Timing series for BENCH_engine.json: the noisiest N=64 cell
    (all-PFS naive policy) on the production fast path."""
    sim = Simulator(_scenario())
    sim.run(NaivePolicy())  # warm scenario state + noise RNG states
    benchmark.pedantic(sim.run, args=(NaivePolicy(),), rounds=3, iterations=1)


# -- cache-disabled epoch-major run_many (ISSUE 10) ------------------------

#: Peak-allocation bound (tracemalloc, MB) for the cache-disabled
#: N=1024 ``run_many``: ~one epoch's matrices (a 24 MB id permutation
#: plus the rolling size gather and band floats), NOT per-policy
#: copies. Measured ~77 MB; the bound carries allocator slack only.
RUN_MANY_UNCACHED_PEAK_MB = 160.0

#: Clairvoyant-stream lineup for the uncached tier: policies whose
#: prepare reads at most epoch 0 (no frequency scans), so the
#: permutation-build counter isolates the epoch-major loop.
RUN_MANY_POLICIES = ("naive", "staging_buffer", "pytorch")


def test_engine_run_many_uncached(report, monkeypatch):
    """N=1024 with the permutation cache off: E builds, one-epoch memory.

    ``REPRO_PERM_CACHE_MAX_ELEMENTS=0`` forces the paper-scale regime
    (no cached permutations) onto the tier. The epoch-major
    ``run_many`` must then materialize each epoch's permutation once
    for the whole policy lineup — ``perm_builds == E``, not
    ``E x policies`` (the pre-PR 10 cost) — derive each noise state
    once per (epoch, worker), and keep the traced peak near one
    epoch's matrices.
    """
    from repro.api import make_policy

    monkeypatch.setenv("REPRO_PERM_CACHE_MAX_ELEMENTS", "0")
    config = _paper_scenario()
    sim = Simulator(config, tile_rows=PAPER_SCALE_TILE_ROWS)
    assert not sim.ctx.cache_enabled
    policies = [make_policy(spec) for spec in RUN_MANY_POLICIES]

    tracemalloc.start()
    start = time.perf_counter()
    outcomes = sim.run_many_outcomes(policies)
    wall = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    peak_mb = peak / 2**20

    assert all(not isinstance(o, PolicyError) for o in outcomes)
    assert sim.ctx.perm_builds == config.num_epochs, (
        f"epoch-major run_many built {sim.ctx.perm_builds} permutations "
        f"for {len(policies)} policies; must be E={config.num_epochs}"
    )
    states = sim.plan_cache.noise_states
    expected_states = config.num_epochs * sim.ctx.num_workers
    assert states.derived == expected_states, (
        f"{states.derived} noise states derived; must be "
        f"N x E = {expected_states}"
    )
    assert peak_mb < RUN_MANY_UNCACHED_PEAK_MB, (
        f"uncached N={PAPER_SCALE_WORKERS} run_many peaked at "
        f"{peak_mb:.1f} MB; documented bound is "
        f"{RUN_MANY_UNCACHED_PEAK_MB:.0f} MB"
    )

    report(
        "engine_run_many_uncached",
        "\n".join(
            [
                f"scenario: N={PAPER_SCALE_WORKERS} workers, "
                f"F={config.dataset.num_samples:,} samples, "
                f"E={config.num_epochs} epochs, B={config.batch_size}, "
                f"permutation cache disabled",
                f"lineup: {', '.join(RUN_MANY_POLICIES)} "
                f"({len(policies)} policies, tile_rows="
                f"{PAPER_SCALE_TILE_ROWS})",
                f"wall: {wall:6.2f}s  "
                f"({len(policies) / wall:5.2f} cells/s)  "
                f"peak {peak_mb:6.1f} MB",
                f"permutations built: {sim.ctx.perm_builds} "
                f"(= E, shared across the lineup)",
                f"noise states: {states.derived} derived "
                f"(= N x E), {states.cloned} cloned",
            ]
        ),
    )


def test_engine_run_many_uncached_throughput(benchmark, monkeypatch):
    """Timing series for BENCH_engine.json: the cache-disabled N=1024
    lineup through one epoch-major ``run_many`` call."""
    from repro.api import make_policy

    monkeypatch.setenv("REPRO_PERM_CACHE_MAX_ELEMENTS", "0")
    config = _paper_scenario()
    sim = Simulator(config, tile_rows=PAPER_SCALE_TILE_ROWS)
    policies = [make_policy(spec) for spec in RUN_MANY_POLICIES]
    sim.run_many_outcomes(policies)  # warm the scenario state once
    benchmark.pedantic(
        lambda: sim.run_many_outcomes(policies), rounds=2, iterations=1
    )
