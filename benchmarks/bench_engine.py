"""Simulation-engine throughput: epoch-matrix kernels vs the seed loop.

Benchmarks the innermost hot path under every sweep cell — one
``Simulator.run`` — at two scales:

* **N=64** (the PR 5 acceptance scenario): the vectorized epoch-matrix
  engine must beat the retained scalar reference
  (``tests/sim/reference_engine.py``) while producing
  bitwise-identical results.
* **N=1024** (the paper-scale tier): a Sec 7-sized scenario —
  1024 workers over a multi-million-sample stream — must complete
  with streaming tiles (``tile_rows=PAPER_SCALE_TILE_ROWS``) under the
  documented peak-memory bound, bitwise-identical to the untiled run.

CI uploads the pytest-benchmark timings as ``BENCH_engine.json`` plus
the rendered comparisons; ``tools/bench_gate.py`` compares the timings
against ``benchmarks/baselines.json`` and fails the build on
regression.
"""

import json
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.datasets import DatasetModel  # noqa: E402
from repro.perfmodel import sec6_cluster  # noqa: E402
from repro.sim import (  # noqa: E402
    NaivePolicy,
    NoPFSPolicy,
    ScenarioContext,
    SimulationConfig,
    Simulator,
    StagingBufferPolicy,
)
from tests.sim.reference_engine import ReferenceSimulator  # noqa: E402

#: N >= 64 per the acceptance criterion: enough workers that per-worker
#: Python overhead (the seed engine's cost model) is the dominant term.
NUM_WORKERS = 64

#: The paper's headline scale (Sec 7: up to 1024 workers).
PAPER_SCALE_WORKERS = 1024
#: Streaming tile height for the paper-scale runs: 64-worker bands keep
#: every per-sample float matrix at ~1.5 MB while the untiled run
#: materializes ~25 MB per temporary.
PAPER_SCALE_TILE_ROWS = 64
#: Documented peak-allocation bound (tracemalloc, MB) for the tiled
#: N=1024 run. Measured ~134 MB (dominated by the policy's placement
#: lookups and the cached id permutations, not per-sample floats); the
#: untiled run peaks ~504 MB. The bound carries slack for allocator
#: variance across numpy versions, not for regressions.
PAPER_SCALE_TILED_PEAK_MB = 256.0


def _scenario(num_workers=NUM_WORKERS, batch=16, iterations=16, epochs=3, seed=5):
    num_samples = num_workers * batch * iterations
    dataset = DatasetModel("bench-engine", num_samples, 0.15, 0.02)
    return SimulationConfig(
        dataset=dataset,
        system=sec6_cluster(num_workers=num_workers),
        batch_size=batch,
        num_epochs=epochs,
        seed=seed,
    )


def _lineup():
    return [NaivePolicy(), StagingBufferPolicy(), NoPFSPolicy()]


def _time_engine(run_cell, policies, repeats=3):
    """Best-of-``repeats`` wall time to simulate the whole lineup."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for policy in policies:
            run_cell(policy)
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_speedup(report):
    """Epoch-matrix engine > scalar engine on an N=64 scenario, bitwise-equal."""
    config = _scenario()
    sim = Simulator(config)
    reference = ReferenceSimulator(config, ctx=sim.ctx)

    # Identical results come first; this also warms the shared context
    # (stream permutations, frequency counts) so the timed runs compare
    # engine arithmetic, not one-off scenario setup.
    for policy_new, policy_ref in zip(_lineup(), _lineup()):
        new = json.dumps(sim.run(policy_new).to_dict(), sort_keys=True)
        ref = json.dumps(reference.run(policy_ref).to_dict(), sort_keys=True)
        assert new == ref, f"engine results diverge for {policy_new.name}"

    new_s = _time_engine(sim.run, _lineup())
    old_s = _time_engine(reference.run, _lineup())
    speedup = old_s / new_s
    cells = len(_lineup())

    report(
        "engine",
        "\n".join(
            [
                f"scenario: N={NUM_WORKERS} workers, "
                f"F={config.dataset.num_samples} samples, "
                f"E={config.num_epochs} epochs, B={config.batch_size}",
                f"scalar reference: {old_s:7.3f}s  ({cells / old_s:6.2f} cells/s)",
                f"epoch-matrix:     {new_s:7.3f}s  ({cells / new_s:6.2f} cells/s)",
                f"speedup: {speedup:.2f}x (bitwise-identical results)",
            ]
        ),
    )
    assert speedup > 1.0, (
        f"vectorized engine ({new_s:.3f}s) must beat the scalar reference "
        f"({old_s:.3f}s) on an N={NUM_WORKERS} scenario"
    )


def test_engine_throughput(benchmark):
    """Timing series for BENCH_engine.json: one three-epoch N=64 cell."""
    sim = Simulator(_scenario())
    sim.run(NaivePolicy())  # warm the scenario state once
    benchmark.pedantic(sim.run, args=(NoPFSPolicy(),), rounds=3, iterations=1)


# -- paper scale (N=1024) --------------------------------------------------


def _paper_scenario():
    """A Sec 7-sized cell: N=1024 workers, ~3.1M samples, 2 epochs."""
    return _scenario(
        num_workers=PAPER_SCALE_WORKERS, batch=32, iterations=96, epochs=2
    )


def _traced_run(sim, policy):
    """(result, wall seconds, tracemalloc peak MB) of one engine run."""
    tracemalloc.start()
    start = time.perf_counter()
    result = sim.run(policy)
    wall = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, wall, peak / 2**20


def test_engine_paper_scale(report):
    """N=1024: tiled run is bitwise-equal to untiled and memory-bounded.

    Peak memory is measured with ``tracemalloc`` (it traces every numpy
    buffer and, unlike RSS, is deterministic across allocator reuse),
    after warming the shared scenario context so both runs are charged
    only for their own working set.
    """
    config = _paper_scenario()
    ctx = ScenarioContext(config)
    for epoch in range(config.num_epochs):
        ctx.epoch_matrix(epoch)

    untiled, untiled_s, untiled_mb = _traced_run(
        Simulator(config, ctx=ctx), NoPFSPolicy()
    )
    tiled, tiled_s, tiled_mb = _traced_run(
        Simulator(config, tile_rows=PAPER_SCALE_TILE_ROWS, ctx=ctx), NoPFSPolicy()
    )

    assert json.dumps(tiled.to_dict(), sort_keys=True) == json.dumps(
        untiled.to_dict(), sort_keys=True
    ), "tiled paper-scale run diverges from untiled execution"
    assert tiled_mb < PAPER_SCALE_TILED_PEAK_MB, (
        f"tiled N={PAPER_SCALE_WORKERS} run peaked at {tiled_mb:.1f} MB; "
        f"documented bound is {PAPER_SCALE_TILED_PEAK_MB:.0f} MB"
    )

    cells = config.num_epochs * config.iterations_per_epoch * ctx.num_workers
    report(
        "engine_paper_scale",
        "\n".join(
            [
                f"scenario: N={PAPER_SCALE_WORKERS} workers, "
                f"F={config.dataset.num_samples:,} samples, "
                f"E={config.num_epochs} epochs, B={config.batch_size}",
                f"untiled:              {untiled_s:6.2f}s  peak {untiled_mb:7.1f} MB",
                f"tiled (tile_rows={PAPER_SCALE_TILE_ROWS}):  "
                f"{tiled_s:6.2f}s  peak {tiled_mb:7.1f} MB",
                f"matrix cells/s (tiled): {cells / tiled_s:,.0f}",
                "results: bitwise-identical",
            ]
        ),
    )


def test_engine_paper_scale_throughput(benchmark):
    """Timing series for BENCH_engine.json: one tiled N=1024 cell."""
    config = _paper_scenario()
    sim = Simulator(config, tile_rows=PAPER_SCALE_TILE_ROWS)
    sim.run(NaivePolicy())  # warm the scenario state once
    benchmark.pedantic(sim.run, args=(NoPFSPolicy(),), rounds=2, iterations=1)
