"""Simulation-engine throughput: epoch-matrix kernels vs the seed loop.

Benchmarks the innermost hot path under every sweep cell — one
``Simulator.run`` — on a multi-worker scenario (N=64, the scale where
the seed engine's per-worker Python loop dominated wall-clock), and
asserts the PR 5 acceptance criterion: the vectorized epoch-matrix
engine beats the retained scalar reference
(``tests/sim/reference_engine.py``) while producing bitwise-identical
results. CI uploads the pytest-benchmark timings as
``BENCH_engine.json`` plus the rendered comparison.
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.datasets import DatasetModel  # noqa: E402
from repro.perfmodel import sec6_cluster  # noqa: E402
from repro.sim import (  # noqa: E402
    NaivePolicy,
    NoPFSPolicy,
    SimulationConfig,
    Simulator,
    StagingBufferPolicy,
)
from tests.sim.reference_engine import ReferenceSimulator  # noqa: E402

#: N >= 64 per the acceptance criterion: enough workers that per-worker
#: Python overhead (the seed engine's cost model) is the dominant term.
NUM_WORKERS = 64


def _scenario(num_workers=NUM_WORKERS, batch=16, iterations=16, epochs=3, seed=5):
    num_samples = num_workers * batch * iterations
    dataset = DatasetModel("bench-engine", num_samples, 0.15, 0.02)
    return SimulationConfig(
        dataset=dataset,
        system=sec6_cluster(num_workers=num_workers),
        batch_size=batch,
        num_epochs=epochs,
        seed=seed,
    )


def _lineup():
    return [NaivePolicy(), StagingBufferPolicy(), NoPFSPolicy()]


def _time_engine(run_cell, policies, repeats=3):
    """Best-of-``repeats`` wall time to simulate the whole lineup."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for policy in policies:
            run_cell(policy)
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_speedup(report):
    """Epoch-matrix engine > scalar engine on an N=64 scenario, bitwise-equal."""
    config = _scenario()
    sim = Simulator(config)
    reference = ReferenceSimulator(config, ctx=sim.ctx)

    # Identical results come first; this also warms the shared context
    # (stream permutations, frequency counts) so the timed runs compare
    # engine arithmetic, not one-off scenario setup.
    for policy_new, policy_ref in zip(_lineup(), _lineup()):
        new = json.dumps(sim.run(policy_new).to_dict(), sort_keys=True)
        ref = json.dumps(reference.run(policy_ref).to_dict(), sort_keys=True)
        assert new == ref, f"engine results diverge for {policy_new.name}"

    new_s = _time_engine(sim.run, _lineup())
    old_s = _time_engine(reference.run, _lineup())
    speedup = old_s / new_s
    cells = len(_lineup())

    report(
        "engine",
        "\n".join(
            [
                f"scenario: N={NUM_WORKERS} workers, "
                f"F={config.dataset.num_samples} samples, "
                f"E={config.num_epochs} epochs, B={config.batch_size}",
                f"scalar reference: {old_s:7.3f}s  ({cells / old_s:6.2f} cells/s)",
                f"epoch-matrix:     {new_s:7.3f}s  ({cells / new_s:6.2f} cells/s)",
                f"speedup: {speedup:.2f}x (bitwise-identical results)",
            ]
        ),
    )
    assert speedup > 1.0, (
        f"vectorized engine ({new_s:.3f}s) must beat the scalar reference "
        f"({old_s:.3f}s) on an N={NUM_WORKERS} scenario"
    )


def test_engine_throughput(benchmark):
    """Timing series for BENCH_engine.json: one three-epoch N=64 cell."""
    sim = Simulator(_scenario())
    sim.run(NaivePolicy())  # warm the scenario state once
    benchmark.pedantic(sim.run, args=(NoPFSPolicy(),), rounds=3, iterations=1)
