"""Figs 13-15: batch-size sweep, ImageNet-22k and CosmoFlow on Lassen."""

from repro.experiments import fig13, fig14, fig15


def test_fig13_batch_sizes(benchmark, report):
    """Fig 13: NoPFS faster at every batch size; PyTorch variance grows
    with batch size while NoPFS's stays roughly constant."""
    result = benchmark.pedantic(fig13.run, rounds=1, iterations=1)
    report("fig13", result.render())
    sizes = result.batch_sizes
    for b in sizes:
        assert result.stats[(b, "NoPFS")].p50 <= result.stats[(b, "PyTorch")].p50
    # PyTorch's tail spread widens with batch size more than NoPFS's.
    def spread(label, b):
        s = result.stats[(b, label)]
        return s.max - s.p50

    assert spread("PyTorch", sizes[-1]) > spread("PyTorch", sizes[0])
    assert spread("PyTorch", sizes[-1]) > spread("NoPFS", sizes[-1])


def test_fig14_imagenet22k(benchmark, report):
    """Fig 14: the many-samples dataset; paper headline 2.4x at 1024."""
    result = benchmark.pedantic(fig14.run, rounds=1, iterations=1)
    report("fig14", result.render())
    assert result.headline_speedup() > 1.5
    sweep = result.sweep
    top = sweep.gpu_counts[-1]
    assert sweep.median_epoch(top, "NoPFS") <= sweep.median_epoch(top, "No I/O") * 1.15


def test_fig15_cosmoflow(benchmark, report):
    """Fig 15: the many-bytes dataset; paper headline 2.1x at 1024.

    Also checks the paper's note that NoPFS "automatically takes
    advantage of SSDs to cache parts of the CosmoFlow dataset at small
    scale, when the aggregate node memory is insufficient".
    """
    result = benchmark.pedantic(fig15.run, rounds=1, iterations=1)
    report("fig15", result.render())
    assert result.headline_speedup() > 1.3
    assert result.nopfs_uses_local_cache()
