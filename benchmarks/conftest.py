"""Shared benchmark fixtures: rendered tables are saved next to timings.

Every benchmark regenerates one of the paper's tables/figures; besides
the pytest-benchmark timing, the rendered rows (measured next to the
paper's published values) are written to ``benchmarks/output/`` and
echoed so ``pytest benchmarks/ --benchmark-only -s`` shows them inline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture()
def report():
    """Save + echo a regenerated figure/table rendering."""

    def _report(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return _report
