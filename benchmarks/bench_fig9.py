"""Fig 9: the ImageNet-22k RAM x SSD design-space sweep."""

from repro.experiments import fig9


def test_fig9_design_space(benchmark, report):
    """30-cell storage sweep with the NoPFS policy at 5x compute.

    Shape assertions (the paper's Sec 6.2 conclusions):
    * runtime is monotone non-increasing in RAM at fixed SSD;
    * maximal storage beats no storage;
    * with maximal RAM, adding SSD barely matters;
    * with little RAM, SSD compensates substantially.
    """
    result = benchmark.pedantic(fig9.run, rounds=1, iterations=1)
    report("fig9", result.render())

    assert result.monotone_in_ram()
    assert result.times_s[(512, 1024)] <= result.times_s[(0, 0)]

    # Maxed RAM: SSD size becomes nearly irrelevant (<5% effect).
    maxed = [result.times_s[(512, s)] for s in result.ssd_gb]
    assert max(maxed) <= min(maxed) * 1.05

    # Low RAM: the largest SSD helps substantially (>5%).
    assert result.times_s[(32, 1024)] <= result.times_s[(32, 0)] * 0.95
