"""Fig 11 (epoch-0 batch times) and Fig 12 (NoPFS cache stats)."""

import pytest

from repro.experiments import fig11, fig12


def test_fig11_epoch0(benchmark, report):
    """Fig 11: in epoch 0 every loader reads the PFS, so the loaders are
    close; from epoch 1 NoPFS pulls away ("it is always the first epoch
    for a data loader")."""
    result = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    report("fig11", result.render())
    for gpus in result.gpu_counts:
        e0_gap = (
            result.epoch0[(gpus, "PyTorch")].p50
            / result.epoch0[(gpus, "NoPFS")].p50
        )
        warm_gap = (
            result.warm[(gpus, "PyTorch")].p50
            / result.warm[(gpus, "NoPFS")].p50
        )
        assert warm_gap >= e0_gap * 0.9
    # PyTorch warm epochs look like its epoch 0 (no caching).
    for gpus in result.gpu_counts:
        assert result.warm[(gpus, "PyTorch")].p50 == pytest.approx(
            result.epoch0[(gpus, "PyTorch")].p50, rel=0.35
        )


def test_fig12_cache_stats(benchmark, report):
    """Fig 12: stall time shrinks with scale; fetch shares include all
    three locations with the PFS share bounded by the cold epoch."""
    result = benchmark.pedantic(fig12.run, rounds=1, iterations=1)
    report("fig12", result.render())
    first, last = result.gpu_counts[0], result.gpu_counts[-1]
    assert result.stall_s[last] < result.stall_s[first]
    for gpus in result.gpu_counts:
        shares = result.shares[gpus]
        assert shares["local"] > 0.5  # warm epochs dominate bytes
        assert shares["remote"] > 0  # warm-up remote fetches present
        assert sum(shares.values()) == pytest.approx(1.0)
