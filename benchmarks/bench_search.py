"""Search-layer benchmark: branch-and-bound vs the exhaustive sweep.

The point of :mod:`repro.search` is evaluating strictly fewer cells
than the sweep it replaces while returning the same optimum. This
benchmark runs both on the Fig 8 policy lineup (ImageNet-1k on the
Sec 6 cluster, the same shape ``bench_sweep`` times) and asserts the
contract: identical incumbent, fewer evaluations, a non-zero pruned
count, and B&B wall-clock under the exhaustive sweep's.
"""

import time

from repro.api import Scenario, Session
from repro.search import Evaluator, SearchSpace, run_search


def _space() -> SearchSpace:
    # Piz Daint at paper-scale worker counts: the contended-PFS share
    # per worker is where the PFS floor separates cacheless policies
    # from caching ones — the regime the bound is built to prune (4 of
    # the 9 lineup policies go unevaluated here).
    base = Scenario(
        dataset="imagenet1k",
        system="piz_daint:256",
        policy="naive",
        batch_size=32,
        num_epochs=3,
        scale=0.1,
        seed=1,
    )
    return SearchSpace(base=base)


def test_search_bb_vs_exhaustive(benchmark, report):
    """B&B prunes cells the exhaustive Fig 8 sweep pays for."""
    space = _space()

    start = time.perf_counter()
    exhaustive_session = Session(jobs=1)
    candidates = list(space.candidates())
    objectives = Evaluator(exhaustive_session).evaluate_many(candidates)
    exhaustive_s = time.perf_counter() - start
    best_objective, best_fp = min(
        (objective, candidate.fingerprint())
        for objective, candidate in zip(objectives, candidates)
        if objective is not None
    )

    start = time.perf_counter()
    manifest = benchmark.pedantic(
        run_search,
        args=(space,),
        kwargs={"driver": "bb", "session": Session(jobs=1)},
        rounds=1,
        iterations=1,
    )
    bb_s = time.perf_counter() - start

    lines = [
        f"space:      {space.size()} candidates (Fig 8 lineup)",
        f"exhaustive: {space.size()} evaluated in {exhaustive_s:.2f}s",
        f"bb:         {manifest.stats.evaluations} evaluated in {bb_s:.2f}s | "
        f"{manifest.stats.render()}",
        f"speedup:    {exhaustive_s / bb_s:.2f}x",
    ]
    report("search_bb", "\n".join(lines))

    assert manifest.best is not None
    assert manifest.best.objective_s == best_objective
    assert manifest.best.fingerprint == best_fp
    assert manifest.stats.evaluations < space.size(), "B&B must evaluate fewer cells"
    assert manifest.stats.pruned_leaves > 0, "B&B must prune"
    assert bb_s < exhaustive_s, (
        f"B&B ({bb_s:.2f}s) should beat the exhaustive sweep ({exhaustive_s:.2f}s)"
    )
