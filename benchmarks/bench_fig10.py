"""Fig 10: ResNet-50/ImageNet-1k scaling on Piz Daint and Lassen."""

from repro.experiments import fig10


def test_fig10_piz_daint(benchmark, report):
    """Piz Daint sweep: PyTorch / DALI / NoPFS / no-I/O, 32-256 GPUs.

    Shape: NoPFS tracks the no-I/O bound and beats PyTorch by a growing
    factor (paper: 2.2x at 256 GPUs); PyTorch's epoch time flattens as
    Lustre saturates.
    """
    result = benchmark.pedantic(
        fig10.run, args=("piz_daint",), rounds=1, iterations=1
    )
    report("fig10_piz_daint", result.render())
    sweep = result.sweep
    top = sweep.gpu_counts[-1]
    assert sweep.speedup(top, "PyTorch") > 1.5
    assert sweep.speedup(top, "PyTorch") > sweep.speedup(sweep.gpu_counts[0], "PyTorch")
    assert sweep.median_epoch(top, "NoPFS") <= sweep.median_epoch(top, "No I/O") * 1.1


def test_fig10_lassen(benchmark, report):
    """Lassen sweep: PyTorch / LBANN / NoPFS / no-I/O.

    Shape: the PyTorch gap grows toward the paper's 5.4x; LBANN sits
    between PyTorch and NoPFS; NoPFS batch-time tails stay flat while
    PyTorch's explode (the violin-plot story).
    """
    result = benchmark.pedantic(fig10.run, args=("lassen",), rounds=1, iterations=1)
    report("fig10_lassen", result.render())
    sweep = result.sweep
    top = sweep.gpu_counts[-1]
    assert sweep.speedup(top, "PyTorch") > 2.0
    lbann = sweep.median_epoch(top, "LBANN")
    assert sweep.median_epoch(top, "NoPFS") <= lbann <= sweep.median_epoch(top, "PyTorch")
    pt = sweep.points[(top, "PyTorch")].batch_stats
    np_ = sweep.points[(top, "NoPFS")].batch_stats
    assert pt.max / pt.p50 > np_.max / np_.p50
