"""Ablation benches for the design choices DESIGN.md calls out.

Three ablations isolate NoPFS's ingredients on a D < S < ND scenario:

1. **Frequency-ranked placement** vs first-touch placement (LBANN-style
   single-owner caching) — the Sec 3.1 analysis at work.
2. **Deep staging lookahead** vs double-buffering depth — the finite-
   window tail-absorption effect.
3. **Remote fetches** vs local-only caching (sharding) — the
   distributed-memory tier's contribution (plus full-dataset access).
"""

from repro.datasets import imagenet22k
from repro.experiments.common import scaled_scenario
from repro.perfmodel import sec6_cluster
from repro.sim import (
    DoubleBufferPolicy,
    LBANNPolicy,
    NoPFSPolicy,
    ParallelStagingPolicy,
    Simulator,
    StagingBufferPolicy,
)


def scenario(scale=0.02, epochs=4):
    return scaled_scenario(
        imagenet22k(), sec6_cluster(), batch_size=32, num_epochs=epochs,
        scale=scale,
    )


def test_ablation_frequency_ranking(benchmark, report):
    """NoPFS's frequency-ranked multi-tier placement vs first-touch
    memory-only placement (LBANN dynamic) on ImageNet-1k, which fits
    aggregate RAM so both policies are supported."""
    from repro.datasets import imagenet1k

    config = scaled_scenario(
        imagenet1k(), sec6_cluster(), batch_size=32, num_epochs=4, scale=0.02
    )

    def run():
        sim = Simulator(config)
        return sim.run(NoPFSPolicy()), sim.run(LBANNPolicy("dynamic"))

    nopfs, lbann = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_frequency",
        f"NoPFS total:         {nopfs.total_time_s:9.2f} s\n"
        f"first-touch (LBANN): {lbann.total_time_s:9.2f} s",
    )
    assert nopfs.total_time_s <= lbann.total_time_s * 1.02


def test_ablation_lookahead_depth(benchmark, report):
    """Staging-buffer-deep lookahead vs 2-batch double buffering.

    Under PFS tail noise the deep buffer absorbs spikes the shallow one
    cannot; deeper must never be slower.
    """
    config = scenario()

    def run():
        sim = Simulator(config)
        deep = sim.run(StagingBufferPolicy())
        shallow = sim.run(DoubleBufferPolicy(2))
        return deep, shallow

    deep, shallow = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_lookahead",
        f"deep lookahead (staging-bytes): {deep.total_time_s:9.2f} s\n"
        f"double buffering (2 batches):   {shallow.total_time_s:9.2f} s",
    )
    assert deep.total_time_s <= shallow.total_time_s * 1.02


def test_ablation_remote_tier(benchmark, report):
    """Distributed caching vs local-only sharding: NoPFS keeps full
    randomized access and still matches or beats shard-only loading,
    which gives up dataset coverage."""
    config = scenario()

    def run():
        sim = Simulator(config)
        return sim.run(NoPFSPolicy()), sim.run(ParallelStagingPolicy())

    nopfs, sharding = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_remote",
        f"NoPFS (distributed caches): {nopfs.total_time_s:9.2f} s "
        f"(full dataset: {nopfs.accesses_full_dataset})\n"
        f"sharding (local only):      {sharding.total_time_s:9.2f} s "
        f"(full dataset: {sharding.accesses_full_dataset})",
    )
    assert nopfs.accesses_full_dataset
    assert not sharding.accesses_full_dataset


def test_microbench_core_primitives(benchmark, report):
    """Throughput microbenchmark of the vectorized core (stream
    generation + placement + a timed epoch) on a 1M-sample scenario."""
    config = scaled_scenario(
        imagenet22k(), sec6_cluster(), batch_size=32, num_epochs=2, scale=0.07
    )

    def run():
        return Simulator(config).run(NoPFSPolicy())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    n_samples = config.dataset.num_samples * config.num_epochs
    report(
        "microbench_core",
        f"simulated {n_samples:,} sample accesses "
        f"({config.dataset.num_samples:,} samples x {config.num_epochs} epochs)",
    )
    assert result.total_time_s > 0
