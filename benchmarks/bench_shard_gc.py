"""Shard planning, cache GC and incremental-render overheads.

Benchmarks the PR-2 layers around the sweep engine: how fast a grid
partitions (both strategies), how well the cost model balances shard
loads, what a GC pass over a warm cache costs, and the incremental
pipeline's skip path (a warm full re-render must be sweep-free).
"""

import tempfile
from pathlib import Path

from repro.datasets import imagenet1k, mnist
from repro.perfmodel import sec6_cluster
from repro.sim import NaivePolicy, NoPFSPolicy, StagingBufferPolicy
from repro.sweep import (
    ScenarioGrid,
    ShardPlanner,
    SweepRunner,
    cache_stats,
    collect_garbage,
    estimate_cell_cost,
    merge_caches,
)
from repro.sweep.cli import demo_grid


def test_shard_planning_throughput(benchmark, report):
    """Partitioning a grid must stay trivially cheap (no simulation)."""
    grid = ScenarioGrid(
        datasets=[mnist(0).scaled(0.2), imagenet1k(0).scaled(0.002)],
        systems=[sec6_cluster(num_workers=2), sec6_cluster(num_workers=4)],
        policies=[NaivePolicy(), StagingBufferPolicy(), NoPFSPolicy()],
        batch_sizes=[8, 16, 32, 64],
        epoch_counts=[2, 3],
        seeds=tuple(range(5)),
    )  # 480 cells
    plan = benchmark(lambda: ShardPlanner("cost").plan(grid, 8))
    loads = [sum(estimate_cell_cost(c) for c in shard) for shard in plan.shards]
    spread = max(loads) / max(min(loads), 1e-12)
    lines = [
        f"cost-plan of {len(grid)} cells into 8 shards",
        f"cells per shard: {plan.cell_counts()}",
        f"load spread (max/min): {spread:.3f}",
    ]
    assert spread < 1.5, "cost planner must roughly balance shard loads"
    report("shard_plan", "\n".join(lines))


def test_shard_merge_and_gc(benchmark, report):
    """Merge of two shard caches plus a bounding GC pass."""
    grid = demo_grid(scale=0.2)
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        for i in range(2):
            SweepRunner(n_jobs=1, cache_dir=tmp / f"s{i}").run_shard(grid, f"{i}/2")

        def merge_and_gc():
            dest = tempfile.mkdtemp(dir=tmp)
            merge_caches([tmp / "s0", tmp / "s1"], dest)
            stats = cache_stats(dest)
            gc = collect_garbage(dest, max_bytes=stats.total_bytes // 2)
            return stats, gc

        stats, gc = benchmark.pedantic(merge_and_gc, rounds=3, iterations=1)
        assert gc.kept_bytes <= stats.total_bytes // 2
        report(
            "shard_merge_gc",
            f"merged cache: {stats.entries} entries, {stats.total_bytes} bytes\n"
            f"{gc.render()}",
        )


def test_incremental_rerender_is_sweep_free(benchmark, report):
    """A warm artifact re-render performs zero simulations."""
    from repro.experiments.artifacts import run_incremental

    overrides = {"fig12": {"gpu_counts": (32,), "scale": 0.05, "num_epochs": 2}}
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        runner = SweepRunner(n_jobs=1, cache_dir=tmp / "cache")
        cold = run_incremental(
            tmp / "art", runner=runner, figures=["fig12"], overrides=overrides
        )
        warm = benchmark.pedantic(
            lambda: run_incremental(
                tmp / "art",
                runner=SweepRunner(n_jobs=1, cache_dir=tmp / "cache"),
                figures=["fig12"],
                overrides=overrides,
            ),
            rounds=3,
            iterations=1,
        )
        assert cold.recomputed == ("fig12",)
        assert warm.skipped == ("fig12",)
        assert warm.sweep_stats.cells == 0
        report(
            "incremental_rerender",
            f"cold: recomputed {cold.recomputed}, {cold.sweep_stats.render()}\n"
            f"warm: skipped {warm.skipped}, {warm.sweep_stats.render()}",
        )
