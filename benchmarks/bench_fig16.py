"""Fig 16: end-to-end ResNet-50/ImageNet-1k training on 256 GPUs."""

import numpy as np
import pytest

from repro.experiments import fig16, paper


def test_fig16_end_to_end(benchmark, report):
    """Full 90-epoch end-to-end comparison (regime-preserving scale).

    Shape: NoPFS compresses the identical learning curve in wall-clock
    (paper: 111 min -> 78 min, 1.42x) and reaches the same 76.5% top-1.
    """
    result = benchmark.pedantic(fig16.run, rounds=1, iterations=1)
    report("fig16", result.render())
    assert result.speedup > 1.1
    assert result.final_top1 == pytest.approx(paper.FIG16["final_top1"], abs=0.5)
    np.testing.assert_allclose(
        result.comparison.baseline.top1_at_epoch_end,
        result.comparison.contender.top1_at_epoch_end,
    )
    # NoPFS reaches 70% top-1 faster as well (time-to-accuracy speedup).
    assert result.comparison.speedup_to_accuracy(70.0) > 1.1
