"""Fig 8: the six-panel policy comparison across dataset-size regimes.

Each panel runs at a regime-preserving reduced scale (see
``repro.experiments.fig8.PANELS``); comparisons are time-over-lower-
bound ratios, which the scaling leaves invariant. Shape assertions
encode the paper's qualitative claims per panel.
"""

import pytest

from repro.experiments import fig8, paper


@pytest.mark.parametrize("panel", list(fig8.PANELS))
def test_fig8_panel(panel, benchmark, report):
    """One Fig 8 panel: nine policies plus the lower bound."""
    result = benchmark.pedantic(fig8.run, args=(panel,), rounds=1, iterations=1)
    report(f"fig8{panel}", result.render())

    # Everything at or above the lower bound; naive always worst.
    ratios = {
        name: result.measured_ratio(name) for name in result.results
    }
    assert all(r >= 1.0 - 1e-9 for r in ratios.values())
    assert max(ratios, key=ratios.get) == "naive"

    # NoPFS is the best *full-dataset* policy (within 8% of the min).
    # Shard-style baselines can edge it out in the over-capacity regimes
    # precisely because they "no longer access the entire dataset,
    # significantly impacting potential accuracy" (Sec 6.1).
    full = {
        name: r
        for name, r in ratios.items()
        if result.results[name].accesses_full_dataset
    }
    assert ratios["nopfs"] <= min(full.values()) * 1.08

    # The paper's support matrix: LBANN missing exactly where marked.
    expected_missing = set(paper.FIG8_UNSUPPORTED.get(panel, ()))
    assert set(result.unsupported) == expected_missing

    # Sharding-style policies skip data in the over-capacity regimes.
    if panel in ("d", "e", "f"):
        assert not result.results["parallel_staging"].accesses_full_dataset
        assert not result.results["deepio_opportunistic"].accesses_full_dataset
        assert result.results["nopfs"].accesses_full_dataset
