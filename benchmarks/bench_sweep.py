"""Sweep-engine throughput: executors, cold vs warm, serial vs parallel.

Benchmarks the :mod:`repro.sweep` layer itself on Fig 8-shaped grids
(the nine-policy lineup on ImageNet-1k), reporting simulation
throughput in grid cells per second, the executor comparison on a
multi-scenario grid (where ``batched`` amortizes worker spawn/pickle
overhead and shares one access-stream build per scenario instead of
one per cell), and the warm-cache hit rate (which should be 100%: a
repeated sweep performs zero re-simulations).
"""

import tempfile
import time

from repro.datasets import imagenet1k
from repro.experiments.common import policy_cells, scaled_scenario
from repro.perfmodel import sec6_cluster
from repro.api import fig8_lineup
from repro.sweep import SweepRunner


def _grid(seed: int = 1):
    config = scaled_scenario(
        imagenet1k(seed),
        sec6_cluster(),
        batch_size=32,
        num_epochs=3,
        scale=0.02,
        seed=seed,
    )
    return policy_cells(config, fig8_lineup())


def _multi_scenario_grid(n_scenarios: int = 6):
    """The batched executor's home turf: many policies x many scenarios.

    Two epochs keeps the per-cell simulation short relative to the
    access-stream build, which is exactly the overhead the executors
    differ on: ``process`` pays one build per cell (9 per scenario for
    the Fig 8 lineup), ``batched`` one per scenario.
    """
    cells = []
    for seed in range(1, n_scenarios + 1):
        config = scaled_scenario(
            imagenet1k(seed),
            sec6_cluster(),
            batch_size=32,
            num_epochs=2,
            scale=0.02,
            seed=seed,
        )
        cells.extend(
            policy_cells(config, fig8_lineup(), tag_fn=lambda p, s=seed: (s, p.name))
        )
    return cells


def test_executor_comparison(report):
    """serial vs process vs batched on a multi-policy scenario grid.

    The ISSUE 4 acceptance criterion: ``batched`` must beat ``process``
    here — the process executor rebuilds the scenario's access streams
    once per *cell* (9x per scenario for the Fig 8 lineup), batched
    once per *scenario batch*.
    """
    cells = _multi_scenario_grid()
    timings: dict[str, float] = {}
    outcomes = {}
    for executor, jobs in (("serial", 1), ("process", 2), ("batched", 2)):
        start = time.perf_counter()
        outcomes[executor] = SweepRunner(n_jobs=jobs, executor=executor).run(cells)
        timings[executor] = time.perf_counter() - start

    lines = [
        f"{name:8s} {timings[name]:7.2f}s  {outcomes[name].stats.render()}"
        for name in ("serial", "process", "batched")
    ]
    lines.append(
        f"batched vs process speedup: {timings['process'] / timings['batched']:.2f}x"
    )
    report("sweep_executors", "\n".join(lines))

    # Identical results are a hard invariant; the speedup is the point.
    serial = outcomes["serial"]
    for tag in serial.results:
        assert outcomes["process"][tag] == serial[tag], tag
        assert outcomes["batched"][tag] == serial[tag], tag
    assert timings["batched"] < timings["process"], (
        f"batched ({timings['batched']:.2f}s) should beat process "
        f"({timings['process']:.2f}s) on multi-policy scenario grids"
    )


def test_sweep_throughput(benchmark, report):
    """Cold serial sweep: the baseline cells/sec of the engine."""
    cells = _grid()
    outcome = benchmark.pedantic(
        SweepRunner(n_jobs=1).run, args=(cells,), rounds=1, iterations=1
    )
    lines = [f"serial cold:   {outcome.stats.render()}"]

    with tempfile.TemporaryDirectory() as tmp:
        cached = SweepRunner(n_jobs=1, cache_dir=tmp)
        cold = cached.run(cells)
        warm = cached.run(cells)
        lines.append(f"cached cold:   {cold.stats.render()}")
        lines.append(f"cached warm:   {warm.stats.render()}")
        assert warm.stats.misses == 0, "warm cache must not re-simulate"
        assert warm.stats.hit_rate == 1.0
        assert warm.stats.cells_per_sec > cold.stats.cells_per_sec

    parallel = SweepRunner(n_jobs=2).run(cells)
    lines.append(f"parallel cold: {parallel.stats.render()}")
    for tag, result in outcome.results.items():
        assert parallel.results[tag] == result, f"parallel result differs for {tag}"

    report("sweep", "\n".join(lines))
