"""Sweep-engine throughput: cells/sec cold vs warm, serial vs parallel.

Benchmarks the :mod:`repro.sweep` layer itself on a Fig 8-shaped grid
(the nine-policy lineup on ImageNet-1k), reporting simulation
throughput in grid cells per second, the parallel speedup, and the
warm-cache hit rate (which should be 100%: a repeated sweep performs
zero re-simulations).
"""

import tempfile

from repro.datasets import imagenet1k
from repro.experiments.common import policy_cells, scaled_scenario
from repro.perfmodel import sec6_cluster
from repro.api import fig8_lineup
from repro.sweep import SweepRunner


def _grid(seed: int = 1):
    config = scaled_scenario(
        imagenet1k(seed),
        sec6_cluster(),
        batch_size=32,
        num_epochs=3,
        scale=0.02,
        seed=seed,
    )
    return policy_cells(config, fig8_lineup())


def test_sweep_throughput(benchmark, report):
    """Cold serial sweep: the baseline cells/sec of the engine."""
    cells = _grid()
    outcome = benchmark.pedantic(
        SweepRunner(n_jobs=1).run, args=(cells,), rounds=1, iterations=1
    )
    lines = [f"serial cold:   {outcome.stats.render()}"]

    with tempfile.TemporaryDirectory() as tmp:
        cached = SweepRunner(n_jobs=1, cache_dir=tmp)
        cold = cached.run(cells)
        warm = cached.run(cells)
        lines.append(f"cached cold:   {cold.stats.render()}")
        lines.append(f"cached warm:   {warm.stats.render()}")
        assert warm.stats.misses == 0, "warm cache must not re-simulate"
        assert warm.stats.hit_rate == 1.0
        assert warm.stats.cells_per_sec > cold.stats.cells_per_sec

    parallel = SweepRunner(n_jobs=2).run(cells)
    lines.append(f"parallel cold: {parallel.stats.render()}")
    for tag, result in outcome.results.items():
        assert parallel.results[tag] == result, f"parallel result differs for {tag}"

    report("sweep", "\n".join(lines))
