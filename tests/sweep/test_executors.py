"""Executor protocol: serial/process/batched equivalence, events, failures."""

import dataclasses

import pytest

from repro.datasets import imagenet22k, mnist
from repro.errors import ConfigurationError
from repro.experiments.common import policy_cells, scaled_scenario
from repro.perfmodel import sec6_cluster
from repro.sim import LBANNPolicy, NaivePolicy, NoPFSPolicy, StagingBufferPolicy
from repro.sweep import (
    BatchedExecutor,
    CellCached,
    CellFinished,
    CellStarted,
    CellUnsupported,
    InMemoryBackend,
    SweepCell,
    SweepFinished,
    SweepRunner,
    SweepStarted,
    resolve_executor,
)
from repro.sweep.executors import CellTask


class ExplodingPolicy(NaivePolicy):
    """Simulates an unexpected (non-PolicyError) worker crash."""

    name = "exploding"

    def prepare(self, ctx):
        raise RuntimeError("boom")


POLICIES = [NaivePolicy(), StagingBufferPolicy(), NoPFSPolicy()]


@pytest.fixture(scope="module")
def config():
    return scaled_scenario(
        mnist(0).scaled(0.2), sec6_cluster(num_workers=2), batch_size=16, num_epochs=2
    )


@pytest.fixture(scope="module")
def multi_scenario_cells(config):
    """Two scenarios x three policies: exercises batching across configs."""
    other = dataclasses.replace(config, batch_size=32)
    return policy_cells(config, POLICIES) + policy_cells(
        other, POLICIES, tag_fn=lambda p: f"b32/{p.name}"
    )


class TestResolution:
    def test_default_serial_for_one_job(self):
        assert SweepRunner(n_jobs=1).executor.name == "serial"

    def test_default_batched_for_many_jobs(self):
        assert SweepRunner(n_jobs=2).executor.name == "batched"

    def test_explicit_name_wins_over_default(self):
        assert SweepRunner(n_jobs=4, executor="serial").executor.name == "serial"
        assert SweepRunner(n_jobs=1, executor="process").executor.name == "process"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            SweepRunner(n_jobs=2, executor="threads")

    def test_instance_passes_through(self):
        executor = BatchedExecutor(3)
        assert resolve_executor(executor, 8) is executor

    def test_custom_protocol_implementation_accepted(self):
        class EchoExecutor:
            name = "echo"
            in_process = True

            def execute(self, tasks, emit):
                return iter(())

        assert resolve_executor(EchoExecutor(), 1).name == "echo"

    def test_stats_report_executor_name(self, multi_scenario_cells):
        outcome = SweepRunner(n_jobs=2, executor="process").run(multi_scenario_cells[:1])
        assert outcome.stats.executor == "process"
        assert "executor=process" in outcome.stats.render()


class TestEquivalence:
    """ISSUE 4 acceptance: bitwise-identical results across executors."""

    def test_all_executors_bitwise_identical(self, multi_scenario_cells):
        serial = SweepRunner(n_jobs=1, executor="serial").run(multi_scenario_cells)
        process = SweepRunner(n_jobs=2, executor="process").run(multi_scenario_cells)
        batched = SweepRunner(n_jobs=2, executor="batched").run(multi_scenario_cells)
        assert serial.results.keys() == process.results.keys() == batched.results.keys()
        for tag in serial.results:
            assert serial[tag].to_json() == process[tag].to_json(), tag
            assert serial[tag].to_json() == batched[tag].to_json(), tag

    def test_executors_populate_interchangeable_caches(self, multi_scenario_cells):
        """Any executor's cache serves any other executor warm."""
        backend = InMemoryBackend()
        SweepRunner(n_jobs=2, executor="batched", cache=backend).run(multi_scenario_cells)
        warm = SweepRunner(n_jobs=1, executor="serial", cache=backend).run(
            multi_scenario_cells
        )
        assert warm.stats.misses == 0
        assert warm.stats.hits == len(multi_scenario_cells)

    def test_unsupported_cells_agree_across_executors(self):
        config = scaled_scenario(
            imagenet22k(0), sec6_cluster(), batch_size=32, num_epochs=2, scale=0.01
        )
        cells = [SweepCell(tag="lbann", config=config, policy=LBANNPolicy("dynamic"))]
        for executor in ("serial", "process", "batched"):
            outcome = SweepRunner(n_jobs=2, executor=executor).run(cells)
            assert outcome.unsupported == ("lbann",), executor
            assert outcome.errors["lbann"], executor


class TestBatching:
    def test_groups_by_scenario(self, multi_scenario_cells):
        tasks = [
            CellTask(index=i, cell=cell, config_dict=cell.config.to_dict())
            for i, cell in enumerate(multi_scenario_cells)
        ]
        batches = BatchedExecutor.group(tasks)
        assert [len(b) for b in batches] == [3, 3]  # one batch per scenario
        for batch in batches:
            configs = {id(t.cell.config) for t in batch}
            assert len(configs) == 1

    def test_equal_configs_share_a_batch_even_as_distinct_objects(self, config):
        clone = dataclasses.replace(config)  # equal content, different object
        cells = policy_cells(config, [NaivePolicy()]) + policy_cells(
            clone, [NoPFSPolicy()], tag_fn=lambda p: f"clone/{p.name}"
        )
        tasks = [
            CellTask(index=i, cell=cell, config_dict=cell.config.to_dict())
            for i, cell in enumerate(cells)
        ]
        assert [len(b) for b in BatchedExecutor.group(tasks)] == [2]

    def test_seed_replicas_fold_into_one_batch(self, config):
        """Cells differing only in SimulationConfig.seed share a batch."""
        cells = []
        for seed in (1, 2, 3):
            seeded = dataclasses.replace(config, seed=seed)
            cells += policy_cells(
                seeded, POLICIES, tag_fn=lambda p, s=seed: f"s{s}/{p.name}"
            )
        tasks = [
            CellTask(index=i, cell=cell, config_dict=cell.config.to_dict())
            for i, cell in enumerate(cells)
        ]
        assert [len(b) for b in BatchedExecutor.group(tasks)] == [9]

    def test_seed_folded_batch_bitwise_identical_to_serial(self, config):
        cells = []
        for seed in (1, 2, 3):
            seeded = dataclasses.replace(config, seed=seed)
            cells += policy_cells(
                seeded, POLICIES, tag_fn=lambda p, s=seed: f"s{s}/{p.name}"
            )
        serial = SweepRunner(n_jobs=1, executor="serial").run(cells)
        batched = SweepRunner(n_jobs=2, executor="batched").run(cells)
        assert serial.results.keys() == batched.results.keys()
        for tag in serial.results:
            assert serial[tag].to_json() == batched[tag].to_json(), tag

    def test_non_seed_differences_stay_separate(self, config):
        """Only the seed is stripped from the fingerprint."""
        other = dataclasses.replace(config, batch_size=32, seed=99)
        cells = policy_cells(config, [NaivePolicy()]) + policy_cells(
            other, [NaivePolicy()], tag_fn=lambda p: f"b32/{p.name}"
        )
        tasks = [
            CellTask(index=i, cell=cell, config_dict=cell.config.to_dict())
            for i, cell in enumerate(cells)
        ]
        assert [len(b) for b in BatchedExecutor.group(tasks)] == [1, 1]

    def test_execution_knobs_split_batches(self, config):
        """tile_rows / kernel_backend must be uniform within a batch."""
        cells = policy_cells(config, POLICIES)
        tasks = [
            CellTask(
                index=i,
                cell=cell,
                config_dict=cell.config.to_dict(),
                tile_rows=None if i == 0 else 8,
                kernel_backend=None if i < 2 else "numpy",
            )
            for i, cell in enumerate(cells)
        ]
        assert [len(b) for b in BatchedExecutor.group(tasks)] == [1, 1, 1]

    def test_crash_keeps_finished_cells_of_same_batch(self, config):
        """A mid-batch crash memoizes the batch's earlier cells."""
        backend = InMemoryBackend()
        good = policy_cells(config, POLICIES)
        bad = SweepCell(tag="boom", config=config, policy=ExplodingPolicy())
        with pytest.raises(RuntimeError, match="boom"):
            SweepRunner(n_jobs=2, executor="batched", cache=backend).run(good + [bad])
        warm = SweepRunner(n_jobs=2, executor="batched", cache=backend).run(good)
        assert warm.stats.misses == 0


class TestEvents:
    def _run_with_recorder(self, runner, cells):
        events = []
        unsubscribe = runner.bus.subscribe(events.append)
        outcome = runner.run(cells)
        unsubscribe()
        return outcome, events

    @pytest.mark.parametrize("executor", ["serial", "process", "batched"])
    def test_lifecycle_events_per_cell(self, multi_scenario_cells, executor):
        runner = SweepRunner(n_jobs=2, executor=executor)
        _, events = self._run_with_recorder(runner, multi_scenario_cells)
        n = len(multi_scenario_cells)
        assert isinstance(events[0], SweepStarted) and events[0].total == n
        assert isinstance(events[-1], SweepFinished)
        assert events[-1].stats.cells == n
        started = [e for e in events if isinstance(e, CellStarted)]
        finished = [e for e in events if isinstance(e, CellFinished)]
        assert len(started) == len(finished) == n
        tags = {cell.tag for cell in multi_scenario_cells}
        assert {e.tag for e in finished} == tags
        assert sorted(e.index for e in finished) == list(range(n))
        assert all(e.elapsed_s >= 0 for e in finished)

    def test_cache_hits_emit_cached_events(self, multi_scenario_cells):
        runner = SweepRunner(n_jobs=1, cache=InMemoryBackend())
        runner.run(multi_scenario_cells)
        _, events = self._run_with_recorder(runner, multi_scenario_cells)
        cached = [e for e in events if isinstance(e, CellCached)]
        assert len(cached) == len(multi_scenario_cells)
        assert all(e.supported for e in cached)
        assert not [e for e in events if isinstance(e, CellStarted)]

    def test_unsupported_emits_reason(self):
        config = scaled_scenario(
            imagenet22k(0), sec6_cluster(), batch_size=32, num_epochs=2, scale=0.01
        )
        cells = [SweepCell(tag="lbann", config=config, policy=LBANNPolicy("dynamic"))]
        runner = SweepRunner(n_jobs=1)
        _, events = self._run_with_recorder(runner, cells)
        unsupported = [e for e in events if isinstance(e, CellUnsupported)]
        assert len(unsupported) == 1
        assert unsupported[0].tag == "lbann" and unsupported[0].error

    def test_unsubscribe_stops_delivery(self, config):
        runner = SweepRunner(n_jobs=1)
        events = []
        unsubscribe = runner.bus.subscribe(events.append)
        unsubscribe()
        runner.run(policy_cells(config, [NaivePolicy()]))
        assert events == []


class TestPoolSemantics:
    """The historical process-pool guarantees hold for both pool executors."""

    @pytest.mark.parametrize("executor", ["process", "batched"])
    def test_worker_crash_raises_but_keeps_finished_cells(self, config, executor):
        backend = InMemoryBackend()
        good = policy_cells(config, POLICIES)
        bad = SweepCell(tag="boom", config=config, policy=ExplodingPolicy())
        with pytest.raises(RuntimeError, match="boom"):
            SweepRunner(n_jobs=2, executor=executor, cache=backend).run(good + [bad])
        warm = SweepRunner(n_jobs=2, executor=executor, cache=backend).run(good)
        assert warm.stats.misses == 0

    @pytest.mark.parametrize("executor", ["process", "batched"])
    def test_single_pending_cell_still_works(self, config, executor):
        outcome = SweepRunner(n_jobs=4, executor=executor).run(
            policy_cells(config, [NoPFSPolicy()])
        )
        assert outcome["nopfs"].policy == "nopfs"

    @pytest.mark.parametrize("executor_cls", [BatchedExecutor], ids=["batched"])
    def test_generator_close_mid_drain_is_clean(self, config, executor_cls):
        """A consumer abandoning the drain (it raised between results)
        must close the executor generator without 'generator ignored
        GeneratorExit' noise or a hang."""
        other = dataclasses.replace(config, batch_size=32)
        cells = policy_cells(config, POLICIES) + policy_cells(
            other, POLICIES, tag_fn=lambda p: f"b32/{p.name}"
        )
        tasks = [
            CellTask(index=i, cell=cell, config_dict=cell.config.to_dict())
            for i, cell in enumerate(cells)
        ]
        iterator = executor_cls(2).execute(tasks, lambda event: None)
        next(iterator)
        iterator.close()  # raises RuntimeError if GeneratorExit is swallowed
