"""CacheBackend protocol: both implementations, specs, lifecycle interop.

The corruption-quarantine / hit-stat / stale-tmp behaviours are
exercised *through the protocol* (parametrized over both backends), not
just against the concrete dir layout — the contract a remote backend
must satisfy to plug in.
"""

import os
import time

import pytest

from repro.datasets import mnist
from repro.errors import ConfigurationError
from repro.experiments.common import scaled_scenario
from repro.perfmodel import sec6_cluster
from repro.sim import NoPFSPolicy, Simulator
from repro.sweep import (
    CacheBackend,
    CachedOutcome,
    CacheIndex,
    InMemoryBackend,
    LocalDirBackend,
    ResultCache,
    SweepRunner,
    cache_stats,
    cell_key,
    collect_garbage,
    memory_backend,
    merge_caches,
    parse_cache_spec,
    scan_entries,
    verify_cache,
)
from repro.sweep.cli import demo_grid


@pytest.fixture(params=["dir", "mem"])
def backend(request, tmp_path):
    """One instance of each protocol implementation."""
    if request.param == "dir":
        b = LocalDirBackend(tmp_path / "cache")
        b.prepare()
        return b
    return InMemoryBackend()


@pytest.fixture(scope="module")
def config():
    return scaled_scenario(
        mnist(0).scaled(0.2), sec6_cluster(num_workers=2), batch_size=16, num_epochs=2
    )


@pytest.fixture(scope="module")
def result(config):
    return Simulator(config).run(NoPFSPolicy())


KEY_A = "ab" * 32
KEY_B = "cd" * 32


class TestProtocolContract:
    """Semantics every CacheBackend implementation must share."""

    def test_read_write_roundtrip(self, backend):
        assert backend.read(KEY_A) is None
        backend.write(KEY_A, '{"x": 1}')
        assert backend.read(KEY_A) == '{"x": 1}'
        assert list(backend.keys()) == [KEY_A]

    def test_stat_and_touch_drive_the_lru_clock(self, backend):
        backend.write(KEY_A, "{}", mtime_ns=1_000_000_000)
        stat = backend.stat(KEY_A)
        assert stat is not None and stat.mtime == pytest.approx(1.0)
        backend.touch(KEY_A)
        assert backend.stat(KEY_A).mtime > 1.0
        assert backend.stat(KEY_B) is None

    def test_write_pins_mtime_ns_exactly(self, backend):
        stamp = 1_234_567_890_123_456_789
        backend.write(KEY_A, "{}", mtime_ns=stamp)
        assert backend.stat(KEY_A).mtime_ns == stamp

    def test_delete(self, backend):
        backend.write(KEY_A, "{}")
        assert backend.delete(KEY_A) is True
        assert backend.delete(KEY_A) is False
        assert backend.read(KEY_A) is None

    def test_quarantine_hides_entry_but_counts_it(self, backend):
        backend.write(KEY_A, "{truncated")
        assert backend.quarantine(KEY_A) is True
        assert backend.read(KEY_A) is None
        assert list(backend.keys()) == []
        assert backend.quarantined() == 1
        assert backend.quarantine_label()

    def test_index_document_roundtrip(self, backend):
        assert backend.read_index() is None
        backend.write_index('{"hits": {}}')
        assert backend.read_index() == '{"hits": {}}'

    def test_same_store_identity(self, backend):
        assert backend.same_store(backend)
        assert not backend.same_store(InMemoryBackend())

    def test_protocol_isinstance(self, backend):
        assert isinstance(backend, CacheBackend)


class TestResultCacheOverProtocol:
    """ResultCache semantics exercised through either backend."""

    def test_miss_then_hit(self, backend, config, result):
        cache = ResultCache(backend)
        key = cell_key(config, NoPFSPolicy())
        assert cache.get(key) is None
        cache.put(key, CachedOutcome(result=result, error=None))
        got = cache.get(key)
        assert got is not None and got.supported
        assert got.result == result

    def test_corruption_quarantines_through_protocol(self, backend, result):
        cache = ResultCache(backend)
        cache.put(KEY_A, CachedOutcome(result=result, error=None))
        backend.write(KEY_A, "{truncated")  # simulate a torn write
        assert cache.get(KEY_A) is None  # miss, not a crash
        assert backend.quarantined() == 1
        assert cache.count() == 0

    def test_hit_stats_flush_through_protocol(self, backend, result):
        cache = ResultCache(backend)
        cache.put(KEY_A, CachedOutcome(result=result, error=None))
        cache.get(KEY_A)
        cache.get(KEY_A)
        cache.flush_hit_stats()
        assert CacheIndex(backend).hits == {KEY_A: 2}
        # flushing again is a no-op (counters cleared on success)
        cache.flush_hit_stats()
        assert CacheIndex(backend).hits == {KEY_A: 2}

    def test_gc_lifecycle_through_protocol(self, backend, result):
        cache = ResultCache(backend)
        for i, key in enumerate((KEY_A, KEY_B)):
            cache.put(key, CachedOutcome(result=result, error=None))
            backend.write(key, backend.read(key), mtime_ns=(i + 1) * 10**9)
        entries = scan_entries(backend)
        assert [e.key for e in entries] == [KEY_A, KEY_B]  # LRU order
        report = collect_garbage(backend, max_bytes=entries[-1].size_bytes)
        assert report.evicted == (entries[0].key,)  # LRU first
        assert cache_stats(backend).entries == 1

    def test_verify_through_protocol(self, backend, result):
        cache = ResultCache(backend)
        cache.put(KEY_A, CachedOutcome(result=result, error=None))
        backend.write(KEY_B, '{"neither": true}')
        report = verify_cache(backend)
        assert report.checked == 2 and report.ok == 1
        assert len(report.corrupt) == 1
        assert backend.quarantined() == 1

    def test_path_for_only_on_dir_backends(self, backend):
        cache = ResultCache(backend)
        if isinstance(backend, LocalDirBackend):
            assert cache.path_for(KEY_A).name == f"{KEY_A}.json"
            assert cache.root == backend.root
        else:
            with pytest.raises(ConfigurationError, match="dir:"):
                cache.path_for(KEY_A)
            assert cache.root is None


class TestStaleTmpSweep:
    def test_prepare_sweeps_old_tmp_but_keeps_fresh(self, tmp_path):
        root = tmp_path / "cache"
        backend = LocalDirBackend(root)
        backend.prepare()
        shard = root / "ab"
        shard.mkdir()
        stale = shard / "dead.tmp"
        stale.write_text("")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        fresh = shard / "live.tmp"
        fresh.write_text("")
        LocalDirBackend(root).prepare()  # a new writer starting up
        assert not stale.exists()
        assert fresh.exists()  # a concurrent writer's in-flight file survives

    def test_prepare_runs_via_result_cache_construction(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        stale = root / "dead.tmp"
        stale.write_text("")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        ResultCache(root)
        assert not stale.exists()


class TestSpecs:
    def test_dir_spec(self, tmp_path):
        backend = parse_cache_spec(f"dir:{tmp_path}/c")
        assert isinstance(backend, LocalDirBackend)
        assert backend.url == f"dir:{tmp_path}/c"

    def test_bare_path_is_a_dir(self, tmp_path):
        assert isinstance(parse_cache_spec(str(tmp_path)), LocalDirBackend)
        assert isinstance(parse_cache_spec(tmp_path), LocalDirBackend)

    def test_mem_spec_fresh_each_time(self):
        assert parse_cache_spec("mem:") is not parse_cache_spec("mem:")

    def test_named_mem_spec_is_shared(self):
        a = parse_cache_spec("mem:shared-spec-test")
        assert parse_cache_spec("mem:shared-spec-test") is a
        assert memory_backend("shared-spec-test") is a

    def test_backend_instance_passes_through(self):
        backend = InMemoryBackend()
        assert parse_cache_spec(backend) is backend

    def test_single_letter_scheme_is_a_path(self):
        # Windows drive spellings must stay directories.
        assert isinstance(parse_cache_spec("c:cache"), LocalDirBackend)

    def test_empty_and_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_cache_spec("")
        with pytest.raises(ConfigurationError):
            parse_cache_spec("dir:")
        with pytest.raises(ConfigurationError):
            parse_cache_spec(42)

    def test_unknown_scheme_fails_loudly(self):
        # A typo'd or unregistered scheme must not become a junk local
        # directory named "men:shared".
        with pytest.raises(ConfigurationError, match="unknown cache backend scheme"):
            parse_cache_spec("men:shared")
        with pytest.raises(ConfigurationError, match="known: dir, mem"):
            parse_cache_spec("s3:bucket")
        # non-scheme-shaped strings are still plain paths
        assert isinstance(parse_cache_spec("./cache:v2/x"), LocalDirBackend)

    def test_runner_accepts_spec_and_backend(self, tmp_path):
        assert SweepRunner(cache="mem:").cache is not None
        assert SweepRunner(cache=InMemoryBackend()).cache is not None
        assert SweepRunner(cache_dir=tmp_path / "c").cache.root == tmp_path / "c"
        with pytest.raises(ConfigurationError, match="not both"):
            SweepRunner(cache="mem:", cache_dir=tmp_path)


class TestMergeAcrossBackends:
    def test_mem_to_dir_merge_serves_warm(self, tmp_path):
        mem = InMemoryBackend()
        SweepRunner(n_jobs=1, cache=mem).run(demo_grid(scale=0.2))
        dest = tmp_path / "merged"
        report = merge_caches([mem], dest)
        assert report.copied == 6
        warm = SweepRunner(n_jobs=1, cache_dir=dest).run(demo_grid(scale=0.2))
        assert warm.stats.misses == 0

    def test_dir_to_mem_merge_serves_warm(self, tmp_path):
        src = tmp_path / "src"
        SweepRunner(n_jobs=1, cache_dir=src).run(demo_grid(scale=0.2))
        mem = InMemoryBackend()
        merge_caches([src], mem)
        warm = SweepRunner(n_jobs=1, cache=mem).run(demo_grid(scale=0.2))
        assert warm.stats.misses == 0

    def test_merge_preserves_entry_bytes_and_recency(self, tmp_path):
        src = tmp_path / "src"
        SweepRunner(n_jobs=1, cache_dir=src).run(demo_grid(scale=0.2))
        src_backend = LocalDirBackend(src)
        mem = InMemoryBackend()
        merge_caches([src_backend], mem)
        for key in src_backend.keys():
            assert mem.read(key) == src_backend.read(key)
            assert mem.stat(key).mtime_ns == src_backend.stat(key).mtime_ns

    def test_merge_skips_same_store_and_folds_hits(self, tmp_path):
        src = tmp_path / "src"
        runner = SweepRunner(n_jobs=1, cache_dir=src)
        runner.run(demo_grid(scale=0.2))
        runner.run(demo_grid(scale=0.2))  # record hits into the index
        mem = InMemoryBackend()
        merge_caches([src, src], mem)  # duplicate source: second pass skips
        assert sum(1 for _ in mem.keys()) == 6
        assert sum(CacheIndex(mem).hits.values()) == 6
        # merging a store into itself copies nothing
        report = merge_caches([src], src)
        assert report.copied == 0

    def test_missing_dir_source_still_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a directory"):
            merge_caches([tmp_path / "nope"], tmp_path / "dest")


class TestRunnerOverMemBackend:
    def test_warm_sweep_without_disk(self):
        runner = SweepRunner(n_jobs=1, cache="mem:")
        cold = runner.run(demo_grid(scale=0.2))
        warm = runner.run(demo_grid(scale=0.2))
        assert cold.stats.misses == 6
        assert warm.stats.misses == 0 and warm.stats.hits == 6

    def test_corrupt_mem_entry_resimulates(self):
        backend = InMemoryBackend()
        runner = SweepRunner(n_jobs=1, cache=backend)
        grid = demo_grid(scale=0.2)
        runner.run(grid)
        victim = next(iter(backend.keys()))
        backend.write(victim, "{torn")
        outcome = SweepRunner(n_jobs=1, cache=backend).run(grid)
        assert outcome.stats.misses == 1 and outcome.stats.hits == 5
        assert backend.quarantined() == 1
        warm = SweepRunner(n_jobs=1, cache=backend).run(grid)
        assert warm.stats.misses == 0
