"""The experiment layer composes on the sweep engine.

Covers the acceptance criteria: figures run their grids through
``repro.sweep``, a warm cache performs zero re-simulations, and a
2-process sweep matches the serial path bitwise.
"""

import pytest

from repro.experiments import fig8, fig9, paper
from repro.sweep import SweepRunner

FIG9_SMALL = dict(scale=0.005, ram_gb=(0, 256), ssd_gb=(0, 1024), num_epochs=2)


class TestFigureGrids:
    def test_fig8_declares_its_grid(self):
        cells = fig8.cells("a", scale=0.5)
        from repro.api import fig8_lineup

        assert [c.tag for c in cells] == [p.name for p in fig8_lineup()]
        assert all(c.config.dataset.name.startswith("mnist") for c in cells)

    def test_fig9_declares_its_grid(self):
        cells = fig9.cells(**FIG9_SMALL)
        assert [c.tag for c in cells] == [(0, 0), (0, 1024), (256, 0), (256, 1024)]

    def test_fig8_warm_cache_skips_simulation(self, tmp_path):
        runner = SweepRunner(n_jobs=1, cache_dir=tmp_path)
        cold = fig8.run("a", scale=0.5, runner=runner)
        warm = fig8.run("a", scale=0.5, runner=runner)
        assert runner.lifetime.misses == len(fig8.cells("a"))
        assert runner.lifetime.hits == len(fig8.cells("a"))
        assert warm.results == cold.results
        assert warm.unsupported == cold.unsupported

    def test_fig9_serial_parallel_identical(self, tmp_path):
        serial = fig9.run(**FIG9_SMALL)
        parallel = fig9.run(**FIG9_SMALL, runner=SweepRunner(n_jobs=2))
        assert serial.times_s == parallel.times_s
        assert serial.lower_bound_s == parallel.lower_bound_s


class TestPaperDriver:
    FIGS = ["fig9", "fig12"]
    OVERRIDES = {
        "fig9": FIG9_SMALL,
        "fig12": dict(gpu_counts=(32,), scale=0.05, num_epochs=2),
    }

    def test_warm_cache_performs_zero_resimulations(self, tmp_path):
        cold_runner = SweepRunner(n_jobs=1, cache_dir=tmp_path)
        cold = paper.run_figures(
            runner=cold_runner, figures=self.FIGS, overrides=self.OVERRIDES
        )
        assert cold.sweep_stats.misses == cold.sweep_stats.cells > 0

        warm_runner = SweepRunner(n_jobs=2, cache_dir=tmp_path)
        warm = paper.run_figures(
            runner=warm_runner, figures=self.FIGS, overrides=self.OVERRIDES
        )
        assert warm.sweep_stats.misses == 0
        assert warm.sweep_stats.hits == cold.sweep_stats.cells

        # Cached results reproduce the cold run exactly.
        assert warm.results["fig9"].times_s == cold.results["fig9"].times_s
        assert warm.results["fig12"].stall_s == cold.results["fig12"].stall_s

    def test_render_includes_sweep_stats(self, tmp_path):
        run = paper.run_figures(
            runner=SweepRunner(n_jobs=1, cache_dir=tmp_path),
            figures=["fig12"],
            overrides=self.OVERRIDES,
        )
        out = run.render()
        assert "=== fig12 ===" in out and "=== sweep ===" in out
        assert "hit rate" in out

    def test_unknown_figure_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown figures"):
            paper.run_figures(figures=["fig99"])

    def test_misspelled_override_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="overrides for unknown"):
            paper.run_figures(figures=["fig12"], overrides={"fig_12": {"scale": 0.1}})

    def test_unknown_profile_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="profile"):
            paper.run_figures(profile="huge")
