"""SweepRunner: caching, parallelism, unsupported cells, stats."""

import pytest

from repro.datasets import imagenet22k, mnist
from repro.errors import ConfigurationError
from repro.experiments.common import policy_cells, scaled_scenario
from repro.perfmodel import sec6_cluster
from repro.sim import LBANNPolicy, NaivePolicy, NoPFSPolicy, StagingBufferPolicy
from repro.sweep import InMemoryBackend, SweepCell, SweepRunner


class ExplodingPolicy(NaivePolicy):
    """Simulates an unexpected (non-PolicyError) worker crash."""

    name = "exploding"

    def prepare(self, ctx):
        raise RuntimeError("boom")


@pytest.fixture(scope="module")
def config():
    return scaled_scenario(
        mnist(0).scaled(0.2), sec6_cluster(num_workers=2), batch_size=16, num_epochs=2
    )


@pytest.fixture(scope="module")
def cells(config):
    return policy_cells(config, [NaivePolicy(), StagingBufferPolicy(), NoPFSPolicy()])


class TestSerial:
    def test_results_indexed_by_tag(self, cells):
        outcome = SweepRunner(n_jobs=1).run(cells)
        assert set(outcome.results) == {"naive", "staging_buffer", "nopfs"}
        assert outcome["nopfs"].policy == "nopfs"
        assert len(outcome) == 3

    def test_matches_direct_simulation(self, config, cells):
        from repro.sim import Simulator

        outcome = SweepRunner(n_jobs=1).run(cells)
        direct = Simulator(config).run(NoPFSPolicy())
        assert outcome["nopfs"] == direct

    def test_stats_without_cache(self, cells):
        stats = SweepRunner(n_jobs=1).run(cells).stats
        assert stats.cells == 3
        assert stats.hits == 0 and stats.misses == 3
        assert stats.hit_rate == 0.0
        assert stats.cells_per_sec > 0
        assert "3 cells" in stats.render()


class TestCacheBehaviour:
    def test_second_run_all_hits_identical_results(self, cells):
        runner = SweepRunner(n_jobs=1, cache=InMemoryBackend())
        cold = runner.run(cells)
        warm = runner.run(cells)
        assert cold.stats.misses == len(cells) and cold.stats.hits == 0
        assert warm.stats.misses == 0 and warm.stats.hits == len(cells)
        assert warm.results == cold.results

    def test_cache_shared_between_runners(self, tmp_path, cells):
        SweepRunner(n_jobs=1, cache_dir=tmp_path).run(cells)
        warm = SweepRunner(n_jobs=1, cache_dir=tmp_path).run(cells)
        assert warm.stats.misses == 0

    def test_config_change_misses(self, config, cells):
        import dataclasses

        runner = SweepRunner(n_jobs=1, cache=InMemoryBackend())
        runner.run(cells)
        other = dataclasses.replace(config, num_epochs=3)
        outcome = runner.run(policy_cells(other, [NoPFSPolicy()]))
        assert outcome.stats.misses == 1

    def test_lifetime_accumulates(self, cells):
        runner = SweepRunner(n_jobs=1, cache=InMemoryBackend())
        runner.run(cells)
        runner.run(cells)
        assert runner.lifetime.cells == 2 * len(cells)
        assert runner.lifetime.hits == len(cells)
        assert runner.lifetime.misses == len(cells)


class TestParallel:
    def test_parallel_bitwise_identical_to_serial(self, cells):
        serial = SweepRunner(n_jobs=1).run(cells)
        parallel = SweepRunner(n_jobs=2).run(cells)
        assert serial.results.keys() == parallel.results.keys()
        for tag in serial.results:
            assert serial[tag] == parallel[tag], tag

    def test_parallel_batch_durations_identical(self, config):
        """Raw durations (excluded from dataclass eq) match exactly too."""
        import dataclasses

        import numpy as np

        cfg = dataclasses.replace(config, record_batch_times=True)
        cells = policy_cells(cfg, [NaivePolicy(), NoPFSPolicy()])
        serial = SweepRunner(n_jobs=1).run(cells)
        parallel = SweepRunner(n_jobs=2).run(cells)
        for tag in serial.results:
            for a, b in zip(serial[tag].epochs, parallel[tag].epochs):
                np.testing.assert_array_equal(a.batch_durations, b.batch_durations)

    def test_parallel_populates_cache_for_serial(self, cells):
        backend = InMemoryBackend()
        SweepRunner(n_jobs=2, cache=backend).run(cells)
        warm = SweepRunner(n_jobs=1, cache=backend).run(cells)
        assert warm.stats.misses == 0

    def test_n_jobs_validation(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(n_jobs=0)
        assert SweepRunner(n_jobs=None).n_jobs >= 1

    def test_worker_crash_raises_but_keeps_finished_cells(self, cells, config):
        """Unexpected failures propagate; completed cells stay memoized."""
        backend = InMemoryBackend()
        bad = SweepCell(tag="boom", config=config, policy=ExplodingPolicy())
        with pytest.raises(RuntimeError, match="boom"):
            SweepRunner(n_jobs=2, cache=backend).run(list(cells) + [bad])
        # The good cells were queued ahead of the crashing one, so their
        # results were written before the error surfaced.
        warm = SweepRunner(n_jobs=2, cache=backend).run(cells)
        assert warm.stats.misses == 0


class TestUnsupported:
    @pytest.fixture(scope="class")
    def lbann_cell(self):
        # ImageNet-22k far exceeds aggregate RAM at this scale: LBANN
        # (in-memory sharding) must refuse, as in Fig 8d.
        config = scaled_scenario(
            imagenet22k(0), sec6_cluster(), batch_size=32, num_epochs=2, scale=0.01
        )
        return SweepCell(tag="lbann", config=config, policy=LBANNPolicy("dynamic"))

    def test_unsupported_reported_not_raised(self, lbann_cell):
        outcome = SweepRunner(n_jobs=1).run([lbann_cell])
        assert outcome.unsupported == ("lbann",)
        assert outcome.get("lbann") is None
        assert "lbann" not in outcome

    def test_unsupported_reason_recorded(self, lbann_cell):
        outcome = SweepRunner(n_jobs=1).run([lbann_cell])
        assert outcome.errors["lbann"]  # the PolicyError message survives

    def test_unsupported_is_cached(self, lbann_cell):
        runner = SweepRunner(n_jobs=1, cache=InMemoryBackend())
        runner.run([lbann_cell])
        warm = runner.run([lbann_cell])
        assert warm.stats.misses == 0
        assert warm.unsupported == ("lbann",)

    def test_require_supported_raises_loudly(self, lbann_cell):
        from repro.errors import PolicyError
        from repro.experiments.common import require_supported

        outcome = SweepRunner(n_jobs=1).run([lbann_cell])
        with pytest.raises(PolicyError, match="fig-test.*lbann"):
            require_supported(outcome, "fig-test")


class TestKernelBackend:
    def test_unknown_backend_fails_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            SweepRunner(n_jobs=1, kernel_backend="nunba")

    def test_backend_results_bitwise_identical(self, cells):
        default = SweepRunner(n_jobs=1).run(cells)
        explicit = SweepRunner(n_jobs=1, kernel_backend="numpy").run(cells)
        for tag in default.results:
            assert default[tag].to_json() == explicit[tag].to_json(), tag

    def test_backend_switch_keeps_cache_warm(self, cells):
        """The backend stays out of cache keys: warm across backends."""
        backend = InMemoryBackend()
        SweepRunner(n_jobs=1, cache=backend).run(cells)
        warm = SweepRunner(n_jobs=1, cache=backend, kernel_backend="numpy").run(cells)
        assert warm.stats.misses == 0


class TestHitStatsFlush:
    def test_hit_counters_survive_mid_sweep_crash(self, cells, config):
        """ISSUE 9 regression: the flush lives in a finally block.

        A sweep that serves cache hits and then dies in the executor
        must still fold those hits into the backend's index — before
        the fix they evaporated with the exception.
        """
        from repro.sweep.gc import CacheIndex

        backend = InMemoryBackend()
        runner = SweepRunner(n_jobs=1, cache=backend)
        runner.run(cells)  # populate
        bad = SweepCell(tag="boom", config=config, policy=ExplodingPolicy())
        with pytest.raises(RuntimeError, match="boom"):
            runner.run(list(cells) + [bad])
        # The cached cells' hits were flushed despite the crash...
        assert sum(CacheIndex(backend).hits.values()) == len(cells)
        # ...and the session counters were drained, not re-counted later.
        assert runner.cache._session_hits == {}


class TestIncrementalWriteback:
    def test_partial_parallel_run_keeps_finished_cells(self, cells, config):
        """Cells completed before an abort stay cached.

        Simulated by running a subset first (as an interrupted sweep
        would have persisted), then the full grid: only the remainder
        may miss.
        """
        runner = SweepRunner(n_jobs=2, cache=InMemoryBackend())
        runner.run(cells[:2])
        full = runner.run(cells)
        assert full.stats.hits == 2
        assert full.stats.misses == len(cells) - 2
