"""Cache lifecycle: index, stats, LRU GC, verify/quarantine, corruption."""

import os
import time

import pytest

from repro.errors import ConfigurationError
from repro.sweep import (
    QUARANTINE_DIR,
    CacheIndex,
    ResultCache,
    SweepRunner,
    cache_stats,
    collect_garbage,
    scan_entries,
    verify_cache,
)
from repro.sweep.cli import demo_grid, parse_bytes, parse_duration


@pytest.fixture()
def warm_cache(tmp_path):
    """A cache holding the demo grid's six entries."""
    root = tmp_path / "cache"
    runner = SweepRunner(n_jobs=1, cache_dir=root)
    runner.run(demo_grid(scale=0.2))
    return root


def _set_mtimes_spread(root, step_s=100.0):
    """Give entries strictly increasing mtimes in scan (key) order."""
    base = time.time() - 1e6
    paths = sorted(root.glob("[0-9a-f]*/*.json"))
    for i, path in enumerate(paths):
        stamp = base + i * step_s
        os.utime(path, (stamp, stamp))
    return paths


class TestScanAndStats:
    def test_scan_reports_all_entries_lru_first(self, warm_cache):
        paths = _set_mtimes_spread(warm_cache)
        entries = scan_entries(warm_cache)
        assert len(entries) == 6
        assert [e.path for e in entries] == paths  # oldest mtime first
        assert all(e.size_bytes > 0 for e in entries)

    def test_stats_counts_bytes_hits_quarantine(self, warm_cache):
        SweepRunner(n_jobs=1, cache_dir=warm_cache).run(demo_grid(scale=0.2))  # 6 hits
        report = cache_stats(warm_cache)
        assert report.entries == 6
        assert report.total_bytes == sum(e.size_bytes for e in scan_entries(warm_cache))
        assert report.total_hits == 6
        assert report.quarantined == 0
        assert "entries: 6" in report.render()

    def test_index_survives_and_accumulates(self, warm_cache):
        SweepRunner(n_jobs=1, cache_dir=warm_cache).run(demo_grid(scale=0.2))
        SweepRunner(n_jobs=1, cache_dir=warm_cache).run(demo_grid(scale=0.2))
        index = CacheIndex(warm_cache)
        assert sum(index.hits.values()) == 12


class TestGC:
    def test_needs_a_policy(self, warm_cache):
        with pytest.raises(ConfigurationError):
            collect_garbage(warm_cache)

    def test_max_bytes_bounds_cache_evicting_lru_first(self, warm_cache):
        _set_mtimes_spread(warm_cache)
        entries = scan_entries(warm_cache)
        keep_bytes = sum(e.size_bytes for e in entries[-2:])  # newest two
        report = collect_garbage(warm_cache, max_bytes=keep_bytes)
        assert set(report.evicted) == {e.key for e in entries[:4]}  # oldest four
        survivors = {e.key for e in scan_entries(warm_cache)}
        assert survivors == {e.key for e in entries[-2:]}
        assert sum(e.size_bytes for e in scan_entries(warm_cache)) <= keep_bytes

    def test_hit_refreshes_lru_position(self, warm_cache):
        _set_mtimes_spread(warm_cache)
        entries = scan_entries(warm_cache)
        oldest = entries[0]
        cache = ResultCache(warm_cache)
        assert cache.get(oldest.key) is not None  # bumps mtime
        keep_bytes = sum(e.size_bytes for e in entries) - 1  # must evict one
        report = collect_garbage(warm_cache, max_bytes=keep_bytes)
        # The hit entry is now newest; the second-oldest goes instead.
        assert oldest.key not in report.evicted
        assert report.evicted == (entries[1].key,)

    def test_max_age_evicts_stale_entries(self, warm_cache):
        _set_mtimes_spread(warm_cache, step_s=100.0)
        entries = scan_entries(warm_cache)
        # Entries sit at base+0, +100, +200, ...; from now = entries[2].mtime
        # + 60 a 150 s horizon reaches back to base+110, so exactly the two
        # oldest entries are stale.
        now = entries[2].mtime + 60.0
        report = collect_garbage(warm_cache, max_age_s=150.0, now=now)
        assert set(report.evicted) == {e.key for e in entries[:2]}

    def test_dry_run_deletes_nothing(self, warm_cache):
        report = collect_garbage(warm_cache, max_bytes=0, dry_run=True)
        assert len(report.evicted) == 6
        assert len(scan_entries(warm_cache)) == 6

    def test_gc_drops_index_counters(self, warm_cache):
        SweepRunner(n_jobs=1, cache_dir=warm_cache).run(demo_grid(scale=0.2))
        collect_garbage(warm_cache, max_bytes=0)
        assert CacheIndex(warm_cache).hits == {}


class TestVerifyAndCorruption:
    def _corrupt_one(self, root, payload="{truncated"):
        path = sorted(root.glob("[0-9a-f]*/*.json"))[0]
        path.write_text(payload)
        return path

    def test_verify_quarantines_corrupt_entries(self, warm_cache):
        path = self._corrupt_one(warm_cache)
        report = verify_cache(warm_cache)
        assert report.checked == 6 and report.ok == 5
        assert len(report.corrupt) == 1
        assert report.corrupt[0][0] == path.name
        assert not path.exists()
        assert (warm_cache / QUARANTINE_DIR / path.name).exists()
        assert "1 corrupt" in report.render()

    def test_verify_report_only_mode(self, warm_cache):
        path = self._corrupt_one(warm_cache)
        report = verify_cache(warm_cache, quarantine=False)
        assert len(report.corrupt) == 1
        assert path.exists()  # left in place

    def test_verify_flags_foreign_and_mismatched_entries(self, warm_cache):
        paths = sorted(warm_cache.glob("[0-9a-f]*/*.json"))
        paths[0].write_text("[]")  # not an object
        paths[1].write_text('{"key": "wrong", "error": "x"}')  # key mismatch
        paths[2].write_text("{}")  # neither result nor error
        report = verify_cache(warm_cache, quarantine=False)
        assert len(report.corrupt) == 3

    def test_corrupt_entry_read_quarantines_and_resimulates(self, warm_cache):
        self._corrupt_one(warm_cache)
        outcome = SweepRunner(n_jobs=1, cache_dir=warm_cache).run(demo_grid(scale=0.2))
        assert outcome.stats.hits == 5 and outcome.stats.misses == 1
        assert len(outcome.results) == 6  # the cell re-simulated fine
        assert sum(1 for _ in (warm_cache / QUARANTINE_DIR).glob("*.json")) == 1
        # The re-simulated entry replaced the corrupt one: next run all hits.
        warm = SweepRunner(n_jobs=1, cache_dir=warm_cache).run(demo_grid(scale=0.2))
        assert warm.stats.misses == 0

    def test_quarantined_entries_do_not_count_as_cache_entries(self, warm_cache):
        self._corrupt_one(warm_cache)
        verify_cache(warm_cache)
        assert ResultCache(warm_cache).count() == 5
        assert cache_stats(warm_cache).quarantined == 1


class TestCLIParsers:
    @pytest.mark.parametrize(
        "text,expected",
        [("123", 123), ("1k", 1024), ("2K", 2048), ("1M", 1024**2),
         ("1.5m", int(1.5 * 1024**2)), ("2G", 2 * 1024**3), ("1T", 1024**4)],
    )
    def test_parse_bytes(self, text, expected):
        assert parse_bytes(text) == expected

    @pytest.mark.parametrize("bad", ["", "x", "-1", "1Q"])
    def test_parse_bytes_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            parse_bytes(bad)

    @pytest.mark.parametrize(
        "text,expected",
        [("90", 90.0), ("30s", 30.0), ("2m", 120.0), ("12h", 43200.0), ("7d", 604800.0)],
    )
    def test_parse_duration(self, text, expected):
        assert parse_duration(text) == expected

    @pytest.mark.parametrize("bad", ["", "x", "-5"])
    def test_parse_duration_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            parse_duration(bad)
