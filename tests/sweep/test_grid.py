"""ScenarioGrid expansion and cell validation."""

import pytest

from repro.datasets import mnist
from repro.errors import ConfigurationError
from repro.perfmodel import sec6_cluster
from repro.sim import NaivePolicy, NoPFSPolicy
from repro.sweep import ScenarioGrid, SweepCell
from repro.sweep.grid import as_cells


def small_grid(**kwargs):
    defaults = dict(
        datasets=[mnist(0)],
        systems=[sec6_cluster(num_workers=2), sec6_cluster(num_workers=4)],
        policies=[NaivePolicy(), NoPFSPolicy()],
        batch_sizes=[16, 32],
        epoch_counts=[2],
        seeds=[0, 1],
    )
    defaults.update(kwargs)
    return ScenarioGrid(**defaults)


class TestExpansion:
    def test_len_is_axis_product(self):
        grid = small_grid()
        assert len(grid) == 1 * 2 * 2 * 2 * 1 * 2

    def test_cells_match_len_and_tags_unique(self):
        grid = small_grid()
        cells = grid.cells()
        assert len(cells) == len(grid)
        tags = [c.tag for c in cells]
        assert len(set(tags)) == len(tags)

    def test_tag_carries_all_axes(self):
        cell = small_grid().cells()[0]
        dataset, system, workers, policy, batch, epochs, seed = cell.tag
        assert dataset == "mnist"
        assert system == "sec6-cluster"
        assert workers == cell.config.system.num_workers
        assert policy == cell.policy.name
        assert batch == cell.config.batch_size
        assert epochs == cell.config.num_epochs
        assert seed == cell.config.seed

    def test_config_options_apply_to_every_cell(self):
        grid = small_grid(config_options={"network_interference": 0.0})
        assert all(c.config.network_interference == 0.0 for c in grid.cells())

    def test_same_config_shared_across_policies(self):
        """Policies on the same scenario share one config object."""
        cells = small_grid().cells()
        by_scenario = {}
        for c in cells:
            key = c.tag[:3] + c.tag[4:]
            by_scenario.setdefault(key, set()).add(id(c.config))
        assert all(len(ids) == 1 for ids in by_scenario.values())


class TestValidation:
    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="policies"):
            small_grid(policies=[])

    def test_duplicate_policy_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            small_grid(policies=[NaivePolicy(), NaivePolicy()])

    def test_duplicate_cell_tags_rejected(self):
        cell = small_grid().cells()[0]
        with pytest.raises(ConfigurationError, match="duplicate sweep tag"):
            as_cells([cell, cell])

    def test_non_cell_rejected(self):
        with pytest.raises(ConfigurationError, match="SweepCell"):
            as_cells(["nope"])

    def test_as_cells_passthrough(self):
        cells = small_grid().cells()
        assert as_cells(cells) == cells
        assert [c.tag for c in as_cells(small_grid())] == [c.tag for c in cells]


class TestSweepCell:
    def test_cell_is_frozen(self):
        cell = small_grid().cells()[0]
        with pytest.raises(AttributeError):
            cell.tag = "other"

    def test_explicit_cells_accept_any_hashable_tag(self):
        base = small_grid().cells()[0]
        cell = SweepCell(tag=(64, "NoPFS"), config=base.config, policy=base.policy)
        assert as_cells([cell])[0].tag == (64, "NoPFS")
