"""Content-addressed cache: keys, round-trips, hit/miss semantics."""

import json

import numpy as np
import pytest

from repro.datasets import mnist
from repro.experiments.common import scaled_scenario
from repro.perfmodel import sec6_cluster
from repro.sim import (
    DoubleBufferPolicy,
    NoPFSPolicy,
    SimulationResult,
    Simulator,
)
from repro.sweep import CachedOutcome, ResultCache, cell_key, policy_fingerprint


@pytest.fixture(scope="module")
def config():
    return scaled_scenario(
        mnist(0).scaled(0.2), sec6_cluster(num_workers=2), batch_size=16, num_epochs=2
    )


@pytest.fixture(scope="module")
def result(config):
    return Simulator(config).run(NoPFSPolicy())


class TestResultRoundTrip:
    def test_json_round_trip_equality(self, result):
        clone = SimulationResult.from_json(result.to_json())
        assert clone == result

    def test_round_trip_preserves_derived_metrics(self, result):
        clone = SimulationResult.from_dict(result.to_dict())
        assert clone.total_time_s == result.total_time_s
        assert clone.median_epoch_time_s() == result.median_epoch_time_s()
        assert clone.location_breakdown_s() == result.location_breakdown_s()

    def test_round_trip_with_batch_durations(self, config):
        import dataclasses

        cfg = dataclasses.replace(config, record_batch_times=True)
        res = Simulator(cfg).run(NoPFSPolicy())
        clone = SimulationResult.from_json(res.to_json())
        for a, b in zip(res.epochs, clone.epochs):
            assert b.batch_durations is not None
            np.testing.assert_array_equal(a.batch_durations, b.batch_durations)
        # Dataclass equality must not raise on the ndarray field
        # (durations are compare=False; summarized fields still compare).
        assert clone == res


class TestCellKey:
    def test_key_stable_across_rebuilds(self, config):
        k1 = cell_key(config, NoPFSPolicy())
        k2 = cell_key(type(config).from_dict(config.to_dict()), NoPFSPolicy())
        assert k1 == k2

    def test_key_sensitive_to_config(self, config):
        import dataclasses

        other = dataclasses.replace(config, batch_size=config.batch_size * 2)
        assert cell_key(config, NoPFSPolicy()) != cell_key(other, NoPFSPolicy())

    def test_key_sensitive_to_policy_and_its_args(self, config):
        keys = {
            cell_key(config, NoPFSPolicy()),
            cell_key(config, DoubleBufferPolicy(2)),
            cell_key(config, DoubleBufferPolicy(8)),
        }
        assert len(keys) == 3

    def test_fingerprint_covers_constructor_state(self):
        fp = policy_fingerprint(DoubleBufferPolicy(4))
        assert fp["state"]["prefetch_batches"] == 4
        assert fp["name"] == "pytorch"

    def test_non_json_policy_state_raises_clearly(self, config):
        import numpy as np

        from repro.errors import ConfigurationError

        policy = NoPFSPolicy()
        policy.weights = np.ones(3)  # simulate a user policy with array state
        with pytest.raises(ConfigurationError, match="weights.*not JSON-serializable"):
            cell_key(config, policy)

    def test_code_fingerprint_includes_source_digest(self):
        from repro import __version__
        from repro.sweep import code_fingerprint

        fp = code_fingerprint()
        assert fp.startswith(f"{__version__}+")
        assert fp == code_fingerprint()  # stable within a process

    def test_key_sensitive_to_code_fingerprint(self, config, monkeypatch):
        """Simulator source edits (different digest) must miss."""
        import repro.sweep.cache as cache_mod

        before = cell_key(config, NoPFSPolicy())
        monkeypatch.setattr(cache_mod, "code_fingerprint", lambda: "1.0.0+deadbeef")
        assert cell_key(config, NoPFSPolicy()) != before


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, config, result):
        cache = ResultCache(tmp_path)
        key = cell_key(config, NoPFSPolicy())
        assert cache.get(key) is None
        cache.put(key, CachedOutcome(result=result, error=None))
        got = cache.get(key)
        assert got is not None and got.supported
        assert got.result == result

    def test_unsupported_outcome_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, CachedOutcome(result=None, error="does not support"))
        got = cache.get("ab" * 32)
        assert got is not None and not got.supported
        assert got.error == "does not support"

    def test_corrupt_entry_is_a_miss(self, tmp_path, config, result):
        cache = ResultCache(tmp_path)
        key = cell_key(config, NoPFSPolicy())
        cache.put(key, CachedOutcome(result=result, error=None))
        cache.path_for(key).write_text("{truncated")
        assert cache.get(key) is None

    @pytest.mark.parametrize(
        "payload",
        ["null", "[]", "{}", '{"result": {"policy": "x"}}', '{"result": 42}'],
    )
    def test_wrong_shaped_json_is_a_miss(self, tmp_path, config, payload):
        """Valid JSON of the wrong shape degrades to a miss, not a crash."""
        cache = ResultCache(tmp_path)
        key = cell_key(config, NoPFSPolicy())
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text(payload)
        assert cache.get(key) is None

    def test_count_and_contains(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        assert cache.count() == 0
        cache.put("cd" * 32, CachedOutcome(result=result, error=None))
        assert cache.count() == 1
        assert "cd" * 32 in cache
        assert "ef" * 32 not in cache

    def test_empty_message_error_entry_still_hits(self, tmp_path):
        """A bare PolicyError (empty message) must not re-simulate forever."""
        cache = ResultCache(tmp_path)
        cache.put("ee" * 32, CachedOutcome(result=None, error=""))
        got = cache.get("ee" * 32)
        assert got is not None and not got.supported

    def test_entries_record_key_and_code_fingerprint(self, tmp_path, result):
        from repro.sweep import code_fingerprint

        cache = ResultCache(tmp_path)
        cache.put("12" * 32, CachedOutcome(result=result, error=None))
        entry = json.loads(cache.path_for("12" * 32).read_text())
        assert entry["key"] == "12" * 32
        assert entry["code"] == code_fingerprint()
