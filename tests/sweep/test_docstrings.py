"""Docstring audit: the public sweep/experiments API is documented.

Enforces the ISSUE 2 acceptance criterion that every public
``repro.sweep`` symbol (and the experiments harness API) carries a
docstring — modules, classes, public methods and functions alike.
"""

import importlib
import inspect

import pytest

AUDITED_MODULES = (
    "repro.api",
    "repro.api.presets",
    "repro.api.registry",
    "repro.api.scenario",
    "repro.api.session",
    "repro.cli",
    "repro.sweep",
    "repro.sweep.cache",
    "repro.sweep.cli",
    "repro.sweep.gc",
    "repro.sweep.grid",
    "repro.sweep.runner",
    "repro.sweep.shard",
    "repro.search",
    "repro.search.drivers",
    "repro.search.evaluator",
    "repro.search.events",
    "repro.search.manifest",
    "repro.search.run",
    "repro.search.space",
    "repro.sim.bounds",
    "repro.experiments.artifacts",
    "repro.experiments.common",
    "repro.experiments.paper",
    "repro.experiments.scaling",
)


def _public_members(module):
    """(name, object) pairs of the module's public API surface."""
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name)
        # Only audit things defined in this package (not re-exports of
        # stdlib/numpy objects) that can carry docstrings.
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if (getattr(obj, "__module__", "") or "").startswith("repro"):
                yield name, obj


@pytest.mark.parametrize("module_name", AUDITED_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert (module.__doc__ or "").strip(), f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", AUDITED_MODULES)
def test_public_symbols_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in _public_members(module):
        if not (inspect.getdoc(obj) or "").strip():
            missing.append(name)
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if callable(attr) or isinstance(attr, (property, classmethod, staticmethod)):
                    target = attr.fget if isinstance(attr, property) else attr
                    if not (inspect.getdoc(target) or "").strip():
                        missing.append(f"{name}.{attr_name}")
    assert not missing, f"{module_name}: undocumented public symbols: {missing}"
