"""Shard planning: determinism, disjointness, merge ≡ single-run."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.sweep import (
    ScenarioGrid,
    ShardManifest,
    ShardPlanner,
    ShardSpec,
    SweepRunner,
    estimate_cell_cost,
    merge_caches,
    merge_manifests,
)
from repro.sweep.cli import demo_grid


@pytest.fixture(scope="module")
def grid() -> ScenarioGrid:
    return demo_grid(scale=0.2)


@pytest.fixture(scope="module")
def cells(grid):
    return grid.cells()


class TestShardSpec:
    def test_parse(self):
        spec = ShardSpec.parse("1/3")
        assert (spec.index, spec.count) == (1, 3)
        assert str(spec) == "1/3"

    @pytest.mark.parametrize("bad", ["", "3", "a/b", "3/3", "-1/3", "0/0"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            ShardSpec.parse(bad)


class TestPlanner:
    @pytest.mark.parametrize("strategy", ["round_robin", "cost"])
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_partition_is_disjoint_and_complete(self, cells, strategy, k):
        plan = ShardPlanner(strategy).plan(cells, k)
        assert len(plan) == k
        seen = [c.tag for shard in plan.shards for c in shard]
        assert sorted(map(repr, seen)) == sorted(repr(c.tag) for c in cells)
        assert len(seen) == len(cells)

    @pytest.mark.parametrize("strategy", ["round_robin", "cost"])
    def test_same_grid_same_partition(self, grid, strategy):
        a = ShardPlanner(strategy).plan(grid, 3)
        b = ShardPlanner(strategy).plan(grid, 3)
        assert [[c.tag for c in s] for s in a.shards] == [
            [c.tag for c in s] for s in b.shards
        ]

    def test_cost_strategy_balances_heavy_cells(self):
        # Two heavy Fig-8-style scenarios and four light ones: LPT must
        # not put both heavy cells on one shard.
        from repro.datasets import imagenet22k, mnist
        from repro.perfmodel import sec6_cluster
        from repro.sim import NaivePolicy, NoPFSPolicy

        big = ScenarioGrid(
            datasets=[imagenet22k(0).scaled(0.001)],
            systems=[sec6_cluster(num_workers=2)],
            policies=[NaivePolicy(), NoPFSPolicy()],
            batch_sizes=[32],
            epoch_counts=[2],
        ).cells()
        small = ScenarioGrid(
            datasets=[mnist(0).scaled(0.05)],
            systems=[sec6_cluster(num_workers=2)],
            policies=[NaivePolicy(), NoPFSPolicy()],
            batch_sizes=[16, 32],
            epoch_counts=[2],
        ).cells()
        plan = ShardPlanner("cost").plan(big + small, 2)
        loads = [sum(estimate_cell_cost(c) for c in shard) for shard in plan.shards]
        naive_worst = sum(estimate_cell_cost(c) for c in big)
        assert max(loads) < naive_worst  # heavy cells split across shards

    def test_shard_accessor_validates(self, cells):
        plan = ShardPlanner().plan(cells, 2)
        with pytest.raises(ConfigurationError):
            plan.shard(ShardSpec(0, 3))  # count mismatch
        with pytest.raises(ConfigurationError):
            plan.shard(5)

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            ShardPlanner("random")


class TestShardedSweepEquivalence:
    def test_shards_merge_bitwise_identical_to_single_run(self, tmp_path, grid):
        single_dir = tmp_path / "single"
        single = SweepRunner(n_jobs=1, cache_dir=single_dir).run(grid)

        shard_dirs = [tmp_path / f"shard{i}" for i in range(3)]
        for i, d in enumerate(shard_dirs):
            SweepRunner(n_jobs=1, cache_dir=d).run_shard(grid, f"{i}/3")
        merged_dir = tmp_path / "merged"
        report = merge_caches(shard_dirs, merged_dir)
        assert report.copied == len(grid.cells())

        warm = SweepRunner(n_jobs=1, cache_dir=merged_dir).run(grid)
        assert warm.stats.misses == 0
        assert warm.results == single.results
        assert warm.unsupported == single.unsupported

        # Bitwise: every cache entry file has identical bytes.
        single_entries = {
            p.name: p.read_bytes() for p in single_dir.glob("[0-9a-f]*/*.json")
        }
        merged_entries = {
            p.name: p.read_bytes() for p in merged_dir.glob("[0-9a-f]*/*.json")
        }
        assert merged_entries == single_entries

    def test_merge_is_idempotent(self, tmp_path, grid):
        from repro.sweep import CacheIndex

        src = tmp_path / "src"
        runner = SweepRunner(n_jobs=1, cache_dir=src)
        runner.run(grid)
        runner.run(grid)  # warm: records one hit per entry in src's index
        dest = tmp_path / "dest"
        first = merge_caches([src], dest)
        second = merge_caches([src], dest)
        assert first.copied == len(grid.cells())
        assert second.copied == 0 and second.skipped == first.copied
        # Hit counters must not double on the re-merge either.
        assert CacheIndex(dest).hits == CacheIndex(src).hits


class TestManifests:
    def test_roundtrip(self, tmp_path, cells):
        manifest = ShardManifest.for_cells(
            cells[:2], grid="g", strategy="cost", shard=ShardSpec(0, 2),
            stats={"cells": 2}, cache_dir="d",
        )
        path = tmp_path / "m.json"
        manifest.save(path)
        loaded = ShardManifest.load(path)
        assert loaded == manifest

    def test_merge_unions_and_sums(self, cells):
        a = ShardManifest.for_cells(cells[:2], shard=ShardSpec(0, 2), stats={"cells": 2})
        b = ShardManifest.for_cells(cells[2:], shard=ShardSpec(1, 2), stats={"cells": len(cells) - 2})
        merged = merge_manifests([a, b])
        assert merged.shard is None
        assert len(merged.cells) == len(cells)
        assert merged.stats["cells"] == len(cells)

    def test_merge_rejects_mixed_code_versions(self, cells):
        import dataclasses

        a = ShardManifest.for_cells(cells[:1])
        b = dataclasses.replace(ShardManifest.for_cells(cells[1:2]), code="other")
        with pytest.raises(ConfigurationError):
            merge_manifests([a, b])

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            ShardManifest.load(bad)


class TestCLI:
    """End-to-end: separate processes per shard, CLI merge, warm run."""

    def _run(self, *args: str, cwd: Path) -> str:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sweep", *args],
            capture_output=True, text=True, cwd=cwd,
            env={"PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
                 "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_three_shard_processes_merge_to_single_run(self, tmp_path):
        grid_arg = ["--grid", "repro.sweep.cli:demo_grid", "--grid-kwargs", '{"scale": 0.2}']
        for i in range(3):
            out = self._run(
                "run", *grid_arg, "--shard", f"{i}/3",
                "--cache-dir", f"s{i}", "--manifest", f"m{i}.json",
                cwd=tmp_path,
            )
            assert f"shard {i}/3" in out
        out = self._run(
            "merge", "s0", "s1", "s2", "--into", "merged",
            "--manifests", "m0.json", "m1.json", "m2.json",
            "--manifest-out", "merged.json",
            cwd=tmp_path,
        )
        assert "merge: 6 entries" in out
        merged = json.loads((tmp_path / "merged.json").read_text())
        assert len(merged["cells"]) == 6 and merged["shard"] is None

        warm = self._run("run", *grid_arg, "--cache-dir", "merged", cwd=tmp_path)
        assert "/ 0 miss" in warm

        stats = self._run("stats", "--cache-dir", "merged", cwd=tmp_path)
        assert "entries: 6" in stats
        verify = self._run("verify", "--cache-dir", "merged", "--strict", cwd=tmp_path)
        assert "0 corrupt" in verify
