"""The ``tools/parity.py`` CLI: exit codes, report files, determinism."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parents[2] / "tools"


@pytest.fixture(scope="module")
def parity_cli():
    spec = importlib.util.spec_from_file_location("parity_cli", TOOLS / "parity.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("parity_cli", module)
    spec.loader.exec_module(module)
    return module


def test_smoke_run_writes_ok_report(parity_cli, tmp_path, capsys):
    out = tmp_path / "report.json"
    code = parity_cli.main(
        ["--policies", "naive", "nopfs", "--epochs", "2", "--out", str(out)]
    )
    assert code == 0
    data = json.loads(out.read_text())
    assert data["ok"] is True
    assert [p["policy"] for p in data["policies"]] == ["naive", "nopfs"]
    assert "PARITY OK" in capsys.readouterr().out


def test_two_runs_byte_identical(parity_cli, tmp_path):
    """The CI smoke job's contract: run twice, diff the files."""
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    args = ["--quiet", "--policies", "naive", "locality_aware", "--epochs", "2"]
    assert parity_cli.main([*args, "--out", str(a)]) == 0
    assert parity_cli.main([*args, "--out", str(b)]) == 0
    assert a.read_bytes() == b.read_bytes()


def test_quiet_suppresses_summary(parity_cli, capsys):
    assert parity_cli.main(["--quiet", "--policies", "naive", "--epochs", "1"]) == 0
    assert capsys.readouterr().out == ""
