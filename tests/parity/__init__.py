"""Sim-vs-runtime parity harness tests."""
