"""The sim-vs-runtime parity harness, end to end.

The headline guarantee under test: for every Fig 8 policy, the runtime
world's modelled epochs price to *bitwise identical* results, cold
epochs stay within the declared tolerances, and the whole report is
byte-for-byte deterministic across runs.
"""

import dataclasses
import json

import pytest

from repro.api import FIG8_POLICIES, make_policy
from repro.errors import ConfigurationError, PolicyError, RuntimeIOError
from repro.perfmodel import sec6_cluster
from repro.ports import (
    FakeDataset,
    RecordingMetricsSink,
    RuntimeWorld,
    SimWorld,
    parity_system,
)
from repro.ports.parity import (
    ParityTolerance,
    PolicyParity,
    _ordering_issues,
    compare_reports,
    default_config,
    run_parity,
)
from repro.ports.worlds import check_local_dominance
from repro.sim import Simulator


@pytest.fixture(scope="module")
def fig8_report():
    """One full Fig 8 lineup run, shared across assertions."""
    return run_parity()


class TestFig8Parity:
    def test_report_ok(self, fig8_report):
        assert fig8_report.ok, "\n".join(fig8_report.summary_lines())

    def test_every_policy_compared(self, fig8_report):
        assert len(fig8_report.policies) == len(FIG8_POLICIES)
        assert all(p.status == "ok" for p in fig8_report.policies)

    def test_modeled_epochs_bitwise_identical(self, fig8_report):
        """Shared-kernel pricing: modelled epochs agree to the last bit."""
        modeled = [
            e for p in fig8_report.policies for e in p.epochs if e.kind == "modeled"
        ]
        assert modeled
        for e in modeled:
            assert e.ok and not e.issues
            assert e.sim_counts == e.runtime_counts
            assert e.sim_time_s == e.runtime_time_s

    def test_cold_epochs_present_and_tolerated(self, fig8_report):
        """Plan-based policies warm up; those epochs compare under slack."""
        cold = [e for p in fig8_report.policies for e in p.epochs if e.kind == "cold"]
        assert cold, "expected at least one warm-up epoch in the Fig 8 lineup"
        for e in cold:
            assert e.ok
            assert sum(e.sim_counts) == sum(e.runtime_counts)
            # Empty tiers can only shift traffic *onto* the PFS.
            assert e.runtime_counts[0] >= e.sim_counts[0]
            assert e.runtime_time_s >= e.sim_time_s * (1 - 1e-9)

    def test_no_ordering_disagreements(self, fig8_report):
        assert fig8_report.ordering_issues == ()

    def test_report_round_trips_to_json(self, fig8_report):
        data = json.loads(fig8_report.to_json())
        assert data["ok"] is True
        assert [p["policy"] for p in data["policies"]]
        assert data["scenario"]["system"].startswith("parity-")


class TestDeterminism:
    def test_reports_byte_identical_across_runs(self):
        policies = ("naive", "locality_aware", "nopfs")
        first = run_parity(policies=policies).to_json()
        second = run_parity(policies=policies).to_json()
        assert first == second


class TestUnsupportedAgreement:
    def test_policy_error_in_both_worlds_is_agreement(self):
        """fake:small overflows the parity system's 4 MB aggregate RAM."""
        cfg = default_config(profile="small")
        report = run_parity(cfg, policies=("lbann:dynamic",))
        (verdict,) = report.policies
        assert verdict.status == "unsupported"
        assert verdict.ok and report.ok
        assert verdict.issues  # both PolicyError messages survive

    def test_supported_policy_unaffected(self):
        cfg = default_config(profile="small")
        report = run_parity(cfg, policies=("naive",))
        assert report.ok
        assert report.policies[0].status == "ok"


class TestCompareReports:
    @pytest.fixture()
    def sim_report(self):
        cfg = default_config(num_epochs=2)
        return SimWorld(cfg).run(make_policy("naive"))

    def test_identical_reports_ok(self, sim_report):
        assert compare_reports(sim_report, sim_report).status == "ok"

    def test_time_tamper_detected(self, sim_report):
        tampered = dataclasses.replace(
            sim_report,
            epochs=(
                dataclasses.replace(sim_report.epochs[0], time_s=sim_report.epochs[0].time_s + 1.0),
                *sim_report.epochs[1:],
            ),
        )
        verdict = compare_reports(sim_report, tampered)
        assert verdict.status == "mismatch"
        assert any("time_s" in i for i in verdict.epochs[0].issues)

    def test_count_tamper_detected(self, sim_report):
        e0 = sim_report.epochs[0]
        counts = (e0.fetch_counts[0] - 1, e0.fetch_counts[1] + 1, *e0.fetch_counts[2:])
        tampered = dataclasses.replace(
            sim_report,
            epochs=(dataclasses.replace(e0, fetch_counts=counts), *sim_report.epochs[1:]),
        )
        verdict = compare_reports(sim_report, tampered)
        assert verdict.status == "mismatch"
        assert any("fetch counts" in i for i in verdict.epochs[0].issues)

    def test_cold_epoch_disagreement_detected(self, sim_report):
        tampered = dataclasses.replace(sim_report, cold_epochs=(0,))
        verdict = compare_reports(sim_report, tampered)
        assert verdict.status == "mismatch"
        assert any("cold epochs" in i for i in verdict.issues)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            ParityTolerance(modeled_rel=-0.1)


class TestOrderingCheck:
    @staticmethod
    def _verdict(policy, sim_s, runtime_s):
        return PolicyParity(
            policy=policy, status="ok", sim_total_s=sim_s, runtime_total_s=runtime_s
        )

    def test_inversion_flagged(self):
        issues = _ordering_issues(
            [self._verdict("fast", 1.0, 5.0), self._verdict("slow", 2.0, 4.0)],
            margin=0.05,
        )
        assert len(issues) == 1
        assert "fast" in issues[0] and "slow" in issues[0]

    def test_within_margin_not_flagged(self):
        issues = _ordering_issues(
            [self._verdict("a", 1.00, 2.0), self._verdict("b", 1.04, 1.9)],
            margin=0.05,
        )
        assert issues == []


class TestRuntimeWorldGuards:
    def test_metrics_sink_counts_match_priced_report(self):
        cfg = default_config(num_epochs=3)
        sink = RecordingMetricsSink()
        world = RuntimeWorld(cfg, sink=sink)
        report = world.run(make_policy("nopfs"))
        for epoch in range(cfg.num_epochs):
            counts = sink.counts(epoch)
            pfs, remote, local, none = report.fetch_counts(epoch)
            assert counts.get("pfs", 0) == pfs
            assert counts.get("remote", 0) == remote
            assert counts.get("local", 0) == local
            assert none == 0

    def test_corrupt_pfs_payload_fails_the_run(self):
        cfg = default_config(num_epochs=1)

        class _LyingDataset(FakeDataset):
            def read(self, sample_id: int) -> bytes:
                data = super().read(sample_id)
                return b"\x00" * len(data) if sample_id == 0 else data

        world = RuntimeWorld(cfg, dataset=_LyingDataset.from_model(cfg.dataset))
        with pytest.raises(RuntimeIOError, match="corrupt payload"):
            world.run(make_policy("naive"))

    def test_wrong_length_dataset_rejected(self):
        cfg = default_config()
        with pytest.raises(ConfigurationError, match="samples"):
            RuntimeWorld(cfg, dataset=FakeDataset([1024] * 3))

    def test_non_matching_sizes_rejected(self):
        cfg = default_config()
        n = cfg.dataset.num_samples
        with pytest.raises(ConfigurationError, match="dyadic"):
            RuntimeWorld(cfg, dataset=FakeDataset([1000] * n))

    def test_policy_error_raised_like_the_sim(self):
        cfg = default_config(profile="small")
        with pytest.raises(PolicyError):
            RuntimeWorld(cfg).run(make_policy("lbann:dynamic"))
        with pytest.raises(PolicyError):
            SimWorld(cfg).run(make_policy("lbann:dynamic"))


class TestParitySystem:
    def test_parity_system_passes_its_own_invariant(self):
        check_local_dominance(parity_system())

    def test_sec6_cluster_violates_local_dominance(self):
        """Remote RAM beats the local SSD on the paper's cluster."""
        with pytest.raises(ConfigurationError, match="network"):
            check_local_dominance(sec6_cluster())

    def test_worlds_share_stream_cache(self):
        """Both worlds consume one Simulator's cached epoch streams."""
        cfg = default_config(num_epochs=2)
        sim = Simulator(cfg)
        sim_report = SimWorld(cfg, sim=sim).run(make_policy("naive"))
        runtime_report = RuntimeWorld(cfg, sim=sim).run(make_policy("naive"))
        assert compare_reports(sim_report, runtime_report).status == "ok"
