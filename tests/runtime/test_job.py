"""Job integration tests: the functional middleware end to end."""

import threading

import numpy as np
import pytest

from repro.core import AccessStream
from repro.errors import ConfigurationError
from repro.loader import InMemoryDataset
from repro.runtime import DistributedJobGroup, MemoryBackend, WorkerGroup, Job


def small_dataset(n=120, size=64, classes=4):
    return InMemoryDataset.random(n, size, num_classes=classes, seed=9)


def make_group(ds=None, workers=2, batch=5, epochs=2, seed=21, **kw):
    ds = ds or small_dataset()
    kw.setdefault("staging_bytes", 2048)
    kw.setdefault("staging_threads", 2)
    return DistributedJobGroup(
        ds, num_workers=workers, batch_size=batch, num_epochs=epochs, seed=seed, **kw
    )


class TestSingleWorker:
    def test_serves_exact_stream(self):
        ds = small_dataset()
        grp = make_group(ds, workers=1)
        job = grp.jobs[0]
        expected = AccessStream(job.stream_config).worker_stream(0)
        with grp:
            served = [job.get()[0] for _ in range(job.total_samples)]
        np.testing.assert_array_equal(served, expected)

    def test_data_matches_dataset(self):
        ds = small_dataset()
        grp = make_group(ds, workers=1)
        with grp:
            for _ in range(20):
                sid, data, label = grp.jobs[0].get()
                assert data == ds.read(sid)
                assert label == ds.label(sid)

    def test_stop_iteration_at_end(self):
        grp = make_group(workers=1, epochs=1)
        job = grp.jobs[0]
        with grp:
            for _ in range(job.total_samples):
                job.get()
            with pytest.raises(StopIteration):
                job.get()

    def test_get_before_start_rejected(self):
        grp = make_group(workers=1)
        with pytest.raises(ConfigurationError):
            grp.jobs[0].get()
        grp.start()
        grp.stop()

    def test_double_start_rejected(self):
        grp = make_group(workers=1)
        grp.start()
        with pytest.raises(ConfigurationError):
            grp.jobs[0].start()
        grp.stop()


class TestDistributed:
    def test_exactly_once_per_epoch(self):
        """The core SGD contract: one epoch covers the dataset once."""
        ds = small_dataset()
        grp = make_group(ds, workers=3, batch=4, epochs=2)
        per_worker: dict[int, list[int]] = {0: [], 1: [], 2: []}

        def consume(job):
            for sid, _, _ in job:
                per_worker[job.rank].append(sid)

        with grp:
            threads = [
                threading.Thread(target=consume, args=(j,)) for j in grp.jobs
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
        L = grp.jobs[0].samples_per_epoch
        epoch0 = sum((ids[:L] for ids in per_worker.values()), [])
        assert len(set(epoch0)) == len(epoch0)

    def test_stats_accounting(self):
        grp = make_group(workers=2, tier_factories=[lambda r: MemoryBackend(2048)])
        with grp:
            stats = grp.run_consumers()
        for job, s in zip(grp.jobs, stats):
            assert (
                s["local_hits"] + s["remote_hits"] + s["dataset_reads"]
                == job.total_samples
            )

    def test_remote_hits_with_small_caches(self):
        """Tight per-worker caches force cross-worker fetches."""
        ds = small_dataset(n=200, size=64)
        grp = make_group(
            ds,
            workers=2,
            epochs=3,
            tier_factories=[lambda r: MemoryBackend(64 * 60)],
        )
        with grp:
            stats = grp.run_consumers()
        assert sum(s["remote_hits"] for s in stats) > 0

    def test_warm_epochs_avoid_dataset(self):
        """With caches big enough for everything, later epochs are
        served without touching the dataset (the paper's 'read from the
        PFS as few times as necessary')."""
        ds = small_dataset(n=100, size=64)
        grp = make_group(
            ds,
            workers=2,
            epochs=3,
            tier_factories=[lambda r: MemoryBackend(1 << 20)],
        )
        per_job_sources = []

        def consume(job, counts=None):
            L = job.samples_per_epoch
            for i, _ in enumerate(job):
                pass

        with grp:
            grp.run_consumers()
            stats = [j.stats.as_dict() for j in grp.jobs]
        for s in stats:
            # tier prefetchers read each cached sample once from the
            # dataset; the staging path may add a few cold reads in
            # epoch 0, but far fewer than one per consumed sample.
            assert s["dataset_reads"] < grp.jobs[0].total_samples / 2

    def test_heuristic_false_positives_counted_not_fatal(self):
        ds = small_dataset(n=300, size=64)
        grp = make_group(
            ds,
            workers=2,
            epochs=2,
            tier_factories=[lambda r: MemoryBackend(64 * 80)],
            use_progress_heuristic=True,
        )
        with grp:
            stats = grp.run_consumers()
        for s in stats:
            assert s["heuristic_false_positives"] >= 0  # never crashes

    def test_exact_mode(self):
        grp = make_group(workers=2, use_progress_heuristic=False)
        with grp:
            stats = grp.run_consumers()
        for s in stats:
            assert s["heuristic_false_positives"] == 0

    def test_deterministic_stream_across_runs(self):
        ds = small_dataset()
        grp_a = make_group(ds, workers=2, seed=77)
        grp_b = make_group(ds, workers=2, seed=77)
        np.testing.assert_array_equal(
            grp_a.jobs[0].stream_ids, grp_b.jobs[0].stream_ids
        )
        grp_c = make_group(ds, workers=2, seed=78)
        assert not np.array_equal(grp_a.jobs[0].stream_ids, grp_c.jobs[0].stream_ids)

    def test_validation(self):
        ds = small_dataset()
        with pytest.raises(ConfigurationError):
            DistributedJobGroup(ds, num_workers=0, batch_size=4, num_epochs=1, seed=1)
        group = WorkerGroup(1)
        with pytest.raises(ConfigurationError):
            Job(ds, batch_size=4, num_epochs=1, seed=1, rank=0, group=group,
                staging_threads=0)
