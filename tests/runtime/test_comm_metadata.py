"""WorkerGroup rendezvous/serving and MetadataStore tests."""

import threading

import pytest

from repro.errors import CommunicationError, ConfigurationError
from repro.runtime import MetadataStore, WorkerGroup


class TestMetadataStore:
    def test_record_and_lookup(self):
        md = MetadataStore()
        md.record(5, tier=1)
        assert md.tier_of(5) == 1
        assert 5 in md and len(md) == 1

    def test_fastest_tier_wins(self):
        md = MetadataStore()
        md.record(5, tier=1)
        md.record(5, tier=0)
        assert md.tier_of(5) == 0
        md.record(5, tier=2)  # slower tier does not downgrade
        assert md.tier_of(5) == 0

    def test_forget(self):
        md = MetadataStore()
        md.record(5, tier=0)
        md.forget(5)
        assert md.tier_of(5) is None

    def test_progress_counter(self):
        md = MetadataStore()
        assert md.progress == 0
        assert md.advance_progress() == 1
        assert md.advance_progress(3) == 4
        assert md.progress == 4


class TestWorkerGroup:
    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerGroup(0)
        with pytest.raises(ConfigurationError):
            WorkerGroup(2, network_delay_s_per_mb=-1)

    def test_rank_validation(self):
        g = WorkerGroup(2)
        with pytest.raises(CommunicationError):
            g.allgather(5, "k", 1)
        with pytest.raises(CommunicationError):
            g.request_sample(5, 0)

    def test_allgather_threaded(self):
        g = WorkerGroup(3, timeout_s=5.0)
        results = [None] * 3

        def worker(rank):
            results[rank] = g.allgather(rank, "key", rank * 10)

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5)
        assert results[0] == results[1] == results[2] == [0, 10, 20]

    def test_allgather_double_contribution(self):
        g = WorkerGroup(1)
        g.allgather(0, "k", 1)
        with pytest.raises(CommunicationError):
            g.allgather(0, "k", 2)

    def test_allgather_timeout(self):
        g = WorkerGroup(2, timeout_s=0.05)
        with pytest.raises(CommunicationError):
            g.allgather(0, "k", 1)

    def test_serve_roundtrip(self):
        g = WorkerGroup(2)
        store = {7: b"payload"}
        g.register(1, store.get, lambda: 3)
        assert g.request_sample(1, 7) == b"payload"
        assert g.request_sample(1, 8) is None
        assert g.progress(1) == 3
        assert g.remote_requests == 2
        assert g.remote_bytes_served == len(b"payload")

    def test_unregistered_target(self):
        g = WorkerGroup(2)
        with pytest.raises(CommunicationError):
            g.request_sample(0, 1)

    def test_unregistered_progress_is_zero(self):
        assert WorkerGroup(2).progress(1) == 0
