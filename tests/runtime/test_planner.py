"""Runtime planner: routing tables derived from clairvoyance."""

import numpy as np
import pytest

from repro.core import AccessStream, StreamConfig
from repro.errors import ConfigurationError
from repro.runtime import build_runtime_plan


def make_plan(f=300, n=3, b=4, e=4, caps=(4000, 8000), seed=5):
    cfg = StreamConfig(seed, f, n, b, e)
    sizes = np.full(f, 100.0)  # 100 B each
    return cfg, build_runtime_plan(cfg, sizes, list(caps))


class TestPlacement:
    def test_shapes(self):
        cfg, plan = make_plan()
        assert plan.plan.num_workers == 3
        assert plan.holder_of.shape == (300,)
        assert plan.holder_position.shape == (300,)
        assert len(plan.prefetch_orders) == 3

    def test_capacity_respected(self):
        cfg, plan = make_plan(caps=(500, 1000))
        for w, placement in enumerate(plan.plan.placements):
            assert len(placement.class_ids[0]) * 100 <= 500
            assert len(placement.class_ids[1]) * 100 <= 1000

    def test_prefetch_order_is_access_order_within_tier(self):
        cfg, plan = make_plan()
        stream = AccessStream(cfg)
        for w in range(3):
            full = stream.worker_stream(w)
            first_pos = {}
            for pos, sid in enumerate(full):
                first_pos.setdefault(int(sid), pos)
            for tier_list in plan.tier_prefetch_lists(w):
                positions = [first_pos[int(s)] for s in tier_list]
                assert positions == sorted(positions)

    def test_prefetch_order_covers_cached(self):
        cfg, plan = make_plan()
        for w, placement in enumerate(plan.plan.placements):
            assert set(plan.prefetch_orders[w].tolist()) == set(
                placement.cached_ids.tolist()
            )

    def test_holder_consistency(self):
        """Every sample with a holder is in that holder's placement, at
        the recorded prefetch position."""
        cfg, plan = make_plan()
        for sid in range(300):
            holder = int(plan.holder_of[sid])
            if holder < 0:
                assert plan.holder_position[sid] == -1
                continue
            pos = int(plan.holder_position[sid])
            assert plan.prefetch_orders[holder][pos] == sid

    def test_holder_prefers_fastest_tier(self):
        cfg, plan = make_plan(caps=(300, 20000))
        # samples cached in someone's tier 0 should have a tier-0 holder
        tier0_ids = set()
        for placement in plan.plan.placements:
            tier0_ids |= set(placement.class_ids[0].tolist())
        for sid in tier0_ids:
            holder = int(plan.holder_of[sid])
            assert sid in set(
                plan.plan.placements[holder].class_ids[0].tolist()
            )

    def test_validation(self):
        cfg = StreamConfig(0, 100, 2, 4, 2)
        with pytest.raises(ConfigurationError):
            build_runtime_plan(cfg, np.ones(50), [1000])

    def test_no_tiers(self):
        cfg = StreamConfig(0, 100, 2, 4, 2)
        plan = build_runtime_plan(cfg, np.full(100, 10.0), [])
        assert (plan.holder_of == -1).all()
