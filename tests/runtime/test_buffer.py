"""Staging buffer: ordering, capacity, drop-after-use, liveness."""

import threading

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.runtime import StagingBuffer


class TestBasics:
    def test_put_get_roundtrip(self):
        buf = StagingBuffer(1024)
        buf.put(0, 42, b"abc")
        sample_id, data = buf.get(0)
        assert (sample_id, data) == (42, b"abc")

    def test_drop_after_use_frees_space(self):
        buf = StagingBuffer(1024)
        buf.put(0, 1, b"x" * 100)
        assert buf.used_bytes == 100
        buf.get(0)
        assert buf.used_bytes == 0
        assert len(buf) == 0

    def test_peak_tracking(self):
        buf = StagingBuffer(1024)
        buf.put(0, 1, b"x" * 100)
        buf.put(1, 2, b"x" * 200)
        buf.get(0)
        assert buf.peak_used_bytes == 300

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StagingBuffer(0)

    def test_duplicate_seq_rejected(self):
        buf = StagingBuffer(1024)
        buf.put(0, 1, b"a")
        with pytest.raises(CapacityError):
            buf.put(0, 2, b"b")

    def test_replayed_seq_rejected_after_consume(self):
        buf = StagingBuffer(1024)
        buf.put(0, 1, b"a")
        buf.get(0)
        with pytest.raises(CapacityError):
            buf.put(0, 1, b"a")


class TestOrderedDeposits:
    def test_out_of_order_put_waits_for_predecessor(self):
        buf = StagingBuffer(1024, timeout_s=5.0)
        done = []

        def later():
            buf.put(1, 11, b"b")
            done.append(1)

        t = threading.Thread(target=later, daemon=True)
        t.start()
        t.join(timeout=0.2)
        assert not done  # seq 1 must wait for seq 0
        buf.put(0, 10, b"a")
        t.join(timeout=5.0)
        assert done == [1]
        assert buf.get(0)[0] == 10
        assert buf.get(1)[0] == 11

    def test_no_starvation_under_full_buffer(self):
        """The original deadlock: later seqs must not squeeze out the one
        the consumer needs."""
        buf = StagingBuffer(capacity_bytes=300, timeout_s=5.0)
        n = 20
        errors = []

        def producer(seqs):
            try:
                for s in seqs:
                    buf.put(s, s, b"x" * 100)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        # Two producers with interleaved sequence claims.
        t1 = threading.Thread(target=producer, args=(range(0, n, 2),), daemon=True)
        t2 = threading.Thread(target=producer, args=(range(1, n, 2),), daemon=True)
        t1.start()
        t2.start()
        got = [buf.get(s)[0] for s in range(n)]
        t1.join(5)
        t2.join(5)
        assert got == list(range(n))
        assert not errors

    def test_oversized_sample_admitted_when_empty(self):
        buf = StagingBuffer(10)
        buf.put(0, 1, b"x" * 100)  # larger than capacity, buffer empty
        assert buf.get(0)[1] == b"x" * 100


class TestLifecycle:
    def test_close_unblocks_consumer(self):
        buf = StagingBuffer(1024, timeout_s=10.0)
        result = []

        def consumer():
            try:
                buf.get(0)
            except RuntimeError as exc:
                result.append(exc)

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        buf.close()
        t.join(timeout=5.0)
        assert result and isinstance(result[0], RuntimeError)

    def test_put_after_close_raises(self):
        buf = StagingBuffer(1024)
        buf.close()
        with pytest.raises(RuntimeError):
            buf.put(0, 1, b"a")

    def test_get_timeout(self):
        buf = StagingBuffer(1024, timeout_s=0.05)
        with pytest.raises(CapacityError):
            buf.get(5)

    def test_close_idempotent(self):
        buf = StagingBuffer(1024)
        buf.close()
        buf.close()
        assert buf.closed
