"""Remote-serving paths of comm.py and distributed.py, driven by fakes.

The :class:`FakeDataset` gives every byte a checkable identity and
counts PFS reads; the :class:`FakeClock` makes the network delay model
assertable without sleeping.
"""

import pytest

from repro.errors import RuntimeIOError
from repro.ports.fakes import FakeClock, FakeDataset, RecordingMetricsSink
from repro.runtime import DistributedJobGroup, MemoryBackend, WorkerGroup


class TestWorkerGroupDelayModel:
    def _serving_group(self, payload, delay=0.5):
        clock = FakeClock()
        group = WorkerGroup(2, network_delay_s_per_mb=delay, clock=clock)
        group.register(0, lambda sid: payload if sid == 7 else None, lambda: 0)
        return group, clock

    def test_hit_charges_transfer_time_on_the_clock(self):
        payload = b"\xab" * (1 << 20)  # exactly 1 MB
        group, clock = self._serving_group(payload)
        assert group.request_sample(0, 7) == payload
        assert clock.sleeps == [0.5]
        assert group.remote_bytes_served == len(payload)
        assert group.remote_requests == 1

    def test_miss_costs_nothing(self):
        group, clock = self._serving_group(b"x" * 1024)
        assert group.request_sample(0, 99) is None
        assert clock.sleeps == []
        assert group.remote_bytes_served == 0
        assert group.remote_requests == 1

    def test_delay_scales_with_size(self):
        group, clock = self._serving_group(b"y" * (1 << 19))  # 0.5 MB
        group.request_sample(0, 7)
        assert clock.sleeps == [0.25]


def _make_group(ds, workers=2, epochs=2, tier_bytes=None, **job_kwargs):
    if tier_bytes is None:
        tier_bytes = ds.total_bytes()  # every shard fits fully
    job_kwargs.setdefault("use_progress_heuristic", False)
    job_kwargs.setdefault("buffer_timeout_s", 5.0)
    return DistributedJobGroup(
        ds,
        num_workers=workers,
        batch_size=4,
        num_epochs=epochs,
        seed=11,
        tier_factories=[lambda rank: MemoryBackend(tier_bytes)],
        **job_kwargs,
    )


class TestDistributedRemoteServing:
    def test_remote_path_serves_verified_bytes(self):
        # Tight per-worker caches (~60 of 200 samples) force fetches
        # through the group's serving path.
        ds = FakeDataset([64] * 200, num_classes=3)
        group = _make_group(ds, epochs=3, tier_bytes=64 * 60)

        def verify(job, sample_id, data, label):
            assert data == ds.expected_payload(sample_id)
            assert label == sample_id % 3

        with group:
            stats = group.run_consumers(verify)
        assert group.errors() == []
        total = sum(s["local_hits"] + s["remote_hits"] + s["dataset_reads"] for s in stats)
        assert total == sum(j.total_samples for j in group.jobs)
        remote_hits = sum(s["remote_hits"] for s in stats)
        assert remote_hits > 0
        assert group.group.remote_requests >= remote_hits
        assert group.group.remote_bytes_served == 64 * remote_hits

    def test_caching_bounds_pfs_traffic(self):
        """Once tiers are warm, later epochs stop touching the dataset."""
        ds = FakeDataset([128] * 24)
        group = _make_group(ds, epochs=3)
        with group:
            stats = group.run_consumers()
        staged = sum(j.total_samples for j in group.jobs)
        assert ds.total_reads < staged
        assert sum(s["dataset_reads"] for s in stats) < staged

    def test_metrics_sink_sees_every_staged_sample(self):
        ds = FakeDataset([128] * 16)
        sink = RecordingMetricsSink()
        group = _make_group(ds, epochs=1, metrics_sink=sink)
        with group:
            group.run_consumers()
        counts = sink.counts()
        assert sum(counts.values()) == sum(j.total_samples for j in group.jobs)
        assert set(counts) <= {"local", "remote", "pfs"}

    def test_injected_read_failure_raises_and_is_recorded(self):
        ds = FakeDataset([128] * 16)
        ds.fail_reads([5])
        group = _make_group(ds, epochs=1)
        group.start()
        try:
            with pytest.raises(RuntimeIOError, match="sample 5"):
                group.run_consumers()
            assert any(isinstance(e, RuntimeIOError) for e in group.errors())
        finally:
            group.stop()

    def test_errors_empty_when_healthy(self):
        ds = FakeDataset([64] * 12)
        group = _make_group(ds, epochs=1)
        with group:
            group.run_consumers()
        assert group.errors() == []
