"""Storage backend capacity enforcement and concurrency safety."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.runtime import FilesystemBackend, MemoryBackend


@pytest.fixture(params=["memory", "filesystem"])
def backend(request, tmp_path):
    def make(capacity):
        if request.param == "memory":
            return MemoryBackend(capacity)
        return FilesystemBackend(capacity, tmp_path / "cache")

    return make


class TestCapacity:
    def test_put_get(self, backend):
        b = backend(1024)
        assert b.put(1, b"hello")
        assert b.get(1) == b"hello"
        assert 1 in b and len(b) == 1

    def test_capacity_enforced(self, backend):
        b = backend(100)
        assert b.put(1, b"x" * 60)
        assert not b.put(2, b"x" * 60)  # would exceed
        assert 2 not in b
        assert b.used_bytes == 60

    def test_reput_noop(self, backend):
        b = backend(100)
        assert b.put(1, b"abc")
        assert b.put(1, b"abc")
        assert b.used_bytes == 3

    def test_delete_frees(self, backend):
        b = backend(100)
        b.put(1, b"x" * 60)
        assert b.delete(1)
        assert b.used_bytes == 0
        assert b.put(2, b"x" * 60)

    def test_delete_missing(self, backend):
        assert not backend(100).delete(5)

    def test_get_missing(self, backend):
        assert backend(100).get(5) is None

    def test_clear(self, backend):
        b = backend(100)
        b.put(1, b"ab")
        b.put(2, b"cd")
        b.clear()
        assert len(b) == 0 and b.used_bytes == 0
        assert b.get(1) is None

    def test_sample_ids(self, backend):
        b = backend(100)
        b.put(3, b"a")
        b.put(7, b"b")
        assert sorted(b.sample_ids()) == [3, 7]

    def test_zero_capacity_rejects_all(self, backend):
        b = backend(0)
        assert not b.put(1, b"a")

    def test_negative_capacity_invalid(self):
        with pytest.raises(ConfigurationError):
            MemoryBackend(-1)


class TestFilesystemSpecifics:
    def test_files_on_disk(self, tmp_path):
        b = FilesystemBackend(1024, tmp_path / "c")
        b.put(9, b"data")
        assert (tmp_path / "c" / "sample_9.bin").exists()
        b.delete(9)
        assert not (tmp_path / "c" / "sample_9.bin").exists()


class TestConcurrency:
    def test_parallel_puts_respect_capacity(self, backend):
        b = backend(1000)

        def writer(base):
            for i in range(50):
                b.put(base + i, b"x" * 10)

        threads = [
            threading.Thread(target=writer, args=(k * 100,)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert b.used_bytes <= 1000
        assert len(b) == b.used_bytes // 10
