"""Prefetcher shutdown discipline: error propagation vs orderly exit.

A prefetcher thread that dies must poison the staging buffer so the
consumer sees the original exception (not a timeout); a thread
interrupted by an orderly ``stop()`` must exit silently even if the
closing buffer raises under it.
"""

import threading

import numpy as np
import pytest

from repro.errors import RuntimeIOError
from repro.ports.fakes import FakeDataset
from repro.runtime import (
    Job,
    SharedCursor,
    StagingBuffer,
    StagingPrefetcher,
    TierPrefetcher,
    WorkerGroup,
)


class TestPrefetchThreadDiscipline:
    def test_fetch_error_poisons_buffer_and_records(self):
        buf = StagingBuffer(1 << 20, timeout_s=2.0)
        stop = threading.Event()

        def fetch(seq, sample_id):
            raise RuntimeIOError("injected fetch failure")

        t = StagingPrefetcher(
            0, np.arange(4), SharedCursor(4), fetch, buf.put, stop, fail_fn=buf.fail
        )
        t.start()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert isinstance(t.error, RuntimeIOError)
        # The consumer sees the producer's exception, not a timeout.
        with pytest.raises(RuntimeIOError, match="injected fetch failure"):
            buf.get(0)
        with pytest.raises(RuntimeIOError, match="injected fetch failure"):
            buf.put(0, 0, b"x")

    def test_error_during_orderly_stop_is_suppressed(self):
        buf = StagingBuffer(1 << 20, timeout_s=2.0)
        stop = threading.Event()
        started = threading.Event()

        def fetch(seq, sample_id):
            started.set()
            stop.wait(timeout=5.0)
            raise RuntimeError("resource torn down under me")

        t = StagingPrefetcher(
            0, np.arange(2), SharedCursor(2), fetch, buf.put, stop, fail_fn=buf.fail
        )
        t.start()
        assert started.wait(timeout=5.0)
        stop.set()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert t.error is None
        assert buf.error is None

    def test_blocked_put_released_by_close(self):
        """The Job.stop() path: close() unblocks a waiting producer."""
        buf = StagingBuffer(100, timeout_s=10.0)
        stop = threading.Event()

        t = StagingPrefetcher(
            0,
            np.arange(3),
            SharedCursor(3),
            lambda seq, sid: b"\x01" * 80,  # second deposit cannot fit
            buf.put,
            stop,
            fail_fn=buf.fail,
        )
        t.start()
        deadline = threading.Event()
        while len(buf) == 0 and not deadline.wait(0.01):
            pass
        stop.set()
        buf.close()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert t.error is None  # closing under a blocked put is clean

    def test_tier_prefetcher_read_error_propagates(self):
        buf = StagingBuffer(1 << 20, timeout_s=2.0)
        stop = threading.Event()

        def read(sample_id):
            raise RuntimeIOError("tier fill failed")

        t = TierPrefetcher(
            0,
            0,
            1,
            np.arange(3),
            read,
            lambda tier, sid, data: True,
            lambda: 0,
            stop,
            fail_fn=buf.fail,
        )
        t.start()
        t.join(timeout=5.0)
        assert isinstance(t.error, RuntimeIOError)
        with pytest.raises(RuntimeIOError, match="tier fill failed"):
            buf.get(0)


def _single_rank_job(dataset, **kwargs):
    kwargs.setdefault("batch_size", 4)
    kwargs.setdefault("num_epochs", 1)
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("buffer_timeout_s", 5.0)
    return Job(dataset, rank=0, group=WorkerGroup(1), **kwargs)


class TestJobShutdown:
    def test_failed_read_surfaces_in_consumer(self):
        ds = FakeDataset([64] * 16)
        ds.fail_reads([3])
        job = _single_rank_job(ds)
        job.start()
        try:
            with pytest.raises(RuntimeIOError, match="sample 3"):
                for _ in job:
                    pass
            assert job.errors
            assert any(isinstance(e, RuntimeIOError) for e in job.errors)
        finally:
            job.stop()

    def test_clean_stop_midstream_records_no_errors(self):
        # A staging buffer that holds ~2 samples keeps producers blocked
        # the whole time, so stop() exercises the release path for real.
        ds = FakeDataset([64] * 32)
        job = _single_rank_job(ds, staging_bytes=160)
        job.start()
        for _ in range(4):
            job.get()
        job.stop()
        assert job.errors == []

    def test_stop_joins_every_thread(self):
        ds = FakeDataset([64] * 16)
        job = _single_rank_job(ds, staging_threads=3)
        job.start()
        job.stop()
        assert all(not t.is_alive() for t in job._threads)
