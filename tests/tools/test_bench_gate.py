"""The benchmark-trajectory gate (tools/bench_gate.py).

Exercises the gate against synthetic pytest-benchmark JSON fixtures:
``--write-baseline`` creates a baselines file the same series then
passes against; a >= 10% synthetic cells/sec regression fails (exit 1)
under a 5% tolerance; in-tolerance drift passes; a benchmark that
disappears from the input fails; and the ``--summary`` /
``--previous`` markdown carries the old-vs-new delta.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_gate",
    Path(__file__).resolve().parents[2] / "tools" / "bench_gate.py",
)
bench_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_gate)  # type: ignore[union-attr]


def _bench_json(path: Path, means: dict[str, float]) -> Path:
    """Write a minimal pytest-benchmark file with the given means."""
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {"name": name, "stats": {"mean": mean}}
                    for name, mean in means.items()
                ]
            }
        )
    )
    return path


@pytest.fixture()
def bench_dir(tmp_path):
    """A BENCH_engine.json (two benchmarks) plus a baselines path."""
    bench = _bench_json(
        tmp_path / "BENCH_engine.json",
        {"test_engine_throughput": 0.05, "test_paper_scale": 2.0},
    )
    return bench, tmp_path / "baselines.json"


def test_write_baseline_then_pass(bench_dir, capsys):
    bench, baselines = bench_dir
    assert (
        bench_gate.main([str(bench), "--baselines", str(baselines), "--write-baseline"])
        == 0
    )
    doc = json.loads(baselines.read_text())
    assert doc["suites"]["engine"]["test_engine_throughput"]["cells_per_sec"] == 20.0
    assert doc["suites"]["engine"]["test_paper_scale"]["cells_per_sec"] == 0.5
    assert bench_gate.main([str(bench), "--baselines", str(baselines)]) == 0
    assert "bench gate passed" in capsys.readouterr().out


def test_ten_percent_regression_fails(bench_dir, tmp_path):
    """The acceptance criterion: a synthetic >=10% regression exits non-zero."""
    bench, baselines = bench_dir
    bench_gate.main([str(bench), "--baselines", str(baselines), "--write-baseline"])
    (tmp_path / "slow").mkdir()
    slow = _bench_json(
        tmp_path / "slow" / "BENCH_engine.json",
        # mean up 12.5% -> cells/sec down ~11.1%
        {"test_engine_throughput": 0.05 * 1.125, "test_paper_scale": 2.0 * 1.125},
    )
    assert (
        bench_gate.main(
            [str(slow), "--baselines", str(baselines), "--tolerance", "0.05"]
        )
        == 1
    )


def test_within_tolerance_passes(bench_dir, tmp_path):
    bench, baselines = bench_dir
    bench_gate.main([str(bench), "--baselines", str(baselines), "--write-baseline"])
    (tmp_path / "ok").mkdir()
    drift = _bench_json(
        tmp_path / "ok" / "BENCH_engine.json",
        {"test_engine_throughput": 0.05 * 1.02, "test_paper_scale": 2.0 * 1.02},
    )
    assert (
        bench_gate.main(
            [str(drift), "--baselines", str(baselines), "--tolerance", "0.05"]
        )
        == 0
    )


def test_missing_benchmark_fails(bench_dir, tmp_path):
    """Dropping a baselined benchmark is a failure, not a silent pass."""
    bench, baselines = bench_dir
    bench_gate.main([str(bench), "--baselines", str(baselines), "--write-baseline"])
    (tmp_path / "partial").mkdir()
    partial = _bench_json(
        tmp_path / "partial" / "BENCH_engine.json",
        {"test_engine_throughput": 0.05},
    )
    assert bench_gate.main([str(partial), "--baselines", str(baselines)]) == 1


def test_new_benchmark_is_noted_not_failed(bench_dir, tmp_path, capsys):
    bench, baselines = bench_dir
    bench_gate.main([str(bench), "--baselines", str(baselines), "--write-baseline"])
    (tmp_path / "extra").mkdir()
    extra = _bench_json(
        tmp_path / "extra" / "BENCH_engine.json",
        {
            "test_engine_throughput": 0.05,
            "test_paper_scale": 2.0,
            "test_brand_new": 1.0,
        },
    )
    assert bench_gate.main([str(extra), "--baselines", str(baselines)]) == 0
    assert "no baseline yet" in capsys.readouterr().out


def test_summary_carries_previous_delta(bench_dir, tmp_path):
    bench, baselines = bench_dir
    bench_gate.main([str(bench), "--baselines", str(baselines), "--write-baseline"])
    (tmp_path / "prev").mkdir()
    prev = _bench_json(
        tmp_path / "prev" / "BENCH_engine.json",
        {"test_engine_throughput": 0.04, "test_paper_scale": 2.0},
    )
    summary = tmp_path / "summary.md"
    assert (
        bench_gate.main(
            [
                str(bench),
                "--baselines",
                str(baselines),
                "--previous",
                str(prev),
                "--summary",
                str(summary),
            ]
        )
        == 0
    )
    text = summary.read_text()
    assert "## Benchmark gate" in text
    # previous 25.0 -> current 20.0 cells/sec: a -20% delta row
    assert "| engine:test_engine_throughput | 25.00 | 20.00 | -20.0% |" in text


def test_missing_previous_artifact_tolerated(bench_dir, tmp_path):
    bench, baselines = bench_dir
    bench_gate.main([str(bench), "--baselines", str(baselines), "--write-baseline"])
    summary = tmp_path / "summary.md"
    assert (
        bench_gate.main(
            [
                str(bench),
                "--baselines",
                str(baselines),
                "--previous",
                str(tmp_path / "nope" / "BENCH_engine.json"),
                "--summary",
                str(summary),
            ]
        )
        == 0
    )
    assert "no previous artifact" in summary.read_text()


def test_summary_delta_table_without_previous(bench_dir, tmp_path):
    """ISSUE 9: the job summary carries the per-benchmark table even on
    a first run with no previous artifact to diff against."""
    bench, baselines = bench_dir
    bench_gate.main([str(bench), "--baselines", str(baselines), "--write-baseline"])
    summary = tmp_path / "summary.md"
    assert (
        bench_gate.main(
            [str(bench), "--baselines", str(baselines), "--summary", str(summary)]
        )
        == 0
    )
    text = summary.read_text()
    assert "### vs previous run" in text
    assert "| engine:test_engine_throughput | — | 20.00 | — |" in text
    assert "| engine:test_paper_scale | — | 0.50 | — |" in text


def test_missing_bench_file_is_usage_error(tmp_path):
    assert bench_gate.main([str(tmp_path / "BENCH_engine.json")]) == 2


def test_no_baselines_is_usage_error(bench_dir):
    bench, baselines = bench_dir
    assert bench_gate.main([str(bench), "--baselines", str(baselines)]) == 2
