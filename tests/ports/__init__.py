"""Tests for the shared domain ports and their fakes."""
