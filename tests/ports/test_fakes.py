"""The deterministic fakes themselves, plus their registry wiring."""

import pytest

from repro.api import make_dataset
from repro.datasets import DatasetModel
from repro.errors import ConfigurationError, RuntimeIOError
from repro.ports import (
    BYTES_PER_MB,
    FAKE_PROFILES,
    FakeClock,
    FakeDataset,
    FakeTier,
    RecordingMetricsSink,
    fake_dataset_model,
)
from repro.ports.ports import ClusterClock, DatasetSource, MetricsSink, StorageTier


class TestFakeDataset:
    def test_payloads_deterministic_and_sized(self):
        ds = FakeDataset([64, 128, 17])
        for sid in range(3):
            data = ds.read(sid)
            assert data == ds.expected_payload(sid)
            assert len(data) == ds.size(sid)
        assert ds.read(0) == ds.read(0)

    def test_payloads_distinguish_samples_and_seeds(self):
        ds = FakeDataset([64, 64])
        assert ds.read(0) != ds.read(1)
        other = FakeDataset([64, 64], seed=999)
        assert ds.read(0) != other.read(0)

    def test_read_counters(self):
        ds = FakeDataset([64] * 4)
        ds.read(1)
        ds.read(1)
        ds.read(2)
        assert ds.read_count(1) == 2
        assert ds.read_count(0) == 0
        assert ds.total_reads == 3
        ds.reset_reads()
        assert ds.total_reads == 0

    def test_fail_reads_and_heal(self):
        ds = FakeDataset([64] * 4)
        ds.fail_reads([2])
        with pytest.raises(RuntimeIOError, match="sample 2"):
            ds.read(2)
        ds.heal()
        assert ds.read(2) == ds.expected_payload(2)

    def test_latency_charged_to_injected_clock(self):
        clock = FakeClock()
        ds = FakeDataset([64] * 2, latency_s=0.25, clock=clock)
        ds.read(0)
        ds.read(1)
        assert clock.sleeps == [0.25, 0.25]

    def test_from_model_sizes_exact_for_dyadic_profiles(self):
        for profile, (n, mb) in FAKE_PROFILES.items():
            model = fake_dataset_model(profile)
            ds = FakeDataset.from_model(model)
            assert len(ds) == n
            assert all(ds.size(i) == int(mb * BYTES_PER_MB) for i in range(n))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FakeDataset([])
        with pytest.raises(ConfigurationError):
            FakeDataset([64, 0])


class TestFakeTier:
    def test_corrupt_flips_stored_bytes(self):
        tier = FakeTier(1 << 20)
        tier.put(0, b"\x00\x0f")
        tier.corrupt(0)
        assert tier.get(0) == b"\xff\xf0"

    def test_corrupt_missing_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            FakeTier(1 << 20).corrupt(0)

    def test_fail_reads_and_heal(self):
        tier = FakeTier(1 << 20)
        tier.put(0, b"abc")
        tier.fail_reads([0])
        with pytest.raises(RuntimeIOError):
            tier.get(0)
        tier.heal()
        assert tier.get(0) == b"abc"


class TestFakeClock:
    def test_sleep_advances_virtual_time(self):
        clock = FakeClock(start=10.0)
        clock.sleep(1.5)
        clock.sleep(0.5)
        assert clock.monotonic() == 12.0
        assert clock.sleeps == [1.5, 0.5]
        assert clock.total_slept == 2.0

    def test_advance_does_not_record_a_sleep(self):
        clock = FakeClock()
        clock.advance(5.0)
        assert clock.monotonic() == 5.0
        assert clock.sleeps == []

    def test_negative_sleep_clamped(self):
        clock = FakeClock()
        clock.sleep(-1.0)
        assert clock.monotonic() == 0.0


class TestRecordingMetricsSink:
    def test_aggregates_by_epoch_and_source(self):
        sink = RecordingMetricsSink()
        sink.record_fetch(0, 0, "pfs", 1, 100)
        sink.record_fetch(1, 0, "local", 2, 50)
        sink.record_fetch(0, 1, "pfs", 1, 100)
        assert sink.counts() == {"pfs": 2, "local": 1}
        assert sink.counts(epoch=0) == {"pfs": 1, "local": 1}
        assert sink.bytes_by_source(epoch=1) == {"pfs": 100}
        sink.clear()
        assert sink.events == []


class TestPortConformance:
    """The fakes really are the ports (runtime_checkable protocols)."""

    def test_fakes_satisfy_their_protocols(self):
        assert isinstance(FakeDataset([64]), DatasetSource)
        assert isinstance(FakeTier(1024), StorageTier)
        assert isinstance(FakeClock(), ClusterClock)
        assert isinstance(RecordingMetricsSink(), MetricsSink)


class TestRegistryWiring:
    def test_fake_registered_as_dataset_variant(self):
        model = make_dataset("fake:small")
        assert isinstance(model, DatasetModel)
        assert model.name == "fake-small"
        assert model.num_samples == FAKE_PROFILES["small"][0]

    def test_model_and_twin_agree_on_bytes(self):
        model = make_dataset("fake:tiny")
        ds = FakeDataset.from_model(model)
        sizes_mb = model.sizes_mb()
        assert all(
            ds.size(i) == sizes_mb[i] * BYTES_PER_MB for i in range(len(ds))
        )

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError, match="profile"):
            fake_dataset_model("huge")
