"""Training-layer tests: compute models, accuracy curves, composition."""

import numpy as np
import pytest

from repro.datasets import imagenet1k
from repro.errors import ConfigurationError
from repro.training import (
    RESNET50_P100,
    RESNET50_V100,
    AccuracyModel,
    AccuracyStage,
    ComputeModel,
    compare_curves,
    compose_curve,
    goyal_resnet50_schedule,
)


class TestComputeModel:
    def test_mbps_conversion(self):
        ds = imagenet1k()
        model = ComputeModel("x", 100.0)
        assert model.mbps(ds) == pytest.approx(100 * ds.mean_realized_size_mb)

    def test_epoch_compute_scaling(self):
        ds = imagenet1k()
        t32 = RESNET50_V100.epoch_compute_seconds(ds, 32)
        t64 = RESNET50_V100.epoch_compute_seconds(ds, 64)
        assert t32 == pytest.approx(2 * t64)

    def test_v100_faster_than_p100(self):
        assert RESNET50_V100.samples_per_second > RESNET50_P100.samples_per_second

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ComputeModel("x", 0.0)
        with pytest.raises(ConfigurationError):
            RESNET50_V100.epoch_compute_seconds(imagenet1k(), 0)


class TestAccuracyModel:
    def test_goyal_final_accuracy(self):
        model = goyal_resnet50_schedule()
        assert model.top1(90) == pytest.approx(76.5, abs=0.5)

    def test_monotone_nondecreasing(self):
        model = goyal_resnet50_schedule()
        accs = model.top1(np.linspace(0, 90, 500))
        assert np.all(np.diff(accs) >= -1e-9)

    def test_lr_drops_cause_jumps(self):
        """The staircase: accuracy gains accelerate right after a drop."""
        model = goyal_resnet50_schedule()
        before = model.top1(30.0) - model.top1(28.0)
        after = model.top1(32.0) - model.top1(30.0)
        assert after > before

    def test_milestone_shape(self):
        """Roughly the published ResNet-50 curve: high 50s/low 60s by 30,
        >70 by 60, >75 by 85."""
        model = goyal_resnet50_schedule()
        assert 55 <= model.top1(30) <= 66
        assert 70 <= model.top1(60) <= 74
        assert model.top1(85) > 75

    def test_scalar_and_array(self):
        model = goyal_resnet50_schedule()
        assert isinstance(model.top1(10.0), float)
        assert model.top1(np.array([10.0])).shape == (1,)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AccuracyStage(0, 50.0, rate=0.0)
        with pytest.raises(ConfigurationError):
            AccuracyStage(0, 120.0, rate=0.1)
        with pytest.raises(ConfigurationError):
            AccuracyModel(stages=())
        with pytest.raises(ConfigurationError):
            AccuracyModel(
                stages=(
                    AccuracyStage(30, 60, 0.1),
                    AccuracyStage(0, 70, 0.1),
                )
            )


class TestEndToEnd:
    def test_compose_curve(self):
        model = goyal_resnet50_schedule()
        curve = compose_curve("x", np.full(90, 60.0), model)
        assert curve.total_time_s == pytest.approx(90 * 60.0)
        assert curve.final_top1 == pytest.approx(76.5, abs=0.5)

    def test_speedup(self):
        model = goyal_resnet50_schedule()
        cmp = compare_curves(np.full(90, 74.0), np.full(90, 52.0), model)
        assert cmp.speedup == pytest.approx(74 / 52)
        # identical learning curve, compressed clock
        np.testing.assert_allclose(
            cmp.baseline.top1_at_epoch_end, cmp.contender.top1_at_epoch_end
        )

    def test_time_to_accuracy(self):
        model = goyal_resnet50_schedule()
        cmp = compare_curves(np.full(90, 74.0), np.full(90, 52.0), model)
        assert cmp.speedup_to_accuracy(70.0) == pytest.approx(74 / 52)
        assert cmp.baseline.time_to_accuracy_s(99.0) is None

    def test_validation(self):
        model = goyal_resnet50_schedule()
        with pytest.raises(ConfigurationError):
            compose_curve("x", np.array([]), model)
        with pytest.raises(ConfigurationError):
            compose_curve("x", np.array([1.0, -1.0]), model)
        with pytest.raises(ConfigurationError):
            compare_curves(np.ones(5), np.ones(6), model)
