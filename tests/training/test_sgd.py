"""SGD trainer tests, including loader-equivalence of learning curves."""

import numpy as np
import pytest

from repro.core import StreamConfig
from repro.errors import ConfigurationError
from repro.loader import InMemoryDataset, NaiveLoader, NoPFSDataLoader
from repro.runtime import DistributedJobGroup
from repro.training import MLPClassifier, batch_to_features, train_classifier


def learnable_dataset(n=200, dim=16, classes=3):
    return InMemoryDataset.classification(n, dim, num_classes=classes, seed=4)


class TestMLP:
    def test_loss_decreases(self):
        ds = learnable_dataset()
        cfg = StreamConfig(5, len(ds), 1, 10, 4)
        result = train_classifier(NaiveLoader(ds, cfg, 0), 16, 3, seed=1)
        first = np.mean(result.losses[:5])
        last = np.mean(result.losses[-5:])
        assert last < first

    def test_learns_better_than_chance(self):
        ds = learnable_dataset()
        cfg = StreamConfig(5, len(ds), 1, 10, 6)
        result = train_classifier(NaiveLoader(ds, cfg, 0), 16, 3, seed=1)
        # running train accuracy over 6 epochs well above 1/3 chance
        assert result.train_accuracy > 0.6

    def test_deterministic(self):
        ds = learnable_dataset()
        cfg = StreamConfig(5, len(ds), 1, 10, 2)
        a = train_classifier(NaiveLoader(ds, cfg, 0), 16, 3, seed=1)
        b = train_classifier(NaiveLoader(ds, cfg, 0), 16, 3, seed=1)
        np.testing.assert_allclose(a.losses, b.losses)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier(0, 4, 2)
        with pytest.raises(ConfigurationError):
            MLPClassifier(4, 4, 2, lr=0.0)
        with pytest.raises(ConfigurationError):
            train_classifier(iter(()), 4, 2)

    def test_batch_to_features_padding(self):
        from repro.loader import collate_batch

        batch = collate_batch([(0, b"\xff\x00", 0)])
        feats = batch_to_features(batch, 4)
        np.testing.assert_allclose(feats, [[1.0, 0.0, 0.0, 0.0]])


class TestLoaderEquivalentTraining:
    def test_identical_learning_curve_through_nopfs(self):
        """The paper's integration claim, end to end: swapping the data
        loader changes wall-clock, not the training trajectory."""
        ds = learnable_dataset()
        cfg = StreamConfig(5, len(ds), 1, 10, 2)
        naive_result = train_classifier(NaiveLoader(ds, cfg, 0), 16, 3, seed=2)

        grp = DistributedJobGroup(
            ds, num_workers=1, batch_size=10, num_epochs=2, seed=5,
            staging_bytes=64 << 10,
        )
        with grp:
            nopfs_result = train_classifier(
                NoPFSDataLoader(grp.jobs[0]), 16, 3, seed=2
            )
        np.testing.assert_allclose(naive_result.losses, nopfs_result.losses)
        assert naive_result.train_accuracy == nopfs_result.train_accuracy
