"""Loader equivalence: all three loaders serve identical streams."""

import numpy as np
import pytest

from repro.core import StreamConfig
from repro.errors import ConfigurationError
from repro.loader import (
    ClairvoyantDistributedSampler,
    DoubleBufferLoader,
    InMemoryDataset,
    NaiveLoader,
    NoPFSDataLoader,
    collate_batch,
)
from repro.runtime import DistributedJobGroup


def setup(n=120, workers=2, batch=5, epochs=2, seed=13):
    ds = InMemoryDataset.random(n, 32, num_classes=4, seed=1)
    cfg = StreamConfig(seed, n, workers, batch, epochs)
    return ds, cfg


class TestSampler:
    def test_partition(self):
        ds, cfg = setup()
        all_ids = np.concatenate(
            [ClairvoyantDistributedSampler(cfg, r).indices(0) for r in range(2)]
        )
        assert np.unique(all_ids).size == all_ids.size

    def test_set_epoch(self):
        ds, cfg = setup()
        s = ClairvoyantDistributedSampler(cfg, 0)
        s.set_epoch(1)
        np.testing.assert_array_equal(s.indices(), s.indices(1))
        assert not np.array_equal(s.indices(0), s.indices(1))

    def test_len_and_iter(self):
        ds, cfg = setup()
        s = ClairvoyantDistributedSampler(cfg, 0)
        assert len(list(s)) == len(s)

    def test_validation(self):
        ds, cfg = setup()
        with pytest.raises(ConfigurationError):
            ClairvoyantDistributedSampler(cfg, 9)
        with pytest.raises(ConfigurationError):
            ClairvoyantDistributedSampler(cfg, 0).set_epoch(-1)


class TestCollate:
    def test_contiguous(self):
        batch = collate_batch([(1, b"ab", 0), (2, b"cd", 1)])
        assert batch.is_contiguous
        assert batch.data.shape == (2, 2)
        np.testing.assert_array_equal(batch.ids, [1, 2])
        np.testing.assert_array_equal(batch.labels, [0, 1])
        assert len(batch) == 2

    def test_ragged(self):
        batch = collate_batch([(1, b"ab", 0), (2, b"cde", 1)])
        assert not batch.is_contiguous
        assert [len(d) for d in batch.data] == [2, 3]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            collate_batch([])


class TestLoaderEquivalence:
    def test_naive_vs_double_buffer_identical(self):
        ds, cfg = setup()
        for rank in range(2):
            naive = [b.ids.tolist() for b in NaiveLoader(ds, cfg, rank)]
            dbl = [b.ids.tolist() for b in DoubleBufferLoader(ds, cfg, rank)]
            assert naive == dbl

    def test_nopfs_matches_naive_order(self):
        """Same seed => NoPFS serves exactly the PyTorch-sampler order."""
        ds, cfg = setup()
        grp = DistributedJobGroup(
            ds,
            num_workers=cfg.num_workers,
            batch_size=cfg.batch_size,
            num_epochs=cfg.num_epochs,
            seed=cfg.seed,
            staging_bytes=4096,
        )
        naive_ids = [b.ids.tolist() for b in NaiveLoader(ds, cfg, 0)]
        with grp:
            nopfs_ids = [
                b.ids.tolist() for b in NoPFSDataLoader(grp.jobs[0])
            ]
        assert nopfs_ids == naive_ids

    def test_nopfs_batch_content(self):
        ds, cfg = setup(workers=1, epochs=1)
        grp = DistributedJobGroup(
            ds, num_workers=1, batch_size=5, num_epochs=1, seed=13,
            staging_bytes=4096,
        )
        with grp:
            loader = NoPFSDataLoader(grp.jobs[0])
            for batch in loader.epoch(0):
                for row, sid in enumerate(batch.ids):
                    np.testing.assert_array_equal(
                        batch.data[row],
                        np.frombuffer(ds.read(int(sid)), dtype=np.uint8),
                    )
                    assert batch.labels[row] == ds.label(int(sid))

    def test_nopfs_epoch_order_enforced(self):
        ds, cfg = setup(workers=1)
        grp = DistributedJobGroup(
            ds, num_workers=1, batch_size=5, num_epochs=2, seed=13,
            staging_bytes=4096,
        )
        with grp:
            loader = NoPFSDataLoader(grp.jobs[0])
            with pytest.raises(ConfigurationError):
                next(loader.epoch(1))

    def test_double_buffer_validation(self):
        ds, cfg = setup()
        with pytest.raises(ConfigurationError):
            DoubleBufferLoader(ds, cfg, 0, prefetch_factor=0)

    def test_double_buffer_propagates_errors(self):
        ds, cfg = setup()

        class Broken(InMemoryDataset):
            def read(self, sample_id):
                raise RuntimeError("disk on fire")

        broken = Broken([b"xx"] * 120, [0] * 120)
        loader = DoubleBufferLoader(broken, cfg, 0)
        with pytest.raises(RuntimeError, match="disk on fire"):
            list(loader.epoch(0))

    def test_batches_per_epoch(self):
        ds, cfg = setup()
        grp = DistributedJobGroup(
            ds, num_workers=2, batch_size=5, num_epochs=2, seed=13,
            staging_bytes=4096,
        )
        loader = NoPFSDataLoader(grp.jobs[0])
        assert loader.batches_per_epoch == cfg.iterations_per_epoch
        grp.start()
        grp.stop()
