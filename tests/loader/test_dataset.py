"""Dataset implementations: generation, reading, labels, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.loader import BinaryFolderDataset, InMemoryDataset, SyntheticFileDataset


class TestInMemory:
    def test_roundtrip(self):
        ds = InMemoryDataset([b"aa", b"bbb"], [0, 1])
        assert len(ds) == 2
        assert ds.read(1) == b"bbb"
        assert ds.size(1) == 3
        assert ds.label(1) == 1
        assert ds.total_bytes() == 5

    def test_random_generation(self):
        ds = InMemoryDataset.random(20, 16, num_classes=4, seed=1)
        assert len(ds) == 20
        assert ds.size(0) == 16
        assert ds.num_classes == 4

    def test_random_deterministic(self):
        a = InMemoryDataset.random(5, 8, seed=2)
        b = InMemoryDataset.random(5, 8, seed=2)
        assert a.read(3) == b.read(3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InMemoryDataset([])
        with pytest.raises(ConfigurationError):
            InMemoryDataset([b"a"], [0, 1])
        ds = InMemoryDataset([b"a"])
        with pytest.raises(ConfigurationError):
            ds.read(5)


class TestSyntheticFile:
    def test_generate_and_open(self, tmp_path):
        ds = SyntheticFileDataset.generate(
            tmp_path / "d", num_samples=10, mean_bytes=64, num_classes=2, seed=3
        )
        assert len(ds) == 10
        assert ds.size(0) == 64
        assert len(ds.read(0)) == 64
        assert ds.num_classes == 2

    def test_reopen_from_manifest(self, tmp_path):
        SyntheticFileDataset.generate(tmp_path / "d", 5, 32, seed=3)
        reopened = SyntheticFileDataset(tmp_path / "d")
        assert len(reopened) == 5
        assert len(reopened.read(4)) == 32

    def test_variable_sizes(self, tmp_path):
        ds = SyntheticFileDataset.generate(
            tmp_path / "d", 30, mean_bytes=100, std_bytes=40, seed=4
        )
        sizes = {ds.size(i) for i in range(30)}
        assert len(sizes) > 1
        assert all(s >= 16 for s in sizes)
        assert all(ds.size(i) == len(ds.read(i)) for i in range(30))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SyntheticFileDataset(tmp_path)

    def test_latency_applied(self, tmp_path):
        import time

        SyntheticFileDataset.generate(tmp_path / "d", 3, 16, seed=5)
        slow = SyntheticFileDataset(tmp_path / "d", latency_s=0.02)
        t0 = time.perf_counter()
        slow.read(0)
        assert time.perf_counter() - t0 >= 0.02

    def test_generate_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SyntheticFileDataset.generate(tmp_path / "d", 0, 16)


class TestBinaryFolder:
    def test_generate_and_scan(self, tmp_path):
        ds = BinaryFolderDataset.generate(
            tmp_path / "r", num_classes=3, samples_per_class=4, sample_bytes=32
        )
        assert len(ds) == 12
        assert ds.num_classes == 3
        assert ds.classes == ["class_0000", "class_0001", "class_0002"]
        assert len(ds.read(0)) == 32

    def test_labels_by_directory(self, tmp_path):
        ds = BinaryFolderDataset.generate(tmp_path / "r", 2, 3, 8)
        labels = [ds.label(i) for i in range(len(ds))]
        assert labels == [0, 0, 0, 1, 1, 1]

    def test_empty_root_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            BinaryFolderDataset(tmp_path)

    def test_missing_root_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            BinaryFolderDataset(tmp_path / "nope")
