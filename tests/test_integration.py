"""Cross-layer integration tests: runtime, loaders, simulator, training.

These exercise several subsystems together on realistic (small) setups —
the scenarios a downstream user actually runs.
"""

import threading

import numpy as np

from repro.core import AccessStream, StreamConfig
from repro.loader import (
    BinaryFolderDataset,
    NaiveLoader,
    NoPFSDataLoader,
    SyntheticFileDataset,
)
from repro.runtime import (
    DistributedJobGroup,
    FilesystemBackend,
    MemoryBackend,
)
from repro.training import train_classifier


class TestImageFolderPipeline:
    """The paper's ImageNet layout through the full functional stack."""

    def test_binary_folder_through_nopfs(self, tmp_path):
        ds = BinaryFolderDataset.generate(
            tmp_path / "imgs", num_classes=3, samples_per_class=20, sample_bytes=64
        )
        grp = DistributedJobGroup(
            ds, num_workers=2, batch_size=4, num_epochs=2, seed=3,
            staging_bytes=2048,
        )
        labels_seen = set()
        with grp:
            loaders = [NoPFSDataLoader(j) for j in grp.jobs]
            outs = [[], []]

            def consume(ld, out):
                for batch in ld:
                    out.extend(zip(batch.ids.tolist(), batch.labels.tolist()))

            ts = [
                threading.Thread(target=consume, args=(ld, out))
                for ld, out in zip(loaders, outs)
            ]
            for t in ts:
                t.start()
            for t in ts:
                t.join(60)
        for out in outs:
            for sid, label in out:
                assert label == ds.label(sid)
                labels_seen.add(label)
        assert labels_seen == {0, 1, 2}


class TestTieredCaches:
    """RAM + filesystem tiers together, like the paper's RAM+SSD ranks."""

    def test_two_tier_job(self, tmp_path):
        ds = SyntheticFileDataset.generate(
            tmp_path / "data", num_samples=150, mean_bytes=128, seed=5
        )
        grp = DistributedJobGroup(
            ds,
            num_workers=2,
            batch_size=5,
            num_epochs=3,
            seed=9,
            tier_factories=[
                lambda r: MemoryBackend(128 * 20),  # tiny RAM: 20 samples
                lambda r, p=tmp_path: FilesystemBackend(
                    128 * 200, p / f"ssd_{r}"
                ),
            ],
            staging_bytes=4096,
        )
        with grp:
            stats = grp.run_consumers()
        # Both tiers were used: more cached samples than RAM alone holds.
        for job in grp.jobs:
            assert len(job.tiers[1]) > 0, "filesystem tier never used"
            assert len(job.tiers[0]) > 0, "memory tier never used"
        for job, s in zip(grp.jobs, stats):
            assert s["local_hits"] + s["remote_hits"] + s["dataset_reads"] == (
                job.total_samples
            )

    def test_tier_capacity_respected_end_to_end(self, tmp_path):
        ds = SyntheticFileDataset.generate(
            tmp_path / "d", num_samples=100, mean_bytes=100, seed=6
        )
        cap = 100 * 10
        grp = DistributedJobGroup(
            ds, num_workers=1, batch_size=5, num_epochs=2, seed=2,
            tier_factories=[lambda r: MemoryBackend(cap)],
            staging_bytes=2048,
        )
        with grp:
            grp.run_consumers()
        assert grp.jobs[0].tiers[0].used_bytes <= cap


class TestStreamConsistencyAcrossLayers:
    """The same seed must mean the same accesses in every subsystem."""

    def test_job_loader_sampler_agree(self, tmp_path):
        ds = SyntheticFileDataset.generate(
            tmp_path / "d", num_samples=120, mean_bytes=32, seed=8
        )
        cfg = StreamConfig(77, 120, 2, 6, 2)
        sampler_ids = np.concatenate(
            [
                AccessStream(cfg).worker_epoch_stream(0, e)
                for e in range(2)
            ]
        )
        grp = DistributedJobGroup(
            ds, num_workers=2, batch_size=6, num_epochs=2, seed=77,
            staging_bytes=2048,
        )
        np.testing.assert_array_equal(grp.jobs[0].stream_ids, sampler_ids)
        grp.start()
        grp.stop()

    def test_training_invariant_to_cache_configuration(self, tmp_path):
        """Cache sizes change *where* bytes come from, never *what* the
        model sees: training is bit-identical across configurations."""
        ds = SyntheticFileDataset.generate(
            tmp_path / "d",
            num_samples=90,
            mean_bytes=64,
            num_classes=3,
            seed=4,
            learnable=True,
        )
        results = []
        for cache_bytes in (64 * 5, 64 * 1000):
            grp = DistributedJobGroup(
                ds, num_workers=1, batch_size=6, num_epochs=2, seed=12,
                tier_factories=[lambda r, c=cache_bytes: MemoryBackend(c)],
                staging_bytes=2048,
            )
            with grp:
                results.append(
                    train_classifier(
                        NoPFSDataLoader(grp.jobs[0]), 16, 3, seed=5
                    )
                )
        np.testing.assert_allclose(results[0].losses, results[1].losses)

    def test_naive_loader_same_bytes(self, tmp_path):
        ds = SyntheticFileDataset.generate(
            tmp_path / "d", num_samples=60, mean_bytes=48, seed=10
        )
        cfg = StreamConfig(5, 60, 1, 6, 1)
        naive_batches = list(NaiveLoader(ds, cfg, 0))
        grp = DistributedJobGroup(
            ds, num_workers=1, batch_size=6, num_epochs=1, seed=5,
            staging_bytes=2048,
        )
        with grp:
            nopfs_batches = list(NoPFSDataLoader(grp.jobs[0]))
        assert len(naive_batches) == len(nopfs_batches)
        for a, b in zip(naive_batches, nopfs_batches):
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.data, b.data)


class TestSimulatorRuntimeAgreement:
    """Qualitative agreement between the two artifacts: what the
    simulator predicts (cache hits dominate after epoch 0) is what the
    functional runtime actually does."""

    def test_warm_epoch_locality(self, tmp_path):
        ds = SyntheticFileDataset.generate(
            tmp_path / "d", num_samples=100, mean_bytes=64, seed=3
        )
        grp = DistributedJobGroup(
            ds, num_workers=2, batch_size=5, num_epochs=4, seed=21,
            tier_factories=[lambda r: MemoryBackend(1 << 20)],  # plenty
            staging_bytes=4096,
        )
        with grp:
            stats = grp.run_consumers()
        for job, s in zip(grp.jobs, stats):
            # With full-coverage caches, dataset reads are bounded by
            # roughly one cold pass (tier prefetch) worth of staging
            # misses, far below one per consumed sample.
            assert s["local_hits"] > s["dataset_reads"]
            assert s["local_hits"] + s["remote_hits"] >= job.total_samples // 2
