"""Timeline recurrence tests: vectorized scan vs reference loop."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.perfmodel import (
    Timeline,
    batch_completion_times,
    overlapped_timeline,
    serial_timeline,
)


def reference_recurrence(reads, comps, p0):
    """Direct (slow) evaluation of the paper's t_{i,f} recurrence."""
    avail = np.cumsum(reads) / p0
    t = np.empty_like(avail)
    for f in range(len(reads)):
        if f == 0:
            t[f] = avail[0]
        else:
            t[f] = max(avail[f], t[f - 1] + comps[f - 1])
    return t


class TestOverlapped:
    def test_matches_reference(self):
        rng = np.random.default_rng(0)
        reads = rng.uniform(0.1, 2.0, 200)
        comps = rng.uniform(0.1, 2.0, 200)
        tl = overlapped_timeline(reads, comps, staging_threads=3)
        np.testing.assert_allclose(
            tl.consume_times, reference_recurrence(reads, comps, 3)
        )

    def test_io_bound(self):
        """Slow reads, instant compute: completion = sum(reads)/p0 + d."""
        reads = np.full(10, 1.0)
        comps = np.full(10, 1e-6)
        tl = overlapped_timeline(reads, comps, 1)
        assert tl.completion == pytest.approx(10.0, rel=1e-3)
        assert tl.stall_fraction > 0.99

    def test_compute_bound(self):
        """Fast reads: completion ~= total compute, no stalls."""
        reads = np.full(10, 1e-6)
        comps = np.full(10, 1.0)
        tl = overlapped_timeline(reads, comps, 1)
        assert tl.completion == pytest.approx(10.0, rel=1e-3)
        assert tl.stall_total == pytest.approx(0.0, abs=1e-3)

    def test_more_threads_not_slower(self):
        rng = np.random.default_rng(1)
        reads = rng.uniform(0.5, 1.5, 100)
        comps = rng.uniform(0.1, 0.3, 100)
        t1 = overlapped_timeline(reads, comps, 1).completion
        t4 = overlapped_timeline(reads, comps, 4).completion
        assert t4 <= t1 + 1e-9

    def test_completion_at_least_compute(self):
        rng = np.random.default_rng(2)
        reads = rng.uniform(0, 1, 50)
        comps = rng.uniform(0, 1, 50)
        tl = overlapped_timeline(reads, comps, 2)
        assert tl.completion >= tl.compute_total - 1e-12
        assert tl.stall_total >= -1e-12

    def test_empty(self):
        tl = overlapped_timeline(np.empty(0), np.empty(0), 1)
        assert tl.completion == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            overlapped_timeline(np.ones(3), np.ones(4), 1)
        with pytest.raises(ConfigurationError):
            overlapped_timeline(np.ones(3), np.ones(3), 0)


class TestSerial:
    def test_serial_sum(self):
        reads = np.array([1.0, 2.0])
        comps = np.array([0.5, 0.5])
        tl = serial_timeline(reads, comps)
        assert tl.completion == pytest.approx(4.0)
        np.testing.assert_allclose(tl.consume_times, [1.0, 3.5])

    def test_serial_never_faster_than_overlapped(self):
        rng = np.random.default_rng(3)
        reads = rng.uniform(0.1, 1.0, 100)
        comps = rng.uniform(0.1, 1.0, 100)
        assert (
            serial_timeline(reads, comps).completion
            >= overlapped_timeline(reads, comps, 1).completion - 1e-9
        )

    def test_empty(self):
        assert serial_timeline(np.empty(0), np.empty(0)).completion == 0.0


class TestBatchTimes:
    def test_batch_completions(self):
        reads = np.full(6, 1e-9)
        comps = np.full(6, 1.0)
        tl = overlapped_timeline(reads, comps, 1)
        ends = batch_completion_times(tl, comps, 2)
        np.testing.assert_allclose(ends, [2.0, 4.0, 6.0], rtol=1e-6)

    def test_monotone(self):
        rng = np.random.default_rng(4)
        reads = rng.uniform(0.1, 1.0, 64)
        comps = rng.uniform(0.1, 1.0, 64)
        tl = overlapped_timeline(reads, comps, 2)
        ends = batch_completion_times(tl, comps, 8)
        assert np.all(np.diff(ends) > 0)

    def test_validation(self):
        tl = overlapped_timeline(np.ones(6), np.ones(6), 1)
        with pytest.raises(ConfigurationError):
            batch_completion_times(tl, np.ones(6), 4)
        with pytest.raises(ConfigurationError):
            batch_completion_times(tl, np.ones(6), 0)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=80),
    p0=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_property_scan_equals_reference(n, p0, seed):
    """Property: the max-plus scan equals the direct recurrence."""
    rng = np.random.default_rng(seed)
    reads = rng.uniform(0.0, 2.0, n)
    comps = rng.uniform(0.0, 2.0, n)
    tl = overlapped_timeline(reads, comps, p0)
    np.testing.assert_allclose(
        tl.consume_times, reference_recurrence(reads, comps, p0), rtol=1e-10, atol=1e-12
    )
