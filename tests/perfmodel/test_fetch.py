"""Fetch-resolution tests: the Sec 4 three-case fetch model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perfmodel import (
    Source,
    remote_bandwidths,
    resolve_fetch,
    sec6_cluster,
    write_times,
)
from repro.units import GB

SYS = sec6_cluster()


class TestWriteTimes:
    def test_preprocessing_bound(self):
        """With beta=200 << w0 per thread, preprocessing dominates."""
        out = write_times(np.array([2.0]), SYS)
        assert out[0] == pytest.approx(2.0 / 200.0)

    def test_vectorized(self):
        sizes = np.array([1.0, 2.0, 4.0])
        np.testing.assert_allclose(write_times(sizes, SYS), sizes / 200.0)


class TestRemoteBandwidths:
    def test_ram_per_thread_below_network(self):
        """Remote RAM: min(b_c=24 GB/s, 85 GB/s / 4 threads) = 21.25 GB/s."""
        rates = remote_bandwidths(SYS)
        assert rates[0] == pytest.approx(min(24_000.0, 85 * GB / 4))

    def test_ssd_is_device_bound(self):
        """Remote SSD: 4 GB/s / 2 threads = 2 GB/s < network."""
        rates = remote_bandwidths(SYS)
        assert rates[1] == pytest.approx(2 * GB)


class TestResolveFetch:
    def test_local_ram_wins(self):
        res = resolve_fetch(
            np.array([1.0]),
            local_class=np.array([0]),
            remote_class=np.array([-1]),
            system=SYS,
            pfs_share_mbps=385.0,
        )
        assert res.sources[0] == Source.LOCAL
        assert res.bandwidths[0] == pytest.approx(85 * GB / 4)

    def test_remote_ram_beats_local_ssd(self):
        """The paper's counterintuitive case: remote memory > local SSD."""
        res = resolve_fetch(
            np.array([1.0]),
            local_class=np.array([1]),  # local SSD: 2 GB/s
            remote_class=np.array([0]),  # remote RAM: min(24 GB/s, 21 GB/s)
            system=SYS,
            pfs_share_mbps=385.0,
        )
        assert res.sources[0] == Source.REMOTE

    def test_pfs_when_uncached(self):
        res = resolve_fetch(
            np.array([1.0]),
            local_class=np.array([-1]),
            remote_class=np.array([-1]),
            system=SYS,
            pfs_share_mbps=385.0,
        )
        assert res.sources[0] == Source.PFS
        assert res.fetch_times[0] == pytest.approx(1.0 / 385.0)

    def test_none_when_no_source(self):
        res = resolve_fetch(
            np.array([1.0]),
            local_class=np.array([-1]),
            remote_class=np.array([-1]),
            system=SYS,
            pfs_share_mbps=0.0,
            pfs_available=False,
        )
        assert res.sources[0] == Source.NONE
        assert np.isinf(res.fetch_times[0])

    def test_local_priority_on_tie(self):
        """At equal bandwidth, prefer LOCAL over REMOTE over PFS."""
        res = resolve_fetch(
            np.array([1.0]),
            local_class=np.array([1]),
            remote_class=np.array([1]),  # same class remote: same 2 GB/s
            system=SYS,
            pfs_share_mbps=0.0,
        )
        assert res.sources[0] == Source.LOCAL

    def test_vectorized_mixed(self):
        sizes = np.ones(4)
        res = resolve_fetch(
            sizes,
            local_class=np.array([0, -1, 1, -1]),
            remote_class=np.array([-1, 0, 0, -1]),
            system=SYS,
            pfs_share_mbps=385.0,
        )
        assert list(res.sources) == [
            Source.LOCAL,
            Source.REMOTE,
            Source.REMOTE,
            Source.PFS,
        ]
        assert np.all(res.fetch_times > 0)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            resolve_fetch(
                np.ones(2),
                np.array([0]),
                np.array([0]),
                SYS,
                100.0,
            )

    def test_empty_stream(self):
        res = resolve_fetch(
            np.empty(0),
            np.empty(0, dtype=int),
            np.empty(0, dtype=int),
            SYS,
            100.0,
        )
        assert res.fetch_times.size == 0


class TestResolveFetch2D:
    """The epoch-matrix form: all workers resolved in one call."""

    def _matrices(self, n=5, length=40, seed=3):
        rng = np.random.default_rng(seed)
        sizes = rng.random((n, length)) + 0.01
        local = rng.integers(-1, 2, size=(n, length)).astype(np.int8)
        remote = rng.integers(-1, 2, size=(n, length)).astype(np.int8)
        return sizes, local, remote

    def test_shapes_follow_input(self):
        sizes, local, remote = self._matrices()
        res = resolve_fetch(sizes, local, remote, SYS, 385.0)
        assert res.fetch_times.shape == sizes.shape
        assert res.sources.shape == sizes.shape
        assert res.bandwidths.shape == sizes.shape
        assert res.sources.dtype == np.int8

    def test_rows_equal_per_worker_resolution(self):
        """Resolving the matrix ≡ resolving each worker row (bitwise)."""
        sizes, local, remote = self._matrices()
        whole = resolve_fetch(sizes, local, remote, SYS, 385.0)
        for w in range(sizes.shape[0]):
            row = resolve_fetch(sizes[w], local[w], remote[w], SYS, 385.0)
            np.testing.assert_array_equal(whole.fetch_times[w], row.fetch_times)
            np.testing.assert_array_equal(whole.sources[w], row.sources)
            np.testing.assert_array_equal(whole.bandwidths[w], row.bandwidths)

    def test_times_are_size_over_winning_bandwidth(self):
        sizes, local, remote = self._matrices()
        res = resolve_fetch(sizes, local, remote, SYS, 385.0)
        np.testing.assert_array_equal(res.fetch_times, sizes / res.bandwidths)

    def test_none_marks_infinite_fetch(self):
        sizes = np.ones((2, 3))
        nowhere = np.full((2, 3), -1, dtype=np.int8)
        res = resolve_fetch(sizes, nowhere, nowhere, SYS, 0.0, pfs_available=False)
        assert (res.sources == int(Source.NONE)).all()
        assert np.isinf(res.fetch_times).all()

    def test_empty_matrix(self):
        empty = np.empty((3, 0))
        res = resolve_fetch(
            empty, empty.astype(np.int8), empty.astype(np.int8), SYS, 100.0
        )
        assert res.fetch_times.shape == (3, 0)

    def test_shape_mismatch_2d(self):
        with pytest.raises(ConfigurationError):
            resolve_fetch(
                np.ones((2, 4)),
                np.zeros((2, 3), dtype=np.int8),
                np.zeros((2, 4), dtype=np.int8),
                SYS,
                100.0,
            )
