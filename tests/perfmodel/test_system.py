"""System presets must match the paper's published parameters."""

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel import lassen, piz_daint, sec6_cluster
from repro.units import GB


class TestSec6Cluster:
    """Every number here is stated verbatim in Sec 6.1."""

    def test_workers_and_rates(self):
        sys = sec6_cluster()
        assert sys.num_workers == 4
        assert sys.compute_mbps == 64.0
        assert sys.preprocess_mbps == 200.0
        assert sys.network_mbps == 24_000.0

    def test_pfs_curve(self):
        sys = sec6_cluster()
        assert sys.pfs.aggregate_mbps(1) == pytest.approx(330)
        assert sys.pfs.aggregate_mbps(2) == pytest.approx(730)
        assert sys.pfs.aggregate_mbps(4) == pytest.approx(1540)
        assert sys.pfs.aggregate_mbps(8) == pytest.approx(2870)

    def test_staging(self):
        sys = sec6_cluster()
        assert sys.staging.capacity_mb == 5 * GB
        assert sys.staging.threads == 8
        assert sys.staging.read.aggregate(8) == pytest.approx(111 * GB)

    def test_tiers(self):
        sys = sec6_cluster()
        ram, ssd = sys.storage_classes
        assert ram.capacity_mb == 120 * GB and ram.prefetch_threads == 4
        assert ram.read.aggregate(4) == pytest.approx(85 * GB)
        assert ssd.capacity_mb == 900 * GB and ssd.prefetch_threads == 2
        assert ssd.read.aggregate(2) == pytest.approx(4 * GB)

    def test_total_cache(self):
        assert sec6_cluster().total_cache_mb == pytest.approx(1020 * GB)
        assert sec6_cluster().aggregate_cache_mb == pytest.approx(4080 * GB)


class TestSec7Presets:
    def test_piz_daint_structure(self):
        sys = piz_daint(num_workers=64)
        assert sys.num_workers == 64
        # Sec 7: 5 GiB staging/4 threads, 40 GiB RAM/2 threads, no SSD.
        assert sys.staging.capacity_mb == 5 * GB and sys.staging.threads == 4
        (ram,) = sys.storage_classes
        assert ram.capacity_mb == 40 * GB and ram.prefetch_threads == 2

    def test_lassen_structure(self):
        sys = lassen(num_workers=128)
        # Sec 7: 5 GiB staging/8, 25 GiB RAM/4, 300 GiB SSD/2 per rank.
        assert sys.staging.capacity_mb == 5 * GB and sys.staging.threads == 8
        ram, ssd = sys.storage_classes
        assert ram.capacity_mb == 25 * GB and ram.prefetch_threads == 4
        assert ssd.capacity_mb == 300 * GB and ssd.prefetch_threads == 2

    def test_pfs_saturates(self):
        """Both machines' PFS curves must saturate (the contention wall)."""
        for preset in (piz_daint, lassen):
            sys = preset()
            assert sys.pfs.aggregate_mbps(4096) == pytest.approx(
                sys.pfs.throughput.saturation_mbps
            )


class TestModifiers:
    def test_with_workers(self):
        assert sec6_cluster().with_workers(16).num_workers == 16

    def test_with_compute_factor(self):
        sys = sec6_cluster().with_compute_factor(5.0)
        assert sys.compute_mbps == 320.0
        assert sys.preprocess_mbps == 1000.0
        with pytest.raises(ConfigurationError):
            sec6_cluster().with_compute_factor(0)

    def test_with_class_capacities(self):
        sys = sec6_cluster().with_class_capacities([64 * GB, 128 * GB])
        assert [c.capacity_mb for c in sys.storage_classes] == [64 * GB, 128 * GB]
        with pytest.raises(ConfigurationError):
            sec6_cluster().with_class_capacities([1.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sec6_cluster().replace(num_workers=0)
        with pytest.raises(ConfigurationError):
            sec6_cluster().replace(compute_mbps=0.0)

    def test_effective_gamma(self):
        sys = sec6_cluster()
        assert sys.pfs.effective_gamma(4, 1.0) == 4.0
        assert sys.pfs.effective_gamma(4, 0.0) == 0.0
        assert sys.pfs.effective_gamma(4, 0.1) == 1.0  # clamped to >= 1
        with pytest.raises(ConfigurationError):
            sys.pfs.effective_gamma(4, 1.5)
