"""ThroughputCurve interpolation/extrapolation behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.perfmodel import ThroughputCurve

PAPER_PFS = {1: 330.0, 2: 730.0, 4: 1540.0, 8: 2870.0}


class TestConstruction:
    def test_from_mapping_sorted(self):
        curve = ThroughputCurve.from_mapping({4: 40.0, 1: 10.0})
        assert curve.points == ((1.0, 10.0), (4.0, 40.0))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ThroughputCurve(points=())

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ConfigurationError):
            ThroughputCurve(points=((0.0, 10.0),))

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            ThroughputCurve(points=((2.0, 10.0), (1.0, 5.0)))

    def test_rejects_negative_bw(self):
        with pytest.raises(ConfigurationError):
            ThroughputCurve(points=((1.0, -5.0),))

    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigurationError):
            ThroughputCurve(points=((1.0, 5.0),), extrapolation="quadratic")

    def test_serialization_roundtrip(self):
        curve = ThroughputCurve.from_mapping(PAPER_PFS)
        clone = ThroughputCurve.from_dict(curve.to_dict())
        assert clone == curve


class TestEvaluation:
    def test_exact_points(self):
        curve = ThroughputCurve.from_mapping(PAPER_PFS)
        for gamma, bw in PAPER_PFS.items():
            assert curve.aggregate(gamma) == pytest.approx(bw)

    def test_interpolation_between_points(self):
        curve = ThroughputCurve.from_mapping(PAPER_PFS)
        assert curve.aggregate(3) == pytest.approx((730 + 1540) / 2)

    def test_below_first_point_through_origin(self):
        curve = ThroughputCurve.from_mapping(PAPER_PFS)
        assert curve.aggregate(0.5) == pytest.approx(165.0)
        assert curve.aggregate(0) == 0.0

    def test_clamp_extrapolation(self):
        curve = ThroughputCurve.from_mapping(PAPER_PFS)
        assert curve.aggregate(64) == pytest.approx(2870.0)

    def test_linear_extrapolation(self):
        curve = ThroughputCurve.from_mapping(PAPER_PFS, extrapolation="linear")
        assert curve.aggregate(16) > 2870.0

    def test_array_input(self):
        curve = ThroughputCurve.from_mapping(PAPER_PFS)
        out = curve.aggregate(np.array([1, 2, 4, 8]))
        np.testing.assert_allclose(out, [330, 730, 1540, 2870])

    def test_per_unit(self):
        curve = ThroughputCurve.from_mapping(PAPER_PFS)
        assert curve.per_unit(4) == pytest.approx(1540 / 4)
        assert curve.per_unit(0) == 0.0

    def test_per_unit_decreases_under_contention(self):
        """Past saturation, each client's share shrinks."""
        curve = ThroughputCurve.from_mapping(PAPER_PFS)
        shares = [curve.per_unit(g) for g in (8, 16, 64, 256)]
        assert shares == sorted(shares, reverse=True)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ThroughputCurve.from_mapping(PAPER_PFS).aggregate(-1)

    def test_constant(self):
        curve = ThroughputCurve.constant(500.0)
        assert curve.aggregate(1) == 500.0
        assert curve.aggregate(10) == 500.0

    def test_scaled(self):
        curve = ThroughputCurve.from_mapping(PAPER_PFS).scaled(2.0)
        assert curve.aggregate(8) == pytest.approx(5740.0)
        with pytest.raises(ConfigurationError):
            curve.scaled(0)

    def test_saturation(self):
        assert ThroughputCurve.from_mapping(PAPER_PFS).saturation_mbps == 2870.0


@settings(max_examples=30, deadline=None)
@given(
    counts=st.lists(
        st.floats(min_value=0.1, max_value=1e4),
        min_size=1,
        max_size=10,
        unique=True,
    ),
)
def test_property_monotone_nondecreasing_aggregate(counts):
    """Property: with clamp extrapolation and nondecreasing points, the
    aggregate is nondecreasing in the client count."""
    pts = {float(i + 1): float(100 * (i + 1)) for i in range(4)}
    curve = ThroughputCurve.from_mapping(pts)
    xs = np.sort(np.asarray(counts))
    ys = np.asarray(curve.aggregate(xs))
    assert np.all(np.diff(ys) >= -1e-9)
