"""Storage class / hierarchy model tests."""

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel import (
    StagingBufferModel,
    StorageClassModel,
    StorageHierarchy,
    ThroughputCurve,
)
from repro.units import GB


def ram(capacity=120 * GB):
    return StorageClassModel(
        "ram", capacity, ThroughputCurve.from_mapping({4: 85 * GB}), prefetch_threads=4
    )


def ssd(capacity=900 * GB):
    return StorageClassModel(
        "ssd",
        capacity,
        ThroughputCurve.from_mapping({2: 4 * GB}),
        write=ThroughputCurve.from_mapping({2: 2 * GB}),
        prefetch_threads=2,
    )


def staging():
    return StagingBufferModel(
        5 * GB, ThroughputCurve.from_mapping({8: 111 * GB}), threads=8
    )


class TestStorageClass:
    def test_per_thread_rates(self):
        assert ram().read_per_thread_mbps == pytest.approx(85 * GB / 4)
        assert ssd().read_per_thread_mbps == pytest.approx(4 * GB / 2)

    def test_write_falls_back_to_read(self):
        assert ram().write_per_thread_mbps == ram().read_per_thread_mbps

    def test_explicit_write_curve(self):
        assert ssd().write_per_thread_mbps == pytest.approx(2 * GB / 2)

    def test_with_capacity(self):
        assert ram().with_capacity(64 * GB).capacity_mb == 64 * GB

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StorageClassModel("x", -1.0, ThroughputCurve.constant(1.0))
        with pytest.raises(ConfigurationError):
            StorageClassModel(
                "x", 1.0, ThroughputCurve.constant(1.0), prefetch_threads=0
            )


class TestStagingBuffer:
    def test_write_per_thread(self):
        assert staging().write_per_thread_mbps == pytest.approx(111 * GB / 8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StagingBufferModel(0.0, ThroughputCurve.constant(1.0))
        with pytest.raises(ConfigurationError):
            StagingBufferModel(1.0, ThroughputCurve.constant(1.0), threads=0)


class TestHierarchy:
    def test_totals(self):
        h = StorageHierarchy(staging(), (ram(), ssd()))
        assert h.total_cache_mb == pytest.approx(1020 * GB)
        assert h.num_classes == 2
        assert h.capacities_mb == [120 * GB, 900 * GB]

    def test_read_per_thread_vector(self):
        h = StorageHierarchy(staging(), (ram(), ssd()))
        rates = h.read_per_thread()
        assert rates[0] > rates[1]

    def test_rejects_misordered_tiers(self):
        with pytest.raises(ConfigurationError):
            StorageHierarchy(staging(), (ssd(), ram()))

    def test_empty_hierarchy(self):
        h = StorageHierarchy(staging())
        assert h.total_cache_mb == 0.0
        assert h.read_per_thread().size == 0

    def test_with_class_capacities(self):
        h = StorageHierarchy(staging(), (ram(), ssd()))
        h2 = h.with_class_capacities([64 * GB, 128 * GB])
        assert h2.capacities_mb == [64 * GB, 128 * GB]
        with pytest.raises(ConfigurationError):
            h.with_class_capacities([1.0])
