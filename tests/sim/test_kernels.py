"""Unit contracts for the epoch-matrix kernels.

Each kernel's promise is "same floating-point operations as the seed
per-worker loop, for all workers at once"; these tests pin the batched
form against the obvious per-worker computation, elementwise and
bitwise.
"""

import numpy as np
import pytest

from repro.perfmodel import Source
from repro.sim import kernels


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


class TestHash01:
    def test_shape_agnostic(self, rng):
        ids = rng.integers(0, 10_000, size=(5, 32))
        np.testing.assert_array_equal(kernels.hash01(ids)[2], kernels.hash01(ids[2]))

    def test_deterministic_uniform_range(self, rng):
        ids = rng.integers(0, 1 << 40, size=1_000)
        u = kernels.hash01(ids)
        assert ((u >= 0) & (u < 1)).all()
        np.testing.assert_array_equal(u, kernels.hash01(ids))


class TestWarmupRemoteClasses:
    def test_matches_per_worker_reference(self, rng):
        n, length, f = 4, 48, 500
        ids = rng.integers(0, f, size=(n, length))
        best_map = rng.integers(-1, 3, size=f).astype(np.int8)
        out = kernels.warmup_remote_classes(ids, best_map)
        assert out.dtype == np.int8
        for w in range(n):
            row = ids[w]
            progress = np.arange(1, length + 1, dtype=np.float64) / length
            available = kernels.hash01(row) < progress
            expected = np.where(available, best_map[row], np.int8(-1)).astype(np.int8)
            np.testing.assert_array_equal(out[w], expected)


class TestBatchTotals:
    def test_bitwise_matches_per_worker_reshape_sum(self, rng):
        n, t, b = 6, 7, 5
        values = rng.random((n, t * b))
        out = kernels.batch_totals(values, t, b)
        assert out.shape == (n, t)
        for w in range(n):
            np.testing.assert_array_equal(out[w], values[w].reshape(t, b).sum(axis=1))


class TestSourceTotals:
    def test_counts_and_weights_match_per_worker_bincount(self, rng):
        n, length = 5, 64
        sources = rng.integers(0, kernels.NUM_SOURCES, size=(n, length)).astype(np.int8)
        weights = rng.random((n, length))
        got_counts = kernels.source_totals(sources)
        got_weighted = kernels.source_totals(sources, weights)
        assert got_counts.dtype.kind in "iu" or got_counts.dtype == np.float64
        for w in range(n):
            np.testing.assert_array_equal(
                got_counts[w].astype(np.int64),
                np.bincount(sources[w], minlength=4)[:4],
            )
            np.testing.assert_array_equal(
                got_weighted[w],
                np.bincount(sources[w], weights=weights[w], minlength=4)[:4],
            )

    def test_empty_source_bucket_is_zero(self):
        sources = np.full((2, 8), int(Source.LOCAL), dtype=np.int8)
        totals = kernels.source_totals(sources)
        assert totals[:, int(Source.PFS)].sum() == 0
        assert (totals[:, int(Source.LOCAL)] == 8).all()


class TestAccumulateRows:
    def test_strict_sequential_order(self, rng):
        rows = rng.random((9, 4))
        expected = np.zeros(4)
        for row in rows:
            expected += row
        np.testing.assert_array_equal(kernels.accumulate_rows(rows), expected)


class TestAddPfsLatency:
    def test_zero_latency_returns_same_object(self, rng):
        fetch = rng.random((3, 8))
        sources = np.zeros((3, 8), dtype=np.int8)
        assert kernels.add_pfs_latency(fetch, sources, 0.0) is fetch

    def test_latency_hits_pfs_only(self):
        fetch = np.ones((1, 3))
        sources = np.array([[int(Source.PFS), int(Source.LOCAL), int(Source.PFS)]], dtype=np.int8)
        out = kernels.add_pfs_latency(fetch, sources, 0.25)
        np.testing.assert_array_equal(out, [[1.25, 1.0, 1.25]])


class TestInterferenceFactors:
    def test_matches_scalar_formula(self, rng):
        source_bytes = rng.random((4, 4)) * 100
        out = kernels.interference_factors(source_bytes, 0.5)
        for w in range(4):
            total = source_bytes[w].sum()
            frac = (
                source_bytes[w, int(Source.PFS)] + 0.5 * source_bytes[w, int(Source.REMOTE)]
            ) / total
            assert out[w] == 1.0 + 0.5 * frac

    def test_idle_worker_factor_is_one(self):
        source_bytes = np.zeros((2, 4))
        source_bytes[1, int(Source.LOCAL)] = 10.0
        out = kernels.interference_factors(source_bytes, 0.8)
        assert out[0] == 1.0
        assert out[1] == 1.0  # local-only traffic does not interfere
