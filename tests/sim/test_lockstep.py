"""Lockstep scan tests against a brute-force reference simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim import lockstep_epoch


def reference(r, d, w):
    """Direct sequential evaluation of the window/barrier recurrence."""
    n, t = r.shape
    a = np.zeros(n)
    g = np.zeros(t)
    g_prev = 0.0
    for h in range(t):
        floor = g[h - w] if (w is not None and h >= w) else 0.0
        a = np.maximum(a, floor) + r[:, h]
        g_prev = max(g_prev, a.max()) + d[:, h].max()
        g[h] = g_prev
    return g


class TestAgainstReference:
    def test_compute_bound(self):
        r = np.full((3, 20), 1e-6)
        d = np.full((3, 20), 1.0)
        out = lockstep_epoch(r, d, lookahead_batches=4)
        assert out.epoch_time == pytest.approx(20.0, rel=1e-3)
        # The window formally binds (prefetch waits on buffer slots) but
        # never delays consumption, so the vectorized path must suffice.
        assert not out.exact_loop
        np.testing.assert_allclose(out.global_batch_ends, reference(r, d, 4))

    def test_io_bound_steady_state(self):
        r = np.full((2, 50), 2.0)
        d = np.full((2, 50), 0.1)
        out = lockstep_epoch(r, d, lookahead_batches=2)
        np.testing.assert_allclose(out.global_batch_ends, reference(r, d, 2))

    def test_bursty_reads_window_binds(self):
        """A read spike behind a shallow window must delay later batches."""
        r = np.full((1, 30), 0.05)
        r[0, 10] = 50.0  # tail event
        d = np.full((1, 30), 1.0)
        shallow = lockstep_epoch(r, d, lookahead_batches=1)
        deep = lockstep_epoch(r, d, lookahead_batches=25)
        np.testing.assert_allclose(
            shallow.global_batch_ends, reference(r, d, 1)
        )
        np.testing.assert_allclose(deep.global_batch_ends, reference(r, d, 25))
        # the deep buffer absorbs the spike better (or equally)
        assert deep.epoch_time <= shallow.epoch_time + 1e-9

    def test_unbounded_lookahead(self):
        rng = np.random.default_rng(0)
        r = rng.uniform(0.1, 1.0, (4, 30))
        d = rng.uniform(0.1, 1.0, (4, 30))
        out = lockstep_epoch(r, d, lookahead_batches=None)
        ref = reference(r, d, None)
        np.testing.assert_allclose(out.global_batch_ends, ref)

    def test_mixed_regime(self):
        rng = np.random.default_rng(1)
        r = rng.uniform(0.0, 2.0, (3, 40))
        d = rng.uniform(0.0, 2.0, (3, 40))
        for w in (1, 2, 5, 39, 100):
            out = lockstep_epoch(r, d, lookahead_batches=w)
            np.testing.assert_allclose(
                out.global_batch_ends, reference(r, d, w), rtol=1e-10
            )

    def test_durations_sum_to_epoch(self):
        rng = np.random.default_rng(2)
        r = rng.uniform(0, 1, (2, 25))
        d = rng.uniform(0, 1, (2, 25))
        out = lockstep_epoch(r, d, 3)
        assert out.batch_durations.sum() == pytest.approx(out.epoch_time)
        assert (out.batch_durations >= -1e-12).all()

    def test_stalls_nonnegative(self):
        rng = np.random.default_rng(3)
        r = rng.uniform(0, 1, (3, 25))
        d = rng.uniform(0, 1, (3, 25))
        out = lockstep_epoch(r, d, 2)
        assert (out.worker_stalls >= 0).all()

    def test_epoch_at_least_straggler_compute(self):
        rng = np.random.default_rng(4)
        r = rng.uniform(0, 1, (3, 25))
        d = rng.uniform(0, 1, (3, 25))
        out = lockstep_epoch(r, d, 2)
        assert out.epoch_time >= d.max(axis=0).sum() - 1e-9


class TestModes:
    def test_no_barrier_faster_or_equal(self):
        rng = np.random.default_rng(5)
        r = rng.uniform(0, 1, (4, 30))
        d = rng.uniform(0, 1, (4, 30))
        sync = lockstep_epoch(r, d, None, barrier=True)
        free = lockstep_epoch(r, d, None, barrier=False)
        assert free.epoch_time <= sync.epoch_time + 1e-9

    def test_single_worker_barrier_noop(self):
        rng = np.random.default_rng(6)
        r = rng.uniform(0, 1, (1, 30))
        d = rng.uniform(0, 1, (1, 30))
        sync = lockstep_epoch(r, d, None, barrier=True)
        ref = reference(r, d, None)
        np.testing.assert_allclose(sync.global_batch_ends, ref)

    def test_smaller_window_never_faster(self):
        rng = np.random.default_rng(7)
        r = rng.uniform(0.5, 1.5, (3, 40))
        d = rng.uniform(0.1, 0.5, (3, 40))
        times = [
            lockstep_epoch(r, d, w).epoch_time for w in (1, 2, 4, 16, None)
        ]
        assert all(times[i] >= times[i + 1] - 1e-9 for i in range(len(times) - 1))

    def test_empty(self):
        out = lockstep_epoch(np.empty((2, 0)), np.empty((2, 0)), 2)
        assert out.epoch_time == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lockstep_epoch(np.ones((2, 3)), np.ones((2, 4)), 2)
        with pytest.raises(ConfigurationError):
            lockstep_epoch(np.ones((2, 3)), np.ones((2, 3)), 0)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5),
    t=st.integers(min_value=1, max_value=40),
    w=st.one_of(st.none(), st.integers(min_value=1, max_value=45)),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_property_matches_reference(n, t, w, seed):
    """Property: fast path + fallback equal the sequential reference."""
    rng = np.random.default_rng(seed)
    r = rng.uniform(0.0, 2.0, (n, t))
    d = rng.uniform(0.0, 2.0, (n, t))
    out = lockstep_epoch(r, d, w)
    np.testing.assert_allclose(
        out.global_batch_ends, reference(r, d, w), rtol=1e-10, atol=1e-12
    )
