"""Tiled streaming execution is bitwise-identical to untiled execution.

The engine's memory-tiled execute phase (``Simulator(tile_rows=...)``)
materializes each epoch in worker-row bands instead of one full
``(N, L)`` matrix. The contract is absolute: for **every** registered
policy spec and **every** tile height — single-row, a ragged height
that does not divide N, exactly N, and larger than N — the
``SimulationResult`` JSON must be byte-equal to the untiled run, and
the PolicyError-parity cases (oversized LBANN) must raise the same
message with the same epoch/worker indices.

Also covers the :class:`~repro.sim.plancache.PlanCache` reuse the
tiling rides on: per-policy scalars computed once, per-epoch size
gathers shared across a ``run_many`` comparison, and the cold-class
template staying read-only.
"""

import json

import numpy as np
import pytest

from repro.api import FIG8_POLICIES, POLICIES, TABLE1_POLICIES, make_policy
from repro.datasets import DatasetModel
from repro.errors import ConfigurationError, PolicyError
from repro.perfmodel import sec6_cluster
from repro.sim import PlanCache, ScenarioContext, SimulationConfig, Simulator
from repro.sweep import ScenarioGrid, SweepRunner
from repro.units import TB

#: Every registered policy spec: canonical names plus the lineup
#: variants (``deepio:opportunistic``, ``lbann:preloading``, ...).
ALL_POLICY_SPECS = sorted(
    {*POLICIES.names(), *FIG8_POLICIES, *TABLE1_POLICIES}
)

#: N=8 workers; 7 leaves a ragged final band, 1 is the worst case,
#: 8 covers exactly-N, 64 covers tile_rows > N.
TILE_HEIGHTS = (1, 7, 8, 64)


def _config(name: str, **kw) -> SimulationConfig:
    total_mb = kw.pop("total_mb", 200.0)
    n_samples = kw.pop("n_samples", 2_000)
    ds = DatasetModel(name, n_samples, total_mb / n_samples, 0.02)
    base = dict(
        dataset=ds,
        system=sec6_cluster(num_workers=8),
        batch_size=8,
        num_epochs=3,
        seed=11,
    )
    base.update(kw)
    return SimulationConfig(**base)


SCENARIOS = {
    "default": _config("tiling-default"),
    "oversized": _config(
        "tiling-oversized", total_mb=1.5 * TB, n_samples=4_000, num_epochs=2
    ),
}


def _run(sim: Simulator, policy) -> "str | tuple":
    """A result's canonical JSON, or the PolicyError it raised."""
    try:
        return json.dumps(sim.run(policy).to_dict(), sort_keys=True)
    except PolicyError as exc:
        return ("PolicyError", str(exc))


@pytest.fixture(scope="module")
def untiled_runs():
    """Per scenario: the shared context and every spec's untiled outcome."""
    runs = {}
    for key, config in SCENARIOS.items():
        ctx = ScenarioContext(config)
        sim = Simulator(config, ctx=ctx)
        runs[key] = (ctx, {spec: _run(sim, make_policy(spec)) for spec in ALL_POLICY_SPECS})
    return runs


@pytest.mark.parametrize("tile_rows", TILE_HEIGHTS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("spec", ALL_POLICY_SPECS)
def test_tiled_bitwise_identical(untiled_runs, scenario, spec, tile_rows):
    ctx, expected = untiled_runs[scenario]
    sim = Simulator(SCENARIOS[scenario], tile_rows=tile_rows, ctx=ctx)
    assert _run(sim, make_policy(spec)) == expected[spec]


def test_policy_error_parity_includes_indices(untiled_runs):
    """Oversized LBANN raises identically — same epoch/worker — tiled."""
    _, expected = untiled_runs["oversized"]
    outcome = expected["lbann:dynamic"]
    assert isinstance(outcome, tuple), "oversized LBANN must be unsupported"
    tiled = Simulator(SCENARIOS["oversized"], tile_rows=1)
    assert _run(tiled, make_policy("lbann:dynamic")) == outcome


def test_invalid_tile_rows_rejected():
    config = SCENARIOS["default"]
    for bad in (0, -1):
        with pytest.raises(ConfigurationError):
            Simulator(config, tile_rows=bad)
    with pytest.raises(ConfigurationError):
        SweepRunner(tile_rows=0)


def test_epoch_plan_tiles_cover_all_rows():
    """Tile bands partition the worker rows in order, ragged tail included."""
    config = SCENARIOS["default"]
    sim = Simulator(config, tile_rows=3)
    prep = make_policy("staging_buffer").prepare(sim.ctx)
    plan = sim.plan_epoch(prep, 0)
    tiles = list(plan.tiles(3))
    assert [(t.rows.start, t.rows.stop) for t in tiles] == [(0, 3), (3, 6), (6, 8)]
    stitched = np.vstack([t.ids for t in tiles])
    np.testing.assert_array_equal(stitched, plan.ids)
    sizes = np.vstack([t.sizes_mb for t in tiles])
    np.testing.assert_array_equal(sizes, sim.ctx.sizes_mb[plan.ids])


# -- plan cache ------------------------------------------------------------


def test_plan_scalars_computed_once_per_prepared_policy():
    config = SCENARIOS["default"]
    cache = PlanCache(ScenarioContext(config))
    prep = make_policy("nopfs").prepare(cache.ctx)
    assert cache.scalars(prep) is cache.scalars(prep)


def test_plan_scalars_match_per_epoch_values():
    """The cached cold/warm phases reproduce the per-epoch arithmetic."""
    config = SCENARIOS["default"]
    ctx = ScenarioContext(config)
    cache = PlanCache(ctx)
    system = config.system
    for spec in ("naive", "nopfs", "perfect", "locality_aware"):
        prep = make_policy(spec).prepare(ctx)
        scalars = cache.scalars(prep)
        for epoch in range(config.num_epochs):
            if prep.ideal:
                fraction = 0.0
            elif epoch < prep.warm_epochs:
                fraction = 1.0
            elif prep.warm_pfs_fraction is not None:
                fraction = float(prep.warm_pfs_fraction)
            elif not prep.pfs_in_warm:
                fraction = 0.0
            else:
                fraction = scalars.uncovered_fraction
            phase = scalars.phase(epoch < prep.warm_epochs)
            assert phase.pfs_fraction == fraction
            assert phase.gamma == float(
                system.pfs.effective_gamma(ctx.num_workers, fraction)
            )


def test_run_many_shares_epoch_size_gathers():
    """A multi-policy comparison gathers each epoch's sizes only once."""
    config = SCENARIOS["default"]
    sim = Simulator(config)
    policies = [make_policy(s) for s in ("naive", "staging_buffer", "nopfs")]
    results = sim.run_many(policies)
    assert len(results) == len(policies)
    # One miss per epoch; every later (policy, epoch) visit is a hit.
    assert sim.plan_cache.misses == config.num_epochs
    assert sim.plan_cache.hits == (len(policies) - 1) * config.num_epochs


def test_shared_matrices_are_read_only():
    config = SCENARIOS["default"]
    sim = Simulator(config)
    prep = make_policy("naive").prepare(sim.ctx)
    plan = sim.plan_epoch(prep, 0)
    tile = plan.tile(slice(0, sim.ctx.num_workers))
    with pytest.raises(ValueError):
        tile.sizes_mb[0, 0] = 0.0
    with pytest.raises(ValueError):
        tile.local_classes[0, 0] = 0


def test_sweep_runner_tile_rows_matches_untiled():
    """The plumbed knob yields byte-equal results through the sweep layer."""
    from repro.sim import NaivePolicy, NoPFSPolicy

    ds = DatasetModel("tiling-sweep", 1_000, 0.1, 0.02)
    grid = ScenarioGrid(
        datasets=[ds],
        systems=[sec6_cluster(num_workers=4)],
        policies=[NaivePolicy(), NoPFSPolicy()],
        batch_sizes=[8],
        epoch_counts=[2],
    )
    plain = SweepRunner().run(grid)
    tiled = SweepRunner(tile_rows=3).run(grid)
    assert set(plain.results) == set(tiled.results)
    for tag, result in plain.results.items():
        assert json.dumps(tiled.results[tag].to_dict(), sort_keys=True) == json.dumps(
            result.to_dict(), sort_keys=True
        )
