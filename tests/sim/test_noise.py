"""Noise model tests: determinism, mean preservation, tails."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perfmodel import Source
from repro.rng import generator
from repro.sim import NoiseConfig, apply_noise, apply_noise_matrix


def sources(n, kind):
    return np.full(n, int(kind), dtype=np.int8)


class TestConfig:
    def test_defaults_enabled(self):
        assert NoiseConfig().enabled

    def test_disabled_factory(self):
        assert not NoiseConfig.disabled().enabled

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NoiseConfig(pfs_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            NoiseConfig(pfs_tail_prob=1.5)
        with pytest.raises(ConfigurationError):
            NoiseConfig(pfs_tail_scale=0.5)

    def test_serialization(self):
        cfg = NoiseConfig(pfs_sigma=0.3)
        assert NoiseConfig.from_dict(cfg.to_dict()) == cfg


class TestApply:
    def test_disabled_passthrough(self):
        times = np.ones(100)
        out = apply_noise(times, sources(100, Source.PFS), NoiseConfig.disabled(), generator(0, "n"))
        np.testing.assert_array_equal(out, times)
        assert out is not times  # copy, caller may mutate

    def test_deterministic(self):
        times = np.ones(1000)
        src = sources(1000, Source.PFS)
        a = apply_noise(times, src, NoiseConfig(), generator(1, "n"))
        b = apply_noise(times, src, NoiseConfig(), generator(1, "n"))
        np.testing.assert_array_equal(a, b)

    def test_seed_sensitivity(self):
        times = np.ones(1000)
        src = sources(1000, Source.PFS)
        a = apply_noise(times, src, NoiseConfig(), generator(1, "n"))
        b = apply_noise(times, src, NoiseConfig(), generator(2, "n"))
        assert not np.array_equal(a, b)

    def test_mean_preserving_pfs(self):
        times = np.ones(200_000)
        src = sources(200_000, Source.PFS)
        cfg = NoiseConfig(pfs_tail_prob=0.0)  # isolate the lognormal part
        out = apply_noise(times, src, cfg, generator(3, "n"))
        assert out.mean() == pytest.approx(1.0, rel=0.02)

    def test_tails_present(self):
        times = np.ones(100_000)
        src = sources(100_000, Source.PFS)
        cfg = NoiseConfig(pfs_tail_prob=0.01, pfs_tail_scale=20.0)
        out = apply_noise(times, src, cfg, generator(4, "n"))
        # Order-of-magnitude events must exist (paper Sec 7.1).
        assert (out > 10.0).sum() > 100

    def test_local_noise_light(self):
        times = np.ones(50_000)
        out_local = apply_noise(times, sources(50_000, Source.LOCAL), NoiseConfig(), generator(5, "n"))
        out_pfs = apply_noise(times, sources(50_000, Source.PFS), NoiseConfig(), generator(5, "n"))
        assert out_local.std() < out_pfs.std()

    def test_none_untouched(self):
        times = np.full(10, 7.0)
        out = apply_noise(times, sources(10, Source.NONE), NoiseConfig(), generator(6, "n"))
        np.testing.assert_array_equal(out, times)

    def test_mixed_sources(self):
        times = np.ones(6)
        src = np.array([0, 1, 2, 0, 1, 2], dtype=np.int8)
        out = apply_noise(times, src, NoiseConfig(), generator(7, "n"))
        assert out.shape == times.shape
        assert (out > 0).all()

    def test_empty(self):
        out = apply_noise(np.empty(0), np.empty(0, dtype=np.int8), NoiseConfig(), generator(8, "n"))
        assert out.size == 0

    def test_zero_sigma_identity(self):
        cfg = NoiseConfig(pfs_sigma=0.0, pfs_tail_prob=0.0, remote_sigma=0.0, local_sigma=0.0)
        times = np.linspace(0.1, 1.0, 50)
        out = apply_noise(times, sources(50, Source.PFS), cfg, generator(9, "n"))
        np.testing.assert_allclose(out, times)


class TestApplyNoiseMatrix:
    """The whole-epoch form must replay the per-worker RNG streams."""

    def _matrices(self, n=4, length=96, seed=13):
        rng = np.random.default_rng(seed)
        times = rng.random((n, length)) + 1e-3
        src = rng.integers(0, 4, size=(n, length)).astype(np.int8)
        return times, src

    def test_bitwise_matches_per_worker_apply_noise(self):
        times, src = self._matrices()
        cfg = NoiseConfig()
        rngs = [generator(0, "noise", 1, w) for w in range(times.shape[0])]
        out = apply_noise_matrix(times, src, cfg, rngs)
        for w in range(times.shape[0]):
            row_rng = generator(0, "noise", 1, w)
            np.testing.assert_array_equal(
                out[w], apply_noise(times[w], src[w], cfg, row_rng)
            )

    def test_disabled_noise_is_a_copy(self):
        times, src = self._matrices()
        out = apply_noise_matrix(times, src, NoiseConfig.disabled(), [])
        assert out is not times
        np.testing.assert_array_equal(out, times)

    def test_generator_count_must_match_workers(self):
        times, src = self._matrices(n=3)
        with pytest.raises(ConfigurationError):
            apply_noise_matrix(times, src, NoiseConfig(), [generator(0, "n", 0)])

    #: Configs steering every short-circuit in the fused kernel: the
    #: default (tail break between PFS and remote/local), no tails
    #: (PFS fuses with the rest), sigma-zero segments that must consume
    #: nothing, tails with jitterless PFS, and everything off.
    CONFIGS = {
        "default": NoiseConfig(),
        "no-tails": NoiseConfig(pfs_tail_prob=0.0),
        "pfs-sigma-zero": NoiseConfig(pfs_sigma=0.0),
        "pfs-sigma-zero-no-tails": NoiseConfig(pfs_sigma=0.0, pfs_tail_prob=0.0),
        "remote-sigma-zero": NoiseConfig(remote_sigma=0.0),
        "local-sigma-zero": NoiseConfig(local_sigma=0.0),
        "all-sigma-zero": NoiseConfig(
            pfs_sigma=0.0, remote_sigma=0.0, local_sigma=0.0
        ),
        "all-zero": NoiseConfig(
            pfs_sigma=0.0, remote_sigma=0.0, local_sigma=0.0, pfs_tail_prob=0.0
        ),
        "heavy-tails": NoiseConfig(pfs_tail_prob=0.4, pfs_tail_scale=30.0),
    }

    #: Source-class layouts hitting the lazy-mask fast path: rows where
    #: whole classes are absent must never build those masks, and the
    #: result must still replay the per-worker streams exactly.
    def _source_layouts(self, n=4, length=96):
        full = np.random.default_rng(21).integers(0, 4, (n, length))
        return {
            "mixed": full.astype(np.int8),
            "pfs-only": np.full((n, length), int(Source.PFS), dtype=np.int8),
            "remote-only": np.full((n, length), int(Source.REMOTE), dtype=np.int8),
            "local-only": np.full((n, length), int(Source.LOCAL), dtype=np.int8),
            "none-only": np.full((n, length), int(Source.NONE), dtype=np.int8),
            "pfs-and-none": np.where(
                full < 2, int(Source.PFS), int(Source.NONE)
            ).astype(np.int8),
            "remote-and-local": np.where(
                full < 2, int(Source.REMOTE), int(Source.LOCAL)
            ).astype(np.int8),
        }

    @pytest.mark.parametrize("cfg_name", sorted(CONFIGS))
    def test_fast_paths_bitwise_match_per_worker(self, cfg_name):
        """Every short-circuit combination replays the scalar streams."""
        cfg = self.CONFIGS[cfg_name]
        times, _ = self._matrices()
        for layout, src in self._source_layouts().items():
            rngs = [generator(0, "noise", 1, w) for w in range(times.shape[0])]
            out = apply_noise_matrix(times, src, cfg, rngs)
            for w in range(times.shape[0]):
                row_rng = generator(0, "noise", 1, w)
                np.testing.assert_array_equal(
                    out[w],
                    apply_noise(times[w], src[w], cfg, row_rng),
                    err_msg=f"{cfg_name} / {layout} / worker {w}",
                )

    def test_absent_classes_skip_mask_construction(self):
        """The micro-fix: all-PFS rows never scan for remote/local."""
        times, _ = self._matrices()
        src = np.full(times.shape, int(Source.PFS), dtype=np.int8)

        class _NoCompare(np.ndarray):
            def __eq__(self, other):
                if other in (int(Source.REMOTE), int(Source.LOCAL)):
                    raise AssertionError(f"built mask for absent class {other}")
                return np.ndarray.__eq__(self, other)

        guarded = src.view(_NoCompare)
        with pytest.raises(AssertionError):
            guarded == int(Source.REMOTE)  # the guard itself is live
        rngs = [generator(0, "noise", 1, w) for w in range(times.shape[0])]
        out = apply_noise_matrix(times, guarded, NoiseConfig(), rngs)
        assert out.shape == times.shape

    def test_stream_not_consumed_for_sigma_zero(self):
        """sigma==0 segments draw nothing, keeping streams aligned."""
        cfg = NoiseConfig(
            pfs_sigma=0.0, remote_sigma=0.0, local_sigma=0.0, pfs_tail_prob=0.0
        )
        times, src = self._matrices()
        rngs = [generator(0, "noise", 1, w) for w in range(times.shape[0])]
        out = apply_noise_matrix(times, src, cfg, rngs)
        np.testing.assert_array_equal(out, times)
        for w, rng in enumerate(rngs):
            assert rng.random() == generator(0, "noise", 1, w).random()


class TestFusedUnitLognormals:
    """The fused broadcast draw must equal consecutive scalar-sigma calls."""

    def _sequential(self, rng, segments):
        return [
            rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma, size=count)
            for sigma, count in segments
        ]

    @pytest.mark.parametrize(
        "segments",
        [
            [(0.45, 37)],
            [(0.45, 37), (0.08, 11)],
            [(0.45, 1), (0.08, 1), (0.03, 1)],
            [(0.45, 200), (0.08, 50), (0.03, 129)],
            [(1.7, 3), (0.0001, 3)],
        ],
        ids=lambda s: "+".join(f"{sig}x{n}" for sig, n in s),
    )
    def test_bitwise_matches_sequential_draws(self, segments):
        from repro.sim.noise import _fused_unit_lognormals

        fused = _fused_unit_lognormals(generator(2, "fuse"), segments)
        expected = self._sequential(generator(2, "fuse"), segments)
        assert len(fused) == len(expected)
        for got, want in zip(fused, expected):
            np.testing.assert_array_equal(got, want)

    def test_leaves_stream_where_sequential_does(self):
        from repro.sim.noise import _fused_unit_lognormals

        segments = [(0.45, 8), (0.08, 5), (0.03, 3)]
        fused_rng = generator(3, "fuse")
        _fused_unit_lognormals(fused_rng, segments)
        seq_rng = generator(3, "fuse")
        self._sequential(seq_rng, segments)
        assert fused_rng.random() == seq_rng.random()
