"""Execution-knob equivalence matrix: backends x tiling x seed sharing.

``tile_rows``, ``kernel_backend`` and the seed-sharing ``run_seed``
path are execution knobs with a bitwise-identity contract: no
combination may change a single simulated number. This suite pins
every registered policy spec (canonical names plus the lineup
variants) against the frozen seed engine
(``tests/sim/reference_engine.py``) across the full knob cross
product. Without numba installed the ``numba`` backend resolves to the
numpy fallback — the matrix then pins the fallback path; the CI
compiled leg reruns it with numba present.
"""

import dataclasses
import json
import warnings

import pytest

from repro.api import FIG8_POLICIES, POLICIES, TABLE1_POLICIES, make_policy
from repro.datasets import DatasetModel
from repro.errors import PolicyError
from repro.perfmodel import sec6_cluster
from repro.sim import SimulationConfig, Simulator

from .reference_engine import ReferenceSimulator

ALL_POLICY_SPECS = sorted({*POLICIES.names(), *FIG8_POLICIES, *TABLE1_POLICIES})

BACKENDS = ("numpy", "numba")


@pytest.fixture(scope="module", autouse=True)
def _quiet_numba_fallback():
    """The numba-missing fallback warning is expected, not a failure."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


def _config() -> SimulationConfig:
    ds = DatasetModel("knob-matrix", 1_200, 120.0 / 1_200, 0.02)
    return SimulationConfig(
        dataset=ds,
        system=sec6_cluster(),
        batch_size=8,
        num_epochs=2,
        seed=7,
    )


def _outcome(run) -> "str | tuple":
    """Canonical JSON of a run, or the PolicyError it raised."""
    try:
        return json.dumps(run().to_dict(), sort_keys=True)
    except PolicyError as exc:
        return ("PolicyError", str(exc))


@pytest.fixture(scope="module")
def reference():
    """One frozen-engine outcome per policy spec."""
    config = _config()
    sim = ReferenceSimulator(config)
    return {
        spec: _outcome(lambda: sim.run(make_policy(spec)))
        for spec in ALL_POLICY_SPECS
    }


@pytest.mark.parametrize("shared", [False, True], ids=["direct", "seed-shared"])
@pytest.mark.parametrize("tile_rows", [None, 3], ids=["untiled", "tiled"])
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("spec", ALL_POLICY_SPECS)
def test_knob_matrix_bitwise_identical(reference, spec, backend, tile_rows, shared):
    config = _config()
    policy = make_policy(spec)
    if shared:
        # Reach the target seed through another scenario's simulator,
        # exercising the shared-prep/adopted-scalars path.
        base = Simulator(
            dataclasses.replace(config, seed=3),
            tile_rows=tile_rows,
            kernel_backend=backend,
        )
        try:
            base.run(policy)  # prime the base seed's caches first
        except PolicyError:
            pass
        run = lambda: base.run_seed(policy, config.seed)
    else:
        sim = Simulator(config, tile_rows=tile_rows, kernel_backend=backend)
        run = lambda: sim.run(policy)
    assert _outcome(run) == reference[spec]
