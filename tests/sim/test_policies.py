"""Per-policy preparation behaviour and Table 1 capability rows."""

import numpy as np
import pytest

from repro.api import fig8_lineup, table1_lineup
from repro.datasets import DatasetModel
from repro.errors import ConfigurationError, PolicyError
from repro.perfmodel import sec6_cluster
from repro.sim import (
    DeepIOPolicy,
    DoubleBufferPolicy,
    LBANNPolicy,
    LocalityAwarePolicy,
    NaivePolicy,
    NoPFSPolicy,
    ParallelStagingPolicy,
    PerfectPolicy,
    ScenarioContext,
    SimulationConfig,
    StagingBufferPolicy,
    WorkerLookup,
)
from repro.units import GB, TB


def ctx(total_mb=100.0, n_samples=2_000, epochs=3):
    ds = DatasetModel("x", n_samples, total_mb / n_samples)
    cfg = SimulationConfig(
        dataset=ds, system=sec6_cluster(), batch_size=8, num_epochs=epochs
    )
    return ScenarioContext(cfg)


class TestWorkerLookup:
    def test_lookup_roundtrip(self):
        lk = WorkerLookup((np.array([5, 2]), np.array([9])))
        out = lk.classes_of(np.array([2, 5, 9, 7]))
        np.testing.assert_array_equal(out, [0, 0, 1, -1])

    def test_empty(self):
        lk = WorkerLookup((np.empty(0, dtype=np.int64),))
        np.testing.assert_array_equal(lk.classes_of(np.array([1, 2])), [-1, -1])
        assert lk.num_cached == 0


class TestSimplePolicies:
    def test_perfect(self):
        prep = PerfectPolicy().prepare(ctx())
        assert prep.ideal and prep.plan is None

    def test_naive(self):
        prep = NaivePolicy().prepare(ctx())
        assert not prep.overlap and prep.plan is None

    def test_staging_buffer(self):
        prep = StagingBufferPolicy().prepare(ctx())
        assert prep.plan is None and prep.overlap
        assert prep.lookahead_batches is None

    def test_double_buffer_depth(self):
        prep = DoubleBufferPolicy(prefetch_batches=2).prepare(ctx())
        assert prep.lookahead_batches == 2
        with pytest.raises(ValueError):
            DoubleBufferPolicy(prefetch_batches=0)


class TestDeepIO:
    def test_bad_mode(self):
        with pytest.raises(ConfigurationError):
            DeepIOPolicy("eager")

    def test_ordered_caches_ram_only(self):
        prep = DeepIOPolicy("ordered").prepare(ctx())
        for placement in prep.plan.placements:
            assert all(len(ids) == 0 for ids in placement.class_ids[1:])

    def test_ordered_first_touch(self):
        c = ctx()
        prep = DeepIOPolicy("ordered").prepare(c)
        for worker, placement in enumerate(prep.plan.placements):
            epoch0 = set(c.worker_epoch_ids(worker, 0).tolist())
            assert set(placement.cached_ids.tolist()) <= epoch0

    def test_opportunistic_never_pfs(self):
        prep = DeepIOPolicy("opportunistic").prepare(ctx())
        assert not prep.pfs_in_warm
        assert prep.warm_pfs_fraction == 0.0
        assert prep.stream_fn is not None

    def test_opportunistic_stream_only_cached(self):
        c = ctx()
        prep = DeepIOPolicy("opportunistic").prepare(c)
        cached0 = set(prep.plan.placements[0].cached_ids.tolist())
        stream = prep.stream_fn(0, 1)
        assert set(stream.tolist()) <= cached0


class TestParallelStaging:
    def test_prestage_paid(self):
        prep = ParallelStagingPolicy().prepare(ctx())
        assert prep.prestage_time_s > 0
        assert prep.warm_epochs == 0

    def test_shards_disjoint(self):
        prep = ParallelStagingPolicy().prepare(ctx())
        assert prep.plan.holder_counts().max() <= 1

    def test_small_dataset_fully_covered(self):
        prep = ParallelStagingPolicy().prepare(ctx())
        assert prep.accesses_full_dataset

    def test_huge_dataset_not_covered(self):
        c = ctx(total_mb=6 * TB)
        prep = ParallelStagingPolicy().prepare(c)
        assert not prep.accesses_full_dataset


class TestLBANN:
    def test_bad_mode(self):
        with pytest.raises(ConfigurationError):
            LBANNPolicy("lazy")

    def test_overflow_rejected(self):
        """S >> aggregate RAM (480 GB) -> the paper's 'Does not support'."""
        with pytest.raises(PolicyError):
            LBANNPolicy("dynamic").prepare(ctx(total_mb=1.5 * TB))

    def test_slight_overflow_tolerated(self):
        """The OpenImages case: ~4% above aggregate RAM still runs."""
        prep = LBANNPolicy("dynamic").prepare(ctx(total_mb=500 * GB))
        assert prep.plan is not None

    def test_single_owner(self):
        prep = LBANNPolicy("dynamic").prepare(ctx())
        assert prep.plan.holder_counts().max() <= 1

    def test_memory_only(self):
        prep = LBANNPolicy("dynamic").prepare(ctx())
        for placement in prep.plan.placements:
            assert all(len(ids) == 0 for ids in placement.class_ids[1:])

    def test_preloading_pays_prestage(self):
        prep = LBANNPolicy("preloading").prepare(ctx())
        assert prep.prestage_time_s > 0 and prep.warm_epochs == 0
        assert LBANNPolicy("dynamic").prepare(ctx()).prestage_time_s == 0.0


class TestLocalityAware:
    def test_full_coverage_flag(self):
        prep = LocalityAwarePolicy().prepare(ctx())
        assert prep.accesses_full_dataset

    def test_pools_partition_dataset(self):
        c = ctx()
        prep = LocalityAwarePolicy().prepare(c)
        pools = [
            set(prep.stream_fn(w, 1).tolist()) for w in range(c.num_workers)
        ]
        # streams are truncated to L, so pools need not be exhaustive, but
        # they must be pairwise disjoint (each sample has one serving pool)
        for i in range(len(pools)):
            for j in range(i + 1, len(pools)):
                assert not (pools[i] & pools[j])

    def test_leftover_fraction_zero_when_fits(self):
        prep = LocalityAwarePolicy().prepare(ctx())
        assert prep.warm_pfs_fraction == 0.0

    def test_leftover_fraction_positive_when_overflow(self):
        prep = LocalityAwarePolicy().prepare(ctx(total_mb=6 * TB))
        assert prep.warm_pfs_fraction > 0.0


class TestNoPFS:
    def test_uses_full_hierarchy(self):
        c = ctx(total_mb=800 * GB)  # forces spill into SSD
        prep = NoPFSPolicy().prepare(c)
        spilled = any(
            len(p.class_ids[1]) > 0 for p in prep.plan.placements
        )
        assert spilled

    def test_caches_by_own_frequency(self):
        c = ctx()
        prep = NoPFSPolicy().prepare(c)
        for worker, placement in enumerate(prep.plan.placements):
            freqs = c.stream.worker_frequencies(worker)
            cached = placement.cached_ids
            if cached.size:
                assert freqs[cached].min() >= 1

    def test_full_coverage_small_dataset(self):
        prep = NoPFSPolicy().prepare(ctx())
        # every accessed sample is cached somewhere when capacity allows
        assert prep.best_map is not None

    def test_warm_after_first_epoch(self):
        prep = NoPFSPolicy().prepare(ctx())
        assert prep.warm_epochs == 1


class TestRegistry:
    def test_fig8_lineup_order(self):
        names = [p.name for p in fig8_lineup()]
        assert names == [
            "naive",
            "staging_buffer",
            "deepio_ordered",
            "deepio_opportunistic",
            "parallel_staging",
            "lbann_dynamic",
            "lbann_preloading",
            "locality_aware",
            "nopfs",
        ]

    def test_table1_rows_match_paper(self):
        """Table 1's check/cross pattern, row by row."""
        rows = {p.name: p.capabilities.as_row() for p in table1_lineup()}
        assert rows["pytorch"] == ("no", "yes", "yes", "no", "yes")
        assert rows["staging_buffer"] == ("no", "yes", "no", "no", "yes")
        assert rows["parallel_staging"] == ("yes", "no", "no", "no", "yes")
        assert rows["deepio_ordered"] == ("yes", "no", "no", "no", "yes")
        assert rows["lbann_dynamic"] == ("yes", "no", "yes", "no", "no")
        assert rows["locality_aware"] == ("yes", "yes", "yes", "no", "no")
        assert rows["nopfs"] == ("yes", "yes", "yes", "yes", "yes")

    def test_nopfs_only_fully_capable(self):
        """Only NoPFS has every Table 1 capability (the paper's point)."""
        for p in table1_lineup():
            caps = p.capabilities
            all_yes = all(caps.as_row()[i] == "yes" for i in range(5))
            assert all_yes == (p.name == "nopfs")
