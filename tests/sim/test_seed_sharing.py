"""Seed-sharing execution: ``run_seed``/``run_seeds`` semantics.

The shared path must be a pure optimization: per-seed results are
bitwise identical to fresh ``Simulator.run()`` calls, in any
evaluation order (no RNG state may leak from one seed's run into the
next), and the :class:`~repro.sim.SeedShareStats` counters prove what
was actually shared.
"""

import dataclasses
import random

import pytest

from repro.datasets import DatasetModel
from repro.perfmodel import sec6_cluster
from repro.sim import (
    NaivePolicy,
    NoPFSPolicy,
    SimulationConfig,
    Simulator,
    StagingBufferPolicy,
    fig8_policies,
)

SEEDS = [3, 7, 11, 19, 23]


def _config(seed: int = 5) -> SimulationConfig:
    ds = DatasetModel("seed-share", 1_600, 90.0 / 1_600, 0.02)
    return SimulationConfig(
        dataset=ds,
        system=sec6_cluster(),
        batch_size=8,
        num_epochs=2,
        seed=seed,
    )


def _fresh(config: SimulationConfig, policy, seed: int) -> str:
    return (
        Simulator(dataclasses.replace(config, seed=seed)).run(policy).to_json()
    )


class TestBitwiseEquality:
    @pytest.mark.parametrize(
        "policy",
        [NaivePolicy(), StagingBufferPolicy(), NoPFSPolicy()],
        ids=lambda p: p.name,
    )
    def test_run_seeds_matches_fresh_runs(self, policy):
        config = _config()
        shared = Simulator(config).run_seeds(policy, SEEDS)
        assert sorted(shared) == sorted(SEEDS)
        for seed in SEEDS:
            assert shared[seed].to_json() == _fresh(config, policy, seed), seed

    def test_no_rng_leak_across_permutations(self):
        """Property (ISSUE 9): evaluation order never changes a result.

        Any RNG or cache state leaking from one seed's run into the
        next would make some permutation disagree with the fresh
        per-seed runs.
        """
        config = _config()
        policy = StagingBufferPolicy()
        expected = {seed: _fresh(config, policy, seed) for seed in SEEDS}
        rng = random.Random(0)
        for _ in range(4):
            order = SEEDS[:]
            rng.shuffle(order)
            shared = Simulator(config).run_seeds(policy, order)
            assert {s: r.to_json() for s, r in shared.items()} == expected, order

    def test_interleaved_policies_share_cleanly(self):
        """Alternating policies between seeds must not cross-pollute."""
        config = _config()
        sim = Simulator(config)
        lineup = fig8_policies()[:3]
        for seed in SEEDS[:3]:
            for policy in lineup:
                assert sim.run_seed(policy, seed).to_json() == _fresh(
                    config, policy, seed
                ), (policy.name, seed)

    def test_own_seed_short_circuits(self):
        config = _config(seed=7)
        sim = Simulator(config)
        assert sim.seed_variant(7) is sim
        assert sim.run_seed(NaivePolicy(), 7).to_json() == sim.run(
            NaivePolicy()
        ).to_json()

    def test_no_rng_leak_through_state_cache(self):
        """Property (ISSUE 10): the cloned RNG path never leaks state.

        One *reused* simulator serves every shuffled order, so from the
        second run on, every noise generator comes from the
        generator-state cache's rewind path (half-consumed streams
        rewound between runs). Any stale state would make some order
        disagree with the fresh per-seed runs.
        """
        config = _config()
        policy = StagingBufferPolicy()
        expected = {seed: _fresh(config, policy, seed) for seed in SEEDS}
        rng = random.Random(1)
        sim = Simulator(config)
        for _ in range(4):
            order = SEEDS[:]
            rng.shuffle(order)
            shared = sim.run_seeds(policy, order)
            assert {s: r.to_json() for s, r in shared.items()} == expected, order
        # The reruns were served by clones, not fresh derivations.
        variant = sim.seed_variant(SEEDS[0])
        states = variant.plan_cache.noise_states
        assert states.cloned > 0
        assert states.derived == config.num_epochs * config.system.num_workers

    def test_run_many_seed_matches_fresh_runs(self):
        """The grouped epoch-major seed path == fresh per-policy runs."""
        from repro.api import fig8_lineup

        config = _config()
        sim = Simulator(config)
        lineup = fig8_lineup()
        for seed in SEEDS[:3]:
            outcomes = sim.run_many_seed(lineup, seed)
            assert len(outcomes) == len(lineup)
            for policy, outcome in zip(lineup, outcomes):
                assert outcome.to_json() == _fresh(config, policy, seed), (
                    policy.name,
                    seed,
                )
            assert sim.seed_variant(seed).ctx.held_epoch is None


class TestCounters:
    def test_invariant_policy_prep_shared_across_seeds(self):
        sim = Simulator(_config())
        policy = NaivePolicy()  # seed_invariant_prepare = True
        sim.run_seeds(policy, SEEDS)
        assert sim.seed_share.prep_misses == 1
        assert sim.seed_share.prep_hits == len(SEEDS) - 1
        # None of SEEDS is the base seed, so every one spawns a variant.
        assert sim.seed_share.variants == len(SEEDS)

    def test_seed_dependent_policy_reprepares_per_seed(self):
        sim = Simulator(_config())
        policy = NoPFSPolicy()  # prepare() reads the seeded streams
        assert not policy.seed_invariant_prepare
        sim.run_seeds(policy, SEEDS)
        assert sim.seed_share.prep_misses == len(SEEDS)
        assert sim.seed_share.prep_hits == 0

    def test_plan_scalars_adopted_by_variants(self):
        """Variant simulators inherit shared scalars instead of recomputing."""
        sim = Simulator(_config())
        sim.run_seeds(NaivePolicy(), SEEDS[:3])
        variant = sim.seed_variant(SEEDS[1])
        assert variant is not sim
        assert variant.plan_cache.scalar_hits > 0

    def test_variants_memoized(self):
        sim = Simulator(_config())
        assert sim.seed_variant(3) is sim.seed_variant(3)
        assert sim.seed_share.variants == 1

    def test_run_many_seed_mirrors_run_seed_counters(self):
        """Grouped prep counters match the sequential run_seed semantics."""
        sequential = Simulator(_config())
        grouped = Simulator(_config())
        policy = NaivePolicy()  # seed_invariant_prepare = True
        for seed in SEEDS:
            sequential.run_seed(policy, seed)
        for seed in SEEDS:
            grouped.run_many_seed([policy], seed)
        for field in ("prep_misses", "prep_hits", "variants"):
            assert getattr(grouped.seed_share, field) == getattr(
                sequential.seed_share, field
            ), field
