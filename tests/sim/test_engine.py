"""End-to-end simulator invariants: the relations the paper's plots rest on."""

import numpy as np
import pytest

from repro.api import fig8_lineup
from repro.datasets import DatasetModel
from repro.perfmodel import Source, sec6_cluster
from repro.sim import (
    NoiseConfig,
    NoPFSPolicy,
    PerfectPolicy,
    SimulationConfig,
    Simulator,
    StagingBufferPolicy,
    analytic_lower_bound,
)
from repro.units import TB


def make_config(total_mb=200.0, n_samples=2_000, epochs=3, seed=7, **kw):
    ds = DatasetModel("x", n_samples, total_mb / n_samples, 0.02)
    base = dict(
        dataset=ds,
        system=sec6_cluster(),
        batch_size=8,
        num_epochs=epochs,
        seed=seed,
    )
    base.update(kw)
    return SimulationConfig(**base)


class TestBasicRuns:
    def test_result_shape(self):
        sim = Simulator(make_config())
        res = sim.run(NoPFSPolicy())
        assert res.policy == "nopfs"
        assert len(res.epochs) == 3
        assert res.total_time_s > 0
        assert res.scenario == "S<d1"

    def test_run_many_skips_unsupported(self):
        cfg = make_config(total_mb=1.5 * TB, n_samples=20_000)
        out = Simulator(cfg).run_many(fig8_lineup())
        assert "lbann_dynamic" not in out  # paper's "Does not support"
        assert "nopfs" in out

    def test_batch_times_recorded_when_asked(self):
        cfg = make_config(record_batch_times=True)
        res = Simulator(cfg).run(NoPFSPolicy())
        assert res.epochs[0].batch_durations is not None
        assert res.epochs[0].batch_durations.size == cfg.iterations_per_epoch

    def test_batch_times_not_recorded_by_default(self):
        res = Simulator(make_config()).run(NoPFSPolicy())
        assert res.epochs[0].batch_durations is None


class TestDominanceRelations:
    """Orderings that must hold for the paper's conclusions to emerge."""

    def test_lower_bound_below_everything(self):
        cfg = make_config()
        lb = analytic_lower_bound(cfg)
        results = Simulator(cfg).run_many(fig8_lineup() + [PerfectPolicy()])
        for name, res in results.items():
            assert res.total_time_s >= lb - 1e-9, name

    def test_lower_bound_reuses_context(self):
        """Passing a live context must not change the bound (and must not
        rebuild the scenario's access stream)."""
        cfg = make_config()
        sim = Simulator(cfg)
        fresh = analytic_lower_bound(cfg)
        assert analytic_lower_bound(cfg, sim.ctx) == fresh
        assert sim.lower_bound() == fresh

    def test_naive_is_worst(self):
        cfg = make_config()
        results = Simulator(cfg).run_many(fig8_lineup())
        naive = results["naive"].total_time_s
        for name, res in results.items():
            assert res.total_time_s <= naive + 1e-9, name

    def test_nopfs_beats_staging_buffer(self):
        """Caching must beat cacheless prefetching on a cacheable dataset."""
        cfg = make_config(total_mb=500.0, epochs=4)
        sim = Simulator(cfg)
        nopfs = sim.run(NoPFSPolicy()).total_time_s
        sb = sim.run(StagingBufferPolicy()).total_time_s
        assert nopfs <= sb + 1e-9

    def test_perfect_close_to_analytic_bound(self):
        cfg = make_config(noise=NoiseConfig.disabled())
        lb = analytic_lower_bound(cfg)
        perfect = Simulator(cfg).run(PerfectPolicy()).total_time_s
        # Perfect adds only barrier straggler penalty over the bound.
        assert lb <= perfect <= lb * 1.5


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = Simulator(make_config(seed=3)).run(NoPFSPolicy())
        b = Simulator(make_config(seed=3)).run(NoPFSPolicy())
        assert a.total_time_s == b.total_time_s
        np.testing.assert_array_equal(a.epoch_times_s, b.epoch_times_s)

    def test_different_seed_differs(self):
        a = Simulator(make_config(seed=3)).run(StagingBufferPolicy())
        b = Simulator(make_config(seed=4)).run(StagingBufferPolicy())
        assert a.total_time_s != b.total_time_s

    def test_noise_free_determinism(self):
        cfg = make_config(noise=NoiseConfig.disabled())
        a = Simulator(cfg).run(NoPFSPolicy())
        b = Simulator(cfg).run(NoPFSPolicy())
        assert a.total_time_s == b.total_time_s


class TestAccounting:
    def test_fetch_bytes_cover_stream(self):
        """Every byte a worker consumes must be fetched from somewhere."""
        cfg = make_config()
        sim = Simulator(cfg)
        res = sim.run(NoPFSPolicy())
        for e in res.epochs:
            epoch_bytes = sum(
                float(sim.ctx.sizes_mb[sim.ctx.worker_epoch_ids(w, e.epoch)].sum())
                for w in range(cfg.system.num_workers)
            )
            assert sum(e.fetch_bytes[:3]) == pytest.approx(epoch_bytes, rel=1e-6)

    def test_epoch0_cold_sources(self):
        """Cold start: no local hits; PFS plus warm-up remote fetches
        (prefetchers running ahead on other workers)."""
        res = Simulator(make_config()).run(NoPFSPolicy())
        first = res.epochs[0]
        assert first.fetch_bytes[int(Source.LOCAL)] == 0
        assert first.fetch_bytes[int(Source.PFS)] > 0
        # contention accounting stays at full cold level regardless
        assert first.gamma == 4.0

    def test_warm_epochs_mostly_cached_small_dataset(self):
        res = Simulator(make_config()).run(NoPFSPolicy())
        warm = res.epochs[-1]
        assert warm.fetch_bytes[int(Source.PFS)] == 0
        assert warm.fetch_bytes[int(Source.LOCAL)] > 0

    def test_staging_buffer_always_pfs(self):
        res = Simulator(make_config()).run(StagingBufferPolicy())
        for e in res.epochs:
            assert e.fetch_bytes[int(Source.PFS)] > 0
            assert e.fetch_bytes[int(Source.LOCAL)] == 0

    def test_breakdown_sums_to_total(self):
        res = Simulator(make_config()).run(NoPFSPolicy())
        bd = res.location_breakdown_s()
        assert sum(bd.values()) == pytest.approx(res.total_time_s, rel=1e-9)
        assert all(v >= 0 for v in bd.values())

    def test_fetch_shares_sum_to_one(self):
        res = Simulator(make_config()).run(NoPFSPolicy())
        assert sum(res.fetch_shares().values()) == pytest.approx(1.0)

    def test_gamma_drops_after_warmup(self):
        res = Simulator(make_config()).run(NoPFSPolicy())
        assert res.epochs[0].gamma == 4.0
        assert res.epochs[-1].gamma == 0.0

    def test_stalls_nonnegative(self):
        for policy in fig8_lineup():
            res = Simulator(make_config()).run(policy)
            for e in res.epochs:
                assert e.stall_mean_s >= 0
                assert e.stall_max_s >= e.stall_mean_s - 1e-12


class TestEpochDynamics:
    def test_first_epoch_slowest_for_nopfs(self):
        """Warm epochs must be faster than the cold first epoch."""
        res = Simulator(make_config(total_mb=2000.0)).run(NoPFSPolicy())
        times = res.epoch_times_s
        assert times[0] >= times[1:].max()

    def test_median_skips_first_epoch(self):
        res = Simulator(make_config()).run(NoPFSPolicy())
        med_all = res.median_epoch_time_s(skip_first=False)
        med_warm = res.median_epoch_time_s(skip_first=True)
        assert med_warm <= med_all

    def test_scaling_contention(self):
        """More workers -> more PFS contention for cacheless loaders."""
        t_small = (
            Simulator(make_config(n_samples=4_000, total_mb=4_000.0))
            .run(StagingBufferPolicy())
            .epochs[-1]
            .gamma
        )
        bigger = make_config(
            n_samples=4_000, total_mb=4_000.0, system=sec6_cluster(num_workers=8)
        )
        t_big = Simulator(bigger).run(StagingBufferPolicy()).epochs[-1].gamma
        assert t_big > t_small
