"""ScenarioContext caching and stream-helper tests."""

import numpy as np
import pytest

from repro.datasets import DatasetModel
from repro.errors import ConfigurationError
from repro.perfmodel import sec6_cluster
from repro.sim import ScenarioContext, SimulationConfig


def ctx(n_samples=2_000, epochs=3, batch=8):
    ds = DatasetModel("x", n_samples, 0.1)
    cfg = SimulationConfig(
        dataset=ds, system=sec6_cluster(), batch_size=batch, num_epochs=epochs
    )
    return ScenarioContext(cfg)


class TestStreams:
    def test_worker_ids_match_access_stream(self):
        c = ctx()
        expected = c.stream.worker_epoch_stream(2, 1)
        np.testing.assert_array_equal(c.worker_epoch_ids(2, 1), expected)

    def test_epoch_batches_cached(self):
        c = ctx()
        assert c.epoch_batches(0) is c.epoch_batches(0)

    def test_lengths(self):
        c = ctx()
        assert c.worker_epoch_ids(0, 0).size == c.samples_per_worker_per_epoch


class TestEpochMatrix:
    def test_rows_are_worker_streams(self):
        c = ctx()
        mat = c.epoch_matrix(1)
        assert mat.shape == (c.num_workers, c.samples_per_worker_per_epoch)
        for worker in range(c.num_workers):
            np.testing.assert_array_equal(
                mat[worker], c.stream.worker_epoch_stream(worker, 1)
            )

    def test_matches_batch_view(self):
        c = ctx()
        batches = c.epoch_batches(0)  # (T, N, B)
        mat = c.epoch_matrix(0)
        for worker in range(c.num_workers):
            np.testing.assert_array_equal(
                mat[worker], batches[:, worker, :].reshape(-1)
            )

    def test_cached_and_shares_buffer_with_batch_view(self):
        c = ctx()
        assert c.epoch_matrix(0) is c.epoch_matrix(0)
        # One permutation copy per epoch: both views alias one buffer.
        assert np.shares_memory(c.epoch_batches(0), c.epoch_matrix(0))

    def test_sizes_matrix_aligned(self):
        c = ctx()
        mat = c.epoch_matrix(2)
        np.testing.assert_array_equal(c.sizes_matrix(2), c.sizes_mb[mat])

    def test_cached_permutation_is_read_only(self):
        """Mutating the shared views must raise, not corrupt the cache."""
        c = ctx()
        with pytest.raises(ValueError):
            c.epoch_matrix(0)[0, 0] = -1
        with pytest.raises(ValueError):
            c.worker_epoch_ids(1, 0)[0] = -1
        with pytest.raises(ValueError):
            c.epoch_batches(0)[0, 0, 0] = -1


class TestFrequencies:
    def test_sparse_counts_match_dense(self):
        c = ctx()
        sparse = c.worker_frequencies_sparse()
        for worker in range(c.num_workers):
            dense = c.stream.worker_frequencies(worker)
            ids, counts = sparse[worker]
            rebuilt = np.zeros_like(dense)
            rebuilt[ids] = counts
            np.testing.assert_array_equal(rebuilt, dense)

    def test_cached(self):
        c = ctx()
        assert c.worker_frequencies_sparse() is c.worker_frequencies_sparse()


class TestTiledStream:
    def test_length_is_L(self):
        c = ctx()
        ids = np.arange(10)
        out = c.tiled_epoch_stream(ids, 0, 0, "t")
        assert out.size == c.samples_per_worker_per_epoch

    def test_truncates_large_sets(self):
        c = ctx()
        ids = np.arange(c.samples_per_worker_per_epoch * 3)
        out = c.tiled_epoch_stream(ids, 0, 0, "t")
        assert out.size == c.samples_per_worker_per_epoch
        assert np.unique(out).size == out.size  # no repeats when enough ids

    def test_only_draws_from_pool(self):
        c = ctx()
        ids = np.array([3, 7, 11])
        out = c.tiled_epoch_stream(ids, 0, 0, "t")
        assert set(out.tolist()) <= {3, 7, 11}

    def test_deterministic_and_epoch_dependent(self):
        c = ctx()
        ids = np.arange(50)
        a = c.tiled_epoch_stream(ids, 1, 2, "t")
        b = c.tiled_epoch_stream(ids, 1, 2, "t")
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c.tiled_epoch_stream(ids, 1, 3, "t"))

    def test_worker_dependent(self):
        c = ctx()
        ids = np.arange(50)
        assert not np.array_equal(
            c.tiled_epoch_stream(ids, 0, 0, "t"),
            c.tiled_epoch_stream(ids, 1, 0, "t"),
        )

    def test_empty_pool_rejected(self):
        c = ctx()
        with pytest.raises(ConfigurationError):
            c.tiled_epoch_stream(np.empty(0, dtype=np.int64), 0, 0, "t")


class TestPermCacheEnvOverride:
    """``REPRO_PERM_CACHE_MAX_ELEMENTS`` resizes the cache cap per process."""

    ENV = "REPRO_PERM_CACHE_MAX_ELEMENTS"

    def test_default_cap_caches_small_scenarios(self):
        assert ctx().cache_enabled

    def test_zero_disables_caching(self, monkeypatch):
        monkeypatch.setenv(self.ENV, "0")
        c = ctx()
        assert not c.cache_enabled
        assert c.epoch_matrix(0) is not c.epoch_matrix(0)

    def test_cap_compares_total_elements(self, monkeypatch):
        c = ctx()
        elements = c.config.num_epochs * c.config.dataset.num_samples
        monkeypatch.setenv(self.ENV, str(elements))
        assert ctx().cache_enabled
        monkeypatch.setenv(self.ENV, str(elements - 1))
        assert not ctx().cache_enabled

    def test_non_integer_rejected(self, monkeypatch):
        monkeypatch.setenv(self.ENV, "lots")
        with pytest.raises(ConfigurationError):
            ctx()

    def test_read_at_construction_only(self, monkeypatch):
        c = ctx()
        monkeypatch.setenv(self.ENV, "0")
        # An existing context keeps the cap it was built with.
        assert c.cache_enabled


class TestHoldEpoch:
    """The epoch-major loop's rolling one-epoch permutation slot."""

    def _uncached(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERM_CACHE_MAX_ELEMENTS", "0")
        return ctx()

    def test_held_epoch_served_without_rebuilding(self, monkeypatch):
        c = self._uncached(monkeypatch)
        c.hold_epoch(1)
        assert c.held_epoch == 1
        builds = c.perm_builds
        assert c.epoch_matrix(1) is c.epoch_matrix(1)
        assert c.perm_builds == builds

    def test_held_matrix_bitwise_matches_unheld(self, monkeypatch):
        c = self._uncached(monkeypatch)
        expected = c.epoch_matrix(1).copy()
        c.hold_epoch(1)
        np.testing.assert_array_equal(c.epoch_matrix(1), expected)

    def test_rolls_one_epoch_at_a_time(self, monkeypatch):
        c = self._uncached(monkeypatch)
        c.hold_epoch(0)
        c.hold_epoch(1)
        assert c.held_epoch == 1
        # The released epoch rebuilds; the held one doesn't.
        builds = c.perm_builds
        c.epoch_matrix(1)
        assert c.perm_builds == builds
        c.epoch_matrix(0)
        assert c.perm_builds == builds + 1

    def test_re_hold_is_a_no_op(self, monkeypatch):
        c = self._uncached(monkeypatch)
        c.hold_epoch(2)
        held = c.epoch_matrix(2)
        c.hold_epoch(2)
        assert c.epoch_matrix(2) is held

    def test_release(self, monkeypatch):
        c = self._uncached(monkeypatch)
        c.hold_epoch(0)
        c.release_held_epoch()
        assert c.held_epoch is None
        assert c.epoch_matrix(0) is not c.epoch_matrix(0)

    def test_perm_builds_counts_materializations(self, monkeypatch):
        c = self._uncached(monkeypatch)
        assert c.perm_builds == 0
        c.epoch_matrix(0)
        c.epoch_matrix(0)
        assert c.perm_builds == 2
        c.hold_epoch(1)
        c.epoch_matrix(1)
        assert c.perm_builds == 3

    def test_cache_enabled_hold_primes_persistent_cache(self):
        c = ctx()
        c.hold_epoch(0)
        assert c.held_epoch is None  # nothing to roll when caching
        builds = c.perm_builds
        assert c.epoch_matrix(0) is c.epoch_matrix(0)
        assert c.perm_builds == builds == 1
