"""Admissibility of the search lower bounds (ISSUE 8, satellite 1).

Branch-and-bound correctness rests on one property: for every
registered policy spec and every scenario, the pruning bound must
never exceed the simulated objective. If it ever did, B&B could prune
the true optimum and silently return a worse incumbent — so this suite
pins ``bound <= simulated total time`` for *every* policy spec (lineup
variants included) across a scenario grid that exercises cold/warm
epochs, barriers on and off, interference, noise on and off, and the
unsupported-policy path (where the bound must be ``inf``).

The paper's own Perfect floor (:func:`analytic_lower_bound`) is pinned
on the same grid restricted to lockstep-barrier scenarios — its
``E x worst-epoch-0-worker / c`` shape assumes every epoch ends on a
straggler, which barrier-free runs (where only cumulative per-worker
chains are ordered) can legitimately undercut by fractions of a
percent. The policy bound switches to the epoch-mean floor in that
regime, so it stays admissible everywhere.
"""

import math

import pytest

from repro.api import FIG8_POLICIES, POLICIES, Scenario, TABLE1_POLICIES, make_policy
from repro.datasets import DatasetModel
from repro.errors import PolicyError
from repro.perfmodel import sec6_cluster
from repro.sim import (
    NoiseConfig,
    SimulationConfig,
    Simulator,
    analytic_lower_bound,
    policy_lower_bound,
)

#: Every registered policy spec: canonical names plus lineup variants.
ALL_POLICY_SPECS = sorted({*POLICIES.names(), *FIG8_POLICIES, *TABLE1_POLICIES})


def _config(name: str, **kw) -> SimulationConfig:
    total_mb = kw.pop("total_mb", 200.0)
    n_samples = kw.pop("n_samples", 2_000)
    ds = DatasetModel(name, n_samples, total_mb / n_samples, 0.02)
    base = dict(
        dataset=ds,
        system=sec6_cluster(),
        batch_size=8,
        num_epochs=3,
        seed=7,
    )
    base.update(kw)
    return SimulationConfig(**base)


#: Four lockstep-barrier scenarios spanning the bound's case analysis
#: (default noise; noise off + interference + recorded batches; a
#: dataset far beyond node memory where the PFS floor binds; a tiny
#: fully-cacheable dataset) — the paper's own setting, where both
#: bounds must hold.
BARRIER_SCENARIOS = {
    "default": _config("bd-default"),
    "interference": _config(
        "bd-interference",
        system=sec6_cluster(num_workers=2),
        batch_size=16,
        num_epochs=2,
        noise=NoiseConfig.disabled(),
        network_interference=0.6,
        record_batch_times=True,
    ),
    "pfs_bound": _config(
        "bd-pfs",
        total_mb=6_000.0,
        n_samples=4_000,
        num_epochs=2,
        seed=11,
    ),
    "tiny": _config("bd-tiny", total_mb=20.0, n_samples=640, num_epochs=2),
}

#: The full grid adds a barrier-free scenario: the policy bound must
#: survive the cumulative-chain (no per-epoch straggler) regime too.
SCENARIOS = {
    **BARRIER_SCENARIOS,
    "nobarrier": _config(
        "bd-nobarrier",
        system=sec6_cluster(num_workers=2),
        batch_size=16,
        num_epochs=2,
        noise=NoiseConfig.disabled(),
        barrier=False,
    ),
}


@pytest.fixture(scope="module")
def simulators():
    """One simulator per scenario (shared context keeps the grid fast)."""
    return {key: Simulator(config) for key, config in SCENARIOS.items()}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("spec", ALL_POLICY_SPECS)
def test_policy_bound_admissible(simulators, scenario, spec):
    """bound <= simulated objective; unsupported => bound == inf."""
    sim = simulators[scenario]
    config = SCENARIOS[scenario]
    bound = policy_lower_bound(config, make_policy(spec), sim.ctx)
    try:
        result = sim.run(make_policy(spec))
    except PolicyError:
        assert bound == math.inf, (
            f"{spec} is unsupported on {scenario} but bounded finite"
        )
        return
    assert bound <= result.total_time_s, (
        f"{spec} on {scenario}: bound {bound} exceeds "
        f"simulated {result.total_time_s}"
    )


@pytest.mark.parametrize("scenario", sorted(BARRIER_SCENARIOS))
@pytest.mark.parametrize("spec", ALL_POLICY_SPECS)
def test_analytic_bound_admissible(simulators, scenario, spec):
    """The paper's Perfect floor holds for every policy under barriers."""
    sim = simulators[scenario]
    floor = analytic_lower_bound(SCENARIOS[scenario], sim.ctx)
    try:
        result = sim.run(make_policy(spec))
    except PolicyError:
        return
    assert floor <= result.total_time_s, (
        f"{spec} on {scenario} beat the analytic bound"
    )


def test_unsupported_bounds_to_inf():
    """LBANN on an oversized dataset: "Does not support" => inf bound."""
    from repro.units import TB

    config = _config("bd-oversized", total_mb=1.5 * TB, n_samples=4_000, num_epochs=2)
    assert policy_lower_bound(config, make_policy("lbann:dynamic")) == math.inf


def test_bound_reuses_context():
    """Passing a live context must not change the bound."""
    config = SCENARIOS["tiny"]
    sim = Simulator(config)
    fresh = policy_lower_bound(config, make_policy("naive"))
    assert policy_lower_bound(config, make_policy("naive"), sim.ctx) == fresh


def test_bound_discriminates():
    """On a PFS-heavy scenario the bound actually separates policies.

    Pruning power (not just admissibility) is the point: several
    cacheless policies' bounds must exceed the best policy's *true*
    objective, otherwise B&B degenerates to an exhaustive sweep. This
    is the search smoke scenario used by the CLI tests and CI.
    """
    config = Scenario(
        dataset="mnist",
        system="piz_daint:4",
        policy="naive",
        batch_size=16,
        num_epochs=4,
        scale=0.1,
    ).build_config()
    sim = Simulator(config)
    bounds, truths = {}, {}
    for spec in FIG8_POLICIES:
        bounds[spec] = policy_lower_bound(config, make_policy(spec), sim.ctx)
        try:
            truths[spec] = sim.run(make_policy(spec)).total_time_s
        except PolicyError:
            pass
    best_truth = min(truths.values())
    prunable = [s for s, b in bounds.items() if b > best_truth]
    assert len(prunable) >= 3, f"too few prunable policies: bounds={bounds}"
