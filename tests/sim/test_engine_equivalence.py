"""The epoch-matrix engine is bitwise-equivalent to the seed engine.

The vectorized engine (PR 5) must produce byte-identical
``SimulationResult`` JSON to the per-worker scalar loop it replaced —
no simulated number may change, so every downstream figure and every
cache entry written under the current code fingerprint is byte-equal
to what the scalar loop would write. The seed loop is frozen verbatim in
``tests/sim/reference_engine.py``; this suite pins every registered
policy (including the ``name:variant`` lineup specs) against it across
a small scenario grid that exercises cold/warm epochs, stream
rewriting, noise, network interference, recorded batch times and the
unsupported-policy error path.
"""

import json

import pytest

from repro.api import FIG8_POLICIES, POLICIES, TABLE1_POLICIES, make_policy
from repro.datasets import DatasetModel
from repro.errors import PolicyError
from repro.perfmodel import sec6_cluster
from repro.sim import NoiseConfig, SimulationConfig, Simulator
from repro.units import TB

from .reference_engine import ReferenceSimulator

#: Every registered policy spec: canonical names plus the lineup
#: variants (``deepio:opportunistic``, ``lbann:preloading``, ...).
ALL_POLICY_SPECS = sorted(
    {*POLICIES.names(), *FIG8_POLICIES, *TABLE1_POLICIES}
)


def _config(name: str, **kw) -> SimulationConfig:
    total_mb = kw.pop("total_mb", 200.0)
    n_samples = kw.pop("n_samples", 2_000)
    ds = DatasetModel(name, n_samples, total_mb / n_samples, 0.02)
    base = dict(
        dataset=ds,
        system=sec6_cluster(),
        batch_size=8,
        num_epochs=3,
        seed=7,
    )
    base.update(kw)
    return SimulationConfig(**base)


#: Small grid covering the engine's behavioural corners. Values chosen
#: so every code path runs: default noise; noise off + interference +
#: recorded batch durations; a dataset far beyond aggregate memory
#: (uncovered placements, LBANN "Does not support", sharded baselines
#: skipping samples); and a fully-cacheable dataset.
SCENARIOS = {
    "default": _config("eq-default"),
    "interference": _config(
        "eq-interference",
        system=sec6_cluster(num_workers=2),
        batch_size=16,
        num_epochs=2,
        noise=NoiseConfig.disabled(),
        network_interference=0.6,
        record_batch_times=True,
    ),
    "oversized": _config(
        "eq-oversized",
        total_mb=1.5 * TB,
        n_samples=4_000,
        num_epochs=2,
        seed=11,
    ),
    "tiny": _config("eq-tiny", total_mb=20.0, n_samples=640, num_epochs=2),
}


def _run(sim, policy):
    """A result's canonical JSON, or the PolicyError it raised."""
    try:
        return json.dumps(sim.run(policy).to_dict(), sort_keys=True)
    except PolicyError as exc:
        return ("PolicyError", str(exc))


@pytest.fixture(scope="module")
def simulators():
    """One (reference, vectorized) simulator pair per scenario.

    Module-scoped so the expensive state (access streams, sizes) builds
    once per scenario; the pair *shares* one ScenarioContext, which also
    pins that a context primed by one engine serves the other.
    """
    pairs = {}
    for key, config in SCENARIOS.items():
        sim = Simulator(config)
        pairs[key] = (ReferenceSimulator(config, ctx=sim.ctx), sim)
    return pairs


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("spec", ALL_POLICY_SPECS)
def test_bitwise_identical_to_seed_engine(simulators, scenario, spec):
    reference_sim, sim = simulators[scenario]
    assert _run(sim, make_policy(spec)) == _run(reference_sim, make_policy(spec))


def test_error_messages_identical():
    """The no-available-source PolicyError pins epoch/worker indices."""
    cfg = SCENARIOS["oversized"]
    ref = _run(ReferenceSimulator(cfg), make_policy("lbann:dynamic"))
    new = _run(Simulator(cfg), make_policy("lbann:dynamic"))
    assert isinstance(new, tuple), "oversized LBANN must be unsupported"
    assert new == ref
