"""Epoch-major ``run_many`` is bitwise-identical to per-policy ``run``.

PR 10's sharing contract: :meth:`Simulator.run_many_outcomes` iterates
epochs outermost so each epoch's permutation, size gather and noise RNG
states are materialized once and shared by every policy — **even when
the permutation cache is disabled** (the paper-scale regime). This
suite forces the cache off via ``REPRO_PERM_CACHE_MAX_ELEMENTS=0`` and
pins, for every registered policy spec:

* byte-identical results (or identical ``PolicyError`` messages)
  against a fresh per-policy ``Simulator.run``;
* the sharing counters — permutations built once per epoch
  (``perm_builds == E``, not ``E x P``), noise states derived once per
  ``(epoch, worker)`` and rolled epoch to epoch;
* the rolling slots drain afterwards (``held_epoch is None``, one
  epoch of noise states resident).
"""

import json

import pytest

from repro.api import FIG8_POLICIES, POLICIES, TABLE1_POLICIES, make_policy
from repro.datasets import DatasetModel
from repro.errors import PolicyError
from repro.perfmodel import sec6_cluster
from repro.sim import SimulationConfig, Simulator
from repro.sim.result import SimulationResult
from repro.units import TB

#: Every registered policy spec (canonical names plus lineup variants),
#: mirroring the engine-equivalence matrix.
ALL_POLICY_SPECS = sorted(
    {*POLICIES.names(), *FIG8_POLICIES, *TABLE1_POLICIES}
)


def _config(name: str, **kw) -> SimulationConfig:
    total_mb = kw.pop("total_mb", 200.0)
    n_samples = kw.pop("n_samples", 2_000)
    ds = DatasetModel(name, n_samples, total_mb / n_samples, 0.02)
    base = dict(
        dataset=ds,
        system=sec6_cluster(),
        batch_size=8,
        num_epochs=3,
        seed=7,
    )
    base.update(kw)
    return SimulationConfig(**base)


#: Two corners: the default noisy scenario (every policy simulates) and
#: the oversized one (LBANN overflow — the PolicyError slots must carry
#: the same error the per-policy run raises, without disturbing peers).
SCENARIOS = {
    "default": _config("rm-default"),
    "oversized": _config(
        "rm-oversized",
        total_mb=1.5 * TB,
        n_samples=4_000,
        num_epochs=2,
        seed=11,
    ),
}


def _canonical(outcome):
    """An outcome's canonical JSON, or its PolicyError as a tuple."""
    if isinstance(outcome, PolicyError):
        return ("PolicyError", str(outcome))
    return json.dumps(outcome.to_dict(), sort_keys=True)


def _expected(config: SimulationConfig, spec: str):
    """What a fresh single-policy simulator produces for ``spec``."""
    try:
        result = Simulator(config).run(make_policy(spec))
        return json.dumps(result.to_dict(), sort_keys=True)
    except PolicyError as exc:
        return ("PolicyError", str(exc))


@pytest.fixture(scope="module")
def shared():
    """One cache-disabled epoch-major batch per scenario, plus oracles.

    The env override is module-scoped (ScenarioContext reads it at
    construction), so the expected per-policy runs execute under the
    same cache-off regime — isolating the epoch-major sharing as the
    only difference under test.
    """
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_PERM_CACHE_MAX_ELEMENTS", "0")
    data = {}
    try:
        for key, config in SCENARIOS.items():
            sim = Simulator(config)
            assert not sim.ctx.cache_enabled
            # Frequency-driven policies materialize every epoch matrix
            # at *prepare* time (cached sparsely on the context); do it
            # up front so the build delta below counts only the
            # epoch-major loop's materializations.
            sim.ctx.worker_frequencies_sparse()
            builds_before = sim.ctx.perm_builds
            policies = [make_policy(spec) for spec in ALL_POLICY_SPECS]
            outcomes = sim.run_many_outcomes(policies)
            assert len(outcomes) == len(policies)
            data[key] = {
                "sim": sim,
                "policies": policies,
                "outcomes": dict(zip(ALL_POLICY_SPECS, outcomes)),
                "expected": {
                    spec: _expected(config, spec) for spec in ALL_POLICY_SPECS
                },
                "loop_builds": sim.ctx.perm_builds - builds_before,
            }
    finally:
        mp.undo()
    return data


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("spec", ALL_POLICY_SPECS)
def test_bitwise_identical_to_per_policy_run(shared, scenario, spec):
    entry = shared[scenario]
    assert _canonical(entry["outcomes"][spec]) == entry["expected"][spec]


def test_oversized_exercises_error_slots(shared):
    """The oversized batch must actually contain PolicyError slots."""
    outcomes = shared["oversized"]["outcomes"].values()
    assert any(isinstance(o, PolicyError) for o in outcomes)
    assert any(isinstance(o, SimulationResult) for o in outcomes)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_permutations_built_once_per_epoch(shared, scenario):
    """E builds for the whole batch — not E x P (the old cache-off cost)."""
    entry = shared[scenario]
    assert entry["loop_builds"] == SCENARIOS[scenario].num_epochs


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_rolling_slots_released(shared, scenario):
    assert shared[scenario]["sim"].ctx.held_epoch is None


def test_noise_states_derived_once_per_epoch_worker(shared):
    """N x E derives total; every further request is a state clone."""
    config = SCENARIOS["default"]
    sim = shared["default"]["sim"]
    states = sim.plan_cache.noise_states
    n = config.system.num_workers
    assert states.derived == n * config.num_epochs
    # Several noisy policies per epoch -> the clone path dominates.
    assert states.cloned >= states.derived
    # Rolling eviction: only the final epoch's states stay resident.
    assert len(states) == n


def test_size_gathers_shared_across_policies(shared):
    """The rolling sizes slot misses once per epoch and serves the rest."""
    sim = shared["default"]["sim"]
    assert sim.plan_cache.misses == SCENARIOS["default"].num_epochs
    assert sim.plan_cache.hits > 0


def test_run_many_dict_omits_unsupported():
    """``run_many`` keeps the historical dict shape over the new core."""
    config = SCENARIOS["oversized"]
    policies = [make_policy(spec) for spec in ALL_POLICY_SPECS]
    outcomes = Simulator(config).run_many_outcomes(
        [make_policy(spec) for spec in ALL_POLICY_SPECS]
    )
    results = Simulator(config).run_many(policies)
    supported = {
        policy.name: outcome
        for policy, outcome in zip(policies, outcomes)
        if isinstance(outcome, SimulationResult)
    }
    assert set(results) == set(supported)
    for name, result in results.items():
        assert _canonical(result) == _canonical(supported[name])
