"""SimulationConfig validation and scenario classification."""

import pytest

from repro.datasets import DatasetModel
from repro.errors import ConfigurationError
from repro.perfmodel import sec6_cluster
from repro.sim import SimulationConfig
from repro.units import GB, TB


def make(total_mb, n_samples=10_000, **kw):
    ds = DatasetModel("x", n_samples, total_mb / n_samples)
    base = dict(dataset=ds, system=sec6_cluster(), batch_size=8, num_epochs=2)
    base.update(kw)
    return SimulationConfig(**base)


class TestValidation:
    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigurationError):
            make(100.0, batch_size=0)

    def test_rejects_bad_epochs(self):
        with pytest.raises(ConfigurationError):
            make(100.0, num_epochs=0)

    def test_rejects_negative_interference(self):
        with pytest.raises(ConfigurationError):
            make(100.0, network_interference=-1.0)

    def test_rejects_batch_exceeding_dataset(self):
        with pytest.raises(ConfigurationError):
            make(100.0, n_samples=16, batch_size=8)  # N*B = 32 > 16

    def test_stream_config_derived(self):
        cfg = make(100.0)
        sc = cfg.stream_config
        assert sc.num_workers == 4
        assert sc.batch_size == 8
        assert sc.drop_last

    def test_iterations(self):
        cfg = make(100.0)
        assert cfg.iterations_per_epoch == 10_000 // 32


class TestScenarios:
    """The paper's four dataset-size regimes (Sec 6)."""

    def test_fits_in_ram(self):
        assert make(40.0).scenario == "S<d1"  # MNIST-like

    def test_fits_in_one_worker(self):
        assert make(500 * GB).scenario == "d1<S<D"

    def test_fits_in_cluster(self):
        assert make(1.5 * TB).scenario == "D<S<ND"

    def test_exceeds_cluster(self):
        assert make(6 * TB).scenario == "ND<S"

    def test_boundaries_use_d1_then_D_then_ND(self):
        # d1 = 120 GB, D = 1020 GB, ND = 4080 GB in the Sec 6.1 cluster.
        assert make(119 * GB).scenario == "S<d1"
        assert make(121 * GB).scenario == "d1<S<D"
        assert make(1025 * GB).scenario == "D<S<ND"
        assert make(4081 * GB).scenario == "ND<S"
