"""The seed (pre-vectorization) simulation engine, kept verbatim.

This is the per-worker scalar loop the epoch-matrix engine in
:mod:`repro.sim.engine` replaced. It is retained — outside the
``repro`` package, so it never ships and never enters the sweep-cache
code fingerprint — as the ground truth for the bitwise-equivalence
suite (``tests/sim/test_engine_equivalence.py``), the CI cache-diff
smoke (``tools/engine_equivalence.py``) and the old-vs-new speedup
benchmark (``benchmarks/bench_engine.py``).

Do not "improve" this module: its value is that it computes exactly
what the seed engine computed, one worker at a time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PolicyError
from repro.perfmodel import Source, resolve_fetch, write_times
from repro.rng import generator
from repro.sim.config import SimulationConfig
from repro.sim.context import ScenarioContext
from repro.sim.lockstep import lockstep_epoch
from repro.sim.noise import apply_noise
from repro.sim.policies.base import Policy, PreparedPolicy
from repro.sim.result import BatchTimeStats, EpochResult, SimulationResult

__all__ = ["ReferenceSimulator", "reference_run"]

_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


def _hash01(ids: np.ndarray) -> np.ndarray:
    """Deterministic per-sample uniforms in [0, 1) (splitmix-style)."""
    with np.errstate(over="ignore"):
        x = ids.astype(np.uint64) * _HASH_MULT
        x ^= x >> np.uint64(31)
        x *= np.uint64(0xFF51AFD7ED558CCD)
        x ^= x >> np.uint64(33)
    return x.astype(np.float64) / float(2**64)


def reference_run(
    config: SimulationConfig, policy: Policy, ctx: ScenarioContext | None = None
) -> SimulationResult:
    """Run ``policy`` through the seed scalar engine."""
    return ReferenceSimulator(config, ctx=ctx).run(policy)


class ReferenceSimulator:
    """The seed engine: per-worker Python loop over every epoch."""

    def __init__(
        self, config: SimulationConfig, ctx: ScenarioContext | None = None
    ) -> None:
        self.config = config
        self.ctx = ctx if ctx is not None else ScenarioContext(config)

    def run(self, policy: Policy) -> SimulationResult:
        prep = policy.prepare(self.ctx)
        return self._run_prepared(policy, prep)

    # -- internals (verbatim seed code) ------------------------------------

    def _lookahead_batches(self, prep: PreparedPolicy) -> int | None:
        if prep.lookahead_batches is not None:
            return prep.lookahead_batches
        batch_mb = self.config.batch_size * self.config.dataset.mean_realized_size_mb
        if batch_mb <= 0:
            return None
        return max(1, int(self.config.system.staging.capacity_mb / batch_mb))

    def _uncovered_fraction(self, prep: PreparedPolicy) -> float:
        if prep.best_map is None:
            return 1.0
        sizes = self.ctx.sizes_mb
        uncovered = prep.best_map < 0
        total = float(sizes.sum())
        if total <= 0:
            return 0.0
        return float(sizes[uncovered].sum()) / total

    def _epoch_pfs_fraction(self, prep: PreparedPolicy, epoch: int) -> float:
        if prep.ideal:
            return 0.0
        if epoch < prep.warm_epochs:
            return 1.0
        if prep.warm_pfs_fraction is not None:
            return float(prep.warm_pfs_fraction)
        if not prep.pfs_in_warm:
            return 0.0
        return self._uncovered_fraction(prep)

    def _run_prepared(self, policy: Policy, prep: PreparedPolicy) -> SimulationResult:
        cfg = self.config
        ctx = self.ctx
        system = cfg.system
        n = ctx.num_workers
        t_iters = cfg.iterations_per_epoch
        batch = cfg.batch_size
        p0 = system.staging.threads
        lookahead = self._lookahead_batches(prep)

        epoch_results: list[EpochResult] = []
        for epoch in range(cfg.num_epochs):
            warm = prep.plan is not None and epoch >= prep.warm_epochs
            fraction = self._epoch_pfs_fraction(prep, epoch)
            gamma = system.pfs.effective_gamma(n, fraction)
            pfs_share = float(system.pfs.per_worker_mbps(gamma)) if gamma > 0 else 0.0
            pfs_latency = system.pfs.per_sample_latency(gamma) if gamma > 0 else 0.0
            pfs_share_per_thread = pfs_share / p0 if prep.overlap else pfs_share

            batch_reads = np.zeros((n, t_iters))
            batch_comps = np.zeros((n, t_iters))
            fetch_seconds = np.zeros(4)
            fetch_bytes = np.zeros(4)
            fetch_counts = np.zeros(4, dtype=np.int64)

            for worker in range(n):
                use_override = prep.stream_fn is not None and (
                    warm or prep.warm_epochs == 0
                )
                if use_override:
                    ids = prep.stream_fn(worker, epoch)
                else:
                    ids = ctx.worker_epoch_ids(worker, epoch)
                sizes = ctx.sizes_mb[ids]
                comps = sizes / system.compute_mbps
                batch_comps[worker] = comps.reshape(t_iters, batch).sum(axis=1)
                if prep.ideal:
                    continue

                if warm:
                    local_cls = prep.lookups[worker].classes_of(ids)
                    remote_cls = prep.best_map[ids]
                else:
                    local_cls = np.full(ids.shape, -1, dtype=np.int8)
                    remote_cls = local_cls
                    if prep.plan is not None and prep.best_map is not None:
                        progress = (
                            np.arange(1, ids.size + 1, dtype=np.float64)
                            / max(ids.size, 1)
                        )
                        available = _hash01(ids) < progress
                        remote_cls = np.where(
                            available, prep.best_map[ids], np.int8(-1)
                        ).astype(np.int8)
                res = resolve_fetch(
                    sizes, local_cls, remote_cls, system, pfs_share_per_thread
                )
                if np.any(res.sources == int(Source.NONE)):
                    raise PolicyError(
                        f"policy {policy.name!r} scheduled a sample with no "
                        f"available source (epoch {epoch}, worker {worker})"
                    )
                fetch = res.fetch_times
                if pfs_latency > 0:
                    fetch = fetch + pfs_latency * (
                        res.sources == int(Source.PFS)
                    )
                rng = generator(cfg.seed, "noise", epoch, worker)
                fetch = apply_noise(fetch, res.sources, cfg.noise, rng)
                reads = fetch + write_times(sizes, system)

                divisor = float(p0) if prep.overlap else 1.0
                fetch_seconds += (
                    np.bincount(res.sources, weights=fetch, minlength=4)[:4]
                    / divisor
                )
                worker_bytes = np.bincount(
                    res.sources, weights=sizes, minlength=4
                )[:4]
                fetch_bytes += worker_bytes
                fetch_counts += np.bincount(res.sources, minlength=4)[:4]

                if cfg.network_interference > 0:
                    total_b = worker_bytes.sum()
                    if total_b > 0:
                        nonlocal_frac = (
                            worker_bytes[int(Source.PFS)]
                            + 0.5 * worker_bytes[int(Source.REMOTE)]
                        ) / total_b
                        batch_comps[worker] *= (
                            1.0 + cfg.network_interference * nonlocal_frac
                        )

                per_batch_read = reads.reshape(t_iters, batch).sum(axis=1)
                if prep.overlap:
                    batch_reads[worker] = per_batch_read / p0
                else:
                    batch_comps[worker] += per_batch_read

            step = lockstep_epoch(
                batch_reads,
                batch_comps,
                lookahead if prep.overlap else None,
                barrier=cfg.barrier,
            )
            durations = step.batch_durations
            epoch_results.append(
                EpochResult(
                    epoch=epoch,
                    time_s=step.epoch_time,
                    stall_mean_s=float(step.worker_stalls.mean()),
                    stall_max_s=float(step.worker_stalls.max()),
                    fetch_seconds=tuple((fetch_seconds / n).tolist()),
                    fetch_bytes=tuple(fetch_bytes.tolist()),
                    fetch_counts=tuple(int(c) for c in fetch_counts),
                    batch_stats=BatchTimeStats.from_durations(durations),
                    gamma=float(gamma),
                    batch_durations=durations if cfg.record_batch_times else None,
                )
            )

        return SimulationResult(
            policy=policy.name,
            scenario=cfg.scenario,
            prestage_time_s=prep.prestage_time_s,
            accesses_full_dataset=prep.accesses_full_dataset,
            epochs=tuple(epoch_results),
        )
