"""Kernel backend registry: resolution, validation, numba fallback."""

import importlib.util
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.sim import KERNEL_BACKENDS, KernelBackend, resolve_kernel_backend
from repro.sim.backends import (
    KernelBackendRegistry,
    _numba_backend,
    numpy_backend,
)

HAVE_NUMBA = importlib.util.find_spec("numba") is not None


class TestRegistry:
    def test_builtins_registered(self):
        assert KERNEL_BACKENDS.names() == ["numpy", "numba"]
        assert "numpy" in KERNEL_BACKENDS
        assert "threads" not in KERNEL_BACKENDS
        assert list(KERNEL_BACKENDS) == ["numpy", "numba"]

    def test_describe_rows(self):
        rows = dict(KERNEL_BACKENDS.describe())
        assert set(rows) == {"numpy", "numba"}
        assert "default" in rows["numpy"]

    def test_none_resolves_to_numpy(self):
        backend = resolve_kernel_backend(None)
        assert backend.name == "numpy"
        assert not backend.compiled

    def test_resolution_memoized(self):
        assert resolve_kernel_backend("numpy") is resolve_kernel_backend("numpy")

    def test_instance_passes_through(self):
        backend = numpy_backend()
        assert resolve_kernel_backend(backend) is backend

    def test_unknown_name_suggests(self):
        with pytest.raises(ConfigurationError, match="did you mean.*numpy"):
            resolve_kernel_backend("numpyy")

    def test_unknown_name_without_close_match(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            resolve_kernel_backend("zzz")

    def test_non_string_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot interpret"):
            resolve_kernel_backend(42)

    def test_duplicate_registration_rejected(self):
        registry = KernelBackendRegistry()
        registry.register("numpy", "x", numpy_backend)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("numpy", "x", numpy_backend)


class TestValidate:
    """validate() rejects typos without building (or importing) anything."""

    def test_accepts_known_names_none_and_instances(self):
        KERNEL_BACKENDS.validate(None)
        KERNEL_BACKENDS.validate("numpy")
        KERNEL_BACKENDS.validate("numba")  # no import, no warning
        KERNEL_BACKENDS.validate(numpy_backend())

    def test_rejects_unknown_with_suggestion(self):
        with pytest.raises(ConfigurationError, match="did you mean.*numba"):
            KERNEL_BACKENDS.validate("nunba")

    def test_rejects_non_string(self):
        with pytest.raises(ConfigurationError, match="cannot interpret"):
            KERNEL_BACKENDS.validate(3.14)

    def test_validate_does_not_build(self):
        registry = KernelBackendRegistry()

        def explode():
            raise AssertionError("factory must not run")

        registry.register("lazy", "never built", explode)
        registry.validate("lazy")


@pytest.mark.skipif(HAVE_NUMBA, reason="exercises the numba-missing fallback")
class TestFallbackWithoutNumba:
    def test_falls_back_to_numpy_with_one_warning(self):
        # A fresh registry so memoization in the global one can't have
        # already swallowed the warning.
        registry = KernelBackendRegistry()
        registry.register("numpy", "ref", numpy_backend)
        registry.register("numba", "jit", _numba_backend)
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = registry.resolve("numba")
        assert backend.name == "numpy"
        # Memoized: the second resolution is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert registry.resolve("numba") is backend

    def test_global_registry_resolves_numba_to_something_usable(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            backend = resolve_kernel_backend("numba")
        assert isinstance(backend, KernelBackend)


@pytest.mark.skipif(not HAVE_NUMBA, reason="needs the optional numba install")
class TestCompiledBackend:
    def test_numba_backend_is_compiled(self):
        backend = resolve_kernel_backend("numba")
        assert backend.name == "numba"
        assert backend.compiled

    def test_compiled_kernels_bitwise_match_reference(self):
        import numpy as np

        from repro.sim import kernels

        backend = resolve_kernel_backend("numba")
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 2**62, size=(4, 257), dtype=np.uint64)
        assert np.array_equal(backend.hash01(ids), kernels.hash01(ids))

        sources = rng.integers(0, kernels.NUM_SOURCES, size=(8, 129))
        weights = rng.random((8, 129))
        assert np.array_equal(
            backend.source_totals(sources, weights),
            kernels.source_totals(sources, weights),
        )
        assert np.array_equal(
            backend.source_totals(sources), kernels.source_totals(sources)
        )

        rows = rng.random((16, 65))
        assert np.array_equal(
            backend.accumulate_rows(rows), kernels.accumulate_rows(rows)
        )

        fetch = rng.random((8, 129))
        assert np.array_equal(
            backend.add_pfs_latency(fetch, sources, 0.25),
            kernels.add_pfs_latency(fetch, sources, 0.25),
        )
