"""Unit-conversion and formatting tests."""

import pytest

from repro import units


class TestConversions:
    def test_mb_identity(self):
        assert units.mb(5.0, "MB") == 5.0

    def test_kb(self):
        assert units.mb(1024.0, "KB") == pytest.approx(1.0)

    def test_gb(self):
        assert units.mb(2, "GB") == 2048.0

    def test_tb(self):
        assert units.mb(1, "TB") == 1024.0 * 1024.0

    def test_bytes(self):
        assert units.mb(units.BYTES_PER_MB, "B") == pytest.approx(1.0)

    def test_case_insensitive(self):
        assert units.mb(1, "gb") == units.mb(1, "GB")

    def test_unknown_unit(self):
        with pytest.raises(ValueError):
            units.mb(1, "PB")

    def test_byte_roundtrip(self):
        assert units.from_bytes(units.to_bytes(3.5)) == pytest.approx(3.5)

    def test_constants_consistent(self):
        assert units.GB == 1024 * units.MB
        assert units.TB == 1024 * units.GB
        assert units.KB == units.MB / 1024


class TestFormatting:
    def test_fmt_size_scales(self):
        assert "KB" in units.fmt_size(0.5)
        assert "MB" in units.fmt_size(10)
        assert "GB" in units.fmt_size(2048)
        assert "TB" in units.fmt_size(3 * units.TB)

    def test_fmt_time_scales(self):
        assert "ms" in units.fmt_time(0.005)
        assert units.fmt_time(5) == "5.00 s"
        assert "min" in units.fmt_time(90)
        assert "h" in units.fmt_time(7200)

    def test_fmt_rate(self):
        assert "MB/s" in units.fmt_rate(100)
        assert "GB/s" in units.fmt_rate(3000)
