"""Determinism and independence tests for the RNG substrate."""

import numpy as np
import pytest

from repro import rng


class TestDeterminism:
    def test_same_key_same_stream(self):
        a = rng.generator(7, "shuffle", 3).random(100)
        b = rng.generator(7, "shuffle", 3).random(100)
        np.testing.assert_array_equal(a, b)

    def test_different_epoch_different_stream(self):
        a = rng.generator(7, "shuffle", 3).random(100)
        b = rng.generator(7, "shuffle", 4).random(100)
        assert not np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = rng.generator(7, "shuffle", 3).random(100)
        b = rng.generator(8, "shuffle", 3).random(100)
        assert not np.array_equal(a, b)

    def test_string_key_stable(self):
        a = rng.generator(1, "noise").random(10)
        b = rng.generator(1, "noise").random(10)
        np.testing.assert_array_equal(a, b)

    def test_string_keys_distinct(self):
        a = rng.generator(1, "noise").random(10)
        b = rng.generator(1, "sizes").random(10)
        assert not np.array_equal(a, b)

    def test_mixed_key(self):
        g = rng.generator(1, "worker", 5, "epoch", 2)
        assert g.random() == rng.generator(1, "worker", 5, "epoch", 2).random()

    def test_bad_key_type(self):
        with pytest.raises(TypeError):
            rng.generator(1, 3.14)


class TestSpawn:
    def test_spawn_count(self):
        gens = rng.spawn_generators(9, 4, "threads")
        assert len(gens) == 4

    def test_spawned_independent(self):
        gens = rng.spawn_generators(9, 3, "threads")
        draws = [g.random(50) for g in gens]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawned_reproducible(self):
        a = rng.spawn_generators(9, 2, "t")[1].random(5)
        b = rng.spawn_generators(9, 2, "t")[1].random(5)
        np.testing.assert_array_equal(a, b)

    def test_negative_seed_normalized(self):
        # keys are masked to 32 bits; the entropy itself accepts any int >= 0
        g = rng.generator(3, -1)
        assert g.random() == rng.generator(3, -1).random()


#: Key shapes exercising every normalization branch: bare ints, strings,
#: mixed, empty, and the engine's canonical noise key.
KEY_SHAPES = [
    (7, ()),
    (7, (3,)),
    (7, ("noise", 0, 1)),
    (7, ("noise", 0, 2)),
    (1, ("shuffle", 5, "sub")),
    (0xC1A1B0, ("noise", 11, 63)),
]


class TestGeneratorStateCache:
    def test_clone_bitwise_matches_fresh_across_key_shapes(self):
        """Property (ISSUE 10): a state-cloned stream == a fresh stream.

        For every key shape, both the first (derived) and every later
        (rewound) request must reproduce ``generator(seed, *key)``'s
        stream exactly — across the draw kinds the engine consumes
        (lognormal, uniform, standard normal).
        """
        cache = rng.GeneratorStateCache()
        for seed, key in KEY_SHAPES:
            def draws(g):
                return (g.lognormal(0.0, 0.3, 16), g.random(8), g.standard_normal(4))
            fresh = draws(rng.generator(seed, *key))
            for trip in ("derived", "cloned", "cloned-again"):
                got = draws(cache.generator(seed, *key))
                for a, b in zip(got, fresh):
                    np.testing.assert_array_equal(a, b, err_msg=f"{key} {trip}")

    def test_rewinds_consumed_state(self):
        """A half-consumed stream rewinds to its start on re-request."""
        cache = rng.GeneratorStateCache()
        first = cache.generator(9, "noise", 0, 0)
        first.random(1000)  # advance arbitrarily far
        again = cache.generator(9, "noise", 0, 0)
        np.testing.assert_array_equal(
            again.random(32), rng.generator(9, "noise", 0, 0).random(32)
        )

    def test_same_object_rewound(self):
        """The cache retains one generator per key (the cheap path)."""
        cache = rng.GeneratorStateCache()
        assert cache.generator(9, "n", 0) is cache.generator(9, "n", 0)

    def test_counters(self):
        cache = rng.GeneratorStateCache()
        cache.generator(9, "noise", 0, 0)
        cache.generator(9, "noise", 0, 1)
        cache.generator(9, "noise", 0, 0)
        cache.generator(9, "noise", 0, 1)
        assert cache.derived == 2
        assert cache.cloned == 2
        assert len(cache) == 2

    def test_distinct_keys_distinct_streams(self):
        cache = rng.GeneratorStateCache()
        a = cache.generator(9, "noise", 0, 0).random(50)
        b = cache.generator(9, "noise", 0, 1).random(50)
        assert not np.array_equal(a, b)

    def test_evict_prefix_drops_one_epoch(self):
        cache = rng.GeneratorStateCache()
        for epoch in (0, 1):
            for worker in range(4):
                cache.generator(9, "noise", epoch, worker)
        assert len(cache) == 8
        assert cache.evict(9, "noise", 0) == 4
        assert len(cache) == 4
        # Epoch 1 survives (served as a clone); epoch 0 re-derives,
        # still bitwise equal to the fresh stream.
        cloned_before = cache.cloned
        cache.generator(9, "noise", 1, 0)
        assert cache.cloned == cloned_before + 1
        np.testing.assert_array_equal(
            cache.generator(9, "noise", 0, 0).random(16),
            rng.generator(9, "noise", 0, 0).random(16),
        )

    def test_evict_is_seed_scoped(self):
        cache = rng.GeneratorStateCache()
        cache.generator(9, "noise", 0, 0)
        cache.generator(10, "noise", 0, 0)
        assert cache.evict(9, "noise") == 1
        assert len(cache) == 1

    def test_clear_preserves_counters(self):
        cache = rng.GeneratorStateCache()
        cache.generator(9, "n")
        cache.generator(9, "n")
        cache.clear()
        assert len(cache) == 0
        assert (cache.derived, cache.cloned) == (1, 1)
