"""Determinism and independence tests for the RNG substrate."""

import numpy as np
import pytest

from repro import rng


class TestDeterminism:
    def test_same_key_same_stream(self):
        a = rng.generator(7, "shuffle", 3).random(100)
        b = rng.generator(7, "shuffle", 3).random(100)
        np.testing.assert_array_equal(a, b)

    def test_different_epoch_different_stream(self):
        a = rng.generator(7, "shuffle", 3).random(100)
        b = rng.generator(7, "shuffle", 4).random(100)
        assert not np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = rng.generator(7, "shuffle", 3).random(100)
        b = rng.generator(8, "shuffle", 3).random(100)
        assert not np.array_equal(a, b)

    def test_string_key_stable(self):
        a = rng.generator(1, "noise").random(10)
        b = rng.generator(1, "noise").random(10)
        np.testing.assert_array_equal(a, b)

    def test_string_keys_distinct(self):
        a = rng.generator(1, "noise").random(10)
        b = rng.generator(1, "sizes").random(10)
        assert not np.array_equal(a, b)

    def test_mixed_key(self):
        g = rng.generator(1, "worker", 5, "epoch", 2)
        assert g.random() == rng.generator(1, "worker", 5, "epoch", 2).random()

    def test_bad_key_type(self):
        with pytest.raises(TypeError):
            rng.generator(1, 3.14)


class TestSpawn:
    def test_spawn_count(self):
        gens = rng.spawn_generators(9, 4, "threads")
        assert len(gens) == 4

    def test_spawned_independent(self):
        gens = rng.spawn_generators(9, 3, "threads")
        draws = [g.random(50) for g in gens]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawned_reproducible(self):
        a = rng.spawn_generators(9, 2, "t")[1].random(5)
        b = rng.spawn_generators(9, 2, "t")[1].random(5)
        np.testing.assert_array_equal(a, b)

    def test_negative_seed_normalized(self):
        # keys are masked to 32 bits; the entropy itself accepts any int >= 0
        g = rng.generator(3, -1)
        assert g.random() == rng.generator(3, -1).random()
