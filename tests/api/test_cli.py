"""The consolidated ``python -m repro`` CLI, driven through repro.cli.main."""

import json

import pytest

from repro.api import Scenario
from repro.cli import main


def tiny_dict(policy="nopfs"):
    return Scenario(
        dataset="mnist",
        system="sec6_cluster:2",
        policy=policy,
        batch_size=16,
        num_epochs=2,
        scale=0.2,
    ).to_dict()


RUN_FLAGS = [
    "run", "--dataset", "mnist", "--system", "sec6_cluster:2", "--policy", "nopfs",
    "--batch-size", "16", "--epochs", "2", "--scale", "0.2",
]


class TestList:
    def test_list_policies(self, capsys):
        assert main(["list", "policies"]) == 0
        out = capsys.readouterr().out
        assert "nopfs" in out and "deepio" in out and "alias of deepio" in out

    def test_list_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for section in ("policies:", "datasets:", "systems:", "kernels:", "figures:"):
            assert section in out
        assert "fig12" in out

    def test_list_kernels(self, capsys):
        assert main(["list", "kernels"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out and "numba" in out
        assert "default" in out


class TestRun:
    def test_run_flags_and_warm_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main([*RUN_FLAGS, "--cache-dir", cache]) == 0
        cold = capsys.readouterr().out
        assert "fingerprint:" in cold and "1 miss" in cold
        assert main([*RUN_FLAGS, "--cache-dir", cache]) == 0
        warm = capsys.readouterr().out
        assert "1 hit / 0 miss" in warm

    def test_run_json_stdout(self, capsys):
        assert main([*RUN_FLAGS, "--json", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["policy"] == "nopfs"

    def test_run_scenario_file(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(tiny_dict()))
        assert main(["run", "--scenario", str(path)]) == 0
        assert "mnist/sec6_cluster:2/nopfs" in capsys.readouterr().out

    def test_run_inline_scenario_json(self, capsys):
        assert main(["run", "--scenario", json.dumps(tiny_dict())]) == 0
        assert "total:" in capsys.readouterr().out

    def test_run_missing_flags_errors(self, capsys):
        assert main(["run", "--dataset", "mnist"]) == 2
        err = capsys.readouterr().err
        assert "--system" in err and "--policy" in err

    def test_run_unknown_policy_errors(self, capsys):
        rc = main(["run", "--dataset", "mnist", "--system", "sec6_cluster:2",
                   "--policy", "nopf", "--scale", "0.2"])
        assert rc == 2
        assert "did you mean" in capsys.readouterr().err

    def test_run_scenario_excludes_axis_flags(self, capsys):
        rc = main(["run", "--scenario", json.dumps(tiny_dict()), "--dataset", "mnist"])
        assert rc == 2

    def test_run_scenario_excludes_knob_flags(self, capsys):
        rc = main(["run", "--scenario", json.dumps(tiny_dict()), "--epochs", "5"])
        assert rc == 2
        assert "--epochs" in capsys.readouterr().err

    def test_run_kernels_flag_identical_output(self, capsys):
        assert main([*RUN_FLAGS, "--json", "-"]) == 0
        default = capsys.readouterr().out
        assert main([*RUN_FLAGS, "--json", "-", "--kernels", "numpy"]) == 0
        explicit = capsys.readouterr().out
        assert default[default.index("{"):] == explicit[explicit.index("{"):]

    def test_run_unknown_kernels_suggests(self, capsys):
        assert main([*RUN_FLAGS, "--kernels", "numpyy"]) == 2
        err = capsys.readouterr().err
        assert "unknown kernel backend" in err and "did you mean" in err


class TestSweepAndCache:
    @pytest.fixture()
    def scenarios_file(self, tmp_path):
        path = tmp_path / "scenarios.json"
        path.write_text(json.dumps([tiny_dict("naive"), tiny_dict("staging_buffer"),
                                    tiny_dict("nopfs")]))
        return path

    def test_scenarios_sweep_shard_merge_warm(self, tmp_path, scenarios_file, capsys):
        for shard in ("0/2", "1/2"):
            rc = main([
                "sweep", "run", "--scenarios", str(scenarios_file),
                "--shard", shard, "--cache-dir", str(tmp_path / f"shard{shard[0]}"),
                "--manifest", str(tmp_path / f"shard{shard[0]}.json"),
            ])
            assert rc == 0
        capsys.readouterr()
        rc = main([
            "sweep", "merge", str(tmp_path / "shard0"), str(tmp_path / "shard1"),
            "--into", str(tmp_path / "merged"),
            "--manifests", str(tmp_path / "shard0.json"), str(tmp_path / "shard1.json"),
            "--manifest-out", str(tmp_path / "merged.json"),
        ])
        assert rc == 0
        capsys.readouterr()
        # the merged cache serves the whole scenario list without simulating
        rc = main(["sweep", "run", "--scenarios", str(scenarios_file),
                   "--cache-dir", str(tmp_path / "merged")])
        assert rc == 0
        assert "0 miss" in capsys.readouterr().out

    def test_sweep_requires_one_source(self, scenarios_file, capsys):
        assert main(["sweep", "run"]) == 2
        assert main(["sweep", "run", "--grid", "repro.sweep.cli:demo_grid",
                     "--scenarios", str(scenarios_file)]) == 2

    def test_sweep_scenarios_rejects_grid_kwargs(self, scenarios_file, capsys):
        rc = main(["sweep", "run", "--scenarios", str(scenarios_file),
                   "--grid-kwargs", '{"scale": 0.1}'])
        assert rc == 2
        assert "--grid-kwargs" in capsys.readouterr().err

    def test_sweep_progress_lines_on_stderr(self, scenarios_file, capsys):
        rc = main(["sweep", "run", "--scenarios", str(scenarios_file),
                   "--executor", "batched", "--jobs", "2", "--progress"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "[3/3]" in captured.err  # one line per completed cell
        assert "sweep:" in captured.err  # end-of-sweep summary
        assert "executor=batched" in captured.out

    def test_sweep_and_lifecycle_with_mem_cache_spec(self, scenarios_file, capsys):
        spec = "mem:cli-test"
        assert main(["sweep", "run", "--scenarios", str(scenarios_file),
                     "--cache", spec]) == 0
        capsys.readouterr()
        assert main(["sweep", "run", "--scenarios", str(scenarios_file),
                     "--cache", spec]) == 0
        assert "3 hit / 0 miss" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache", spec]) == 0
        assert "entries: 3" in capsys.readouterr().out
        assert main(["cache", "verify", "--cache", spec, "--strict"]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--cache", spec, "--max-bytes", "1"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", spec]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_lifecycle_requires_exactly_one_cache_naming(self, tmp_path, capsys):
        assert main(["cache", "stats"]) == 2
        assert main(["cache", "stats", "--cache-dir", str(tmp_path),
                     "--cache", "mem:"]) == 2

    def test_run_with_mem_cache_and_executor(self, capsys):
        assert main([*RUN_FLAGS, "--cache", "mem:cli-run", "--executor", "serial"]) == 0
        capsys.readouterr()
        assert main([*RUN_FLAGS, "--cache", "mem:cli-run"]) == 0
        assert "1 hit / 0 miss" in capsys.readouterr().out

    def test_cache_lifecycle_subcommands(self, tmp_path, scenarios_file, capsys):
        cache = str(tmp_path / "cache")
        assert main(["sweep", "run", "--scenarios", str(scenarios_file),
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        assert "entries" in capsys.readouterr().out
        assert main(["cache", "verify", "--cache-dir", cache, "--strict"]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", cache, "--max-bytes", "1"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        assert "entries: 0" in capsys.readouterr().out


class TestExperimentsDispatch:
    def test_experiments_table1(self, capsys):
        assert main(["experiments", "--figures", "table1"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "nopfs" not in out.lower().split("===")[0]

    def test_experiments_unknown_figure(self, capsys):
        assert main(["experiments", "--figures", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err
