"""Old entry points keep working — and say they are deprecated."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_module(args, cwd=None):
    """Run ``python -m <args>`` with src on the path; return the process."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", *args],
        cwd=cwd or REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestDeprecatedHelpers:
    def test_fig8_policies_warns_but_works(self):
        from repro.api import fig8_lineup
        from repro.sim import fig8_policies

        with pytest.deprecated_call():
            old = fig8_policies()
        assert [p.name for p in old] == [p.name for p in fig8_lineup()]

    def test_table1_policies_warns_but_works(self):
        from repro.api import table1_lineup
        from repro.sim import table1_policies

        with pytest.deprecated_call():
            old = table1_policies()
        assert [p.name for p in old] == [p.name for p in table1_lineup()]

    def test_policyspec_factory_callable_warns_but_works(self):
        from repro.experiments.scaling import PolicySpec
        from repro.sim import NoPFSPolicy

        spec = PolicySpec("NoPFS", lambda: NoPFSPolicy())
        with pytest.deprecated_call():
            policy = spec.build()
        assert policy.name == "nopfs"

    def test_policyspec_legacy_keyword_still_works(self):
        from repro.errors import ConfigurationError
        from repro.experiments.scaling import PolicySpec
        from repro.sim import NoPFSPolicy

        spec = PolicySpec("NoPFS", policy_factory=lambda: NoPFSPolicy())
        with pytest.deprecated_call():
            assert spec.build().name == "nopfs"
        with pytest.raises(ConfigurationError):
            PolicySpec("NoPFS", "nopfs", policy_factory=lambda: NoPFSPolicy())
        with pytest.raises(ConfigurationError):
            PolicySpec("NoPFS")


class TestDeprecatedCLIs:
    def test_python_m_repro_sweep_still_works_and_warns(self, tmp_path):
        proc = run_module(
            ["repro.sweep", "stats", "--cache-dir", str(tmp_path / "cache")]
        )
        assert proc.returncode == 0, proc.stderr
        assert "DeprecationWarning" in proc.stderr
        assert "python -m repro sweep" in proc.stderr

    def test_python_m_repro_experiments_still_works_and_warns(self):
        proc = run_module(["repro.experiments", "--figures", "table1"])
        assert proc.returncode == 0, proc.stderr
        assert "Table 1" in proc.stdout or "table1" in proc.stdout
        assert "DeprecationWarning" in proc.stderr

    def test_new_cli_does_not_warn(self, tmp_path):
        proc = run_module(["repro", "cache", "stats", "--cache-dir", str(tmp_path / "c")])
        assert proc.returncode == 0, proc.stderr
        assert "DeprecationWarning" not in proc.stderr

    def test_old_imports_still_resolve(self):
        from repro.experiments.paper import main as experiments_main
        from repro.sweep.cli import main as sweep_main

        assert callable(sweep_main) and callable(experiments_main)
