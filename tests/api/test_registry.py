"""Registry behaviour: spec forms, aliases, duplicates, near-miss errors."""

import pytest

from repro.api import (
    DATASETS,
    POLICIES,
    SYSTEMS,
    DuplicateNameError,
    Registry,
    RegistryError,
    UnknownNameError,
    make_dataset,
    make_policy,
    make_system,
)
from repro.errors import ConfigurationError
from repro.sim import DeepIOPolicy, DoubleBufferPolicy
from repro.sweep import policy_fingerprint


class TestSpecForms:
    def test_bare_name(self):
        assert make_policy("nopfs").name == "nopfs"

    def test_variant_shorthand_string(self):
        p = make_policy("deepio:opportunistic")
        assert p.name == "deepio_opportunistic"
        assert policy_fingerprint(p) == policy_fingerprint(DeepIOPolicy("opportunistic"))

    def test_variant_shorthand_int_coercion(self):
        p = make_policy("pytorch:4")
        assert isinstance(p, DoubleBufferPolicy)
        assert p.prefetch_batches == 4

    def test_mapping_with_kwargs(self):
        p = POLICIES.create({"name": "lbann", "kwargs": {"mode": "preloading"}})
        assert p.name == "lbann_preloading"

    def test_flat_mapping(self):
        p = POLICIES.create({"name": "deepio", "mode": "ordered"})
        assert p.name == "deepio_ordered"

    def test_overrides_win_last(self):
        p = POLICIES.create("pytorch:2", prefetch_batches=8)
        assert p.prefetch_batches == 8

    def test_alias_resolves_like_family(self):
        assert policy_fingerprint(make_policy("lbann_dynamic")) == policy_fingerprint(
            make_policy("lbann:dynamic")
        )

    def test_normalization(self):
        assert make_policy("NoPFS").name == "nopfs"
        assert make_dataset("ImageNet-1k").name == "imagenet1k"
        assert make_dataset("imagenet_1k").name == "imagenet1k"

    def test_system_variant_sets_workers(self):
        assert make_system("sec6_cluster:8").num_workers == 8
        assert make_system("lassen:512").num_workers == 512

    def test_dataset_seed_kwarg(self):
        assert make_dataset("mnist", seed=7).seed == 7


class TestErrors:
    def test_unknown_name_lists_near_miss(self):
        with pytest.raises(UnknownNameError) as err:
            make_policy("nopf")
        assert "did you mean" in str(err.value)
        assert "nopfs" in str(err.value)

    def test_unknown_dataset_suggestion(self):
        with pytest.raises(UnknownNameError) as err:
            make_dataset("imagenet1")
        assert "imagenet1k" in str(err.value)

    def test_unknown_name_is_keyerror_and_configurationerror(self):
        with pytest.raises(KeyError):
            make_system("lasse-n-typo-zzz")
        with pytest.raises(ConfigurationError):
            make_system("lasse-n-typo-zzz")

    def test_unknown_error_str_is_plain(self):
        try:
            make_policy("zzz")
        except UnknownNameError as err:
            assert not str(err).startswith('"')

    def test_variant_on_variantless_entry(self):
        with pytest.raises(RegistryError):
            make_policy("nopfs:fast")

    def test_duplicate_registration_raises(self):
        reg = Registry("thing")
        reg.register("a", lambda: 1, summary="one")
        with pytest.raises(DuplicateNameError):
            reg.register("a", lambda: 2, summary="two")

    def test_duplicate_alias_raises(self):
        reg = Registry("thing")
        reg.register("a", lambda: 1, summary="one")
        with pytest.raises(DuplicateNameError):
            reg.alias("a", "a")
        reg.alias("b", "a")
        with pytest.raises(DuplicateNameError):
            reg.alias("b", "a")

    def test_builtin_registries_reject_reregistration(self):
        for registry, name in ((POLICIES, "nopfs"), (DATASETS, "mnist"), (SYSTEMS, "lassen")):
            with pytest.raises(DuplicateNameError):
                registry.register(name, lambda: None, summary="dup")

    def test_alias_of_unknown_target(self):
        reg = Registry("thing")
        with pytest.raises(UnknownNameError):
            reg.alias("b", "missing")

    def test_mapping_without_name(self):
        with pytest.raises(RegistryError):
            POLICIES.create({"kwargs": {}})

    def test_bad_spec_type(self):
        with pytest.raises(RegistryError):
            POLICIES.create(42)


class TestIntrospection:
    def test_names_excludes_aliases(self):
        names = POLICIES.names()
        assert "deepio" in names and "deepio_ordered" not in names

    def test_known_includes_aliases(self):
        known = POLICIES.known()
        assert {"deepio", "deepio_ordered", "lbann_preloading"} <= set(known)

    def test_contains_and_iter(self):
        assert "nopfs" in POLICIES
        assert "DeepIO_Ordered" in POLICIES
        assert "bogus" not in POLICIES
        assert list(POLICIES) == POLICIES.names()

    def test_describe_marks_aliases(self):
        rows = dict(POLICIES.describe())
        assert rows["deepio_ordered"].startswith("alias of deepio")
        assert rows["nopfs"]  # families carry a real summary

    def test_registered_family_lookup(self):
        assert POLICIES.family_of(DeepIOPolicy) == "deepio"
        assert POLICIES.family_of(int) is None
