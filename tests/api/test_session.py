"""Session facade: run/sweep semantics and cache interoperability."""

import pytest

from repro.api import Scenario, Session
from repro.errors import ConfigurationError, PolicyError
from repro.sim import Simulator
from repro.sweep import (
    CellCached,
    CellFinished,
    InMemoryBackend,
    ScenarioGrid,
    SweepFinished,
    SweepRunner,
    SweepStarted,
)
from repro.sweep.grid import SweepCell


def tiny(policy="nopfs", **overrides):
    base = dict(
        dataset="mnist",
        system="sec6_cluster:2",
        batch_size=16,
        num_epochs=2,
        scale=0.2,
    )
    return Scenario(policy=policy, **{**base, **overrides})


SCENARIOS = [tiny("naive"), tiny("staging_buffer"), tiny("nopfs")]


class TestRun:
    def test_run_matches_direct_simulation(self):
        s = tiny()
        direct = Simulator(s.build_config()).run(s.build_policy())
        assert Session().run(s).to_json() == direct.to_json()

    def test_run_accepts_dict_and_json(self):
        s = tiny()
        session = Session()
        expected = session.run(s).to_json()
        assert session.run(s.to_dict()).to_json() == expected
        assert session.run(s.to_json()).to_json() == expected

    def test_run_rejects_unsupported_loudly(self):
        # 1.5 GB of ImageNet-22k against ~0.25 GB aggregate RAM: the
        # paper's LBANN "Does not support" cell.
        s = tiny(policy="lbann:dynamic", dataset="imagenet22k", scale=0.001)
        with pytest.raises(PolicyError):
            Session().run(s)

    def test_run_is_memoized(self):
        session = Session(cache=InMemoryBackend())
        session.run(tiny())
        session.run(tiny())
        assert session.stats.hits == 1
        assert session.stats.misses == 1

    def test_bad_scenario_type(self):
        with pytest.raises(ConfigurationError):
            Session().run(42)


class TestSweep:
    def test_sweep_scenarios_tagged_by_fingerprint(self):
        outcome = Session().sweep(SCENARIOS)
        assert set(outcome.results) == {s.fingerprint() for s in SCENARIOS}

    def test_sweep_explicit_tags(self):
        outcome = Session().sweep(SCENARIOS, tags=["naive", "staging", "nopfs"])
        assert set(outcome.results) == {"naive", "staging", "nopfs"}

    def test_sweep_tag_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            Session().sweep(SCENARIOS, tags=["just-one"])

    def test_sweep_tags_relabel_cells_too(self):
        cells = [s.cell(tag=f"orig{i}") for i, s in enumerate(SCENARIOS)]
        outcome = Session().sweep(cells, tags=["a", "b", "c"])
        assert set(outcome.results) == {"a", "b", "c"}

    def test_sweep_accepts_grid_and_cells(self):
        s = tiny()
        grid = ScenarioGrid(
            datasets=[s.dataset.build(default_seed=s.seed)],
            systems=[s.system.build()],
            policies=[s.build_policy()],
            batch_sizes=[16],
            epoch_counts=[2],
        )
        session = Session()
        from_grid = session.sweep(grid)
        from_cells = session.sweep([SweepCell(tag=t, config=c.config, policy=c.policy)
                                    for t, c in ((c.tag, c) for c in grid.cells())])
        assert len(from_grid) == len(from_cells) == 1

    def test_sweep_shard_union_equals_full(self):
        session = Session()
        full = session.sweep(SCENARIOS)
        shard0 = session.sweep(SCENARIOS, shard="0/2")
        shard1 = session.sweep(SCENARIOS, shard="1/2")
        union = {**shard0.results, **shard1.results}
        assert set(union) == set(full.results)
        for tag, result in full.results.items():
            assert union[tag].to_json() == result.to_json()

    def test_per_call_override_runner(self, tmp_path):
        session = Session()
        outcome = session.sweep(SCENARIOS, jobs=1, cache_dir=tmp_path / "c")
        assert outcome.stats.misses == len(SCENARIOS)
        assert (tmp_path / "c").is_dir()
        # one-off runner counters fold into the session totals
        assert session.stats.cells == len(SCENARIOS)

    def test_jobs_override_inherits_session_cache(self):
        backend = InMemoryBackend()
        session = Session(cache=backend)
        session.sweep(SCENARIOS)
        warm = session.sweep(SCENARIOS, jobs=2)  # one-off runner, same cache
        assert warm.stats.misses == 0
        assert warm.stats.hits == len(SCENARIOS)


class TestExecutors:
    def test_session_executor_configurable(self):
        assert Session(jobs=2).runner.executor.name == "batched"
        assert Session(jobs=2, executor="process").runner.executor.name == "process"

    def test_sweep_executor_override_bitwise_identical(self):
        serial = Session().sweep(SCENARIOS)
        batched = Session().sweep(SCENARIOS, jobs=2, executor="batched")
        for tag, result in serial.results.items():
            assert batched[tag].to_json() == result.to_json()

    def test_cache_and_cache_dir_conflict(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not both"):
            Session(cache_dir=tmp_path, cache="mem:")


class TestKernelBackend:
    def test_session_backend_configurable(self):
        assert Session().runner.kernel_backend is None
        assert Session(kernel_backend="numpy").runner.kernel_backend == "numpy"

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            Session(kernel_backend="nunba")

    def test_backend_run_bitwise_identical(self):
        s = tiny()
        assert (
            Session(kernel_backend="numpy").run(s).to_json()
            == Session().run(s).to_json()
        )

    def test_sweep_backend_override_bitwise_identical(self):
        default = Session().sweep(SCENARIOS)
        override = Session().sweep(SCENARIOS, kernel_backend="numpy")
        for tag, result in default.results.items():
            assert override[tag].to_json() == result.to_json()

    def test_backend_switch_keeps_session_cache_warm(self):
        """The backend stays out of cache keys (like tile_rows)."""
        backend = InMemoryBackend()
        session = Session(cache=backend)
        session.sweep(SCENARIOS)
        warm = session.sweep(SCENARIOS, kernel_backend="numpy")
        assert warm.stats.misses == 0

    def test_override_runner_inherits_session_backend(self):
        session = Session(kernel_backend="numpy")
        outcome = session.sweep(SCENARIOS, jobs=2)  # one-off runner
        assert len(outcome) == len(SCENARIOS)


class TestEvents:
    def test_on_event_sees_the_whole_sweep(self):
        events = []
        Session().sweep(SCENARIOS, on_event=events.append)
        kinds = [type(e) for e in events]
        assert kinds[0] is SweepStarted and kinds[-1] is SweepFinished
        assert kinds.count(CellFinished) == len(SCENARIOS)

    def test_on_event_unsubscribes_after_the_sweep(self):
        events = []
        session = Session(cache=InMemoryBackend())
        session.sweep(SCENARIOS, on_event=events.append)
        first = len(events)
        session.sweep(SCENARIOS)  # no listener: nothing more recorded
        assert len(events) == first

    def test_on_event_with_override_runner_still_fires(self):
        events = []
        Session().sweep(SCENARIOS, jobs=2, on_event=events.append)
        assert [e for e in events if isinstance(e, CellFinished)]

    def test_session_bus_survives_across_sweeps(self):
        session = Session(cache=InMemoryBackend())
        events = []
        session.bus.subscribe(events.append)
        session.sweep(SCENARIOS)
        session.sweep(SCENARIOS, jobs=2)  # override runner shares the bus
        cached = [e for e in events if isinstance(e, CellCached)]
        assert len(cached) == len(SCENARIOS)


class TestCacheInterop:
    """ISSUE 3 acceptance: Session sweeps and the pre-refactor
    SweepRunner path address identical cache entries."""

    def test_session_warm_from_runner_cache(self, tmp_path):
        cells = [s.cell(tag=i) for i, s in enumerate(SCENARIOS)]
        runner = SweepRunner(n_jobs=1, cache_dir=tmp_path)
        runner.run(cells)
        assert runner.lifetime.misses == len(SCENARIOS)

        session = Session(cache_dir=tmp_path)
        outcome = session.sweep(SCENARIOS)
        assert outcome.stats.misses == 0
        assert outcome.stats.hits == len(SCENARIOS)

    def test_runner_warm_from_session_cache(self):
        # The key interop (not the disk round-trip) is the subject here,
        # so both sides share one in-memory backend.
        backend = InMemoryBackend()
        session = Session(cache=backend)
        session.sweep(SCENARIOS)

        runner = SweepRunner(n_jobs=1, cache=backend)
        outcome = runner.run([s.cell(tag=i) for i, s in enumerate(SCENARIOS)])
        assert outcome.stats.misses == 0
        assert outcome.stats.hits == len(SCENARIOS)
