"""Scenario round-trips, constructor-path parity, bitwise result identity."""

import pytest

from repro.api import POLICIES, PolicySpec, Scenario, Session, SystemSpec
from repro.datasets import imagenet1k, imagenet22k
from repro.errors import ConfigurationError
from repro.experiments.common import scaled_scenario
from repro.perfmodel import piz_daint, sec6_cluster
from repro.sim import NoiseConfig, NoPFSPolicy, Simulator
from repro.sweep import cell_key, policy_fingerprint
from repro.units import GB

#: A laptop-fast scenario shared across the tests here.
TINY = dict(
    dataset="mnist",
    system="sec6_cluster:2",
    batch_size=16,
    num_epochs=2,
    scale=0.2,
)


def tiny(policy="nopfs", **overrides):
    return Scenario(policy=policy, **{**TINY, **overrides})


class TestRoundTrip:
    def test_dict_round_trip_is_equal(self):
        s = tiny()
        assert Scenario.from_dict(s.to_dict()) == s

    def test_json_round_trip_is_equal(self):
        s = tiny(
            policy="deepio:opportunistic",
            system=SystemSpec(
                "sec6_cluster",
                kwargs={"num_workers": 2},
                compute_factor=5.0,
                class_capacities_mb=(64 * GB, 256 * GB),
            ),
            noise=NoiseConfig.disabled(),
        )
        back = Scenario.from_json(s.to_json())
        assert back == s
        assert back.fingerprint() == s.fingerprint()

    def test_string_axes_coerced(self):
        s = tiny()
        assert s.dataset.name == "mnist"
        assert s.system.name == "sec6_cluster:2"
        assert s.policy.name == "nopfs"

    def test_policy_instance_coerced(self):
        s = tiny(policy=NoPFSPolicy())
        assert s.policy == PolicySpec(name="nopfs")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            tiny(batch_size=0)
        with pytest.raises(ConfigurationError):
            tiny(scale=1.5)

    def test_label_is_readable(self):
        assert tiny().label.startswith("mnist/sec6_cluster:2/nopfs/b16/e2")


class TestConstructorParity:
    """Scenario materialization matches the pre-API hand-built path."""

    def test_fig12_style_config_and_key(self):
        seed = 42
        dataset = imagenet1k(seed)
        system = piz_daint(64).replace(compute_mbps=30.0)
        config = scaled_scenario(
            dataset, system, batch_size=64, num_epochs=3, scale=0.25, seed=seed
        )
        old_key = cell_key(config, NoPFSPolicy())

        s = Scenario(
            dataset="imagenet1k",
            system=SystemSpec(
                "piz_daint", kwargs={"num_workers": 64}, overrides={"compute_mbps": 30.0}
            ),
            policy="nopfs",
            batch_size=64,
            num_epochs=3,
            seed=seed,
            scale=0.25,
        )
        assert s.build_config() == config
        assert s.fingerprint() == old_key

    def test_fig9_style_config_and_key(self):
        seed = 7
        system = sec6_cluster().with_compute_factor(5.0).with_class_capacities(
            [64 * GB, 256 * GB]
        )
        config = scaled_scenario(
            imagenet22k(seed), system, batch_size=32, num_epochs=3,
            scale=0.005, seed=seed, noise=NoiseConfig.disabled(),
        )
        s = Scenario(
            dataset="imagenet22k",
            system=SystemSpec(
                "sec6_cluster", compute_factor=5.0, class_capacities_mb=(64 * GB, 256 * GB)
            ),
            policy="nopfs",
            batch_size=32,
            num_epochs=3,
            seed=seed,
            scale=0.005,
            noise=NoiseConfig.disabled(),
        )
        assert s.build_config() == config
        assert s.fingerprint() == cell_key(config, NoPFSPolicy())

    def test_dataset_seed_defaults_to_scenario_seed(self):
        s = tiny(seed=9)
        assert s.build_config().dataset.seed == 9
        explicit = tiny(seed=9, dataset={"name": "mnist", "seed": 3})
        assert explicit.build_config().dataset.seed == 3


class TestPolicySpecInverse:
    @pytest.mark.parametrize("spec", sorted(POLICIES.known()))
    def test_from_policy_round_trips_fingerprint(self, spec):
        built = POLICIES.create(spec)
        again = PolicySpec.from_policy(built).build()
        assert policy_fingerprint(again) == policy_fingerprint(built)

    def test_from_policy_rejects_unrecoverable_state(self):
        from repro.sim.policies.base import Policy as PolicyBase

        class TransformingPolicy(PolicyBase):
            """Stores constructor state under a different attribute name."""

            name = "transforming"

            def __init__(self, depth: int = 1) -> None:
                self.lookahead = depth * 2

            def prepare(self, ctx):
                raise NotImplementedError

        POLICIES.register("test_transforming_policy", TransformingPolicy)
        try:
            with pytest.raises(ConfigurationError):
                PolicySpec.from_policy(TransformingPolicy(depth=3))
        finally:
            # keep the shared registry clean for other tests
            POLICIES._entries.pop("test_transforming_policy")
            POLICIES._families.pop(TransformingPolicy)


class TestBitwiseResults:
    def test_round_tripped_scenario_simulates_identically(self):
        s = tiny(policy="pytorch:2")
        back = Scenario.from_json(s.to_json())
        r1 = Simulator(s.build_config()).run(s.build_policy())
        r2 = Simulator(back.build_config()).run(back.build_policy())
        assert r1.to_json() == r2.to_json()

    @pytest.mark.parametrize("spec", sorted(POLICIES.known()))
    def test_every_registered_policy_round_trips(self, spec):
        """ISSUE 3: every registered policy name survives dict round-trip
        to a bitwise-identical SimulationResult."""
        s = tiny(policy=spec)
        back = Scenario.from_dict(s.to_dict())
        assert back == s
        session = Session()
        assert session.run(s).to_json() == session.run(back).to_json()
