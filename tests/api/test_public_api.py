"""The package-level public API and the no-concrete-policy-imports rule."""

import re
from pathlib import Path

import pytest

import repro

EXPERIMENTS_DIR = Path(repro.__file__).parent / "experiments"

#: Concrete policy classes figure modules must not touch directly —
#: their grids are expressed via registry names (ISSUE 3 acceptance).
CONCRETE_POLICIES = (
    "NaivePolicy",
    "PerfectPolicy",
    "StagingBufferPolicy",
    "DoubleBufferPolicy",
    "DeepIOPolicy",
    "ParallelStagingPolicy",
    "LBANNPolicy",
    "LocalityAwarePolicy",
    "NoPFSPolicy",
)


class TestLazyExports:
    def test_core_api_exported(self):
        assert repro.Scenario is not None
        assert repro.Session is not None
        assert repro.POLICIES.kind == "policy"
        from repro.api import Scenario

        assert repro.Scenario is Scenario

    def test_sweep_and_sim_exports(self):
        from repro.sim import SimulationResult
        from repro.sweep import SweepRunner

        assert repro.SimulationResult is SimulationResult
        assert repro.SweepRunner is SweepRunner

    def test_all_lists_every_export(self):
        for name in ("Scenario", "Session", "POLICIES", "DATASETS", "SYSTEMS",
                     "SimulationResult", "SweepRunner", "make_policy"):
            assert name in repro.__all__
        assert "__version__" in repro.__all__

    def test_dir_advertises_exports(self):
        assert "Scenario" in dir(repro)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.not_a_symbol

    def test_kernel_backends_lazy_export(self):
        import repro.api
        from repro.sim.backends import KERNEL_BACKENDS

        assert repro.api.KERNEL_BACKENDS is KERNEL_BACKENDS
        assert "KERNEL_BACKENDS" in repro.api.__all__
        assert "KERNEL_BACKENDS" in dir(repro.api)
        assert "numpy" in repro.api.KERNEL_BACKENDS.names()

    def test_version_unchanged(self):
        assert repro.__version__ == "1.0.0"


class TestFigureModulesUseRegistryNames:
    @pytest.mark.parametrize(
        "path", sorted(EXPERIMENTS_DIR.glob("*.py")), ids=lambda p: p.name
    )
    def test_no_concrete_policy_references(self, path):
        source = path.read_text()
        offenders = [
            name
            for name in CONCRETE_POLICIES
            if re.search(rf"\b{name}\b", source)
        ]
        assert not offenders, (
            f"{path.name} references concrete policy classes {offenders}; "
            "express grids via repro.api registry names instead"
        )
