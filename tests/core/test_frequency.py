"""Frequency-analysis tests, including the paper's Sec 3.1 numbers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AccessStream,
    StreamConfig,
    access_frequency_distribution,
    expected_histogram,
    expected_samples_above,
    lemma1_lower_bound,
    lemma1_upper_bound,
    monte_carlo_histogram,
    tail_probability,
    verify_lemma1,
)
from repro.errors import ConfigurationError


class TestClosedForms:
    def test_distribution_mean(self):
        dist = access_frequency_distribution(90, 16)
        assert dist.mean() == pytest.approx(90 / 16)

    def test_tail_monotone_in_delta(self):
        probs = [tail_probability(90, 16, d) for d in (0.0, 0.4, 0.8, 1.2)]
        assert probs == sorted(probs, reverse=True)

    def test_tail_zero_delta(self):
        """delta=0 counts strictly-above-mean accesses."""
        dist = access_frequency_distribution(90, 16)
        expected = float(dist.sf(math.ceil(90 / 16) - 1))
        assert tail_probability(90, 16, 0.0) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            tail_probability(0, 16, 0.5)
        with pytest.raises(ConfigurationError):
            tail_probability(90, 16, -0.1)
        with pytest.raises(ConfigurationError):
            expected_samples_above(0, 90, 16, 0.5)

    def test_paper_example_31635(self):
        """Sec 3.1: N=16, E=90, F=1281167, delta=0.8 -> ~31,635 samples."""
        value = expected_samples_above(1_281_167, 90, 16, 0.8)
        assert value == pytest.approx(31_635, rel=0.01)

    def test_expected_histogram_sums_to_F(self):
        hist = expected_histogram(10_000, 90, 16)
        assert hist.sum() == pytest.approx(10_000)

    def test_expected_histogram_peak_near_mean(self):
        hist = expected_histogram(10_000, 90, 16)
        assert abs(int(np.argmax(hist)) - 90 / 16) <= 1


class TestMonteCarlo:
    def test_histogram_matches_binomial(self):
        """Empirical per-worker frequency histogram tracks Binomial(E, 1/N)."""
        c = StreamConfig(3, 20_000, 8, 25, 16, drop_last=False)
        hist = monte_carlo_histogram(c, worker=0)
        expected = expected_histogram(c.num_samples, c.num_epochs, c.num_workers)
        observed = np.asarray(hist.counts, dtype=float)
        # Compare mass within +-2 of the mean (chi-square-ish sanity band).
        mean = c.num_epochs / c.num_workers
        lo, hi = int(mean) - 1, int(mean) + 2
        assert observed[lo:hi].sum() == pytest.approx(expected[lo:hi].sum(), rel=0.05)

    def test_histogram_total_is_F(self):
        c = StreamConfig(3, 5_000, 4, 10, 5, drop_last=False)
        hist = monte_carlo_histogram(c)
        assert sum(hist.counts) == c.num_samples

    def test_mean_frequency(self):
        c = StreamConfig(3, 5_000, 4, 10, 8, drop_last=False)
        hist = monte_carlo_histogram(c)
        assert hist.mean_frequency == pytest.approx(8 / 4, rel=0.02)

    def test_samples_above(self):
        c = StreamConfig(3, 5_000, 4, 10, 8, drop_last=False)
        hist = monte_carlo_histogram(c)
        assert hist.samples_above(hist.num_epochs) == 0
        assert hist.samples_above(0) <= c.num_samples


class TestLemma1:
    def test_bounds_paper_form(self):
        # N=16, E=90, delta=0.8: over-accessor has ceil(1.8 * 5.625) = 11.
        assert lemma1_upper_bound(90, 16, 0.8) == math.ceil(
            (16 - 1 - 0.8) / 15 * 90 / 16
        )
        assert lemma1_lower_bound(90, 16, 0.8) == math.floor(
            (16 - 1 + 0.8) / 15 * 90 / 16
        )

    def test_bounds_require_two_workers(self):
        with pytest.raises(ConfigurationError):
            lemma1_upper_bound(10, 1, 0.5)

    def test_exact_streams_satisfy_lemma(self):
        c = StreamConfig(5, 3_000, 4, 10, 12, drop_last=False)
        freqs = AccessStream(c).all_frequencies()
        assert verify_lemma1(freqs, c.num_epochs)

    def test_violating_matrix_detected(self):
        # Every worker accesses the sample E times: impossible under
        # without-replacement sampling; totals check must fire.
        bad = np.full((4, 10), 12)
        assert not verify_lemma1(bad, 12)

    def test_matrix_shape_validated(self):
        with pytest.raises(ConfigurationError):
            verify_lemma1(np.zeros(5), 5)
        with pytest.raises(ConfigurationError):
            verify_lemma1(np.zeros((1, 5)), 5)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    workers=st.integers(min_value=2, max_value=6),
    epochs=st.integers(min_value=2, max_value=10),
)
def test_property_lemma1_holds_on_real_streams(seed, workers, epochs):
    """Property: Lemma 1 holds for every seeded stream configuration."""
    c = StreamConfig(seed, 600, workers, 5, epochs, drop_last=False)
    freqs = AccessStream(c).all_frequencies()
    assert verify_lemma1(freqs, epochs)
