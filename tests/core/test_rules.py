"""Cao-rule predicates and the Bélády reference simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    belady_evictions,
    furthest_future_use,
    next_uncached_index,
    next_use_index,
    staging_order_is_rule1,
    violates_do_no_harm,
)
from repro.errors import ConfigurationError


class TestNextUse:
    def test_simple(self):
        stream = np.array([1, 2, 1, 3, 2])
        np.testing.assert_array_equal(next_use_index(stream), [2, 4, 5, 5, 5])

    def test_no_reuse(self):
        stream = np.array([1, 2, 3])
        np.testing.assert_array_equal(next_use_index(stream), [3, 3, 3])

    def test_empty(self):
        assert next_use_index(np.array([], dtype=int)).size == 0


class TestRulePredicates:
    def test_next_uncached(self):
        stream = np.array([5, 6, 7, 8])
        assert next_uncached_index(stream, 0, {5, 6}) == 2
        assert next_uncached_index(stream, 0, {5, 6, 7, 8}) is None
        assert next_uncached_index(stream, 3, set()) == 3

    def test_furthest_future_use(self):
        stream = np.array([1, 2, 3, 1, 2])
        # From pos 1: 2 used at 1, 3 at 2, 1 at 3 -> victim 1 (furthest).
        assert furthest_future_use(stream, 1, {1, 2, 3}) == 1
        # From pos 3: 1 used at 3, 2 at 4, 3 never again -> victim 3.
        assert furthest_future_use(stream, 3, {1, 2, 3}) == 3

    def test_furthest_tie_break(self):
        stream = np.array([9, 9])
        # 4 and 5 both never used: smaller id wins.
        assert furthest_future_use(stream, 0, {4, 5}) == 4

    def test_furthest_empty(self):
        with pytest.raises(ConfigurationError):
            furthest_future_use(np.array([1]), 0, set())

    def test_do_no_harm(self):
        stream = np.array([1, 2, 3])
        assert violates_do_no_harm(stream, 0, evicted=1, prefetched=3)
        assert not violates_do_no_harm(stream, 0, evicted=3, prefetched=1)
        assert not violates_do_no_harm(stream, 0, evicted=7, prefetched=8)

    def test_rule1_staging_order(self):
        stream = np.array([4, 2, 7])
        assert staging_order_is_rule1(stream, np.array([4, 2, 7]))
        assert not staging_order_is_rule1(stream, np.array([2, 4, 7]))
        assert not staging_order_is_rule1(stream, np.array([4, 2]))


class TestBelady:
    def test_cold_misses_only_when_cache_fits(self):
        stream = np.array([1, 2, 3, 1, 2, 3])
        misses, evictions = belady_evictions(stream, cache_size=3)
        assert misses == 3
        assert evictions == []

    def test_eviction_is_furthest(self):
        # cache=2: after [1,2], access 3 evicts the entry reused later.
        stream = np.array([1, 2, 3, 1])
        misses, evictions = belady_evictions(stream, 2)
        assert evictions[0] == 2  # 2 never reused; 1 reused at pos 3
        assert misses == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            belady_evictions(np.array([1]), 0)

    def test_belady_not_worse_than_lru(self):
        """Property spot-check: Bélády misses <= LRU misses."""
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 20, 400)
        opt_misses, _ = belady_evictions(stream, 5)

        # Reference LRU.
        cache: dict[int, int] = {}
        lru_misses = 0
        for t, s in enumerate(stream):
            s = int(s)
            if s in cache:
                cache[s] = t
                continue
            lru_misses += 1
            if len(cache) >= 5:
                victim = min(cache, key=cache.get)
                del cache[victim]
            cache[s] = t
        assert opt_misses <= lru_misses


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=200),
    cache=st.integers(min_value=1, max_value=8),
)
def test_property_belady_dominates_lru(data, cache):
    """Property: the clairvoyant policy never misses more than LRU."""
    stream = np.asarray(data)
    opt_misses, _ = belady_evictions(stream, cache)
    lru: dict[int, int] = {}
    lru_misses = 0
    for t, s in enumerate(stream):
        s = int(s)
        if s in lru:
            lru[s] = t
            continue
        lru_misses += 1
        if len(lru) >= cache:
            victim = min(lru, key=lru.get)
            del lru[victim]
        lru[s] = t
    assert opt_misses <= lru_misses
