"""Access-stream invariants: the paper's Sec 2/Sec 4 guarantees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AccessStream, StreamConfig
from repro.errors import ConfigurationError


def cfg(**kw):
    base = dict(
        seed=11, num_samples=1000, num_workers=4, batch_size=8, num_epochs=3
    )
    base.update(kw)
    return StreamConfig(**base)


class TestConfig:
    def test_global_batch(self):
        assert cfg().global_batch == 32

    def test_iterations(self):
        assert cfg().iterations_per_epoch == 1000 // 32

    def test_dropped(self):
        c = cfg()
        assert c.dropped_per_epoch == 1000 - 31 * 32

    def test_no_drop(self):
        assert cfg(drop_last=False).dropped_per_epoch == 0

    def test_rejects_oversize_batch(self):
        with pytest.raises(ConfigurationError):
            cfg(num_samples=10, batch_size=8, num_workers=4)

    def test_rejects_nonpositive(self):
        for field in ("num_samples", "num_workers", "batch_size", "num_epochs"):
            with pytest.raises(ConfigurationError):
                cfg(**{field: 0})

    def test_serialization_roundtrip(self):
        c = cfg()
        assert StreamConfig.from_dict(c.to_dict()) == c


class TestExactlyOnce:
    """'a given sample is accessed exactly once in each epoch' (Sec 2)."""

    def test_epoch_partition_disjoint_and_complete(self):
        stream = AccessStream(cfg(drop_last=False))
        seen = np.concatenate(
            [stream.worker_epoch_stream(w, 0) for w in range(4)]
        )
        np.testing.assert_array_equal(np.sort(seen), np.arange(1000))

    def test_drop_last_excludes_exactly_tail(self):
        c = cfg()
        stream = AccessStream(c)
        seen = np.concatenate([stream.worker_epoch_stream(w, 0) for w in range(4)])
        assert seen.size == c.num_samples - c.dropped_per_epoch
        assert np.unique(seen).size == seen.size

    def test_tail_plus_batches_is_permutation(self):
        stream = AccessStream(cfg())
        batches = stream.epoch_batches(0).reshape(-1)
        tail = stream.epoch_tail(0)
        np.testing.assert_array_equal(
            np.sort(np.concatenate([batches, tail])), np.arange(1000)
        )

    def test_workers_pairwise_disjoint(self):
        stream = AccessStream(cfg())
        sets = [set(stream.worker_epoch_stream(w, 1).tolist()) for w in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (sets[i] & sets[j])


class TestDeterminism:
    def test_streams_reproducible(self):
        a = AccessStream(cfg()).worker_stream(2)
        b = AccessStream(cfg()).worker_stream(2)
        np.testing.assert_array_equal(a, b)

    def test_stream_length(self):
        c = cfg()
        s = AccessStream(c).worker_stream(0)
        assert s.size == c.samples_per_worker_per_epoch * c.num_epochs

    def test_batches_shape(self):
        c = cfg()
        assert AccessStream(c).epoch_batches(0).shape == (
            c.iterations_per_epoch,
            c.num_workers,
            c.batch_size,
        )

    def test_worker_block_matches_batches(self):
        """Worker i's stream is batch-major concatenation of its blocks."""
        stream = AccessStream(cfg())
        batches = stream.epoch_batches(0)
        np.testing.assert_array_equal(
            stream.worker_epoch_stream(1, 0), batches[:, 1, :].reshape(-1)
        )

    def test_invalid_worker(self):
        with pytest.raises(ConfigurationError):
            AccessStream(cfg()).worker_epoch_stream(4, 0)


class TestAssignment:
    def test_assignment_matches_streams(self):
        c = cfg()
        stream = AccessStream(c)
        assign = stream.epoch_assignment(0)
        for w in range(c.num_workers):
            ids = stream.worker_epoch_stream(w, 0)
            assert (assign[ids] == w).all()

    def test_dropped_marked(self):
        c = cfg()
        assign = AccessStream(c).epoch_assignment(0)
        assert (assign == -1).sum() == c.dropped_per_epoch

    def test_no_drop_all_assigned(self):
        c = cfg(drop_last=False)
        assign = AccessStream(c).epoch_assignment(0)
        assert (assign >= 0).all()

    def test_no_drop_tail_split_matches_streams(self):
        c = cfg(drop_last=False)
        stream = AccessStream(c)
        assign = stream.epoch_assignment(2)
        for w in range(c.num_workers):
            ids = stream.worker_epoch_stream(w, 2)
            assert (assign[ids] == w).all()


class TestFrequencies:
    def test_worker_frequencies_sum(self):
        c = cfg(drop_last=False)
        stream = AccessStream(c)
        freqs = stream.worker_frequencies(0)
        assert freqs.sum() == stream.worker_stream(0).size

    def test_all_frequencies_total_is_E(self):
        """Each sample accessed exactly E times across all workers."""
        c = cfg(drop_last=False)
        freqs = AccessStream(c).all_frequencies()
        np.testing.assert_array_equal(freqs.sum(axis=0), c.num_epochs)

    def test_all_matches_per_worker(self):
        c = cfg()
        stream = AccessStream(c)
        all_f = stream.all_frequencies()
        for w in range(c.num_workers):
            np.testing.assert_array_equal(all_f[w], stream.worker_frequencies(w))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_workers=st.integers(min_value=1, max_value=8),
    batch=st.integers(min_value=1, max_value=16),
    epochs=st.integers(min_value=1, max_value=4),
    drop=st.booleans(),
)
def test_property_exactly_once_per_epoch(seed, n_workers, batch, epochs, drop):
    """Property: across workers, one epoch covers the dataset exactly once
    (minus the dropped tail), for any configuration."""
    f = max(n_workers * batch, 64)
    c = StreamConfig(seed, f, n_workers, batch, epochs, drop_last=drop)
    stream = AccessStream(c)
    seen = np.concatenate(
        [stream.worker_epoch_stream(w, epochs - 1) for w in range(n_workers)]
    )
    assert np.unique(seen).size == seen.size
    if not drop:
        assert seen.size == f
