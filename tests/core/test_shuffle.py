"""EpochShuffler determinism and permutation properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EpochShuffler
from repro.errors import ConfigurationError


class TestBasics:
    def test_is_permutation(self):
        perm = EpochShuffler(0, 1000).permutation(0)
        np.testing.assert_array_equal(np.sort(perm), np.arange(1000))

    def test_deterministic_across_instances(self):
        a = EpochShuffler(42, 500).permutation(3)
        b = EpochShuffler(42, 500).permutation(3)
        np.testing.assert_array_equal(a, b)

    def test_epochs_differ(self):
        sh = EpochShuffler(42, 500)
        assert not np.array_equal(sh.permutation(0), sh.permutation(1))

    def test_seeds_differ(self):
        assert not np.array_equal(
            EpochShuffler(1, 500).permutation(0),
            EpochShuffler(2, 500).permutation(0),
        )

    def test_random_access_matches_sequential(self):
        """Epoch e is computable without computing epochs 0..e-1."""
        sh = EpochShuffler(7, 200)
        later = sh.permutation(5)
        fresh = EpochShuffler(7, 200).permutation(5)
        np.testing.assert_array_equal(later, fresh)

    def test_permutations_stack(self):
        sh = EpochShuffler(7, 100)
        stack = sh.permutations(3)
        assert stack.shape == (3, 100)
        for e in range(3):
            np.testing.assert_array_equal(stack[e], sh.permutation(e))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EpochShuffler(0, 0)
        with pytest.raises(ConfigurationError):
            EpochShuffler(0, 10).permutation(-1)
        with pytest.raises(ConfigurationError):
            EpochShuffler(0, 10).permutations(0)

    def test_properties(self):
        sh = EpochShuffler(9, 33)
        assert sh.seed == 9
        assert sh.num_samples == 33


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=1, max_value=2000),
    epoch=st.integers(min_value=0, max_value=100),
)
def test_always_a_permutation(seed, n, epoch):
    """Property: every (seed, F, epoch) yields a valid permutation of F."""
    perm = EpochShuffler(seed, n).permutation(epoch)
    assert perm.shape == (n,)
    np.testing.assert_array_equal(np.sort(perm), np.arange(n))
