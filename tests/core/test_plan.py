"""Cache-plan construction and capacity invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AccessStream,
    CachePlan,
    StreamConfig,
    frequency_placement,
    partition_placement,
)
from repro.errors import ConfigurationError


def make_plan(capacities, f=500, workers=3, epochs=6, seed=2):
    c = StreamConfig(seed, f, workers, 5, epochs, drop_last=False)
    stream = AccessStream(c)
    sizes = np.full(f, 0.5)
    placements = [
        frequency_placement(stream.worker_frequencies(w), sizes, capacities, w)
        for w in range(workers)
    ]
    return CachePlan(placements, f, len(capacities)), sizes, stream


class TestFrequencyPlacement:
    def test_capacity_respected(self):
        plan, sizes, _ = make_plan([10.0, 20.0])
        for p in plan.placements:
            for cls, cap in zip(p.class_ids, [10.0, 20.0]):
                assert sizes[cls].sum() <= cap + 1e-9

    def test_hotter_samples_in_faster_class(self):
        plan, _, stream = make_plan([10.0, 20.0])
        for w, p in enumerate(plan.placements):
            freqs = stream.worker_frequencies(w)
            if len(p.class_ids[0]) and len(p.class_ids[1]):
                assert freqs[p.class_ids[0]].min() >= freqs[p.class_ids[1]].max() - 1

    def test_zero_frequency_never_cached(self):
        f = 100
        freqs = np.zeros(f)
        freqs[:10] = 3
        p = frequency_placement(freqs, np.ones(f), [1000.0], 0)
        assert set(p.class_ids[0].tolist()) <= set(range(10))

    def test_all_cached_when_capacity_large(self):
        f = 50
        freqs = np.ones(f)
        p = frequency_placement(freqs, np.ones(f), [1000.0], 0)
        assert len(p.class_ids[0]) == f

    def test_deterministic(self):
        f = 200
        freqs = np.random.default_rng(0).integers(0, 5, f)
        a = frequency_placement(freqs, np.ones(f), [30.0, 40.0], 1)
        b = frequency_placement(freqs, np.ones(f), [30.0, 40.0], 1)
        for x, y in zip(a.class_ids, b.class_ids):
            np.testing.assert_array_equal(x, y)

    def test_tie_break_differs_across_workers(self):
        """Equally-hot samples must spread across workers, not collide."""
        f = 1000
        freqs = np.ones(f)  # all ties
        sizes = np.ones(f)
        a = frequency_placement(freqs, sizes, [50.0], 0)
        b = frequency_placement(freqs, sizes, [50.0], 1)
        overlap = set(a.class_ids[0].tolist()) & set(b.class_ids[0].tolist())
        assert len(overlap) < 25  # ~2.5 expected at random; 25 is generous

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            frequency_placement(np.ones(5), np.ones(6), [1.0], 0)

    def test_no_classes(self):
        p = frequency_placement(np.ones(5), np.ones(5), [], 0)
        assert p.cached_ids.size == 0


class TestPartitionPlacement:
    def test_fastest_first(self):
        ids = np.arange(10)
        p = partition_placement(ids, np.ones(10), [4.0, 4.0], 0)
        np.testing.assert_array_equal(p.class_ids[0], np.arange(4))
        np.testing.assert_array_equal(p.class_ids[1], np.arange(4, 8))

    def test_overflow_dropped(self):
        ids = np.arange(10)
        p = partition_placement(ids, np.ones(10), [3.0], 0)
        assert p.cached_ids.size == 3

    def test_empty_shard(self):
        p = partition_placement(np.empty(0, dtype=np.int64), np.ones(5), [3.0], 0)
        assert p.cached_ids.size == 0


class TestCachePlan:
    def test_local_class_map(self):
        plan, _, _ = make_plan([10.0, 20.0])
        for w, p in enumerate(plan.placements):
            mapping = plan.local_class_map(w)
            for cls_idx, ids in enumerate(p.class_ids):
                if len(ids):
                    assert (mapping[ids] == cls_idx).all()
            uncached = np.setdiff1d(np.arange(plan.num_samples), p.cached_ids)
            assert (mapping[uncached] == -1).all()

    def test_best_class_map_is_min(self):
        plan, _, _ = make_plan([10.0, 20.0])
        best = plan.best_class_map()
        maps = [plan.local_class_map(w) for w in range(plan.num_workers)]
        stacked = np.stack(maps)
        stacked_pos = np.where(stacked < 0, 127, stacked)
        expected = stacked_pos.min(axis=0)
        expected = np.where(expected == 127, -1, expected)
        np.testing.assert_array_equal(best, expected.astype(best.dtype))

    def test_holder_counts(self):
        plan, _, _ = make_plan([10.0])
        holders = plan.holder_counts()
        total_cached = sum(p.cached_ids.size for p in plan.placements)
        assert holders.sum() == total_cached

    def test_coverage_fraction_bounds(self):
        plan, _, _ = make_plan([10.0])
        assert 0.0 <= plan.coverage_fraction() <= 1.0

    def test_cached_bytes(self):
        plan, sizes, _ = make_plan([10.0, 20.0])
        for mb in plan.cached_bytes_per_worker(sizes):
            assert mb <= 30.0 + 1e-9

    def test_plan_validation(self):
        with pytest.raises(ConfigurationError):
            CachePlan([], 0, 1)


@settings(max_examples=20, deadline=None)
@given(
    cap0=st.floats(min_value=0.0, max_value=50.0),
    cap1=st.floats(min_value=0.0, max_value=50.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_capacity_never_exceeded(cap0, cap1, seed):
    """Property: no class ever holds more MB than its capacity."""
    f = 300
    rng = np.random.default_rng(seed)
    freqs = rng.integers(0, 6, f)
    sizes = rng.uniform(0.1, 2.0, f)
    p = frequency_placement(freqs, sizes, [cap0, cap1], 0)
    assert sizes[p.class_ids[0]].sum() <= cap0 + 1e-9
    assert sizes[p.class_ids[1]].sum() <= cap1 + 1e-9
