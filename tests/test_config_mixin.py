"""ConfigMixin serialization machinery, across every library config."""

import dataclasses

import pytest

from repro.config import ConfigMixin, asdict_shallow
from repro.datasets import imagenet1k
from repro.errors import ConfigurationError
from repro.perfmodel import (
    PFSModel,
    StagingBufferModel,
    StorageClassModel,
    SystemModel,
    ThroughputCurve,
    lassen,
    piz_daint,
    sec6_cluster,
)
from repro.sim import NoiseConfig, SimulationConfig


@dataclasses.dataclass(frozen=True)
class _Sample(ConfigMixin):
    a: int
    b: str = "x"


class TestMixin:
    def test_roundtrip(self):
        s = _Sample(3, "y")
        assert _Sample.from_dict(s.to_dict()) == s

    def test_json_roundtrip(self):
        s = _Sample(3)
        assert _Sample.from_json(s.to_json()) == s

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            _Sample.from_dict({"a": 1, "nope": 2})

    def test_asdict_shallow(self):
        assert asdict_shallow(_Sample(1)) == {"a": 1, "b": "x"}
        with pytest.raises(ConfigurationError):
            asdict_shallow(42)


class TestNestedConfigs:
    """Every real config must survive a dict round-trip intact."""

    def test_throughput_curve(self):
        c = ThroughputCurve.from_mapping({1: 330.0, 8: 2870.0})
        assert ThroughputCurve.from_dict(c.to_dict()) == c

    def test_pfs_model(self):
        p = PFSModel("x", ThroughputCurve.constant(100.0), latency_s=1e-3)
        clone = PFSModel.from_dict(p.to_dict())
        assert clone == p
        assert clone.per_sample_latency(4) == p.per_sample_latency(4)

    def test_storage_class(self):
        s = StorageClassModel(
            "ssd",
            100.0,
            ThroughputCurve.constant(10.0),
            write=ThroughputCurve.constant(5.0),
            prefetch_threads=2,
        )
        clone = StorageClassModel.from_dict(s.to_dict())
        assert clone == s
        assert clone.write_per_thread_mbps == s.write_per_thread_mbps

    def test_staging_buffer(self):
        s = StagingBufferModel(100.0, ThroughputCurve.constant(10.0), threads=4)
        assert StagingBufferModel.from_dict(s.to_dict()) == s

    @pytest.mark.parametrize("preset", [sec6_cluster, piz_daint, lassen])
    def test_system_model_roundtrip(self, preset):
        """Full machine models (nested tuples of configs) round-trip."""
        system = preset()
        clone = SystemModel.from_dict(system.to_dict())
        assert clone == system
        assert clone.total_cache_mb == system.total_cache_mb
        assert clone.pfs.aggregate_mbps(4) == system.pfs.aggregate_mbps(4)

    def test_system_model_json(self):
        system = sec6_cluster()
        assert SystemModel.from_json(system.to_json()) == system

    def test_simulation_config_roundtrip(self):
        cfg = SimulationConfig(
            dataset=imagenet1k(),
            system=sec6_cluster(),
            batch_size=32,
            num_epochs=5,
            noise=NoiseConfig(pfs_sigma=0.3),
        )
        clone = SimulationConfig.from_dict(cfg.to_dict())
        assert clone.dataset == cfg.dataset
        assert clone.system == cfg.system
        assert clone.noise == cfg.noise
        assert clone.scenario == cfg.scenario
