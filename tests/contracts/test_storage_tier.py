"""StorageTier contract over every in-tree tier implementation.

Three implementations, three storage substrates — a dict ABC subclass,
a file-per-sample cache dir, and the protocol-first fake — all proving
the same behavioural contract the prefetchers and the remote-serving
path rely on.
"""

import pytest

from repro.ports.fakes import FakeTier
from repro.ports.testing import StorageTierContract
from repro.runtime import FilesystemBackend, MemoryBackend


class TestMemoryBackendContract(StorageTierContract):
    def make_tier(self, capacity_bytes: int) -> MemoryBackend:
        return MemoryBackend(capacity_bytes)


class TestFilesystemBackendContract(StorageTierContract):
    @pytest.fixture(autouse=True)
    def _tmpdir(self, tmp_path):
        self._root = tmp_path

    def make_tier(self, capacity_bytes: int) -> FilesystemBackend:
        # A fresh subdirectory per tier: contract tests build several
        # tiers per test and each must start empty.
        self._count = getattr(self, "_count", 0) + 1
        return FilesystemBackend(capacity_bytes, self._root / f"tier{self._count}")


class TestFakeTierContract(StorageTierContract):
    def make_tier(self, capacity_bytes: int) -> FakeTier:
        return FakeTier(capacity_bytes)
