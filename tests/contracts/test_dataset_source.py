"""DatasetSource contract over every in-tree dataset implementation."""

import pytest

from repro.loader.dataset import InMemoryDataset, SyntheticFileDataset
from repro.ports.fakes import FakeDataset
from repro.ports.testing import DatasetSourceContract


class TestInMemoryDatasetContract(DatasetSourceContract):
    def make_dataset(self) -> InMemoryDataset:
        return InMemoryDataset.random(num_samples=8, sample_bytes=64)


class TestSyntheticFileDatasetContract(DatasetSourceContract):
    @pytest.fixture(autouse=True)
    def _tmpdir(self, tmp_path):
        self._root = tmp_path / "dataset"
        SyntheticFileDataset.generate(
            self._root, num_samples=6, mean_bytes=128, num_classes=3
        )

    def make_dataset(self) -> SyntheticFileDataset:
        return SyntheticFileDataset(self._root)


class TestFakeDatasetContract(DatasetSourceContract):
    def make_dataset(self) -> FakeDataset:
        return FakeDataset([64, 128, 256, 24, 8], num_classes=3)
