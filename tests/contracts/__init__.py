"""In-tree instantiations of the :mod:`repro.ports.testing` contracts."""
