"""CacheBackend contract over the sweep-cache store implementations."""

import pytest

from repro.ports.testing import CacheBackendContract
from repro.sweep.backends import InMemoryBackend, LocalDirBackend


class TestLocalDirBackendContract(CacheBackendContract):
    @pytest.fixture(autouse=True)
    def _tmpdir(self, tmp_path):
        self._root = tmp_path

    def make_backend(self) -> LocalDirBackend:
        self._count = getattr(self, "_count", 0) + 1
        backend = LocalDirBackend(self._root / f"cache{self._count}")
        backend.prepare()
        return backend


class TestInMemoryBackendContract(CacheBackendContract):
    def make_backend(self) -> InMemoryBackend:
        backend = InMemoryBackend()
        backend.prepare()
        return backend
