"""Paper dataset presets must match Sec 6.1 exactly."""

import pytest

from repro import units
from repro.datasets import (
    cosmoflow,
    cosmoflow512,
    get_dataset,
    imagenet1k,
    imagenet22k,
    list_datasets,
    mnist,
    openimages,
)


class TestPresetParameters:
    def test_mnist(self):
        ds = mnist()
        assert ds.num_samples == 50_000
        assert ds.mean_size_mb == pytest.approx(0.76 / 1024)
        assert ds.std_size_mb == 0.0

    def test_imagenet1k(self):
        ds = imagenet1k()
        assert ds.num_samples == 1_281_167
        assert ds.mean_size_mb == 0.1077
        assert ds.std_size_mb == 0.1

    def test_openimages(self):
        ds = openimages()
        assert ds.num_samples == 1_743_042
        assert ds.mean_size_mb == 0.2937

    def test_imagenet22k(self):
        ds = imagenet22k()
        assert ds.num_samples == 14_197_122
        assert ds.std_size_mb == 0.2

    def test_cosmoflow(self):
        ds = cosmoflow()
        assert ds.num_samples == 262_144
        assert ds.mean_size_mb == 17.0

    def test_cosmoflow512(self):
        ds = cosmoflow512()
        assert ds.num_samples == 10_000
        assert ds.mean_size_mb == 1000.0


class TestPaperTotals:
    """The paper quotes approximate totals; presets must land near them."""

    def test_mnist_total_40mb(self):
        assert mnist().total_size_mb == pytest.approx(40, rel=0.1)

    def test_imagenet1k_total_135gb(self):
        assert imagenet1k().total_size_mb == pytest.approx(135 * units.GB, rel=0.05)

    def test_openimages_total_500gb(self):
        assert openimages().total_size_mb == pytest.approx(500 * units.GB, rel=0.05)

    def test_cosmoflow_total_4tb(self):
        assert cosmoflow().total_size_mb == pytest.approx(4 * units.TB, rel=0.15)

    def test_cosmoflow512_total_10tb(self):
        assert cosmoflow512().total_size_mb == pytest.approx(10 * units.TB, rel=0.05)


class TestLookup:
    def test_all_listed_resolvable(self):
        for name in list_datasets():
            assert get_dataset(name).name == name

    def test_alias_forms(self):
        assert get_dataset("ImageNet-1k").name == "imagenet1k"
        assert get_dataset("imagenet_22k").name == "imagenet22k"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_dataset("cifar10")
