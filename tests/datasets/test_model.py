"""DatasetModel behaviour and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import DatasetModel
from repro.errors import ConfigurationError


class TestValidation:
    def test_rejects_zero_samples(self):
        with pytest.raises(ConfigurationError):
            DatasetModel("x", 0, 1.0)

    def test_rejects_zero_mean(self):
        with pytest.raises(ConfigurationError):
            DatasetModel("x", 10, 0.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            DatasetModel("x", 10, 1.0, -0.1)

    def test_rejects_bad_min_size(self):
        with pytest.raises(ConfigurationError):
            DatasetModel("x", 10, 1.0, min_size_mb=2.0)


class TestSizes:
    def test_constant_sizes_when_sigma_zero(self):
        ds = DatasetModel("x", 100, 17.0, 0.0)
        sizes = ds.sizes_mb()
        assert sizes.shape == (100,)
        np.testing.assert_allclose(sizes, 17.0)

    def test_sizes_deterministic(self):
        a = DatasetModel("x", 1000, 0.1, 0.05, seed=1).sizes_mb()
        b = DatasetModel("x", 1000, 0.1, 0.05, seed=1).sizes_mb()
        np.testing.assert_array_equal(a, b)

    def test_sizes_depend_on_seed(self):
        a = DatasetModel("x", 1000, 0.1, 0.05, seed=1).sizes_mb()
        b = DatasetModel("x", 1000, 0.1, 0.05, seed=2).sizes_mb()
        assert not np.array_equal(a, b)

    def test_sizes_positive(self):
        ds = DatasetModel("x", 50_000, 0.1077, 0.1)  # sigma ~ mu: heavy truncation
        assert (ds.sizes_mb() > 0).all()

    def test_mean_approximately_mu(self):
        ds = DatasetModel("x", 200_000, 0.1077, 0.1)
        assert ds.mean_realized_size_mb == pytest.approx(0.1077, rel=0.02)

    def test_sizes_readonly(self):
        ds = DatasetModel("x", 10, 1.0, 0.1)
        with pytest.raises(ValueError):
            ds.sizes_mb()[0] = 99.0

    def test_sizes_cached(self):
        ds = DatasetModel("x", 10, 1.0, 0.1)
        assert ds.sizes_mb() is ds.sizes_mb()

    def test_total_size(self):
        ds = DatasetModel("x", 100, 2.0, 0.0)
        assert ds.total_size_mb == pytest.approx(200.0)


class TestDerived:
    def test_iterations_drop_last(self):
        ds = DatasetModel("x", 105, 1.0)
        assert ds.iterations_per_epoch(10) == 10

    def test_iterations_keep_last(self):
        ds = DatasetModel("x", 105, 1.0)
        assert ds.iterations_per_epoch(10, drop_last=False) == 11

    def test_iterations_invalid_batch(self):
        with pytest.raises(ConfigurationError):
            DatasetModel("x", 10, 1.0).iterations_per_epoch(0)

    def test_scaled_counts(self):
        ds = DatasetModel("x", 1000, 1.0).scaled(0.1)
        assert ds.num_samples == 100
        assert ds.mean_size_mb == 1.0

    def test_scaled_invalid(self):
        with pytest.raises(ConfigurationError):
            DatasetModel("x", 10, 1.0).scaled(0)

    def test_serialization_roundtrip(self):
        ds = DatasetModel("x", 1000, 0.5, 0.1, seed=42)
        clone = DatasetModel.from_dict(ds.to_dict())
        np.testing.assert_array_equal(ds.sizes_mb(), clone.sizes_mb())


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5000),
    mu=st.floats(min_value=0.01, max_value=100.0),
    sigma_rel=st.floats(min_value=0.0, max_value=1.0),
)
def test_sizes_always_valid(n, mu, sigma_rel):
    """Property: sizes are positive, finite, length-F, for any parameters."""
    ds = DatasetModel("prop", n, mu, mu * sigma_rel)
    sizes = ds.sizes_mb()
    assert sizes.shape == (n,)
    assert np.isfinite(sizes).all()
    assert (sizes >= ds.min_size_mb).all()
