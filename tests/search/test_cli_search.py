"""``python -m repro search`` and the searchers registry listing."""

import json

import pytest

from repro.cli import main
from repro.search import SearchManifest

SMOKE_FLAGS = [
    "search", "--dataset", "mnist", "--system", "piz_daint:4",
    "--batch-size", "16", "--epochs", "4", "--scale", "0.1",
]


class TestListSearchers:
    def test_list_searchers_section(self, capsys):
        assert main(["list", "searchers"]) == 0
        out = capsys.readouterr().out
        assert "bb" in out and "halving" in out and "random" in out
        assert "alias of bb" in out

    def test_list_everything_includes_searchers(self, capsys):
        assert main(["list"]) == 0
        assert "searchers:" in capsys.readouterr().out


class TestSearchCommand:
    def test_bb_search_prints_best_and_stats(self, capsys):
        assert main([*SMOKE_FLAGS, "--driver", "bb"]) == 0
        out = capsys.readouterr().out
        assert "driver: bb | space: 9 candidates" in out
        assert "best: mnist/piz_daint:4/" in out
        assert "pruned in" in out
        assert "cache:" in out  # session cache state is printed

    def test_manifest_written_and_byte_stable(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main([*SMOKE_FLAGS, "--cache-dir", cache, "--manifest", str(first)]) == 0
        capsys.readouterr()
        assert main([*SMOKE_FLAGS, "--cache-dir", cache, "--manifest", str(second)]) == 0
        warm = capsys.readouterr().out
        assert first.read_bytes() == second.read_bytes()
        assert "/ 0 miss" in warm  # warm re-search: zero re-simulations
        manifest = SearchManifest.read(first)
        assert manifest.stats.pruned_leaves > 0

    def test_space_json_input(self, tmp_path, capsys):
        space = {
            "base": {
                "dataset": "mnist", "system": "piz_daint:4", "policy": "naive",
                "batch_size": 16, "num_epochs": 4, "scale": 0.1,
            },
            "policies": ["nopfs", "naive"],
        }
        path = tmp_path / "space.json"
        path.write_text(json.dumps(space))
        assert main(["search", "--space", str(path), "--driver", "random"]) == 0
        assert "space: 2 candidates" in capsys.readouterr().out

    def test_knob_flags_expand_the_space(self, capsys):
        assert main([
            *SMOKE_FLAGS, "--policies", "nopfs,naive",
            "--knob", "batch_size=16,32", "--budget", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "space: 4 candidates" in out
        assert "budget_exhausted" in out

    def test_progress_events(self, capsys):
        assert main([*SMOKE_FLAGS, "--progress"]) == 0
        out = capsys.readouterr().out
        assert "[SearchStarted]" in out
        assert "[CandidatePruned]" in out
        assert "[SearchFinished]" in out

    def test_timestamp_lands_in_manifest(self, tmp_path):
        out = tmp_path / "m.json"
        assert main([
            *SMOKE_FLAGS, "--manifest", str(out), "--timestamp", "2026-08-07T00:00:00",
        ]) == 0
        assert SearchManifest.read(out).created_at == "2026-08-07T00:00:00"


class TestSearchErrors:
    def test_unknown_driver_suggests_and_exits_2(self, capsys):
        assert main([*SMOKE_FLAGS, "--driver", "branch_nd_bound"]) == 2
        err = capsys.readouterr().err
        assert "did you mean: branch_and_bound" in err

    def test_space_conflicts_with_axis_flags(self, capsys):
        assert main([
            "search", "--space", "{}", "--dataset", "mnist",
        ]) == 2
        assert "--space is a complete description" in capsys.readouterr().err

    def test_missing_axes_rejected(self, capsys):
        assert main(["search", "--dataset", "mnist"]) == 2
        assert "--system" in capsys.readouterr().err

    def test_malformed_knob_rejected(self, capsys):
        assert main([*SMOKE_FLAGS, "--knob", "batch_size"]) == 2
        assert "field=v1,v2" in capsys.readouterr().err

    def test_unknown_knob_field_rejected(self, capsys):
        assert main([*SMOKE_FLAGS, "--knob", "policy=nopfs"]) == 2
        assert "not a searchable" in capsys.readouterr().err

    def test_unreadable_space_file(self, capsys):
        assert main(["search", "--space", "/nonexistent/space.json"]) == 2
        assert "cannot read --space" in capsys.readouterr().err
