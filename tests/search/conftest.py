"""Shared fixtures for the search suite.

``smoke_space`` is the canonical search smoke scenario (also used by
``tests/sim/test_bounds.py`` and the CI smoke job): mnist on four
Piz Daint nodes at 10% scale, where several cacheless Fig 8 policies
are provably prunable by the analytic bound.
"""

import pytest

from repro.api import Scenario, Session
from repro.search import SearchSpace


@pytest.fixture
def smoke_base() -> Scenario:
    """Base scenario of the smoke space (policy is a placeholder)."""
    return Scenario(
        dataset="mnist",
        system="piz_daint:4",
        policy="naive",
        batch_size=16,
        num_epochs=4,
        scale=0.1,
    )


@pytest.fixture
def smoke_space(smoke_base) -> SearchSpace:
    """The Fig 8 policy lineup over the smoke base (9 candidates)."""
    return SearchSpace(base=smoke_base)


@pytest.fixture
def mem_session() -> Session:
    """A serial session with a private in-memory result cache."""
    return Session(cache="mem:")
