"""`SearchManifest`: byte-reproducibility, warmth, resume (satellites 3/6)."""

import pytest

from repro.api import Session
from repro.search import Evaluator, SearchManifest, run_search


def canonical(manifest: SearchManifest) -> str:
    return manifest.to_json(sort_keys=True)


class TestRoundTrip:
    def test_json_and_file_round_trip(self, smoke_space, mem_session, tmp_path):
        manifest = run_search(
            smoke_space, driver="bb", session=mem_session, timestamp="2026-08-07"
        )
        clone = SearchManifest.from_json(manifest.to_json())
        assert clone == manifest
        path = manifest.write(tmp_path / "manifest.json")
        assert SearchManifest.read(path) == manifest
        assert manifest.created_at == "2026-08-07"

    def test_records_everything_that_was_decided(self, smoke_space, mem_session):
        manifest = run_search(
            smoke_space, driver="bb", session=mem_session, seed=5, budget=100
        )
        assert manifest.driver == "bb"
        assert manifest.seed == 5
        assert manifest.budget == 100
        assert manifest.space == smoke_space
        assert manifest.params == {"relaxation": 1.0}
        assert manifest.version == 1
        assert len(manifest.evaluations) == manifest.stats.evaluations
        # the incumbent trajectory is monotonically improving
        objectives = [step.objective_s for step in manifest.incumbents]
        assert objectives == sorted(objectives, reverse=True)
        assert manifest.best.fingerprint == manifest.incumbents[-1].fingerprint


class TestByteReproducibility:
    @pytest.mark.parametrize("driver", ["bb", "random", "halving:2"])
    def test_identical_across_runs_and_cache_states(
        self, smoke_space, mem_session, driver
    ):
        """Same seed + space => byte-identical manifest, cold or warm."""
        cold = run_search(smoke_space, driver=driver, session=mem_session, seed=9)
        warm = run_search(smoke_space, driver=driver, session=mem_session, seed=9)
        assert canonical(cold) == canonical(warm)

    @pytest.mark.parametrize("executor", ["serial", "process", "batched"])
    def test_identical_across_executors(self, smoke_space, executor):
        serial = run_search(smoke_space, driver="bb", session=Session(jobs=1))
        other = run_search(
            smoke_space,
            driver="bb",
            session=Session(jobs=2, executor=executor),
        )
        assert canonical(serial) == canonical(other)


class TestWarmth:
    def test_warm_research_performs_zero_resimulations(
        self, smoke_space, mem_session
    ):
        run_search(smoke_space, driver="bb", session=mem_session)
        cold_stats = mem_session.stats
        assert cold_stats.misses > 0
        before = (cold_stats.hits, cold_stats.misses)
        evaluator = Evaluator(mem_session)
        # drive the warm search through a fresh evaluator so its own
        # counters isolate the second run
        from repro.search.drivers import SEARCHERS

        SEARCHERS.create("bb").search(smoke_space, evaluator, seed=12)
        assert evaluator.misses == 0
        assert evaluator.hits > 0
        assert mem_session.stats.misses == before[1]  # no new simulations


class TestResume:
    def test_resume_mid_search_is_exact(self, smoke_space, mem_session):
        """An interrupted search resumes by replay: the truncated run's
        evaluations are a prefix of the full run's, the replay costs
        zero re-simulations up to the frontier, and the resumed manifest
        is byte-identical to an uninterrupted one."""
        uninterrupted = run_search(
            smoke_space, driver="random", session=Session(cache="mem:"), seed=4
        )
        interrupted = run_search(
            smoke_space, driver="random", session=mem_session, seed=4, budget=3
        )
        assert interrupted.stats.status == "budget_exhausted"
        prefix = [e.fingerprint for e in interrupted.evaluations]
        assert prefix == [e.fingerprint for e in uninterrupted.evaluations][:3]

        # resume: same seed + space against the warm session
        evaluator = Evaluator(mem_session)
        from repro.search.drivers import SEARCHERS

        result = SEARCHERS.create("random").search(
            smoke_space, evaluator, seed=4
        )
        assert evaluator.hits >= len(prefix)  # the replayed prefix was free
        resumed = run_search(
            smoke_space, driver="random", session=mem_session, seed=4
        )
        assert canonical(resumed) == canonical(uninterrupted)
        assert [e.fingerprint for e in result.evaluations] == [
            e.fingerprint for e in uninterrupted.evaluations
        ]
