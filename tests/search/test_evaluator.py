"""`Evaluator`: cached pricing, dedupe, bounds, event plumbing."""

import math

from repro.api import Scenario
from repro.search import Evaluator, SearchStarted
from repro.sim import Simulator


class TestObjectives:
    def test_objective_is_total_time(self, smoke_base, mem_session):
        scenario = smoke_base
        evaluator = Evaluator(mem_session)
        expected = Simulator(scenario.build_config()).run(
            scenario.build_policy()
        ).total_time_s
        assert evaluator.evaluate(scenario) == expected

    def test_batch_preserves_order_and_dedupes(self, smoke_space, mem_session):
        evaluator = Evaluator(mem_session)
        candidates = list(smoke_space.candidates())
        doubled = candidates + candidates  # every candidate twice
        objectives = evaluator.evaluate_many(doubled)
        assert len(objectives) == len(doubled)
        assert objectives[: len(candidates)] == objectives[len(candidates):]
        # duplicates priced once: one miss per *unique* candidate
        assert evaluator.misses == len(candidates)

    def test_hit_miss_counters_prove_warmth(self, smoke_space, mem_session):
        cold = Evaluator(mem_session)
        cold.evaluate_many(list(smoke_space.candidates()))
        assert cold.misses == smoke_space.size() and cold.hits == 0
        warm = Evaluator(mem_session)
        warm.evaluate_many(list(smoke_space.candidates()))
        assert warm.hits == smoke_space.size() and warm.misses == 0

    def test_unsupported_prices_to_none(self, mem_session):
        # LBANN rejects datasets beyond aggregate cluster memory.
        scenario = Scenario(
            dataset="imagenet22k",
            system="sec6_cluster:2",
            policy="lbann:dynamic",
            batch_size=32,
            num_epochs=2,
            scale=1.0,
        )
        evaluator = Evaluator(mem_session)
        assert evaluator.evaluate(scenario) is None

    def test_empty_batch(self, mem_session):
        assert Evaluator(mem_session).evaluate_many([]) == []


class TestBounds:
    def test_bounds_memoized_and_admissible(self, smoke_space, mem_session):
        evaluator = Evaluator(mem_session)
        candidates = list(smoke_space.candidates())
        bounds = evaluator.lower_bounds(candidates)
        objectives = evaluator.evaluate_many(candidates)
        for bound, objective in zip(bounds, objectives):
            assert objective is None or bound <= objective
        # memoized: same values, same context reused
        assert evaluator.lower_bounds(candidates) == bounds
        assert len(evaluator._contexts) == 1  # one context for the policy axis

    def test_unsupported_bounds_to_inf(self, mem_session):
        scenario = Scenario(
            dataset="imagenet22k",
            system="sec6_cluster:2",
            policy="lbann:dynamic",
            batch_size=32,
            num_epochs=2,
        )
        assert Evaluator(mem_session).lower_bound(scenario) == math.inf


class TestEvents:
    def test_emit_reaches_session_bus(self, mem_session):
        seen = []
        mem_session.bus.subscribe(seen.append)
        Evaluator(mem_session).emit(SearchStarted(driver="bb", space_size=9))
        assert seen and isinstance(seen[0], SearchStarted)
