"""The three search drivers: correctness, pruning, budgets, timeouts."""

import pytest

from repro.api import UnknownNameError
from repro.errors import ConfigurationError
from repro.search import (
    SEARCHERS,
    BranchBoundSearcher,
    CandidateOpened,
    CandidatePruned,
    Evaluator,
    HalvingSearcher,
    IncumbentImproved,
    RandomSearcher,
    Searcher,
    SearchFinished,
    SearchStarted,
    run_search,
)


class FakeClock:
    """A deterministic clock advancing a fixed step per reading."""

    def __init__(self, step: float = 0.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def exhaustive_best(space, session):
    """(objective, fingerprint) of the true optimum, by full sweep."""
    candidates = list(space.candidates())
    objectives = Evaluator(session).evaluate_many(candidates)
    return min(
        (objective, candidate.fingerprint())
        for objective, candidate in zip(objectives, candidates)
        if objective is not None
    )


class TestRegistry:
    def test_drivers_registered(self):
        assert SEARCHERS.names() == ["bb", "halving", "random"]
        assert "branch_and_bound" in SEARCHERS.known()

    def test_variant_spec_builds_relaxed_bb(self):
        searcher = SEARCHERS.create("bb:1.5")
        assert isinstance(searcher, BranchBoundSearcher)
        assert searcher.relaxation == 1.5

    def test_unknown_driver_suggests_near_miss(self):
        with pytest.raises(UnknownNameError, match="did you mean"):
            SEARCHERS.create("branch_nd_bound")

    def test_drivers_satisfy_protocol(self):
        for cls in (BranchBoundSearcher, RandomSearcher, HalvingSearcher):
            assert isinstance(cls(), Searcher)


class TestBranchBound:
    def test_matches_exhaustive_with_fewer_evaluations(
        self, smoke_space, mem_session
    ):
        """The PR's acceptance criterion: same incumbent, fewer cells."""
        best_objective, best_fp = exhaustive_best(smoke_space, mem_session)
        manifest = run_search(smoke_space, driver="bb")
        assert manifest.best is not None
        assert manifest.best.objective_s == best_objective
        assert manifest.best.fingerprint == best_fp
        assert manifest.stats.evaluations < smoke_space.size()
        assert manifest.stats.pruned_leaves > 0
        assert manifest.stats.status == "solved"
        assert manifest.stats.backtracks > 0

    def test_relaxation_prunes_at_least_as_much(self, smoke_space):
        exact = run_search(smoke_space, driver="bb")
        relaxed = run_search(smoke_space, driver="bb:2.0")
        assert relaxed.stats.evaluations <= exact.stats.evaluations
        assert relaxed.params == {"relaxation": 2.0}
        # The relaxed incumbent is within the factor of the optimum.
        assert relaxed.best.objective_s <= exact.best.objective_s * 2.0

    def test_relaxation_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="relaxation"):
            BranchBoundSearcher(relaxation=0.5)

    def test_budget_stops_early(self, smoke_space):
        manifest = run_search(smoke_space, driver="bb", budget=2)
        assert manifest.stats.evaluations == 2
        assert manifest.stats.status == "budget_exhausted"

    def test_timeout_via_injected_clock(self, smoke_space, mem_session):
        # Each clock reading advances 1 s; the 2.5 s limit trips after a
        # few readings, well before the 9-candidate space is explored.
        manifest = run_search(
            smoke_space,
            driver="bb",
            session=mem_session,
            timeout_s=2.5,
            clock=FakeClock(step=1.0),
        )
        assert manifest.stats.status == "timed_out"
        assert manifest.stats.evaluations < smoke_space.size()

    def test_event_stream(self, smoke_space, mem_session):
        events = []
        run_search(
            smoke_space, driver="bb", session=mem_session, on_event=events.append
        )
        kinds = [type(e) for e in events]
        assert kinds[0] is SearchStarted
        assert kinds[-1] is SearchFinished
        assert CandidateOpened in kinds
        assert CandidatePruned in kinds
        assert IncumbentImproved in kinds
        started = events[0]
        assert started.driver == "bb"
        assert started.space_size == smoke_space.size()
        pruned = [e for e in events if isinstance(e, CandidatePruned)]
        # every prune names a bound that could not beat the incumbent
        for event in pruned:
            assert event.bound_s >= event.incumbent_s


class TestRandom:
    def test_budget_and_determinism(self, smoke_space, mem_session):
        a = run_search(
            smoke_space, driver="random", session=mem_session, budget=4, seed=3
        )
        b = run_search(
            smoke_space, driver="random", session=mem_session, budget=4, seed=3
        )
        assert a.stats.evaluations == 4
        assert a.stats.status == "budget_exhausted"
        assert [e.fingerprint for e in a.evaluations] == [
            e.fingerprint for e in b.evaluations
        ]

    def test_seed_changes_order(self, smoke_space, mem_session):
        orders = {
            tuple(
                e.fingerprint
                for e in run_search(
                    smoke_space, driver="random", session=mem_session, seed=seed
                ).evaluations
            )
            for seed in range(4)
        }
        assert len(orders) > 1

    def test_exhausts_space_without_budget(self, smoke_space, mem_session):
        manifest = run_search(smoke_space, driver="random", session=mem_session)
        assert manifest.stats.evaluations == smoke_space.size()
        assert manifest.stats.status == "solved"


class TestHalving:
    def test_rungs_truncate_then_finish_full(self, smoke_space, mem_session):
        manifest = run_search(smoke_space, driver="halving:2", session=mem_session)
        truncated = [e for e in manifest.evaluations if not e.full]
        full = [e for e in manifest.evaluations if e.full]
        assert truncated and full
        assert all(e.scenario.num_epochs < 4 for e in truncated)
        assert all(e.scenario.num_epochs == 4 for e in full)
        # the incumbent only ever comes from a full-fidelity evaluation
        assert manifest.best.full
        assert all(
            manifest.evaluations[step.evaluation].full
            for step in manifest.incumbents
        )
        assert manifest.stats.status == "solved"

    def test_eta_validation(self):
        with pytest.raises(ConfigurationError, match="eta"):
            HalvingSearcher(eta=1)
        with pytest.raises(ConfigurationError, match="min_epochs"):
            HalvingSearcher(min_epochs=0)

    def test_budget_respected(self, smoke_space, mem_session):
        manifest = run_search(
            smoke_space, driver="halving:2", session=mem_session, budget=5
        )
        assert manifest.stats.evaluations <= 5
        assert manifest.stats.status == "budget_exhausted"


class TestValidation:
    def test_bad_budget_rejected(self, smoke_space):
        with pytest.raises(ConfigurationError, match="budget"):
            run_search(smoke_space, driver="bb", budget=0)

    def test_bad_timeout_rejected(self, smoke_space):
        with pytest.raises(ConfigurationError, match="timeout"):
            run_search(smoke_space, driver="bb", timeout_s=-1.0)
