"""`SearchSpace` / `KnobDomain`: validation, ordering, serialization."""

import pytest

from repro.api import FIG8_POLICIES
from repro.errors import ConfigurationError
from repro.search import KnobDomain, SearchSpace


class TestKnobDomain:
    def test_rejects_unknown_field(self):
        with pytest.raises(ConfigurationError, match="not a searchable"):
            KnobDomain(name="policy", values=("nopfs",))

    def test_rejects_empty_values(self):
        with pytest.raises(ConfigurationError, match="at least one value"):
            KnobDomain(name="batch_size", values=())

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError, match="twice"):
            KnobDomain(name="batch_size", values=(16, 16))

    def test_normalizes_lists(self):
        knob = KnobDomain(name="batch_size", values=[16, 32])
        assert knob.values == (16, 32)


class TestSearchSpace:
    def test_defaults_to_fig8_lineup(self, smoke_base):
        space = SearchSpace(base=smoke_base)
        assert space.policies == tuple(FIG8_POLICIES)
        assert space.size() == len(FIG8_POLICIES)

    def test_size_is_cross_product(self, smoke_base):
        space = SearchSpace(
            base=smoke_base,
            policies=("nopfs", "naive"),
            knobs=(
                KnobDomain(name="batch_size", values=(16, 32)),
                KnobDomain(name="num_epochs", values=(2, 4, 8)),
            ),
        )
        assert space.size() == 2 * 2 * 3

    def test_candidate_order_is_declaration_order(self, smoke_base):
        space = SearchSpace(
            base=smoke_base,
            policies=("nopfs", "naive"),
            knobs=(KnobDomain(name="batch_size", values=(16, 32)),),
        )
        labels = [(c.policy.name, c.batch_size) for c in space.candidates()]
        assert labels == [
            ("nopfs", 16), ("nopfs", 32), ("naive", 16), ("naive", 32),
        ]

    def test_candidates_inherit_base_fields(self, smoke_base):
        space = SearchSpace(base=smoke_base, policies=("nopfs",))
        candidate = next(space.candidates())
        assert candidate.scale == smoke_base.scale
        assert candidate.num_epochs == smoke_base.num_epochs
        assert candidate.policy.name == "nopfs"

    def test_rejects_duplicate_policies(self, smoke_base):
        with pytest.raises(ConfigurationError, match="listed twice"):
            SearchSpace(base=smoke_base, policies=("nopfs", "nopfs"))

    def test_rejects_duplicate_knobs(self, smoke_base):
        with pytest.raises(ConfigurationError, match="declared twice"):
            SearchSpace(
                base=smoke_base,
                knobs=(
                    KnobDomain(name="batch_size", values=(16,)),
                    KnobDomain(name="batch_size", values=(32,)),
                ),
            )

    def test_rejects_non_string_policy_specs(self, smoke_base):
        with pytest.raises(ConfigurationError, match="registry strings"):
            SearchSpace(base=smoke_base, policies=(42,))

    def test_json_round_trip(self, smoke_base):
        space = SearchSpace(
            base=smoke_base,
            policies=("nopfs", "deepio:opportunistic"),
            knobs=(KnobDomain(name="scale", values=(0.1, 0.2)),),
        )
        clone = SearchSpace.from_json(space.to_json())
        assert clone == space
        assert [c.fingerprint() for c in clone.candidates()] == [
            c.fingerprint() for c in space.candidates()
        ]
