"""Experiment-harness tests: every figure/table regenerates with the
paper's qualitative shape at laptop scale."""

import pytest

from repro.experiments import (
    fig3,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    paper,
    table1,
)

# Tiny scales keep the whole module fast; shape assertions are
# scale-invariant (ratios to lower bounds, orderings, monotonicity).
FAST = dict(scale=0.02)


class TestTable1:
    def test_matches_paper(self):
        assert table1.run().all_match


class TestFig3:
    def test_small_scale_agreement(self):
        """Analytic expectation tracks exact-shuffle Monte-Carlo."""
        r = fig3.run(num_samples=100_000, num_epochs=30, num_workers=8)
        assert r.measured_hot == pytest.approx(r.expected_hot, rel=0.05)

    def test_histogram_sums_to_F(self):
        r = fig3.run(num_samples=50_000, num_epochs=20, num_workers=8)
        assert sum(r.histogram.counts) == 50_000

    def test_render(self):
        r = fig3.run(num_samples=20_000, num_epochs=10, num_workers=4)
        assert "Monte-Carlo" in r.render()


class TestFig8:
    @pytest.fixture(scope="class")
    def panel_b(self):
        return fig8.run("b", scale=0.02)

    def test_nopfs_among_best(self, panel_b):
        nopfs = panel_b.measured_ratio("nopfs")
        others = [
            panel_b.measured_ratio(p)
            for p in ("naive", "staging_buffer", "deepio_ordered", "lbann_dynamic")
        ]
        assert all(nopfs <= o + 0.02 for o in others)

    def test_naive_worst(self, panel_b):
        naive = panel_b.measured_ratio("naive")
        for name in panel_b.results:
            assert panel_b.measured_ratio(name) <= naive + 1e-9

    def test_everything_above_lower_bound(self, panel_b):
        for name in panel_b.results:
            assert panel_b.measured_ratio(name) >= 1.0 - 1e-9

    def test_panel_d_lbann_unsupported(self):
        p = fig8.run("d", scale=0.01)
        assert "lbann_dynamic" in p.unsupported
        assert "lbann_preloading" in p.unsupported
        assert set(p.unsupported) == set(paper.FIG8_UNSUPPORTED["d"])

    def test_panel_d_sharding_incomplete(self):
        p = fig8.run("d", scale=0.01)
        assert not p.results["parallel_staging"].accesses_full_dataset
        assert not p.results["deepio_opportunistic"].accesses_full_dataset
        assert p.results["nopfs"].accesses_full_dataset

    def test_scenario_labels(self):
        assert fig8.run("a").scenario == "S<d1"
        assert fig8.run("d", scale=0.01).scenario == "D<S<ND"

    def test_render(self, panel_b):
        out = panel_b.render()
        assert "nopfs" in out and "paper" in out

    def test_unknown_panel(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fig8.run("z")


class TestFig9:
    @pytest.fixture(scope="class")
    def grid(self):
        return fig9.run(scale=0.005, ram_gb=(0, 64, 256), ssd_gb=(0, 256, 1024),
                        num_epochs=3)

    def test_monotone_in_ram(self, grid):
        assert grid.monotone_in_ram()

    def test_storage_helps(self, grid):
        """Max storage beats no storage (the design-space conclusion)."""
        assert grid.times_s[(256, 1024)] < grid.times_s[(0, 0)]

    def test_ssd_compensates_for_ram(self, grid):
        """Small RAM + big SSD competitive with mid RAM + no SSD."""
        assert grid.times_s[(64, 1024)] <= grid.times_s[(256, 0)] * 1.25

    def test_render_includes_paper(self, grid):
        assert "(" in grid.render()


class TestScalingFigures:
    @pytest.fixture(scope="class")
    def lassen_sweep(self):
        return fig10.run("lassen", gpu_counts=(32, 256), scale=0.25, num_epochs=3)

    def test_pytorch_loses_at_scale(self, lassen_sweep):
        assert lassen_sweep.sweep.speedup(256, "PyTorch") > 1.5

    def test_nopfs_tracks_no_io(self, lassen_sweep):
        s = lassen_sweep.sweep
        assert s.median_epoch(256, "NoPFS") <= s.median_epoch(256, "No I/O") * 1.15

    def test_speedup_grows_with_scale(self, lassen_sweep):
        s = lassen_sweep.sweep
        assert s.speedup(256, "PyTorch") > s.speedup(32, "PyTorch")

    def test_batch_tails(self, lassen_sweep):
        """PyTorch's max batch time spikes far beyond its median at
        scale; NoPFS's does not (the violin-plot story)."""
        s = lassen_sweep.sweep
        pt = s.points[(256, "PyTorch")].batch_stats
        np_ = s.points[(256, "NoPFS")].batch_stats
        assert pt.max / pt.p50 > np_.max / np_.p50

    def test_piz_daint_shape(self):
        r = fig10.run("piz_daint", gpu_counts=(32, 256), scale=0.25, num_epochs=3)
        assert r.sweep.speedup(256, "PyTorch") > 1.5


class TestFig11:
    def test_epoch0_similar_warm_different(self):
        r = fig11.run(gpu_counts=(64,), scale=0.1, num_epochs=3)
        e0_ratio = (
            r.epoch0[(64, "PyTorch")].p50 / r.epoch0[(64, "NoPFS")].p50
        )
        warm_ratio = r.warm[(64, "PyTorch")].p50 / r.warm[(64, "NoPFS")].p50
        # warm epochs separate the loaders far more than epoch 0 does
        assert warm_ratio > e0_ratio * 0.9
        assert "Fig 11" in r.render()


class TestFig12:
    @pytest.fixture(scope="class")
    def stats(self):
        return fig12.run(gpu_counts=(32, 256), scale=0.1, num_epochs=4)

    def test_stall_decreases_with_scale(self, stats):
        assert stats.stall_s[256] < stats.stall_s[32]

    def test_shares_sum_to_one(self, stats):
        for gpus in (32, 256):
            assert sum(stats.shares[gpus].values()) == pytest.approx(1.0)

    def test_remote_present(self, stats):
        assert stats.shares[32]["remote"] > 0

    def test_render(self, stats):
        assert "paper" in stats.render()


class TestFig13:
    def test_batch_time_grows_with_batch_size(self):
        r = fig13.run(batch_sizes=(32, 120), gpus=64, scale=0.1, num_epochs=3)
        for label in r.labels:
            assert r.stats[(120, label)].p50 > r.stats[(32, label)].p50

    def test_nopfs_faster_every_batch_size(self):
        r = fig13.run(batch_sizes=(32, 96), gpus=128, scale=0.1, num_epochs=3)
        for b in (32, 96):
            assert r.stats[(b, "NoPFS")].p50 <= r.stats[(b, "PyTorch")].p50


class TestFig14And15:
    def test_fig14_headline(self):
        r = fig14.run(gpu_counts=(256,), scale=0.02, num_epochs=3)
        assert r.headline_speedup() > 1.3

    def test_fig15_headline_and_cache_use(self):
        r = fig15.run(gpu_counts=(32, 256), scale=0.05, num_epochs=3)
        assert r.headline_speedup() > 1.2
        assert r.nopfs_uses_local_cache()


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return fig16.run(gpus=128, scale=0.1, num_epochs=30)

    def test_speedup_positive(self, result):
        assert result.speedup > 1.0

    def test_same_learning_curve(self, result):
        import numpy as np

        np.testing.assert_allclose(
            result.comparison.baseline.top1_at_epoch_end,
            result.comparison.contender.top1_at_epoch_end,
        )

    def test_render(self, result):
        out = result.render()
        assert "speedup" in out and "paper" in out
