"""Incremental artifact pipeline: manifest, skip logic, invalidation."""

import pytest

from repro.experiments import artifacts, paper
from repro.experiments.artifacts import ArtifactManifest, run_incremental
from repro.sweep import SweepRunner

#: A tiny, fast figure subset (same params the paper driver's quick
#: profile shrinks further below).
FIGURES = ["fig12", "fig13"]
OVERRIDES = {
    "fig12": {"gpu_counts": (32,), "scale": 0.05, "num_epochs": 2},
    "fig13": {"batch_sizes": (32,), "gpus": 32, "scale": 0.05, "num_epochs": 2},
}


@pytest.fixture()
def cache_dir(tmp_path):
    return tmp_path / "cache"


@pytest.fixture()
def art_dir(tmp_path):
    return tmp_path / "artifacts"


def _run(cache_dir, art_dir, **kwargs):
    runner = SweepRunner(n_jobs=1, cache_dir=cache_dir)
    run = run_incremental(
        art_dir, runner=runner, figures=FIGURES, overrides=OVERRIDES, **kwargs
    )
    return run


class TestColdRun:
    def test_records_outputs_and_manifest(self, cache_dir, art_dir):
        run = _run(cache_dir, art_dir)
        assert run.recomputed == ("fig12", "fig13")
        assert run.skipped == ()
        assert (art_dir / "fig12.txt").is_file()
        assert (art_dir / "manifest.json").is_file()
        manifest = ArtifactManifest.load(art_dir / "manifest.json")
        assert set(manifest.figures) == {"fig12", "fig13"}
        for record in manifest.figures.values():
            assert record.fingerprint and record.cell_keys
        assert "recomputed: fig12, fig13" in run.render()


class TestWarmRun:
    def test_skips_everything_with_zero_simulations(self, cache_dir, art_dir):
        cold = _run(cache_dir, art_dir)
        warm = _run(cache_dir, art_dir)
        assert warm.recomputed == ()
        assert warm.skipped == ("fig12", "fig13")
        assert warm.sweep_stats.cells == 0  # no sweep at all, not even hits
        assert warm.rendered == cold.rendered  # byte-identical text served
        assert "skipped (unchanged): fig12, fig13" in warm.render()

    def test_force_recomputes_anyway(self, cache_dir, art_dir):
        _run(cache_dir, art_dir)
        forced = _run(cache_dir, art_dir, force=True)
        assert forced.recomputed == ("fig12", "fig13")
        # ... but the warm cache still answers every cell.
        assert forced.sweep_stats.misses == 0


class TestInvalidation:
    def test_param_change_recomputes_only_affected_figure(self, cache_dir, art_dir):
        _run(cache_dir, art_dir)
        overrides = {
            "fig12": dict(OVERRIDES["fig12"], num_epochs=3),  # changed
            "fig13": OVERRIDES["fig13"],
        }
        runner = SweepRunner(n_jobs=1, cache_dir=cache_dir)
        run = run_incremental(
            art_dir, runner=runner, figures=FIGURES, overrides=overrides
        )
        assert run.recomputed == ("fig12",)
        assert run.skipped == ("fig13",)

    def test_seed_change_recomputes(self, cache_dir, art_dir):
        _run(cache_dir, art_dir)
        run = _run(cache_dir, art_dir, seed=7)
        assert run.recomputed == ("fig12", "fig13")

    def test_tampered_output_recomputes(self, cache_dir, art_dir):
        _run(cache_dir, art_dir)
        (art_dir / "fig12.txt").write_text("edited by hand")
        run = _run(cache_dir, art_dir)
        assert run.recomputed == ("fig12",)
        assert run.skipped == ("fig13",)

    def test_missing_output_recomputes(self, cache_dir, art_dir):
        _run(cache_dir, art_dir)
        (art_dir / "fig13.txt").unlink()
        run = _run(cache_dir, art_dir)
        assert run.recomputed == ("fig13",)

    def test_corrupt_manifest_recomputes_everything(self, cache_dir, art_dir):
        _run(cache_dir, art_dir)
        (art_dir / "manifest.json").write_text("{broken")
        run = _run(cache_dir, art_dir)
        assert run.recomputed == ("fig12", "fig13")

    def test_render_fingerprint_tracks_module_source(self, monkeypatch):
        runner = SweepRunner(n_jobs=1)
        specs = paper._figure_specs(runner, seed=1)
        spec = specs["fig12"]
        before = artifacts.render_fingerprint(spec, {}, seed=1)
        monkeypatch.setattr(
            artifacts, "_module_source_digest", lambda name: "deadbeef"
        )
        after = artifacts.render_fingerprint(spec, {}, seed=1)
        assert before != after


class TestOutputMatchesBatchDriver:
    def test_rendered_text_equals_run_figures(self, cache_dir, art_dir):
        run = _run(cache_dir, art_dir)
        batch = paper.run_figures(
            runner=SweepRunner(n_jobs=1, cache_dir=cache_dir),
            figures=FIGURES,
            overrides=OVERRIDES,
        )
        from repro.experiments.common import render_result

        for name in FIGURES:
            assert run.rendered[name] == render_result(batch.results[name])
