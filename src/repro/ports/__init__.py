"""Shared domain ports: the seam between the simulator and the runtime.

The paper's central claim is that the analytic performance model
predicts what the real prefetching runtime does. For that claim to be
*testable*, both worlds must speak the same vocabulary. This package
defines it:

* :mod:`repro.ports.ports` — the port protocols (:class:`DatasetSource`,
  :class:`StorageTier`, :class:`PolicyPort`, :class:`ClusterClock`,
  :class:`MetricsSink`). The simulator's policies and the runtime's
  backends/datasets already satisfy them structurally; anything new
  (a key-value store tier, a trace-driven dataset) plugs in by
  implementing the protocol.
* :mod:`repro.ports.fakes` — deterministic in-memory implementations
  (:class:`FakeDataset`, :class:`FakeTier`, :class:`FakeClock`) used by
  the contract suites, the parity harness, and any test that would
  otherwise hand-roll a dataset.
* :mod:`repro.ports.testing` — reusable pytest contract suites every
  implementation of a port must pass (capacity, concurrency,
  eviction-order, corruption behaviour).
* :mod:`repro.ports.worlds` — the two adapters: :class:`SimWorld` runs
  a policy through the analytic engine, :class:`RuntimeWorld` runs the
  *same* policy through the threaded runtime (staging buffer, prefetch
  threads, worker group) against a :class:`FakeDataset`, producing a
  :class:`WorldReport` in the same shape.
* :mod:`repro.ports.parity` — compares the two reports under declared
  tolerances (``tools/parity.py`` is the CLI).
"""

from .fakes import (
    BYTES_PER_MB,
    FAKE_PROFILES,
    FakeClock,
    FakeDataset,
    FakeTier,
    FetchEvent,
    RecordingMetricsSink,
    fake_dataset_model,
)
from .ports import (
    ClusterClock,
    DatasetSource,
    MetricsSink,
    NullMetricsSink,
    PolicyPort,
    StorageTier,
    SystemClock,
)
from .worlds import RuntimeWorld, SimWorld, WorldReport, parity_system

__all__ = [
    "BYTES_PER_MB",
    "FAKE_PROFILES",
    "ClusterClock",
    "DatasetSource",
    "FakeClock",
    "FakeDataset",
    "FakeTier",
    "FetchEvent",
    "MetricsSink",
    "NullMetricsSink",
    "PolicyPort",
    "RecordingMetricsSink",
    "RuntimeWorld",
    "SimWorld",
    "StorageTier",
    "SystemClock",
    "WorldReport",
    "fake_dataset_model",
    "parity_system",
]
