"""Sim-vs-runtime parity: run both worlds, diff them under tolerances.

The harness (:func:`run_parity`) drives every requested policy through
:class:`~repro.ports.worlds.SimWorld` and
:class:`~repro.ports.worlds.RuntimeWorld` over one shared
:class:`~repro.sim.engine.Simulator` and compares the resulting
:class:`~repro.ports.worlds.WorldReport` pairs:

* **Modelled epochs** (no cache plan, or at/after ``warm_epochs``) must
  match *exactly* — same fetch counts, bytes, seconds and epoch time to
  the last bit. The runtime world prices its observed fetches through
  the engine's own kernels, so any deviation here is a real behavioural
  difference (a sample served from the wrong place), never float drift.
* **Cold epochs** (before ``warm_epochs`` with a plan) diverge by
  design: the simulator applies the paper's warm-up remote-availability
  model while the lockstep runtime's tiers are empty until the warm
  boundary. Tolerance: total fetch counts equal, the runtime at least
  as PFS-heavy as the sim, and the runtime epoch no faster than the
  sim's (scaled by :attr:`ParityTolerance.cold_time_slack`).
* **Unsupported scenarios** must agree: a policy raising
  :class:`~repro.errors.PolicyError` in one world must raise in both.
* **Stall ordering**: when the sim separates two policies' total times
  by more than :attr:`ParityTolerance.ordering_margin`, the runtime
  must rank them the same way.

The report is plain data (:meth:`ParityReport.to_dict` /
:meth:`ParityReport.to_json`) and fully deterministic — no timestamps,
no environment capture — so CI can diff two runs byte for byte.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..api.presets import FIG8_POLICIES, make_policy
from ..errors import ConfigurationError, PolicyError
from ..sim import NoiseConfig, SimulationConfig, Simulator
from .fakes import fake_dataset_model
from .worlds import RuntimeWorld, SimWorld, WorldReport, parity_system

__all__ = [
    "EpochComparison",
    "ParityReport",
    "ParityTolerance",
    "PolicyParity",
    "compare_reports",
    "default_config",
    "run_parity",
]


@dataclass(frozen=True)
class ParityTolerance:
    """Declared tolerances for the sim-vs-runtime comparison.

    Attributes
    ----------
    modeled_rel:
        Relative tolerance for modelled epochs. The default ``0.0``
        demands bitwise equality (what the shared-kernel pricing
        guarantees); loosen only when comparing across worlds that do
        not share the engine.
    cold_time_slack:
        Cold epochs may not be *faster* in the runtime world than
        ``sim_time * (1 - cold_time_slack)`` — empty tiers mean more
        PFS traffic, never less.
    ordering_margin:
        Two policies whose sim total times differ by more than this
        relative margin must rank identically in the runtime world.
    """

    modeled_rel: float = 0.0
    cold_time_slack: float = 1e-9
    ordering_margin: float = 0.05

    def __post_init__(self) -> None:
        for name in ("modeled_rel", "cold_time_slack", "ordering_margin"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class EpochComparison:
    """One epoch's verdict."""

    epoch: int
    kind: str  # "modeled" | "cold"
    ok: bool
    sim_counts: tuple[int, ...]
    runtime_counts: tuple[int, ...]
    sim_time_s: float
    runtime_time_s: float
    issues: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "epoch": self.epoch,
            "kind": self.kind,
            "ok": self.ok,
            "sim_counts": list(self.sim_counts),
            "runtime_counts": list(self.runtime_counts),
            "sim_time_s": self.sim_time_s,
            "runtime_time_s": self.runtime_time_s,
            "issues": list(self.issues),
        }


@dataclass(frozen=True)
class PolicyParity:
    """One policy's verdict across both worlds.

    ``status`` is ``"ok"``, ``"mismatch"``, ``"unsupported"`` (both
    worlds rejected the scenario — which counts as agreement), or
    ``"unsupported_sim_only"`` / ``"unsupported_runtime_only"`` (a
    disagreement about supportability, always a failure).
    """

    policy: str
    status: str
    epochs: tuple[EpochComparison, ...] = ()
    issues: tuple[str, ...] = ()
    sim_total_s: float | None = None
    runtime_total_s: float | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "unsupported")

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "status": self.status,
            "ok": self.ok,
            "sim_total_s": self.sim_total_s,
            "runtime_total_s": self.runtime_total_s,
            "issues": list(self.issues),
            "epochs": [e.to_dict() for e in self.epochs],
        }


@dataclass(frozen=True)
class ParityReport:
    """The full harness output: per-policy verdicts plus ordering."""

    scenario: dict[str, Any]
    policies: tuple[PolicyParity, ...]
    ordering_issues: tuple[str, ...] = ()
    tolerance: ParityTolerance = field(default_factory=ParityTolerance)

    @property
    def ok(self) -> bool:
        return not self.ordering_issues and all(p.ok for p in self.policies)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "scenario": self.scenario,
            "tolerance": {
                "modeled_rel": self.tolerance.modeled_rel,
                "cold_time_slack": self.tolerance.cold_time_slack,
                "ordering_margin": self.tolerance.ordering_margin,
            },
            "ordering_issues": list(self.ordering_issues),
            "policies": [p.to_dict() for p in self.policies],
        }

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("indent", 2)
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    def summary_lines(self) -> list[str]:
        """Human-readable one-line-per-policy summary (CLI output)."""
        lines = []
        for p in self.policies:
            if p.sim_total_s is None:
                lines.append(f"{p.policy:24s} {p.status}")
            else:
                lines.append(
                    f"{p.policy:24s} {p.status:10s} "
                    f"sim={p.sim_total_s:.6f}s runtime={p.runtime_total_s:.6f}s"
                )
        for issue in self.ordering_issues:
            lines.append(f"ordering: {issue}")
        lines.append("PARITY OK" if self.ok else "PARITY FAILED")
        return lines


# -- comparison ------------------------------------------------------------


def _close(a: float, b: float, rel: float) -> bool:
    if rel == 0.0:
        return a == b
    return math.isclose(a, b, rel_tol=rel, abs_tol=rel * 1e-6)


def _compare_modeled(
    epoch: int, sim: Any, runtime: Any, tol: ParityTolerance
) -> EpochComparison:
    issues: list[str] = []
    if sim.fetch_counts != runtime.fetch_counts:
        issues.append(
            f"fetch counts differ: sim={sim.fetch_counts} "
            f"runtime={runtime.fetch_counts}"
        )
    for name in ("fetch_bytes", "fetch_seconds"):
        sv, rv = getattr(sim, name), getattr(runtime, name)
        if not all(_close(s, r, tol.modeled_rel) for s, r in zip(sv, rv)):
            issues.append(f"{name} differ: sim={sv} runtime={rv}")
    for name in ("time_s", "stall_mean_s", "stall_max_s"):
        sv, rv = getattr(sim, name), getattr(runtime, name)
        if not _close(sv, rv, tol.modeled_rel):
            issues.append(f"{name} differs: sim={sv!r} runtime={rv!r}")
    return EpochComparison(
        epoch=epoch,
        kind="modeled",
        ok=not issues,
        sim_counts=sim.fetch_counts,
        runtime_counts=runtime.fetch_counts,
        sim_time_s=sim.time_s,
        runtime_time_s=runtime.time_s,
        issues=tuple(issues),
    )


def _compare_cold(
    epoch: int, sim: Any, runtime: Any, tol: ParityTolerance
) -> EpochComparison:
    issues: list[str] = []
    if sum(sim.fetch_counts) != sum(runtime.fetch_counts):
        issues.append(
            f"total fetch counts differ: sim={sum(sim.fetch_counts)} "
            f"runtime={sum(runtime.fetch_counts)}"
        )
    # Index 0 is Source.PFS; empty runtime tiers can only shift remote
    # fetches onto the PFS, never the reverse.
    if runtime.fetch_counts[0] < sim.fetch_counts[0]:
        issues.append(
            f"runtime less PFS-heavy than sim on a cold epoch: "
            f"sim_pfs={sim.fetch_counts[0]} runtime_pfs={runtime.fetch_counts[0]}"
        )
    if runtime.time_s < sim.time_s * (1.0 - tol.cold_time_slack):
        issues.append(
            f"runtime cold epoch faster than sim: "
            f"sim={sim.time_s!r} runtime={runtime.time_s!r}"
        )
    return EpochComparison(
        epoch=epoch,
        kind="cold",
        ok=not issues,
        sim_counts=sim.fetch_counts,
        runtime_counts=runtime.fetch_counts,
        sim_time_s=sim.time_s,
        runtime_time_s=runtime.time_s,
        issues=tuple(issues),
    )


def compare_reports(
    sim_report: WorldReport,
    runtime_report: WorldReport,
    tolerance: ParityTolerance | None = None,
) -> PolicyParity:
    """Diff one policy's two world reports into a verdict."""
    tol = tolerance if tolerance is not None else ParityTolerance()
    issues: list[str] = []
    if len(sim_report.epochs) != len(runtime_report.epochs):
        issues.append(
            f"epoch counts differ: sim={len(sim_report.epochs)} "
            f"runtime={len(runtime_report.epochs)}"
        )
    if sim_report.cold_epochs != runtime_report.cold_epochs:
        issues.append(
            f"worlds disagree on cold epochs: sim={sim_report.cold_epochs} "
            f"runtime={runtime_report.cold_epochs}"
        )
    if sim_report.prestage_time_s != runtime_report.prestage_time_s:
        issues.append("prestage times differ")

    cold = set(sim_report.cold_epochs)
    epochs = []
    for i, (s, r) in enumerate(zip(sim_report.epochs, runtime_report.epochs)):
        cmp = (_compare_cold if i in cold else _compare_modeled)(i, s, r, tol)
        epochs.append(cmp)
    ok = not issues and all(e.ok for e in epochs)
    return PolicyParity(
        policy=sim_report.policy,
        status="ok" if ok else "mismatch",
        epochs=tuple(epochs),
        issues=tuple(issues),
        sim_total_s=sim_report.total_time_s,
        runtime_total_s=runtime_report.total_time_s,
    )


def _ordering_issues(
    results: list[PolicyParity], margin: float
) -> list[str]:
    """Pairs the sim separates by > margin must rank the same in runtime."""
    issues = []
    timed = [p for p in results if p.sim_total_s is not None]
    for i, a in enumerate(timed):
        for b in timed[i + 1 :]:
            if a.sim_total_s * (1.0 + margin) < b.sim_total_s:
                if a.runtime_total_s > b.runtime_total_s:
                    issues.append(
                        f"sim ranks {a.policy} faster than {b.policy} "
                        f"({a.sim_total_s:.6f} < {b.sim_total_s:.6f}) but the "
                        f"runtime disagrees ({a.runtime_total_s:.6f} > "
                        f"{b.runtime_total_s:.6f})"
                    )
            elif b.sim_total_s * (1.0 + margin) < a.sim_total_s:
                if b.runtime_total_s > a.runtime_total_s:
                    issues.append(
                        f"sim ranks {b.policy} faster than {a.policy} "
                        f"({b.sim_total_s:.6f} < {a.sim_total_s:.6f}) but the "
                        f"runtime disagrees ({b.runtime_total_s:.6f} > "
                        f"{a.runtime_total_s:.6f})"
                    )
    return issues


# -- the harness -----------------------------------------------------------


def default_config(
    profile: str = "tiny",
    num_workers: int = 4,
    batch_size: int = 4,
    num_epochs: int = 3,
) -> SimulationConfig:
    """The standard parity scenario: a fake dataset on the parity system.

    Noise is disabled — both worlds support it identically (they share
    the seeded per-worker generators), but the deterministic fluid model
    is what makes mismatch reports readable.
    """
    return SimulationConfig(
        dataset=fake_dataset_model(profile),
        system=parity_system(num_workers),
        batch_size=batch_size,
        num_epochs=num_epochs,
        noise=NoiseConfig.disabled(),
    )


def run_parity(
    config: SimulationConfig | None = None,
    policies: Sequence[str] = FIG8_POLICIES,
    tolerance: ParityTolerance | None = None,
) -> ParityReport:
    """Run every policy through both worlds and diff the reports.

    Both worlds share one :class:`Simulator` (same cached streams, same
    plan scalars); each policy is instantiated fresh per world so no
    prepared state leaks across.
    """
    cfg = config if config is not None else default_config()
    tol = tolerance if tolerance is not None else ParityTolerance()
    sim = Simulator(cfg)
    sim_world = SimWorld(cfg, sim=sim)
    runtime_world = RuntimeWorld(cfg, sim=sim)

    results: list[PolicyParity] = []
    for spec in policies:
        sim_error = runtime_error = None
        sim_report = runtime_report = None
        try:
            sim_report = sim_world.run(make_policy(spec))
        except PolicyError as exc:
            sim_error = exc
        try:
            runtime_report = runtime_world.run(make_policy(spec))
        except PolicyError as exc:
            runtime_error = exc

        if sim_error is not None or runtime_error is not None:
            if sim_error is not None and runtime_error is not None:
                status = "unsupported"
            elif sim_error is not None:
                status = "unsupported_sim_only"
            else:
                status = "unsupported_runtime_only"
            results.append(
                PolicyParity(
                    policy=str(spec),
                    status=status,
                    issues=tuple(
                        str(e) for e in (sim_error, runtime_error) if e is not None
                    ),
                )
            )
            continue
        results.append(compare_reports(sim_report, runtime_report, tol))

    ordering = _ordering_issues(results, tol.ordering_margin)
    scenario = {
        "dataset": cfg.dataset.name,
        "system": cfg.system.name,
        "num_workers": cfg.system.num_workers,
        "batch_size": cfg.batch_size,
        "num_epochs": cfg.num_epochs,
        "seed": cfg.seed,
        "policies": [str(p) for p in policies],
    }
    return ParityReport(
        scenario=scenario,
        policies=tuple(results),
        ordering_issues=tuple(ordering),
        tolerance=tol,
    )
