"""The port protocols both worlds share.

Each port names a role that exists in *both* the analytic simulator and
the threaded runtime, so a policy (or a test) can be written against
the role and executed in either world:

==================  ======================================  =========================
port                simulator side                          runtime side
==================  ======================================  =========================
:class:`DatasetSource`  :class:`~repro.datasets.DatasetModel`   :class:`~repro.loader.dataset.Dataset`
                        sizes (via :class:`~repro.ports.fakes.FakeDataset`)  real bytes
:class:`StorageTier`    :class:`~repro.perfmodel.StorageClassModel`          :class:`~repro.runtime.backends.StorageBackend`
                        capacity in the placement math       byte-enforced cache
:class:`PolicyPort`     :class:`~repro.sim.policies.base.Policy`             the same object, executed
                                                             by :class:`~repro.ports.worlds.RuntimeWorld`
:class:`ClusterClock`   simulated seconds                    wall clock / :class:`~repro.ports.fakes.FakeClock`
:class:`MetricsSink`    engine aggregation                   per-fetch event stream
==================  ======================================  =========================

All protocols are ``runtime_checkable`` so contract suites can assert
compliance with ``isinstance``; they check method presence only (the
semantics are what :mod:`repro.ports.testing` verifies).
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = [
    "ClusterClock",
    "DatasetSource",
    "MetricsSink",
    "NullMetricsSink",
    "PolicyPort",
    "StorageTier",
    "SystemClock",
]


@runtime_checkable
class DatasetSource(Protocol):
    """Sample storage as the loaders see it: sized, labelled byte blobs.

    The runtime's :class:`~repro.loader.dataset.Dataset` implementations
    (in-memory, synthetic files, binary folders) satisfy this
    structurally; :class:`~repro.ports.fakes.FakeDataset` bridges a
    simulator-side :class:`~repro.datasets.DatasetModel` into the same
    shape so both worlds read identical sizes.
    """

    def __len__(self) -> int:
        """Number of samples ``F``."""
        ...

    def read(self, sample_id: int) -> bytes:
        """One sample's raw bytes (may be slow — this is the PFS)."""
        ...

    def size(self, sample_id: int) -> int:
        """Sample size in bytes without reading it (metadata only)."""
        ...

    def label(self, sample_id: int) -> int:
        """The sample's class label."""
        ...


@runtime_checkable
class StorageTier(Protocol):
    """A byte-budgeted key/value cache for samples (one storage class).

    :class:`~repro.runtime.backends.StorageBackend` subclasses
    (memory, filesystem) implement this; so does the protocol-first
    :class:`~repro.ports.fakes.FakeTier`. Semantics every
    implementation must honour (verified by
    :class:`~repro.ports.testing.StorageTierContract`):

    * ``put`` returns ``False`` — without storing — when the sample
      would exceed the remaining capacity; re-putting an existing id is
      a no-op returning ``True``.
    * ``get`` returns ``None`` on a miss, never raises for unknown ids.
    * all operations are safe under concurrent use by prefetcher
      threads and remote-serving calls.
    """

    @property
    def name(self) -> str:
        """Human-readable tier name."""
        ...

    @property
    def capacity_bytes(self) -> int:
        """Configured byte budget."""
        ...

    @property
    def used_bytes(self) -> int:
        """Bytes currently cached."""
        ...

    def put(self, sample_id: int, data: bytes) -> bool:
        """Cache ``data``; ``False`` when it does not fit."""
        ...

    def get(self, sample_id: int) -> bytes | None:
        """Cached bytes, or ``None`` on a miss."""
        ...

    def delete(self, sample_id: int) -> bool:
        """Evict one sample; whether it was present."""
        ...

    def clear(self) -> None:
        """Evict everything."""
        ...

    def __contains__(self, sample_id: int) -> bool: ...

    def __len__(self) -> int: ...


@runtime_checkable
class PolicyPort(Protocol):
    """An I/O strategy preparable for a scenario — in either world.

    This is exactly the simulator's :class:`~repro.sim.policies.base.Policy`
    surface; the point of naming it as a port is that
    :class:`~repro.ports.worlds.RuntimeWorld` executes the *same*
    prepared object (placement plan, warm epochs, stream rewrites) with
    real threads and real bytes instead of array kernels.
    """

    @property
    def name(self) -> str:
        """Machine-readable policy name."""
        ...

    def prepare(self, ctx) -> object:
        """Instantiate for a scenario; returns a ``PreparedPolicy``."""
        ...


@runtime_checkable
class ClusterClock(Protocol):
    """Time as the runtime components observe it.

    Injecting the clock lets tests replace real sleeps (network delay
    models, PFS latency stand-ins) with a deterministic
    :class:`~repro.ports.fakes.FakeClock` that advances virtually.
    """

    def monotonic(self) -> float:
        """Current monotonic time in seconds."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block (or virtually advance) for ``seconds``."""
        ...


class SystemClock:
    """The real wall clock (default for runtime components)."""

    def monotonic(self) -> float:
        """``time.monotonic()``."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """``time.sleep(seconds)``."""
        time.sleep(seconds)


@runtime_checkable
class MetricsSink(Protocol):
    """Receiver for per-fetch events emitted by the runtime fetch path.

    ``source`` follows :class:`repro.perfmodel.Source` naming
    (``"pfs"`` / ``"remote"`` / ``"local"``); ``epoch`` is derived from
    the sample's position in the access stream, so attribution is
    deterministic regardless of thread timing.
    """

    def record_fetch(
        self, rank: int, epoch: int, source: str, sample_id: int, nbytes: int
    ) -> None:
        """One staged fetch landed."""
        ...


class NullMetricsSink:
    """Discards every event (the default sink)."""

    def record_fetch(
        self, rank: int, epoch: int, source: str, sample_id: int, nbytes: int
    ) -> None:
        """Ignore the event."""
