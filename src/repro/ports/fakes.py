"""Deterministic in-memory fakes for the domain ports.

These follow the ``FakeDatasetLoader`` idiom: real implementations of
the port protocols, cheap enough for unit tests, deterministic enough
for the parity harness. Nothing here touches the filesystem, sleeps on
a real clock, or consults a random source at call time — every byte is
a pure function of ``(seed, sample_id)``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..datasets import DatasetModel
from ..errors import ConfigurationError, RuntimeIOError
from ..loader.dataset import Dataset
from ..rng import DEFAULT_SEED

__all__ = [
    "BYTES_PER_MB",
    "FAKE_PROFILES",
    "FakeClock",
    "FakeDataset",
    "FakeTier",
    "FetchEvent",
    "RecordingMetricsSink",
    "fake_dataset_model",
]

BYTES_PER_MB = 1 << 20

#: Laptop-scale dataset profiles. Sizes are dyadic MB values so that
#: ``bytes = size_mb * 2**20`` is an exact integer and the round trip
#: ``bytes / 2**20`` reproduces the float MB exactly — the property the
#: parity harness relies on to make the simulator's float placement
#: math and the runtime's integer byte accounting agree bit for bit.
FAKE_PROFILES: dict[str, tuple[int, float]] = {
    "tiny": (32, 0.0625),
    "small": (64, 0.25),
    "medium": (256, 0.5),
}


def fake_dataset_model(profile: str = "small", seed: int = DEFAULT_SEED) -> DatasetModel:
    """A :class:`DatasetModel` for the in-memory fake (``fake:<profile>``).

    Registered under ``DATASETS`` so the fake sweeps, caches and searches
    exactly like the built-in datasets; :meth:`FakeDataset.from_model`
    materializes the matching byte-level dataset for runtime tests.
    """
    if profile not in FAKE_PROFILES:
        raise ConfigurationError(
            f"unknown fake profile {profile!r}; choose from {sorted(FAKE_PROFILES)}"
        )
    num_samples, mean_size_mb = FAKE_PROFILES[profile]
    return DatasetModel(
        name=f"fake-{profile}",
        num_samples=num_samples,
        mean_size_mb=mean_size_mb,
        std_size_mb=0.0,
        seed=seed,
    )


class FakeDataset(Dataset):
    """In-memory dataset with deterministic, verifiable payloads.

    Each sample's bytes are generated on demand from ``(seed,
    sample_id)`` — an 16-byte header encoding the id and seed followed
    by a per-sample fill byte — so tests can verify content end-to-end
    with :meth:`expected_payload` without holding the dataset in memory.
    The dataset also counts reads (:meth:`read_count`,
    :attr:`total_reads`), which is how the parity harness and the comm
    tests assert *how often the PFS was touched*, not just what came
    back.
    """

    _HEADER_BYTES = 16

    def __init__(
        self,
        sizes_bytes: list[int] | np.ndarray,
        num_classes: int = 10,
        seed: int = DEFAULT_SEED,
        latency_s: float = 0.0,
        clock=None,
    ) -> None:
        sizes = [int(s) for s in sizes_bytes]
        if not sizes:
            raise ConfigurationError("dataset must not be empty")
        if any(s <= 0 for s in sizes):
            raise ConfigurationError("sample sizes must be positive")
        self._sizes = sizes
        self._num_classes = max(1, min(int(num_classes), len(sizes)))
        self._seed = int(seed)
        self._latency = float(latency_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._reads: dict[int, int] = {}
        self._fail_ids: set[int] = set()

    @classmethod
    def from_model(
        cls,
        model: DatasetModel,
        num_classes: int = 10,
        latency_s: float = 0.0,
        clock=None,
    ) -> "FakeDataset":
        """Byte-level twin of a simulator-side :class:`DatasetModel`.

        Sample ``i`` gets exactly ``round(sizes_mb[i] * 2**20)`` bytes,
        so both worlds observe identical sizes (exactly identical for
        the dyadic ``fake:*`` profiles).
        """
        sizes = np.rint(model.sizes_mb() * BYTES_PER_MB).astype(np.int64)
        return cls(
            sizes,
            num_classes=num_classes,
            seed=model.seed,
            latency_s=latency_s,
            clock=clock,
        )

    # -- Dataset interface ---------------------------------------------

    def __len__(self) -> int:
        return len(self._sizes)

    def read(self, sample_id: int) -> bytes:
        self._check_id(sample_id)
        with self._lock:
            if sample_id in self._fail_ids:
                raise RuntimeIOError(f"injected read failure for sample {sample_id}")
            self._reads[sample_id] = self._reads.get(sample_id, 0) + 1
        if self._latency > 0:
            if self._clock is not None:
                self._clock.sleep(self._latency)
            else:  # pragma: no cover - fakes default to a zero-cost clock
                import time

                time.sleep(self._latency)
        return self.expected_payload(sample_id)

    def size(self, sample_id: int) -> int:
        self._check_id(sample_id)
        return self._sizes[sample_id]

    def label(self, sample_id: int) -> int:
        self._check_id(sample_id)
        return sample_id % self._num_classes

    @property
    def num_classes(self) -> int:
        return self._num_classes

    # -- test instrumentation ------------------------------------------

    def expected_payload(self, sample_id: int) -> bytes:
        """The exact bytes :meth:`read` returns for ``sample_id``."""
        self._check_id(sample_id)
        size = self._sizes[sample_id]
        header = sample_id.to_bytes(8, "little") + (
            self._seed & 0xFFFFFFFFFFFFFFFF
        ).to_bytes(8, "little")
        fill = (sample_id * 131 + self._seed) % 256
        payload = header + bytes([fill]) * max(0, size - self._HEADER_BYTES)
        return payload[:size]

    def read_count(self, sample_id: int) -> int:
        """How many times ``sample_id`` has been read."""
        with self._lock:
            return self._reads.get(sample_id, 0)

    @property
    def total_reads(self) -> int:
        """Total reads across all samples (PFS traffic, in fetches)."""
        with self._lock:
            return sum(self._reads.values())

    def reset_reads(self) -> None:
        """Zero the read counters (e.g. between measured epochs)."""
        with self._lock:
            self._reads.clear()

    def fail_reads(self, sample_ids) -> None:
        """Inject read failures: subsequent reads of these ids raise."""
        with self._lock:
            self._fail_ids.update(int(i) for i in sample_ids)

    def heal(self) -> None:
        """Clear all injected failures."""
        with self._lock:
            self._fail_ids.clear()


class FakeTier:
    """Protocol-first :class:`~repro.ports.ports.StorageTier`.

    Unlike :class:`~repro.runtime.backends.MemoryBackend` it does *not*
    inherit from ``StorageBackend`` — it implements the port directly,
    which is how the contract suite proves the protocol (not the ABC)
    is the real interface. Adds fault injection for corruption and
    failure-path tests.
    """

    def __init__(self, capacity_bytes: int, name: str = "fake") -> None:
        if capacity_bytes < 0:
            raise ConfigurationError("capacity_bytes must be non-negative")
        self._name = name
        self._capacity = int(capacity_bytes)
        self._lock = threading.RLock()
        self._store: dict[int, bytes] = {}
        self._fail_reads: set[int] = set()

    @property
    def name(self) -> str:
        return self._name

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._store.values())

    def put(self, sample_id: int, data: bytes) -> bool:
        with self._lock:
            if sample_id in self._store:
                return True
            if self.used_bytes + len(data) > self._capacity:
                return False
            self._store[sample_id] = bytes(data)
            return True

    def get(self, sample_id: int) -> bytes | None:
        with self._lock:
            if sample_id in self._fail_reads:
                raise RuntimeIOError(f"injected tier read failure for {sample_id}")
            return self._store.get(sample_id)

    def delete(self, sample_id: int) -> bool:
        with self._lock:
            return self._store.pop(sample_id, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def sample_ids(self) -> list[int]:
        with self._lock:
            return list(self._store)

    def __contains__(self, sample_id: int) -> bool:
        with self._lock:
            return sample_id in self._store

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    # -- fault injection -----------------------------------------------

    def corrupt(self, sample_id: int) -> None:
        """Flip every stored byte of ``sample_id`` (silent corruption)."""
        with self._lock:
            data = self._store.get(sample_id)
            if data is None:
                raise ConfigurationError(f"sample {sample_id} not cached")
            self._store[sample_id] = bytes(b ^ 0xFF for b in data)

    def fail_reads(self, sample_ids) -> None:
        """Inject read failures: subsequent gets of these ids raise."""
        with self._lock:
            self._fail_reads.update(int(i) for i in sample_ids)

    def heal(self) -> None:
        """Clear all injected failures."""
        with self._lock:
            self._fail_reads.clear()


class FakeClock:
    """A virtual :class:`~repro.ports.ports.ClusterClock`.

    ``sleep`` advances virtual time instantly; ``monotonic`` reads it.
    Thread-safe, and records every sleep so tests can assert on the
    delay model a component applied instead of measuring wall time.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self._now += max(0.0, float(seconds))
            self.sleeps.append(float(seconds))

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        with self._lock:
            self._now += float(seconds)

    @property
    def total_slept(self) -> float:
        """Sum of all requested sleeps."""
        with self._lock:
            return float(sum(self.sleeps))


@dataclass(frozen=True)
class FetchEvent:
    """One staged fetch as reported to a metrics sink."""

    rank: int
    epoch: int
    source: str
    sample_id: int
    nbytes: int


class RecordingMetricsSink:
    """A :class:`~repro.ports.ports.MetricsSink` that keeps every event.

    The parity harness reads its per-epoch, per-source aggregates; unit
    tests assert on individual events.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: list[FetchEvent] = []

    def record_fetch(
        self, rank: int, epoch: int, source: str, sample_id: int, nbytes: int
    ) -> None:
        with self._lock:
            self.events.append(FetchEvent(rank, epoch, source, sample_id, nbytes))

    def counts(self, epoch: int | None = None) -> dict[str, int]:
        """Fetch counts by source, optionally restricted to one epoch."""
        out: dict[str, int] = {}
        with self._lock:
            for ev in self.events:
                if epoch is not None and ev.epoch != epoch:
                    continue
                out[ev.source] = out.get(ev.source, 0) + 1
        return out

    def bytes_by_source(self, epoch: int | None = None) -> dict[str, int]:
        """Fetched bytes by source, optionally restricted to one epoch."""
        out: dict[str, int] = {}
        with self._lock:
            for ev in self.events:
                if epoch is not None and ev.epoch != epoch:
                    continue
                out[ev.source] = out.get(ev.source, 0) + ev.nbytes
        return out

    def clear(self) -> None:
        """Drop all recorded events."""
        with self._lock:
            self.events.clear()
