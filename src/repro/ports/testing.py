"""Reusable contract suites for the domain ports.

Each class here is an abstract pytest suite: subclass it, implement the
``make_*`` factory, and every implementation of the port inherits the
full behavioural contract. The suites live in ``src`` (not ``tests``)
deliberately — an out-of-tree backend (a key-value store tier, an
object-store cache) imports the suite and proves itself against the
same contract the built-ins pass::

    from repro.ports.testing import StorageTierContract

    class TestRedisTier(StorageTierContract):
        def make_tier(self, capacity_bytes):
            return RedisTier(capacity_bytes, url=...)

The in-tree subclasses are in ``tests/contracts/``.
"""

from __future__ import annotations

import threading

import pytest

from ..errors import ReproError
from .ports import DatasetSource, StorageTier

__all__ = [
    "CacheBackendContract",
    "DatasetSourceContract",
    "StorageTierContract",
]


class StorageTierContract:
    """Behavioural contract for :class:`~repro.ports.ports.StorageTier`.

    Covers the semantics the prefetchers and the remote-serving path
    depend on: strict capacity enforcement, idempotent re-puts,
    miss-as-None, caller-driven eviction, and thread safety.
    """

    #: Payload used by the capacity tests; override for tiers with
    #: per-entry overhead.
    SAMPLE_BYTES = 1024

    def make_tier(self, capacity_bytes: int) -> StorageTier:
        """Build a fresh, empty tier with the given byte budget."""
        raise NotImplementedError

    def _data(self, sample_id: int, size: int | None = None) -> bytes:
        size = self.SAMPLE_BYTES if size is None else size
        return bytes([sample_id % 256]) * size

    def test_satisfies_protocol(self):
        tier = self.make_tier(self.SAMPLE_BYTES)
        assert isinstance(tier, StorageTier)

    def test_starts_empty(self):
        tier = self.make_tier(4 * self.SAMPLE_BYTES)
        assert len(tier) == 0
        assert tier.used_bytes == 0
        assert tier.capacity_bytes == 4 * self.SAMPLE_BYTES

    def test_put_get_roundtrip(self):
        tier = self.make_tier(4 * self.SAMPLE_BYTES)
        data = self._data(7)
        assert tier.put(7, data) is True
        assert tier.get(7) == data
        assert 7 in tier
        assert len(tier) == 1
        assert tier.used_bytes == len(data)

    def test_get_miss_returns_none(self):
        tier = self.make_tier(4 * self.SAMPLE_BYTES)
        assert tier.get(99) is None
        assert 99 not in tier

    def test_capacity_rejection_leaves_tier_unchanged(self):
        tier = self.make_tier(2 * self.SAMPLE_BYTES)
        assert tier.put(0, self._data(0)) is True
        assert tier.put(1, self._data(1)) is True
        used = tier.used_bytes
        assert tier.put(2, self._data(2)) is False
        assert 2 not in tier
        assert tier.get(2) is None
        assert tier.used_bytes == used
        assert len(tier) == 2

    def test_oversized_sample_rejected_even_when_empty(self):
        tier = self.make_tier(self.SAMPLE_BYTES)
        assert tier.put(0, self._data(0, 2 * self.SAMPLE_BYTES)) is False
        assert len(tier) == 0

    def test_zero_capacity_rejects_everything(self):
        tier = self.make_tier(0)
        assert tier.put(0, self._data(0)) is False
        assert tier.get(0) is None

    def test_reput_is_idempotent(self):
        tier = self.make_tier(4 * self.SAMPLE_BYTES)
        data = self._data(3)
        assert tier.put(3, data) is True
        assert tier.put(3, self._data(3, 2 * self.SAMPLE_BYTES)) is True
        # The original bytes stay; re-puts never re-account capacity.
        assert tier.get(3) == data
        assert tier.used_bytes == len(data)
        assert len(tier) == 1

    def test_delete_frees_capacity_for_later_puts(self):
        tier = self.make_tier(2 * self.SAMPLE_BYTES)
        tier.put(0, self._data(0))
        tier.put(1, self._data(1))
        assert tier.put(2, self._data(2)) is False
        assert tier.delete(0) is True
        assert tier.delete(0) is False
        assert tier.put(2, self._data(2)) is True
        assert tier.get(2) == self._data(2)
        assert tier.get(0) is None

    def test_caller_driven_eviction_order(self):
        # Tiers never evict on their own (Bélády is the planner's job):
        # the *caller* chooses victims, and exactly the freed bytes
        # become available again, in any order the caller picks.
        tier = self.make_tier(3 * self.SAMPLE_BYTES)
        for i in range(3):
            assert tier.put(i, self._data(i)) is True
        assert tier.put(3, self._data(3)) is False
        assert sorted(tier.sample_ids()) == [0, 1, 2]
        tier.delete(1)  # evict the middle one, not FIFO/LRU
        assert tier.put(3, self._data(3)) is True
        assert sorted(tier.sample_ids()) == [0, 2, 3]

    def test_clear(self):
        tier = self.make_tier(4 * self.SAMPLE_BYTES)
        for i in range(4):
            tier.put(i, self._data(i))
        tier.clear()
        assert len(tier) == 0
        assert tier.used_bytes == 0
        assert tier.get(0) is None
        assert tier.put(0, self._data(0)) is True

    def test_concurrent_put_get_delete_is_safe(self):
        samples = 16
        threads_per_role = 4
        tier = self.make_tier(samples * self.SAMPLE_BYTES)
        stop = threading.Event()
        errors: list[Exception] = []

        def writer(offset: int) -> None:
            try:
                for round_ in range(25):
                    for i in range(offset, samples, threads_per_role):
                        tier.put(i, self._data(i))
                        if round_ % 3 == 0:
                            tier.delete(i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader() -> None:
            try:
                while not stop.is_set():
                    for i in range(samples):
                        data = tier.get(i)
                        # A hit must always be the full, correct payload.
                        if data is not None and data != self._data(i):
                            raise AssertionError(f"torn read for sample {i}")
                    assert 0 <= tier.used_bytes <= tier.capacity_bytes
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        writers = [
            threading.Thread(target=writer, args=(k,)) for k in range(threads_per_role)
        ]
        readers = [threading.Thread(target=reader) for _ in range(threads_per_role)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join(timeout=30.0)
        stop.set()
        for t in readers:
            t.join(timeout=30.0)
        assert not errors, errors
        assert tier.used_bytes <= tier.capacity_bytes


class DatasetSourceContract:
    """Behavioural contract for :class:`~repro.ports.ports.DatasetSource`.

    Covers what the loaders and prefetchers rely on: stable sizes,
    deterministic repeat reads, valid labels, and loud failures for
    out-of-range ids.
    """

    def make_dataset(self) -> DatasetSource:
        """Build a dataset with at least two samples."""
        raise NotImplementedError

    def test_satisfies_protocol(self):
        assert isinstance(self.make_dataset(), DatasetSource)

    def test_len_is_positive(self):
        assert len(self.make_dataset()) >= 2

    def test_read_matches_declared_size(self):
        ds = self.make_dataset()
        for i in range(len(ds)):
            data = ds.read(i)
            assert isinstance(data, bytes)
            assert len(data) == ds.size(i)

    def test_repeat_reads_are_identical(self):
        ds = self.make_dataset()
        for i in range(min(len(ds), 4)):
            assert ds.read(i) == ds.read(i)

    def test_labels_are_nonnegative_ints(self):
        ds = self.make_dataset()
        for i in range(len(ds)):
            label = ds.label(i)
            assert isinstance(label, int)
            assert label >= 0

    def test_out_of_range_ids_raise(self):
        ds = self.make_dataset()
        for bad in (-1, len(ds), len(ds) + 7):
            with pytest.raises(ReproError):
                ds.read(bad)
            with pytest.raises(ReproError):
                ds.size(bad)
            with pytest.raises(ReproError):
                ds.label(bad)

    def test_concurrent_reads_are_safe(self):
        ds = self.make_dataset()
        expected = [ds.read(i) for i in range(len(ds))]
        errors: list[Exception] = []

        def reader() -> None:
            try:
                for _ in range(10):
                    for i in range(len(ds)):
                        assert ds.read(i) == expected[i]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors, errors


class CacheBackendContract:
    """Behavioural contract for :class:`~repro.sweep.backends.CacheBackend`.

    Covers the semantics :class:`~repro.sweep.cache.ResultCache` and the
    GC/verify/merge tooling depend on: atomic overwrites, the mtime LRU
    clock, quarantine-as-miss, and the opaque index document.
    """

    def make_backend(self):
        """Build a fresh, prepared, empty backend."""
        raise NotImplementedError

    @staticmethod
    def key(i: int) -> str:
        """A well-formed (hex, shardable) cache key."""
        return f"{i:040x}"

    def test_satisfies_protocol(self):
        from ..sweep.backends import CacheBackend

        assert isinstance(self.make_backend(), CacheBackend)

    def test_read_missing_key_is_none(self):
        backend = self.make_backend()
        assert backend.read(self.key(1)) is None
        assert backend.stat(self.key(1)) is None

    def test_write_read_roundtrip(self):
        backend = self.make_backend()
        backend.write(self.key(1), '{"v": 1}')
        assert backend.read(self.key(1)) == '{"v": 1}'
        assert list(backend.keys()) == [self.key(1)]

    def test_overwrite_replaces_text(self):
        backend = self.make_backend()
        backend.write(self.key(1), "old")
        backend.write(self.key(1), "new")
        assert backend.read(self.key(1)) == "new"
        assert len(list(backend.keys())) == 1

    def test_delete(self):
        backend = self.make_backend()
        backend.write(self.key(1), "x")
        assert backend.delete(self.key(1)) is True
        assert backend.delete(self.key(1)) is False
        assert backend.read(self.key(1)) is None

    def test_stat_reports_size_and_pinned_mtime(self):
        backend = self.make_backend()
        pinned = 1_700_000_000_000_000_000
        backend.write(self.key(1), "abcd", mtime_ns=pinned)
        st = backend.stat(self.key(1))
        assert st is not None
        assert st.key == self.key(1)
        assert st.size_bytes == 4
        assert st.mtime_ns == pinned

    def test_touch_advances_lru_clock(self):
        backend = self.make_backend()
        old = 1_000_000_000_000_000_000  # far in the past
        backend.write(self.key(1), "x", mtime_ns=old)
        backend.touch(self.key(1))
        st = backend.stat(self.key(1))
        assert st is not None
        assert st.mtime_ns > old

    def test_quarantine_reads_as_miss(self):
        backend = self.make_backend()
        backend.write(self.key(1), "damaged")
        assert backend.quarantine(self.key(1)) is True
        assert backend.read(self.key(1)) is None
        assert self.key(1) not in list(backend.keys())
        assert backend.quarantined() == 1
        assert isinstance(backend.quarantine_label(), str)

    def test_quarantine_missing_key_is_false(self):
        backend = self.make_backend()
        assert backend.quarantine(self.key(9)) is False
        assert backend.quarantined() == 0

    def test_index_roundtrip(self):
        backend = self.make_backend()
        assert backend.read_index() is None
        backend.write_index('{"hits": {}}')
        assert backend.read_index() == '{"hits": {}}'

    def test_index_is_not_an_entry(self):
        backend = self.make_backend()
        backend.write_index("{}")
        assert list(backend.keys()) == []

    def test_same_store_identity(self):
        backend = self.make_backend()
        assert backend.same_store(backend) is True

    def test_concurrent_writers_never_tear(self):
        backend = self.make_backend()
        errors: list[Exception] = []
        text_a, text_b = "A" * 4096, "B" * 4096

        def writer(text: str) -> None:
            try:
                for _ in range(50):
                    backend.write(self.key(1), text)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader() -> None:
            try:
                for _ in range(200):
                    text = backend.read(self.key(1))
                    if text is not None and text not in (text_a, text_b):
                        raise AssertionError("torn read")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(text_a,)),
            threading.Thread(target=writer, args=(text_b,)),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors, errors
        assert backend.read(self.key(1)) in (text_a, text_b)
