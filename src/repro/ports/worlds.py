"""Two executable worlds behind one scenario: analytic sim vs runtime.

The parity harness needs the *same* registered policy to run against
two very different machines:

* :class:`SimWorld` — the analytic epoch-matrix engine
  (:class:`~repro.sim.engine.Simulator`), exactly as ``Simulator.run``
  would execute it.
* :class:`RuntimeWorld` — the threaded middleware's real primitives
  (:class:`~repro.runtime.backends.MemoryBackend` tiers,
  :class:`~repro.runtime.metadata.MetadataStore`, the
  :class:`~repro.runtime.comm.WorkerGroup` remote-serving path and
  :func:`~repro.runtime.planner.best_holders` routing), driven in
  deterministic lockstep over the simulator's own per-epoch access
  streams.

Both produce a :class:`WorldReport` of per-epoch
:class:`~repro.sim.result.EpochResult` values. The trick that makes the
comparison exact rather than statistical: the runtime world *records*
which tier actually served every sample (an observed ``(N, L)`` class
matrix) and then prices those observations through the very same engine
method (:meth:`~repro.sim.engine.Simulator.execute_epoch`) the analytic
world uses — identical kernels, identical accumulation order. Whenever
the runtime serves a sample the way the policy's plan modelled it, the
two worlds agree bit for bit.

Where they legitimately diverge: during *cold* epochs (before
``warm_epochs``) the simulator applies the paper's warm-up
remote-availability model (:func:`repro.sim.kernels.warmup_remote_classes`)
while the lockstep runtime's tiers are simply empty until the warm
boundary, so the runtime leans harder on the PFS. :mod:`repro.ports.parity`
compares those epochs under declared tolerances instead of exactly.

**Local dominance.** The runtime prefers local tiers over remote
holders over the PFS *categorically*; the simulator picks whichever
source is *fastest*. On systems like ``sec6_cluster`` these disagree
(remote RAM over a 24 GB/s fabric beats a local 4 GB/s SSD), which is a
modelling feature, not a bug — but it means parity needs a system where
preference order and speed order coincide. :func:`parity_system` builds
one and validates the invariant: PFS share <= network <= every tier's
per-thread read bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..errors import ConfigurationError, RuntimeIOError
from ..perfmodel import (
    PFSModel,
    StagingBufferModel,
    StorageClassModel,
    SystemModel,
    ThroughputCurve,
)
from ..runtime import MemoryBackend, MetadataStore, WorkerGroup, best_holders
from ..sim import EpochTile, SimulationConfig, Simulator
from ..sim.policies.base import Policy, PreparedPolicy
from ..sim.result import EpochResult
from .fakes import BYTES_PER_MB, FakeClock, FakeDataset

__all__ = ["RuntimeWorld", "SimWorld", "WorldReport", "parity_system"]


# -- the shared report shape -----------------------------------------------


@dataclass(frozen=True)
class WorldReport:
    """One policy's run through one world, in comparable units.

    ``epochs`` are ordinary :class:`~repro.sim.result.EpochResult`
    values — the runtime world prices its observed fetches through the
    engine's kernels, so the fields mean exactly the same thing in both
    worlds. ``cold_epochs`` lists the epochs where the worlds are
    allowed to diverge (see the module docstring).
    """

    world: str
    policy: str
    prestage_time_s: float
    epochs: tuple[EpochResult, ...]
    cold_epochs: tuple[int, ...] = ()

    @property
    def total_time_s(self) -> float:
        """Prestage cost plus every epoch's wall time."""
        return self.prestage_time_s + sum(e.time_s for e in self.epochs)

    @property
    def total_stall_s(self) -> float:
        """Mean worker stall summed over epochs."""
        return sum(e.stall_mean_s for e in self.epochs)

    def fetch_counts(self, epoch: int) -> tuple[int, ...]:
        """The epoch's ``(pfs, remote, local, none)`` fetch counts."""
        return self.epochs[epoch].fetch_counts

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view (used by the parity report)."""
        return {
            "world": self.world,
            "policy": self.policy,
            "prestage_time_s": self.prestage_time_s,
            "total_time_s": self.total_time_s,
            "cold_epochs": list(self.cold_epochs),
            "epochs": [e.to_dict() for e in self.epochs],
        }


def _cold_epochs(prep: PreparedPolicy, num_epochs: int) -> tuple[int, ...]:
    """Epochs where the sim's warm-up model and empty tiers diverge."""
    if prep.plan is None:
        return ()
    return tuple(range(min(prep.warm_epochs, num_epochs)))


# -- the analytic world ----------------------------------------------------


class SimWorld:
    """The analytic engine as a world: ``run(policy) -> WorldReport``.

    Epoch results are exactly ``Simulator.run``'s (same plan cache, same
    kernels); this wrapper only rephrases them as a :class:`WorldReport`
    and classifies the cold epochs.
    """

    def __init__(self, config: SimulationConfig, sim: Simulator | None = None) -> None:
        self.config = config
        self.sim = sim if sim is not None else Simulator(config)

    def run(self, policy: Policy) -> WorldReport:
        """Simulate ``policy``; may raise :class:`~repro.errors.PolicyError`."""
        sim = self.sim
        prep = policy.prepare(sim.ctx)
        epochs = tuple(
            sim.execute_epoch(policy, prep, sim.plan_epoch(prep, epoch))
            for epoch in range(self.config.num_epochs)
        )
        return WorldReport(
            world="sim",
            policy=policy.name,
            prestage_time_s=prep.prestage_time_s,
            epochs=epochs,
            cold_epochs=_cold_epochs(prep, self.config.num_epochs),
        )


# -- the runtime world -----------------------------------------------------


@dataclass(frozen=True)
class _RecordedPlan:
    """An :class:`~repro.sim.engine.EpochPlan` stand-in carrying observations.

    Instead of deriving class matrices from the policy's placement, its
    single tile holds the tiers the runtime *actually served from* —
    which is what :meth:`Simulator.execute_epoch` then prices.
    """

    epoch: int
    warm: bool
    ids: np.ndarray
    gamma: float
    pfs_share_mbps: float
    pfs_latency_s: float
    observed: EpochTile = field(repr=False)

    def tiles(self, tile_rows: int | None) -> Iterator[EpochTile]:
        yield self.observed


class RuntimeWorld:
    """The threaded middleware's primitives, driven in lockstep.

    One "rank" per simulated worker, each owning real
    :class:`~repro.runtime.backends.MemoryBackend` tiers and a
    :class:`~repro.runtime.metadata.MetadataStore`; remote fetches go
    through a real :class:`~repro.runtime.comm.WorkerGroup` serving
    path (the same ``serve_fn`` wiring a :class:`~repro.runtime.job.Job`
    registers). Determinism comes from three choices:

    * samples are consumed epoch-at-a-time in the simulator's own
      stream order (``Simulator.plan_epoch(prep, epoch).ids`` — the
      seam that honours policy stream rewrites),
    * tiers are filled *synchronously* at the warm boundary from the
      prepared policy's placement, instead of racing prefetcher
      threads against consumption,
    * the remote-availability heuristic is bypassed — holders are asked
      directly, which in-process is exact.

    Every served payload is verified against the dataset's expected
    bytes when the dataset supports it (:class:`FakeDataset` does), so
    a torn or corrupted cache entry fails the run instead of silently
    skewing the comparison.

    Parameters
    ----------
    config:
        The scenario, shared verbatim with the sim world.
    dataset:
        Byte-level dataset; defaults to
        ``FakeDataset.from_model(config.dataset)``. Its per-sample byte
        sizes must equal ``sizes_mb * 2**20`` exactly (dyadic ``fake:*``
        profiles guarantee this), or the two worlds would disagree on
        placement arithmetic before a single sample moved.
    sim:
        Share the sim world's :class:`Simulator` so both worlds consume
        the same cached streams and plan scalars.
    sink:
        Optional :class:`~repro.ports.ports.MetricsSink` receiving one
        event per served sample.
    """

    def __init__(
        self,
        config: SimulationConfig,
        dataset: FakeDataset | None = None,
        sim: Simulator | None = None,
        sink=None,
    ) -> None:
        self.config = config
        self.sim = sim if sim is not None else Simulator(config)
        self.dataset = (
            dataset if dataset is not None else FakeDataset.from_model(config.dataset)
        )
        self.sink = sink
        if len(self.dataset) != config.dataset.num_samples:
            raise ConfigurationError(
                f"dataset has {len(self.dataset)} samples, "
                f"scenario expects {config.dataset.num_samples}"
            )
        sizes_bytes = np.array(
            [self.dataset.size(i) for i in range(len(self.dataset))], dtype=np.float64
        )
        if not np.array_equal(sizes_bytes, self.sim.ctx.sizes_mb * BYTES_PER_MB):
            raise ConfigurationError(
                "dataset byte sizes must equal the model's sizes_mb * 2**20 "
                "exactly; use a dyadic fake profile (fake:tiny/small/medium)"
            )
        self._verify = hasattr(self.dataset, "expected_payload")
        #: The last run's worker group (tests inspect serving stats).
        self.group: WorkerGroup | None = None

    # -- plumbing ----------------------------------------------------------

    def _build_ranks(
        self,
    ) -> tuple[WorkerGroup, list[list[MemoryBackend]], list[MetadataStore]]:
        system = self.config.system
        n = self.sim.ctx.num_workers
        group = WorkerGroup(n, clock=FakeClock())
        tiers: list[list[MemoryBackend]] = []
        metas: list[MetadataStore] = []
        for rank in range(n):
            rank_tiers = [
                MemoryBackend(
                    int(round(cls.capacity_mb * BYTES_PER_MB)), name=cls.name
                )
                for cls in system.storage_classes
            ]
            meta = MetadataStore()
            tiers.append(rank_tiers)
            metas.append(meta)

            def serve(sample_id: int, t=rank_tiers, m=meta) -> bytes | None:
                tier = m.tier_of(sample_id)
                if tier is None:
                    return None
                return t[tier].get(sample_id)

            group.register(rank, serve, lambda m=meta: m.progress)
        return group, tiers, metas

    def _fill_from_plan(
        self,
        prep: PreparedPolicy,
        tiers: list[list[MemoryBackend]],
        metas: list[MetadataStore],
    ) -> None:
        """Load every rank's placement into its tiers (the warm boundary).

        Reads go through the dataset — in the real system the tier
        prefetchers pull from the PFS — and a placement that does not
        fit its tier is a planner bug worth failing loudly on.
        """
        assert prep.plan is not None
        for rank, placement in enumerate(prep.plan.placements):
            for tier_idx, ids in enumerate(placement.class_ids):
                backend = tiers[rank][tier_idx]
                for sid in np.asarray(ids, dtype=np.int64):
                    sid = int(sid)
                    if not backend.put(sid, self.dataset.read(sid)):
                        raise ConfigurationError(
                            f"placement overflows tier {backend.name!r} on "
                            f"rank {rank} at sample {sid}"
                        )
                    metas[rank].record(sid, tier_idx)

    def _check_payload(self, sample_id: int, data: bytes, where: str) -> None:
        if self._verify and data != self.dataset.expected_payload(sample_id):
            raise RuntimeIOError(
                f"corrupt payload for sample {sample_id} served from {where}"
            )

    def _emit(self, rank: int, epoch: int, source: str, sid: int, data: bytes) -> None:
        if self.sink is not None:
            self.sink.record_fetch(rank, epoch, source, sid, len(data))

    # -- the run -----------------------------------------------------------

    def run(self, policy: Policy) -> WorldReport:
        """Drive ``policy`` through the runtime primitives and price it.

        Raises :class:`~repro.errors.PolicyError` exactly when the sim
        world does: the pricing pass walks the same fetch resolution, so
        a sample the policy leaves sourceless (``Source.NONE``) fails
        both worlds identically.
        """
        sim = self.sim
        ctx = sim.ctx
        prep = policy.prepare(ctx)
        n = ctx.num_workers
        num_epochs = self.config.num_epochs

        group, tiers, metas = self._build_ranks()
        self.group = group
        if prep.plan is not None:
            holder_of, _ = best_holders(prep.plan.placements, ctx.config.dataset.num_samples)
        else:
            holder_of = None

        epochs: list[EpochResult] = []
        for epoch in range(num_epochs):
            plan = sim.plan_epoch(prep, epoch)
            if prep.plan is not None and epoch == prep.warm_epochs:
                self._fill_from_plan(prep, tiers, metas)
            observed = self._serve_epoch(prep, plan.ids, epoch, group, tiers, metas, holder_of)
            recorded = _RecordedPlan(
                epoch=plan.epoch,
                warm=plan.warm,
                ids=plan.ids,
                gamma=plan.gamma,
                pfs_share_mbps=plan.pfs_share_mbps,
                pfs_latency_s=plan.pfs_latency_s,
                observed=observed,
            )
            epochs.append(sim.execute_epoch(policy, prep, recorded))

        return WorldReport(
            world="runtime",
            policy=policy.name,
            prestage_time_s=prep.prestage_time_s,
            epochs=tuple(epochs),
            cold_epochs=_cold_epochs(prep, num_epochs),
        )

    def _serve_epoch(
        self,
        prep: PreparedPolicy,
        ids: np.ndarray,
        epoch: int,
        group: WorkerGroup,
        tiers: list[list[MemoryBackend]],
        metas: list[MetadataStore],
        holder_of: np.ndarray | None,
    ) -> EpochTile:
        """Serve one epoch's stream; return the observed class matrices.

        For every ``(worker, position)`` the resolution mirrors
        :meth:`repro.runtime.job.Job._fetch_for_staging` with the
        heuristic off: local catalog first, then the planned holder via
        the group's serving path, then the dataset (the PFS).
        """
        n, length = ids.shape
        local_cls: np.ndarray | None = None
        remote_cls: np.ndarray | None = None
        if not prep.ideal:
            local_cls = np.full((n, length), -1, dtype=np.int8)
            remote_cls = np.full((n, length), -1, dtype=np.int8)
            for worker in range(n):
                row = ids[worker]
                for pos in range(length):
                    sid = int(row[pos])
                    tier = metas[worker].tier_of(sid)
                    if tier is not None:
                        data = tiers[worker][tier].get(sid)
                        if data is not None:
                            self._check_payload(sid, data, f"local tier {tier}")
                            local_cls[worker, pos] = tier
                            self._emit(worker, epoch, "local", sid, data)
                            continue
                    holder = -1 if holder_of is None else int(holder_of[sid])
                    if holder >= 0 and holder != worker:
                        data = group.request_sample(holder, sid)
                        if data is not None:
                            served_tier = metas[holder].tier_of(sid)
                            self._check_payload(sid, data, f"rank {holder}")
                            remote_cls[worker, pos] = served_tier
                            self._emit(worker, epoch, "remote", sid, data)
                            continue
                    data = self.dataset.read(sid)
                    self._check_payload(sid, data, "dataset")
                    self._emit(worker, epoch, "pfs", sid, data)

        return EpochTile(
            rows=slice(0, n),
            ids=ids,
            sizes_mb=self.sim.ctx.sizes_mb[ids],
            local_classes=local_cls,
            remote_classes=remote_cls,
        )


# -- the parity system -----------------------------------------------------


def parity_system(
    num_workers: int = 4,
    ram_mb: float = 1.0,
    ssd_mb: float = 4.0,
    staging_mb: float = 1.0,
) -> SystemModel:
    """A system where runtime preference order equals sim speed order.

    Dyadic capacities and power-of-two bandwidths keep every byte/MB
    conversion exact; the bandwidth ladder enforces *local dominance* —
    ``PFS share <= network <= slowest tier`` — so the simulator's
    fastest-source selection always lands on the source the runtime's
    local-first/remote-second/PFS-last resolution picks (ties break the
    same way: LOCAL > REMOTE > PFS in both).
    """
    system = SystemModel(
        name=f"parity-{num_workers}w",
        num_workers=num_workers,
        compute_mbps=32.0,
        preprocess_mbps=512.0,
        network_mbps=1024.0,
        pfs=PFSModel(
            name="parity-pfs",
            throughput=ThroughputCurve.from_mapping({1: 128.0, 8: 512.0}),
            latency_s=0.0,
        ),
        staging=StagingBufferModel(
            capacity_mb=staging_mb,
            read=ThroughputCurve.from_mapping({2: 4096.0}),
            threads=2,
        ),
        storage_classes=(
            StorageClassModel(
                name="ram",
                capacity_mb=ram_mb,
                read=ThroughputCurve.from_mapping({1: 2048.0}),
                prefetch_threads=1,
            ),
            StorageClassModel(
                name="ssd",
                capacity_mb=ssd_mb,
                read=ThroughputCurve.from_mapping({1: 1024.0}),
                prefetch_threads=1,
            ),
        ),
    )
    check_local_dominance(system)
    return system


def check_local_dominance(system: SystemModel) -> None:
    """Validate the invariant :func:`parity_system` relies on.

    Raises :class:`~repro.errors.ConfigurationError` when a remote fetch
    could beat a local tier or the PFS could beat a remote fetch —
    either would make the runtime's categorical preference diverge from
    the simulator's fastest-source selection on *modelled* epochs, and
    the parity harness would report false mismatches.
    """
    rates = system.hierarchy.read_per_thread()
    if rates.size and system.network_mbps > float(rates.min()):
        raise ConfigurationError(
            f"network ({system.network_mbps} MB/s) outruns the slowest tier "
            f"({float(rates.min())} MB/s); remote fetches could beat local"
        )
    pfs_peak = float(system.pfs.per_worker_mbps(1.0))
    if pfs_peak > system.network_mbps:
        raise ConfigurationError(
            f"PFS peak share ({pfs_peak} MB/s) outruns the network "
            f"({system.network_mbps} MB/s); the PFS could beat remote fetches"
        )
