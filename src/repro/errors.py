"""Exception hierarchy for the NoPFS reproduction.

All library-specific failures derive from :class:`ReproError` so callers
can catch one type. Subclasses mirror the major subsystems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "PolicyError",
    "RuntimeIOError",
    "CommunicationError",
]


class ReproError(Exception):
    """Base class of every library-raised error."""


class ConfigurationError(ReproError, ValueError):
    """A model/system/simulation configuration is invalid or inconsistent."""


class CapacityError(ReproError):
    """A storage backend or staging buffer was asked to exceed its capacity."""


class PolicyError(ReproError):
    """An I/O policy cannot be applied to the given scenario.

    The canonical case is the paper's LBANN data store, which "will fail
    if the dataset exceeds the aggregate worker memory" (Sec 6).
    """


class RuntimeIOError(ReproError, IOError):
    """A functional-runtime storage backend failed to read or write a sample."""


class CommunicationError(ReproError):
    """The in-process communicator hit a protocol error (bad rank, closed group)."""
