"""Deterministic random-number-generation utilities.

Clairvoyance (the paper's central idea) rests on *exact reproducibility*
of the pseudorandom access stream: "Given the seed used to shuffle the
indices, we can exactly replicate the result of the shuffles, no matter
the shuffle algorithm" (Sec 2). Everything stochastic in this library —
epoch shuffles, synthetic sample sizes, PFS noise, Monte-Carlo draws —
therefore flows through this module, which derives independent
:class:`numpy.random.Generator` streams from a single integer seed using
``SeedSequence`` spawn keys.

Two different callers asking for the same ``(seed, *key)`` always receive
generators producing identical output; different keys give statistically
independent streams.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["derive_seed_sequence", "generator", "spawn_generators", "DEFAULT_SEED"]

#: Seed used by components when the caller does not supply one.
DEFAULT_SEED = 0xC1A1B0


def _normalize_key(key: Iterable[object]) -> tuple[int, ...]:
    """Map a mixed key (ints / strings) to a tuple of uint32-safe ints."""
    out: list[int] = []
    for part in key:
        if isinstance(part, (int, np.integer)):
            out.append(int(part) & 0xFFFFFFFF)
        elif isinstance(part, str):
            # Stable, platform-independent string hash (FNV-1a, 32-bit).
            h = 0x811C9DC5
            for ch in part.encode("utf-8"):
                h = ((h ^ ch) * 0x01000193) & 0xFFFFFFFF
            out.append(h)
        else:
            raise TypeError(f"rng key parts must be int or str, got {type(part)!r}")
    return tuple(out)


def derive_seed_sequence(seed: int, *key: object) -> np.random.SeedSequence:
    """Return the ``SeedSequence`` for stream ``key`` under root ``seed``."""
    return np.random.SeedSequence(entropy=int(seed), spawn_key=_normalize_key(key))


def generator(seed: int, *key: object) -> np.random.Generator:
    """Return a PCG64 :class:`~numpy.random.Generator` for stream ``key``.

    Example: ``generator(seed, "shuffle", epoch)`` is the canonical epoch
    shuffle stream used by :mod:`repro.core.shuffle`.
    """
    return np.random.Generator(np.random.PCG64(derive_seed_sequence(seed, *key)))


def spawn_generators(seed: int, n: int, *key: object) -> list[np.random.Generator]:
    """Return ``n`` independent generators under ``(seed, *key, i)``."""
    return [generator(seed, *key, i) for i in range(n)]
