"""Deterministic random-number-generation utilities.

Clairvoyance (the paper's central idea) rests on *exact reproducibility*
of the pseudorandom access stream: "Given the seed used to shuffle the
indices, we can exactly replicate the result of the shuffles, no matter
the shuffle algorithm" (Sec 2). Everything stochastic in this library —
epoch shuffles, synthetic sample sizes, PFS noise, Monte-Carlo draws —
therefore flows through this module, which derives independent
:class:`numpy.random.Generator` streams from a single integer seed using
``SeedSequence`` spawn keys.

Two different callers asking for the same ``(seed, *key)`` always receive
generators producing identical output; different keys give statistically
independent streams.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = [
    "GeneratorStateCache",
    "derive_seed_sequence",
    "generator",
    "spawn_generators",
    "DEFAULT_SEED",
]

#: Seed used by components when the caller does not supply one.
DEFAULT_SEED = 0xC1A1B0


def _normalize_key(key: Iterable[object]) -> tuple[int, ...]:
    """Map a mixed key (ints / strings) to a tuple of uint32-safe ints."""
    out: list[int] = []
    for part in key:
        if isinstance(part, (int, np.integer)):
            out.append(int(part) & 0xFFFFFFFF)
        elif isinstance(part, str):
            # Stable, platform-independent string hash (FNV-1a, 32-bit).
            h = 0x811C9DC5
            for ch in part.encode("utf-8"):
                h = ((h ^ ch) * 0x01000193) & 0xFFFFFFFF
            out.append(h)
        else:
            raise TypeError(f"rng key parts must be int or str, got {type(part)!r}")
    return tuple(out)


def derive_seed_sequence(seed: int, *key: object) -> np.random.SeedSequence:
    """Return the ``SeedSequence`` for stream ``key`` under root ``seed``."""
    return np.random.SeedSequence(entropy=int(seed), spawn_key=_normalize_key(key))


def generator(seed: int, *key: object) -> np.random.Generator:
    """Return a PCG64 :class:`~numpy.random.Generator` for stream ``key``.

    Example: ``generator(seed, "shuffle", epoch)`` is the canonical epoch
    shuffle stream used by :mod:`repro.core.shuffle`.
    """
    return np.random.Generator(np.random.PCG64(derive_seed_sequence(seed, *key)))


def spawn_generators(seed: int, n: int, *key: object) -> list[np.random.Generator]:
    """Return ``n`` independent generators under ``(seed, *key, i)``."""
    return [generator(seed, *key, i) for i in range(n)]


class GeneratorStateCache:
    """Derive each keyed stream's PCG64 state once; clone it thereafter.

    :func:`generator` pays the full ``SeedSequence`` expansion (key
    normalization, entropy mixing, state initialization) on every call
    — ~18us, which profiling shows is ~20% of a noisy N=64 simulator
    cell, because the engine asks for the same ``(seed, "noise",
    epoch, worker)`` streams again for every policy of a comparison
    and every repeat run. This cache derives a key's *initial* PCG64
    state once and afterwards rewinds a retained
    :class:`~numpy.random.Generator` to that state by plain state
    assignment (~1.4us; default-constructing a fresh ``PCG64`` would
    re-pay OS entropy gathering and cost nearly as much as deriving).

    The returned stream is therefore bitwise identical to a fresh
    ``generator(seed, *key)`` — same bit generator, same initial state
    — pinned by ``tests/test_rng.py``.

    Aliasing contract: repeated requests for one key return the *same*
    generator object, rewound. Callers must finish consuming a key's
    stream before requesting that key again (the engine does: noise
    generators are drained inside the tile that requested them).

    ``derived`` / ``cloned`` count the two paths, proving how much
    sharing actually happened; :meth:`evict` drops a key prefix (e.g.
    one epoch's worker streams) so rolling callers stay bounded.
    """

    def __init__(self) -> None:
        #: (entropy, normalized key) -> (retained generator, initial state).
        self._entries: dict[
            tuple[int, tuple[int, ...]], tuple[np.random.Generator, dict]
        ] = {}
        self.derived = 0
        self.cloned = 0

    def __len__(self) -> int:
        return len(self._entries)

    def generator(self, seed: int, *key: object) -> np.random.Generator:
        """The stream for ``(seed, *key)`` — derived once, rewound after."""
        cache_key = (int(seed), _normalize_key(key))
        entry = self._entries.get(cache_key)
        if entry is None:
            self.derived += 1
            gen = generator(seed, *key)
            # ``.state`` returns a fresh dict, so the snapshot is
            # immune to the generator advancing.
            self._entries[cache_key] = (gen, gen.bit_generator.state)
            return gen
        self.cloned += 1
        gen, state = entry
        gen.bit_generator.state = state
        return gen

    def evict(self, seed: int, *key_prefix: object) -> int:
        """Drop every cached stream under ``(seed, *key_prefix)``.

        Returns the number of entries removed. Used by rolling callers
        (one-epoch noise windows at paper scale) to keep the cache at
        O(one epoch's workers) instead of O(all epochs).
        """
        entropy = int(seed)
        prefix = _normalize_key(key_prefix)
        width = len(prefix)
        stale = [
            k
            for k in self._entries
            if k[0] == entropy and k[1][:width] == prefix
        ]
        for k in stale:
            del self._entries[k]
        return len(stale)

    def clear(self) -> None:
        """Drop every cached stream (counters are preserved)."""
        self._entries.clear()
