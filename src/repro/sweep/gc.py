"""Cache lifecycle: index, stats, GC, verification, shard merging.

The :class:`~repro.sweep.cache.ResultCache` is append-only during
sweeps; this module is everything that happens to the store *between*
sweeps. Every function here speaks the
:class:`~repro.sweep.backends.CacheBackend` protocol — pass a live
backend, a ``dir:``/``mem:`` spec string, or a plain directory path
(the historical spelling) interchangeably:

* :class:`CacheIndex` — a best-effort index document (``index.json``
  at a dir cache's root) accumulating per-entry hit counts; recency is
  carried by the entries' LRU clocks, which
  :meth:`ResultCache.get` bumps on every hit. Hit counts can
  undercount under concurrent writers (last merge wins); clock-based
  recency — what GC orders by — cannot.
* :func:`scan_entries` / :func:`cache_stats` — enumerate entries with
  size/mtime/hit stats (``python -m repro cache stats``).
* :func:`collect_garbage` — LRU eviction under ``max_bytes`` and/or
  ``max_age_s`` policies (``python -m repro cache gc``).
* :func:`verify_cache` — detect corrupt/truncated/foreign entries and
  quarantine them so the next sweep re-simulates those cells
  (``python -m repro cache verify``).
* :func:`merge_caches` — union shard caches into one store. Entries
  are content-addressed and byte-stable, so merging the caches of a
  sharded sweep reproduces the single-host cache bit for bit.

Nothing here blocks concurrent sweeps: eviction and quarantine use the
backend's atomic operations, and a sweep that loses an entry mid-run
simply re-simulates that cell.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..errors import ConfigurationError
from ..sim import SimulationResult
from .backends import CacheBackend, LocalDirBackend, as_backend
from .cache import ResultCache

__all__ = [
    "CacheEntry",
    "CacheIndex",
    "CacheStatsReport",
    "GCReport",
    "MergeReport",
    "VerifyReport",
    "cache_stats",
    "collect_garbage",
    "merge_caches",
    "scan_entries",
    "verify_cache",
]

#: ``index.json`` format version.
INDEX_SCHEMA_VERSION = 1


def _store_label(backend: CacheBackend) -> Path | str:
    """How a store is reported: its root path when on disk, else its URL."""
    root = getattr(backend, "root", None)
    return root if isinstance(root, Path) else backend.url


@dataclass(frozen=True)
class CacheEntry:
    """One cache entry's storage stats.

    ``mtime`` doubles as the LRU clock: writes set it and cache hits
    bump it, so "oldest mtime" means "least recently used". ``path``
    is the entry's file for dir-backed caches, None otherwise.
    """

    key: str
    path: Path | None
    size_bytes: int
    mtime: float
    hits: int = 0


class CacheIndex:
    """The cache's sidecar hit-count index (``index.json`` document).

    Persists cumulative per-entry hit counters between processes.
    Updates are read-merge-write with an atomic replace: concurrent
    flushes may drop each other's increments (documented best-effort),
    but the document never tears.
    """

    FILENAME = "index.json"

    def __init__(self, store: "str | Path | CacheBackend") -> None:
        self.backend = as_backend(store)
        self.hits: dict[str, int] = {}
        #: Keys explicitly dropped (evicted/quarantined entries); the
        #: save-time merge must not resurrect their stored counters.
        self._dropped: set[str] = set()
        self._load()

    def _load(self) -> None:
        try:
            text = self.backend.read_index()
            data = json.loads(text) if text is not None else {}
            hits = data.get("hits", {})
            self.hits = {
                str(k): int(v) for k, v in hits.items() if isinstance(v, (int, float))
            }
        except (OSError, json.JSONDecodeError, AttributeError, TypeError, ValueError):
            self.hits = {}

    def record_hits(self, counts: dict[str, int]) -> None:
        """Fold a batch of per-key hit counts into the index (in memory)."""
        for key, count in counts.items():
            if count > 0:
                self.hits[key] = self.hits.get(key, 0) + int(count)
                self._dropped.discard(key)

    def drop(self, keys: Sequence[str]) -> None:
        """Forget counters for evicted/quarantined entries."""
        for key in keys:
            self.hits.pop(key, None)
            self._dropped.add(key)

    def save(self) -> None:
        """Atomically persist the index (merging with the stored state).

        Re-reads the stored index first so two processes flushing
        disjoint keys both land; overlapping keys keep the larger count
        (a flush can only ever add hits).
        """
        stored = CacheIndex(self.backend)
        for key, count in stored.hits.items():
            if key not in self._dropped and self.hits.get(key, 0) < count:
                self.hits[key] = count
        self.backend.write_index(
            json.dumps({"schema": INDEX_SCHEMA_VERSION, "hits": self.hits})
        )


def scan_entries(store: "str | Path | CacheBackend") -> list[CacheEntry]:
    """Enumerate the cache's entries with size/mtime/hit stats.

    Sorted by ``(mtime, key)`` — LRU order, eviction candidates first.
    Entries that vanish mid-scan (concurrent GC) are skipped.
    """
    backend = as_backend(store)
    index = CacheIndex(backend)
    entries: list[CacheEntry] = []
    for key in backend.keys():
        stat = backend.stat(key)
        if stat is None:
            continue
        entries.append(
            CacheEntry(
                key=key,
                path=backend.path_for(key) if isinstance(backend, LocalDirBackend) else None,
                size_bytes=stat.size_bytes,
                mtime=stat.mtime,
                hits=index.hits.get(key, 0),
            )
        )
    entries.sort(key=lambda e: (e.mtime, e.key))
    return entries


@dataclass(frozen=True)
class CacheStatsReport:
    """Aggregate cache statistics (``python -m repro cache stats``)."""

    root: Path | str
    entries: int
    total_bytes: int
    total_hits: int
    oldest_mtime: float | None
    newest_mtime: float | None
    quarantined: int

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"cache: {self.root}",
            f"entries: {self.entries} ({self.total_bytes} bytes)",
            f"recorded hits: {self.total_hits}",
            f"quarantined: {self.quarantined}",
        ]
        if self.oldest_mtime is not None and self.newest_mtime is not None:
            age = max(0.0, time.time() - self.oldest_mtime)
            lines.append(f"LRU age: {age:.0f}s (oldest entry)")
        return "\n".join(lines)


def cache_stats(store: "str | Path | CacheBackend") -> CacheStatsReport:
    """Aggregate entry count/bytes/hits/age for one cache store."""
    backend = as_backend(store)
    entries = scan_entries(backend)
    return CacheStatsReport(
        root=_store_label(backend),
        entries=len(entries),
        total_bytes=sum(e.size_bytes for e in entries),
        total_hits=sum(e.hits for e in entries),
        oldest_mtime=entries[0].mtime if entries else None,
        newest_mtime=entries[-1].mtime if entries else None,
        quarantined=backend.quarantined(),
    )


@dataclass(frozen=True)
class GCReport:
    """What one :func:`collect_garbage` pass did (or would do)."""

    scanned: int
    evicted: tuple[str, ...]
    evicted_bytes: int
    kept: int
    kept_bytes: int
    dry_run: bool

    def render(self) -> str:
        """One-line human-readable summary."""
        verb = "would evict" if self.dry_run else "evicted"
        return (
            f"gc: {verb} {len(self.evicted)} / {self.scanned} entries "
            f"({self.evicted_bytes} bytes); kept {self.kept} "
            f"({self.kept_bytes} bytes)"
        )


def collect_garbage(
    store: "str | Path | CacheBackend",
    max_bytes: int | None = None,
    max_age_s: float | None = None,
    dry_run: bool = False,
    now: float | None = None,
) -> GCReport:
    """Evict cache entries until the policies hold, LRU first.

    Parameters
    ----------
    store:
        Cache backend, spec string, or directory (the ``cache_dir``
        sweeps were run with).
    max_bytes:
        Keep total entry bytes at or below this (evicting least
        recently used first).
    max_age_s:
        Evict entries not touched (written or hit) within this many
        seconds, regardless of size.
    dry_run:
        Report what would be evicted without deleting anything.
    now:
        Clock override for tests; defaults to ``time.time()``.
    """
    if max_bytes is None and max_age_s is None:
        raise ConfigurationError("gc needs a policy: max_bytes and/or max_age_s")
    if max_bytes is not None and max_bytes < 0:
        raise ConfigurationError("max_bytes must be >= 0")
    if max_age_s is not None and max_age_s < 0:
        raise ConfigurationError("max_age_s must be >= 0")
    backend = as_backend(store)
    entries = scan_entries(backend)  # LRU order: oldest mtime first
    now = time.time() if now is None else now

    victims: list[CacheEntry] = []
    victim_keys: set[str] = set()
    if max_age_s is not None:
        cutoff = now - max_age_s
        for entry in entries:
            if entry.mtime < cutoff:
                victims.append(entry)
                victim_keys.add(entry.key)
    if max_bytes is not None:
        live_bytes = sum(e.size_bytes for e in entries if e.key not in victim_keys)
        for entry in entries:  # oldest first
            if live_bytes <= max_bytes:
                break
            if entry.key in victim_keys:
                continue
            victims.append(entry)
            victim_keys.add(entry.key)
            live_bytes -= entry.size_bytes

    # Only entries actually removed count as evicted — a delete that
    # fails (permissions drift on a shared cache) must neither inflate
    # the report nor erase the survivor's hit history.
    if dry_run:
        removed = victims
    else:
        removed = [entry for entry in victims if backend.delete(entry.key)]
        if removed:
            index = CacheIndex(backend)
            index.drop([e.key for e in removed])
            index.save()
    removed_keys = {e.key for e in removed}
    kept = [e for e in entries if e.key not in removed_keys]
    return GCReport(
        scanned=len(entries),
        evicted=tuple(e.key for e in removed),
        evicted_bytes=sum(e.size_bytes for e in removed),
        kept=len(kept),
        kept_bytes=sum(e.size_bytes for e in kept),
        dry_run=dry_run,
    )


@dataclass(frozen=True)
class VerifyReport:
    """Result of one :func:`verify_cache` pass."""

    checked: int
    ok: int
    corrupt: tuple[tuple[str, str], ...]  # (filename, reason) pairs
    quarantined: bool
    quarantine_dir: Path | str

    def render(self) -> str:
        """Human-readable summary, one line per corrupt entry."""
        lines = [
            f"verify: {self.ok} ok / {self.checked} checked; "
            f"{len(self.corrupt)} corrupt"
            + (f" -> {self.quarantine_dir}" if self.corrupt and self.quarantined else "")
        ]
        for name, reason in self.corrupt:
            lines.append(f"  {name}: {reason}")
        return "\n".join(lines)


def _entry_problem(key: str, raw: str | None) -> str | None:
    """Why an entry text is not servable under ``key`` (None when it is)."""
    if raw is None:
        return "unreadable: entry vanished mid-scan"
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        return f"invalid JSON: {exc}"
    if not isinstance(data, dict):
        return f"not an entry object (top-level {type(data).__name__})"
    if data.get("key", key) != key:
        return f"key field {data.get('key')!r} does not match entry key"
    result = data.get("result")
    error = data.get("error")
    if result is None and error is None:
        return "carries neither a result nor an error"
    if result is not None:
        try:
            SimulationResult.from_dict(result)
        except Exception as exc:  # noqa: BLE001 - any failure means unservable
            return f"result does not deserialize: {type(exc).__name__}: {exc}"
    return None


def verify_cache(
    store: "str | Path | CacheBackend", quarantine: bool = True
) -> VerifyReport:
    """Check every entry deserializes; quarantine the ones that don't.

    Corrupt entries (truncated writes, foreign files, schema drift that
    slipped past the key) are set aside by the backend — the next sweep
    sees a miss and re-simulates the cell — unless ``quarantine=False``,
    which only reports.
    """
    backend = as_backend(store)
    checked = ok = 0
    corrupt: list[tuple[str, str]] = []
    for key in list(backend.keys()):
        checked += 1
        problem = _entry_problem(key, backend.read(key))
        if problem is None:
            ok += 1
            continue
        corrupt.append((f"{key}.json", problem))
        if quarantine:
            backend.quarantine(key)
    if corrupt and quarantine:
        index = CacheIndex(backend)
        index.drop([Path(name).stem for name, _ in corrupt])
        index.save()
    label = backend.quarantine_label()
    return VerifyReport(
        checked=checked,
        ok=ok,
        corrupt=tuple(corrupt),
        quarantined=quarantine,
        quarantine_dir=Path(label) if isinstance(backend, LocalDirBackend) else label,
    )


@dataclass(frozen=True)
class MergeReport:
    """What one :func:`merge_caches` call copied."""

    sources: tuple[Path | str, ...]
    dest: Path | str
    copied: int
    skipped: int
    copied_bytes: int

    def render(self) -> str:
        """One-line human-readable summary."""
        return (
            f"merge: {self.copied} entries ({self.copied_bytes} bytes) "
            f"from {len(self.sources)} cache(s) into {self.dest}; "
            f"{self.skipped} already present"
        )


def merge_caches(
    sources: Sequence["str | Path | CacheBackend"], dest: "str | Path | CacheBackend"
) -> MergeReport:
    """Union shard caches into ``dest`` (content-addressed, idempotent).

    Entries already present in ``dest`` are skipped — identical keys
    hold identical bytes, so first-writer-wins loses nothing. Entry
    texts and LRU clocks are preserved, keeping a merged dir cache
    bitwise-identical to a single-host sweep's and its eviction order
    honest. A source's hit counters are folded in only for the entries
    copied from it in this call, so re-running a merge (a retried CI
    step) never double-counts; quarantined entries are *not*
    propagated. Sources and destination may be any mix of backends —
    merging shard directories into a shared remote store is the same
    call as merging directories into a directory.
    """
    if not sources:
        raise ConfigurationError("nothing to merge: no source caches given")
    dest_backend = ResultCache(dest).backend  # prepares dest, sweeps stale temp files
    copied = skipped = copied_bytes = 0
    merged_index = CacheIndex(dest_backend)
    source_backends: list[CacheBackend] = []
    for source in sources:
        backend = as_backend(source)
        if isinstance(backend, LocalDirBackend) and not backend.root.is_dir():
            raise ConfigurationError(f"source cache {backend.root} is not a directory")
        source_backends.append(backend)
        if backend.same_store(dest_backend):
            continue
        copied_keys: set[str] = set()
        for key in backend.keys():
            if dest_backend.stat(key) is not None:
                skipped += 1
                continue
            text = backend.read(key)
            if text is None:  # vanished mid-merge (concurrent GC)
                continue
            stat = backend.stat(key)
            dest_backend.write(key, text, mtime_ns=None if stat is None else stat.mtime_ns)
            copied += 1
            copied_bytes += len(text.encode("utf-8"))
            copied_keys.add(key)
        source_hits = CacheIndex(backend).hits
        merged_index.record_hits(
            {key: count for key, count in source_hits.items() if key in copied_keys}
        )
    merged_index.save()
    return MergeReport(
        sources=tuple(_store_label(b) for b in source_backends),
        dest=_store_label(dest_backend),
        copied=copied,
        skipped=skipped,
        copied_bytes=copied_bytes,
    )
