"""Cache lifecycle: index, stats, GC, verification, shard merging.

The :class:`~repro.sweep.cache.ResultCache` is append-only during
sweeps; this module is everything that happens to the directory
*between* sweeps:

* :class:`CacheIndex` — a best-effort on-disk index (``index.json`` at
  the cache root) accumulating per-entry hit counts; recency is carried
  by the entry files' mtimes, which :meth:`ResultCache.get` bumps on
  every hit. Hit counts can undercount under concurrent writers (last
  merge wins); mtime-based recency — what GC orders by — cannot.
* :func:`scan_entries` / :func:`cache_stats` — enumerate entries with
  size/mtime/hit stats (``python -m repro.sweep stats``).
* :func:`collect_garbage` — LRU eviction under ``max_bytes`` and/or
  ``max_age_s`` policies (``python -m repro.sweep gc``).
* :func:`verify_cache` — detect corrupt/truncated/foreign entries and
  quarantine them under ``_quarantine/`` so the next sweep re-simulates
  those cells (``python -m repro.sweep verify``).
* :func:`merge_caches` — union shard caches into one directory. Entries
  are content-addressed and byte-stable, so merging the caches of a
  sharded sweep reproduces the single-host cache bit for bit.

Nothing here blocks concurrent sweeps: eviction and quarantine use
atomic renames/removals, and a sweep that loses an entry mid-run simply
re-simulates that cell.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..errors import ConfigurationError
from ..sim import SimulationResult
from .cache import QUARANTINE_DIR, ResultCache, atomic_write_json, iter_entry_paths

__all__ = [
    "CacheEntry",
    "CacheIndex",
    "CacheStatsReport",
    "GCReport",
    "MergeReport",
    "VerifyReport",
    "cache_stats",
    "collect_garbage",
    "merge_caches",
    "scan_entries",
    "verify_cache",
]

#: ``index.json`` format version.
INDEX_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CacheEntry:
    """One cache entry's on-disk stats.

    ``mtime`` doubles as the LRU clock: writes set it and cache hits
    bump it, so "oldest mtime" means "least recently used".
    """

    key: str
    path: Path
    size_bytes: int
    mtime: float
    hits: int = 0


class CacheIndex:
    """The cache's sidecar hit-count index (``<root>/index.json``).

    Persists cumulative per-entry hit counters between processes.
    Updates are read-merge-write with an atomic replace: concurrent
    flushes may drop each other's increments (documented best-effort),
    but the file never tears.
    """

    FILENAME = "index.json"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.path = self.root / self.FILENAME
        self.hits: dict[str, int] = {}
        #: Keys explicitly dropped (evicted/quarantined entries); the
        #: save-time merge must not resurrect their on-disk counters.
        self._dropped: set[str] = set()
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
            hits = data.get("hits", {})
            self.hits = {
                str(k): int(v) for k, v in hits.items() if isinstance(v, (int, float))
            }
        except (OSError, json.JSONDecodeError, AttributeError, TypeError, ValueError):
            self.hits = {}

    def record_hits(self, counts: dict[str, int]) -> None:
        """Fold a batch of per-key hit counts into the index (in memory)."""
        for key, count in counts.items():
            if count > 0:
                self.hits[key] = self.hits.get(key, 0) + int(count)
                self._dropped.discard(key)

    def drop(self, keys: Sequence[str]) -> None:
        """Forget counters for evicted/quarantined entries."""
        for key in keys:
            self.hits.pop(key, None)
            self._dropped.add(key)

    def save(self) -> None:
        """Atomically persist the index (merging with the file's state).

        Re-reads the on-disk index first so two processes flushing
        disjoint keys both land; overlapping keys keep the larger count
        (a flush can only ever add hits).
        """
        on_disk = CacheIndex.__new__(CacheIndex)
        on_disk.root, on_disk.path, on_disk.hits = self.root, self.path, {}
        on_disk._dropped = set()
        on_disk._load()
        for key, count in on_disk.hits.items():
            if key not in self._dropped and self.hits.get(key, 0) < count:
                self.hits[key] = count
        atomic_write_json(self.path, {"schema": INDEX_SCHEMA_VERSION, "hits": self.hits})


def scan_entries(root: str | Path) -> list[CacheEntry]:
    """Enumerate the cache's entries with size/mtime/hit stats.

    Sorted by ``(mtime, key)`` — LRU order, eviction candidates first.
    Entries that vanish mid-scan (concurrent GC) are skipped.
    """
    root = Path(root)
    index = CacheIndex(root)
    entries: list[CacheEntry] = []
    for path in iter_entry_paths(root):
        key = path.stem
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append(
            CacheEntry(
                key=key,
                path=path,
                size_bytes=stat.st_size,
                mtime=stat.st_mtime,
                hits=index.hits.get(key, 0),
            )
        )
    entries.sort(key=lambda e: (e.mtime, e.key))
    return entries


@dataclass(frozen=True)
class CacheStatsReport:
    """Aggregate cache statistics (``python -m repro.sweep stats``)."""

    root: Path
    entries: int
    total_bytes: int
    total_hits: int
    oldest_mtime: float | None
    newest_mtime: float | None
    quarantined: int

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"cache: {self.root}",
            f"entries: {self.entries} ({self.total_bytes} bytes)",
            f"recorded hits: {self.total_hits}",
            f"quarantined: {self.quarantined}",
        ]
        if self.oldest_mtime is not None and self.newest_mtime is not None:
            age = max(0.0, time.time() - self.oldest_mtime)
            lines.append(f"LRU age: {age:.0f}s (oldest entry)")
        return "\n".join(lines)


def cache_stats(root: str | Path) -> CacheStatsReport:
    """Aggregate entry count/bytes/hits/age for one cache directory."""
    root = Path(root)
    entries = scan_entries(root)
    quarantined = sum(1 for _ in (root / QUARANTINE_DIR).glob("*.json"))
    return CacheStatsReport(
        root=root,
        entries=len(entries),
        total_bytes=sum(e.size_bytes for e in entries),
        total_hits=sum(e.hits for e in entries),
        oldest_mtime=entries[0].mtime if entries else None,
        newest_mtime=entries[-1].mtime if entries else None,
        quarantined=quarantined,
    )


@dataclass(frozen=True)
class GCReport:
    """What one :func:`collect_garbage` pass did (or would do)."""

    scanned: int
    evicted: tuple[str, ...]
    evicted_bytes: int
    kept: int
    kept_bytes: int
    dry_run: bool

    def render(self) -> str:
        """One-line human-readable summary."""
        verb = "would evict" if self.dry_run else "evicted"
        return (
            f"gc: {verb} {len(self.evicted)} / {self.scanned} entries "
            f"({self.evicted_bytes} bytes); kept {self.kept} "
            f"({self.kept_bytes} bytes)"
        )


def collect_garbage(
    root: str | Path,
    max_bytes: int | None = None,
    max_age_s: float | None = None,
    dry_run: bool = False,
    now: float | None = None,
) -> GCReport:
    """Evict cache entries until the policies hold, LRU first.

    Parameters
    ----------
    root:
        Cache directory (the ``cache_dir`` sweeps were run with).
    max_bytes:
        Keep total entry bytes at or below this (evicting least
        recently used first).
    max_age_s:
        Evict entries not touched (written or hit) within this many
        seconds, regardless of size.
    dry_run:
        Report what would be evicted without deleting anything.
    now:
        Clock override for tests; defaults to ``time.time()``.
    """
    if max_bytes is None and max_age_s is None:
        raise ConfigurationError("gc needs a policy: max_bytes and/or max_age_s")
    if max_bytes is not None and max_bytes < 0:
        raise ConfigurationError("max_bytes must be >= 0")
    if max_age_s is not None and max_age_s < 0:
        raise ConfigurationError("max_age_s must be >= 0")
    entries = scan_entries(root)  # LRU order: oldest mtime first
    now = time.time() if now is None else now

    victims: list[CacheEntry] = []
    victim_keys: set[str] = set()
    if max_age_s is not None:
        cutoff = now - max_age_s
        for entry in entries:
            if entry.mtime < cutoff:
                victims.append(entry)
                victim_keys.add(entry.key)
    if max_bytes is not None:
        live_bytes = sum(e.size_bytes for e in entries if e.key not in victim_keys)
        for entry in entries:  # oldest first
            if live_bytes <= max_bytes:
                break
            if entry.key in victim_keys:
                continue
            victims.append(entry)
            victim_keys.add(entry.key)
            live_bytes -= entry.size_bytes

    # Only entries actually removed count as evicted — an unlink that
    # fails (permissions drift on a shared cache) must neither inflate
    # the report nor erase the survivor's hit history.
    if dry_run:
        removed = victims
    else:
        removed = []
        for entry in victims:
            try:
                entry.path.unlink()
            except OSError:
                continue
            removed.append(entry)
        if removed:
            index = CacheIndex(root)
            index.drop([e.key for e in removed])
            index.save()
    removed_keys = {e.key for e in removed}
    kept = [e for e in entries if e.key not in removed_keys]
    return GCReport(
        scanned=len(entries),
        evicted=tuple(e.key for e in removed),
        evicted_bytes=sum(e.size_bytes for e in removed),
        kept=len(kept),
        kept_bytes=sum(e.size_bytes for e in kept),
        dry_run=dry_run,
    )


@dataclass(frozen=True)
class VerifyReport:
    """Result of one :func:`verify_cache` pass."""

    checked: int
    ok: int
    corrupt: tuple[tuple[str, str], ...]  # (filename, reason) pairs
    quarantined: bool
    quarantine_dir: Path

    def render(self) -> str:
        """Human-readable summary, one line per corrupt entry."""
        lines = [
            f"verify: {self.ok} ok / {self.checked} checked; "
            f"{len(self.corrupt)} corrupt"
            + (f" -> {self.quarantine_dir}" if self.corrupt and self.quarantined else "")
        ]
        for name, reason in self.corrupt:
            lines.append(f"  {name}: {reason}")
        return "\n".join(lines)


def _entry_problem(path: Path) -> str | None:
    """Why ``path`` is not a servable cache entry (None when it is)."""
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        return f"unreadable: {exc}"
    except json.JSONDecodeError as exc:
        return f"invalid JSON: {exc}"
    if not isinstance(data, dict):
        return f"not an entry object (top-level {type(data).__name__})"
    if data.get("key", path.stem) != path.stem:
        return f"key field {data.get('key')!r} does not match filename"
    result = data.get("result")
    error = data.get("error")
    if result is None and error is None:
        return "carries neither a result nor an error"
    if result is not None:
        try:
            SimulationResult.from_dict(result)
        except Exception as exc:  # noqa: BLE001 - any failure means unservable
            return f"result does not deserialize: {type(exc).__name__}: {exc}"
    return None


def verify_cache(root: str | Path, quarantine: bool = True) -> VerifyReport:
    """Check every entry deserializes; quarantine the ones that don't.

    Corrupt entries (truncated writes, foreign files, schema drift that
    slipped past the key) are moved to ``<root>/_quarantine/`` — the
    next sweep sees a miss and re-simulates the cell — unless
    ``quarantine=False``, which only reports.
    """
    root = Path(root)
    qdir = root / QUARANTINE_DIR
    checked = ok = 0
    corrupt: list[tuple[str, str]] = []
    for path in iter_entry_paths(root):
        checked += 1
        problem = _entry_problem(path)
        if problem is None:
            ok += 1
            continue
        corrupt.append((path.name, problem))
        if quarantine:
            qdir.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(path, qdir / path.name)
            except OSError:
                pass
    if corrupt and quarantine:
        index = CacheIndex(root)
        index.drop([Path(name).stem for name, _ in corrupt])
        index.save()
    return VerifyReport(
        checked=checked,
        ok=ok,
        corrupt=tuple(corrupt),
        quarantined=quarantine,
        quarantine_dir=qdir,
    )


@dataclass(frozen=True)
class MergeReport:
    """What one :func:`merge_caches` call copied."""

    sources: tuple[Path, ...]
    dest: Path
    copied: int
    skipped: int
    copied_bytes: int

    def render(self) -> str:
        """One-line human-readable summary."""
        return (
            f"merge: {self.copied} entries ({self.copied_bytes} bytes) "
            f"from {len(self.sources)} cache(s) into {self.dest}; "
            f"{self.skipped} already present"
        )


def merge_caches(sources: Sequence[str | Path], dest: str | Path) -> MergeReport:
    """Union shard caches into ``dest`` (content-addressed, idempotent).

    Entries already present in ``dest`` are skipped — identical keys
    hold identical bytes, so first-writer-wins loses nothing. Entry
    bytes and mtimes are preserved (``copy2``), keeping the merged
    cache bitwise-identical to a single-host sweep's and its LRU clock
    honest. A source's hit counters are folded in only for the entries
    copied from it in this call, so re-running a merge (a retried CI
    step) never double-counts; quarantined files are *not* propagated.
    """
    if not sources:
        raise ConfigurationError("nothing to merge: no source caches given")
    dest_cache = ResultCache(dest)  # creates dest, sweeps stale temp files
    dest_root = dest_cache.root
    copied = skipped = copied_bytes = 0
    merged_index = CacheIndex(dest_root)
    for source in sources:
        source = Path(source)
        if not source.is_dir():
            raise ConfigurationError(f"source cache {source} is not a directory")
        if source.resolve() == dest_root.resolve():
            continue
        copied_keys: set[str] = set()
        for path in iter_entry_paths(source):
            target = dest_root / path.parent.name / path.name
            if target.exists():
                skipped += 1
                continue
            target.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
            os.close(fd)
            try:
                shutil.copy2(path, tmp)
                os.replace(tmp, target)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            copied += 1
            copied_bytes += path.stat().st_size
            copied_keys.add(path.stem)
        source_hits = CacheIndex(source).hits
        merged_index.record_hits(
            {key: count for key, count in source_hits.items() if key in copied_keys}
        )
    merged_index.save()
    return MergeReport(
        sources=tuple(Path(s) for s in sources),
        dest=dest_root,
        copied=copied,
        skipped=skipped,
        copied_bytes=copied_bytes,
    )
