"""``python -m repro.sweep`` — sharded sweeps and cache lifecycle.

Subcommands:

``run``
    Evaluate a grid (or one shard of it) through a
    :class:`~repro.sweep.runner.SweepRunner`:
    ``python -m repro.sweep run --grid repro.sweep.cli:demo_grid
    --shard 0/3 --cache-dir shard0 --manifest shard0.json``.
    ``--grid`` names any importable ``module:attr`` that is a
    :class:`~repro.sweep.grid.ScenarioGrid`, a list of
    :class:`~repro.sweep.grid.SweepCell` s, or a callable returning
    either (``--grid-kwargs`` passes JSON keyword arguments).
    ``--executor serial|process|batched`` picks the execution
    strategy (bitwise-identical results), ``--cache SPEC`` selects a
    cache backend by URL-style spec (``dir:/path``, ``mem:NAME``) and
    ``--progress`` streams per-cell progress lines from the runner's
    event bus to stderr.
``merge``
    Union shard caches (and optionally their manifests) into one
    directory that is bitwise-identical to a single-host sweep's.
``gc``
    Evict LRU entries until ``--max-bytes`` / ``--max-age`` hold.
``stats``
    Entry count, bytes, recorded hits, LRU age, quarantine count.
``verify``
    Detect corrupt entries and quarantine them for re-simulation.

Every subcommand is a thin argparse layer over the library API
(:mod:`repro.sweep.shard`, :mod:`repro.sweep.gc`) — scripts that need
more control call those directly.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from dataclasses import asdict
from pathlib import Path
from typing import Any, Iterable

from ..errors import ConfigurationError
from .events import (
    CellCached,
    CellFinished,
    CellStarted,
    CellUnsupported,
    SweepEvent,
    SweepFinished,
    SweepStarted,
)
from .executors import EXECUTORS
from .gc import cache_stats, collect_garbage, merge_caches, verify_cache
from .grid import ScenarioGrid, SweepCell, as_cells
from .runner import SweepRunner
from .shard import ShardManifest, ShardPlanner, ShardSpec, merge_manifests

__all__ = [
    "ProgressPrinter",
    "configure_gc",
    "configure_merge",
    "configure_run",
    "configure_stats",
    "configure_verify",
    "demo_grid",
    "main",
    "parse_bytes",
    "parse_duration",
]


class ProgressPrinter:
    """Human-readable sweep progress, one line per completed cell.

    A :class:`~repro.sweep.events.ProgressBus` subscriber
    (``--progress``): prints ``[done/total] tag: status`` as cells
    complete — cached, simulated (with the cell's own wall time), or
    unsupported (with the recorded reason) — and the end-of-sweep
    stats summary. Writes to stderr by default so stdout stays
    machine-consumable (rankings, manifests, JSON).
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.total = 0

    def _line(self, text: str) -> None:
        print(text, file=self.stream)

    def __call__(self, event: SweepEvent) -> None:
        """Render one bus event (the subscriber entry point)."""
        if isinstance(event, SweepStarted):
            self.done, self.total = 0, event.total
            return
        if isinstance(event, SweepFinished):
            self._line(f"sweep: {event.stats.render()}")
            return
        if isinstance(event, CellStarted):
            return  # completion lines carry the signal; starts are noise
        if isinstance(event, CellCached):
            status = "cached" if event.supported else "cached (unsupported)"
        elif isinstance(event, CellFinished):
            status = f"done in {event.elapsed_s:.2f}s"
        elif isinstance(event, CellUnsupported):
            status = f"unsupported: {event.error}" if event.error else "unsupported"
        else:
            return
        self.done += 1
        width = len(str(self.total)) or 1
        self._line(f"[{self.done:>{width}}/{self.total}] {event.tag}: {status}")

_SIZE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}
_TIME_SUFFIXES = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def demo_grid(scale: float = 0.2) -> ScenarioGrid:
    """A small, fast grid for smoke tests and copy-paste experiments.

    Six cells (three policies x two batch sizes on scaled-down MNIST);
    sweeps in a few seconds on one core. ``scale`` shrinks or grows the
    dataset regime-true.
    """
    from ..datasets import mnist
    from ..perfmodel import sec6_cluster
    from ..sim import NaivePolicy, NoPFSPolicy, StagingBufferPolicy

    return ScenarioGrid(
        datasets=[mnist(0).scaled(scale)],
        systems=[sec6_cluster(num_workers=2)],
        policies=[NaivePolicy(), StagingBufferPolicy(), NoPFSPolicy()],
        batch_sizes=[16, 32],
        epoch_counts=[2],
    )


def parse_bytes(text: str) -> int:
    """Parse a byte count: plain int or ``512K`` / ``64M`` / ``2G`` / ``1T``."""
    text = text.strip()
    suffix = text[-1:].lower()
    if suffix in _SIZE_SUFFIXES:
        body, mult = text[:-1], _SIZE_SUFFIXES[suffix]
    else:
        body, mult = text, 1
    try:
        value = int(float(body) * mult)
    except ValueError as exc:
        raise ConfigurationError(f"invalid byte count {text!r}") from exc
    if value < 0:
        raise ConfigurationError(f"byte count must be >= 0, got {text!r}")
    return value


def parse_duration(text: str) -> float:
    """Parse a duration: plain seconds or ``30m`` / ``12h`` / ``7d``."""
    text = text.strip()
    suffix = text[-1:].lower()
    if suffix in _TIME_SUFFIXES:
        body, mult = text[:-1], _TIME_SUFFIXES[suffix]
    else:
        body, mult = text, 1.0
    try:
        value = float(body) * mult
    except ValueError as exc:
        raise ConfigurationError(f"invalid duration {text!r}") from exc
    if value < 0:
        raise ConfigurationError(f"duration must be >= 0, got {text!r}")
    return value


def _resolve_grid(spec: str, kwargs_json: str | None) -> ScenarioGrid | list[SweepCell]:
    """Import ``module:attr`` and normalize it to a grid or cell list."""
    if ":" not in spec:
        raise ConfigurationError(
            f"invalid --grid {spec!r}; expected 'module:attr' "
            "(e.g. repro.sweep.cli:demo_grid)"
        )
    module_name, _, attr_path = spec.partition(":")
    try:
        target: Any = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(f"cannot import grid module {module_name!r}: {exc}") from exc
    for part in attr_path.split("."):
        try:
            target = getattr(target, part)
        except AttributeError as exc:
            raise ConfigurationError(f"{module_name!r} has no attribute {attr_path!r}") from exc
    if callable(target):
        kwargs = {}
        if kwargs_json:
            try:
                kwargs = json.loads(kwargs_json)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(f"--grid-kwargs is not valid JSON: {exc}") from exc
            if not isinstance(kwargs, dict):
                raise ConfigurationError("--grid-kwargs must be a JSON object")
        target = target(**kwargs)
    if isinstance(target, ScenarioGrid):
        return target
    if isinstance(target, Iterable):
        return as_cells(target)
    raise ConfigurationError(
        f"--grid {spec!r} resolved to {type(target).__name__}; expected a "
        "ScenarioGrid, a SweepCell iterable, or a callable returning one"
    )


def _load_scenarios(path: str) -> list[SweepCell]:
    """Cells from a JSON file of scenario dicts (``--scenarios``).

    The file holds either a JSON list of
    :class:`~repro.api.scenario.Scenario` dicts or an object with a
    ``"scenarios"`` key. Tags are the scenarios' content fingerprints,
    so the list is shardable and mergeable like any grid.
    """
    from ..api.session import Session  # deferred: api composes on this package

    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read --scenarios {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"--scenarios {path!r} is not valid JSON: {exc}") from exc
    if isinstance(data, dict):
        data = data.get("scenarios")
    if not isinstance(data, list):
        raise ConfigurationError(
            f"--scenarios {path!r} must hold a JSON list of scenario dicts "
            "(or an object with a 'scenarios' list)"
        )
    return Session.as_cells(data)


def _cmd_run(args: argparse.Namespace) -> int:
    if (args.grid is None) == (args.scenarios is None):
        raise ConfigurationError("pass exactly one of --grid or --scenarios")
    if args.scenarios is not None and args.grid_kwargs is not None:
        raise ConfigurationError("--grid-kwargs only applies to --grid, not --scenarios")
    if args.grid is not None:
        grid = _resolve_grid(args.grid, args.grid_kwargs)
        cells = as_cells(grid)
        source = args.grid
    else:
        cells = _load_scenarios(args.scenarios)
        source = f"scenarios:{args.scenarios}"
    shard = ShardSpec.parse(args.shard) if args.shard else None
    if shard is not None:
        plan = ShardPlanner(args.strategy).plan(cells, shard.count)
        shard_cells = plan.shard(shard)
        print(
            f"grid: {len(cells)} cells -> shard {shard} "
            f"({len(shard_cells)} cells, strategy={args.strategy})"
        )
    else:
        shard_cells = cells
        print(f"grid: {len(cells)} cells (unsharded)")
    runner = SweepRunner(
        n_jobs=args.jobs,
        cache_dir=args.cache_dir,
        executor=args.executor,
        cache=args.cache,
        tile_rows=args.tile_rows,
        kernel_backend=args.kernels,
    )
    if args.progress:
        runner.bus.subscribe(ProgressPrinter())
    outcome = runner.run(shard_cells)
    print(outcome.stats.render())
    if args.manifest:
        manifest = ShardManifest.for_cells(
            shard_cells,
            grid=source,
            strategy=args.strategy,
            shard=shard,
            stats=asdict(outcome.stats),
            cache_dir=args.cache_dir if args.cache_dir is not None else args.cache,
        )
        manifest.save(args.manifest)
        print(f"manifest: {args.manifest} ({len(manifest.cells)} cells)")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    report = merge_caches(args.sources, args.into)
    print(report.render())
    if args.manifests:
        merged = merge_manifests([ShardManifest.load(p) for p in args.manifests])
        out = args.manifest_out
        if out:
            merged.save(out)
            print(f"merged manifest: {out} ({len(merged.cells)} cells)")
        else:
            print(f"merged manifests: {len(merged.cells)} distinct cells")
    elif args.manifest_out:
        raise ConfigurationError("--manifest-out needs --manifests to merge")
    return 0


def _cache_store(args: argparse.Namespace) -> str:
    """The cache naming a lifecycle subcommand was given.

    ``--cache-dir PATH`` (the historical flag) and ``--cache SPEC``
    (``dir:/path``, ``mem:NAME``, any registered scheme) are two
    spellings of the same thing; exactly one is required.
    """
    if (args.cache_dir is None) == (args.cache is None):
        raise ConfigurationError("pass exactly one of --cache-dir or --cache")
    return args.cache_dir if args.cache_dir is not None else args.cache


def _cmd_gc(args: argparse.Namespace) -> int:
    report = collect_garbage(
        _cache_store(args),
        max_bytes=None if args.max_bytes is None else parse_bytes(args.max_bytes),
        max_age_s=None if args.max_age is None else parse_duration(args.max_age),
        dry_run=args.dry_run,
    )
    print(report.render())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    print(cache_stats(_cache_store(args)).render())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    report = verify_cache(_cache_store(args), quarantine=not args.no_quarantine)
    print(report.render())
    return 1 if (report.corrupt and args.strict) else 0


def configure_run(sub) -> argparse.ArgumentParser:
    """Attach the ``run`` subcommand (sweep a grid or one shard of it).

    Shared by the legacy ``python -m repro.sweep`` parser and the
    consolidated ``python -m repro sweep`` tree (:mod:`repro.cli`).
    """
    run = sub.add_parser("run", help="sweep a grid (or one shard of it)")
    run.add_argument(
        "--grid", default=None,
        help="grid source as module:attr (ScenarioGrid, cell list, or callable)",
    )
    run.add_argument(
        "--scenarios", default=None, metavar="FILE",
        help="JSON file holding a list of Scenario dicts to sweep instead of --grid",
    )
    run.add_argument("--grid-kwargs", default=None, help="JSON kwargs for a callable grid")
    run.add_argument("--shard", default=None, help="run only shard i/K (e.g. 0/3)")
    run.add_argument(
        "--strategy", choices=("round_robin", "cost"), default="round_robin",
        help="shard partition strategy",
    )
    run.add_argument("--jobs", type=int, default=1, help="sweep worker processes")
    run.add_argument(
        "--executor", choices=EXECUTORS, default=None,
        help="execution strategy (default: serial for --jobs 1, else batched; "
        "results are bitwise-identical across all three)",
    )
    run.add_argument("--cache-dir", default=None, help="on-disk result cache")
    run.add_argument(
        "--cache", default=None, metavar="SPEC",
        help="cache backend spec (dir:/path, mem:, mem:NAME); "
        "alternative to --cache-dir",
    )
    run.add_argument(
        "--tile-rows", type=int, default=None, metavar="N",
        help="engine streaming tile height (worker rows per band) to bound "
        "peak memory on paper-scale scenarios; results are bitwise-identical "
        "for every value (default: whole epochs)",
    )
    run.add_argument(
        "--kernels", default=None, metavar="BACKEND",
        help="kernel backend (see `python -m repro list kernels`; default "
        "numpy; results are bitwise-identical across backends)",
    )
    run.add_argument(
        "--progress", action="store_true",
        help="stream per-cell progress lines + the sweep summary to stderr",
    )
    run.add_argument("--manifest", default=None, help="write a shard manifest here")
    run.set_defaults(func=_cmd_run)
    return run


def configure_merge(sub) -> argparse.ArgumentParser:
    """Attach the ``merge`` subcommand (union shard caches into one)."""
    merge = sub.add_parser("merge", help="union shard caches into one")
    merge.add_argument("sources", nargs="+", help="shard cache directories")
    merge.add_argument("--into", required=True, help="destination cache directory")
    merge.add_argument("--manifests", nargs="*", default=None, help="shard manifests to union")
    merge.add_argument("--manifest-out", default=None, help="write the merged manifest here")
    merge.set_defaults(func=_cmd_merge)
    return merge


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the two cache-naming spellings lifecycle commands accept."""
    parser.add_argument("--cache-dir", default=None, help="cache directory")
    parser.add_argument(
        "--cache", default=None, metavar="SPEC",
        help="cache backend spec (dir:/path, mem:NAME); alternative to --cache-dir",
    )


def configure_gc(sub) -> argparse.ArgumentParser:
    """Attach the ``gc`` subcommand (LRU cache eviction)."""
    gc = sub.add_parser("gc", help="evict LRU cache entries by policy")
    _add_store_flags(gc)
    gc.add_argument("--max-bytes", default=None, help="size bound (e.g. 500M, 2G)")
    gc.add_argument("--max-age", default=None, help="age bound (e.g. 3600, 12h, 7d)")
    gc.add_argument("--dry-run", action="store_true", help="report without deleting")
    gc.set_defaults(func=_cmd_gc)
    return gc


def configure_stats(sub) -> argparse.ArgumentParser:
    """Attach the ``stats`` subcommand (cache size/hit/age summary)."""
    stats = sub.add_parser("stats", help="cache size/hit/age summary")
    _add_store_flags(stats)
    stats.set_defaults(func=_cmd_stats)
    return stats


def configure_verify(sub) -> argparse.ArgumentParser:
    """Attach the ``verify`` subcommand (quarantine corrupt entries)."""
    verify = sub.add_parser("verify", help="quarantine corrupt cache entries")
    _add_store_flags(verify)
    verify.add_argument(
        "--no-quarantine", action="store_true", help="report corruption without moving files"
    )
    verify.add_argument(
        "--strict", action="store_true", help="exit non-zero when corruption is found"
    )
    verify.set_defaults(func=_cmd_verify)
    return verify


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Sharded scenario sweeps and result-cache lifecycle.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    configure_run(sub)
    configure_merge(sub)
    configure_gc(sub)
    configure_stats(sub)
    configure_verify(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
