"""Deterministic sweep sharding: split one grid across many hosts.

A :class:`ShardPlanner` partitions any :class:`~repro.sweep.grid.ScenarioGrid`
(or explicit cell list) into ``K`` disjoint shards such that the union
of the shards is exactly the original grid and the partition is a pure
function of the cells and ``K`` — every host that plans the same grid
computes the same shards, so ``python -m repro.sweep run --shard i/K``
needs no coordination service.

Two strategies:

* ``round_robin`` — cell ``i`` goes to shard ``i % K``. Zero-cost,
  good when cells are homogeneous.
* ``cost`` — longest-processing-time greedy: cells are weighted by a
  :mod:`repro.perfmodel`-derived runtime estimate
  (:func:`estimate_cell_cost`) and each is placed on the currently
  lightest shard, so one shard full of CosmoFlow-sized scenarios does
  not straggle behind five shards of MNIST.

Each shard run writes a :class:`ShardManifest` (grid identity, shard
spec, per-cell tags and content keys, sweep stats);
:func:`merge_manifests` unions the manifests of a completed shard set
back into a single-host-equivalent record. The caches themselves merge
with :func:`repro.sweep.gc.merge_caches` — cache entries are
content-addressed, so the merged cache is bitwise-identical to the one
a single-host sweep would have produced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..errors import ConfigurationError
from .cache import atomic_write_json, cell_key_from_dict, code_fingerprint
from .grid import ScenarioGrid, SweepCell, as_cells

__all__ = [
    "ShardManifest",
    "ShardPlan",
    "ShardPlanner",
    "ShardSpec",
    "estimate_cell_cost",
    "merge_manifests",
]

#: Manifest file format version (bump on incompatible layout changes).
MANIFEST_SCHEMA_VERSION = 1

#: Planner strategies accepted by :class:`ShardPlanner`.
STRATEGIES = ("round_robin", "cost")

#: Manifest stat keys that are additive across shards (the
#: :class:`~repro.sweep.runner.SweepStats` counters); everything else —
#: ``n_jobs``, ``cached`` — is per-host configuration, not a count.
_ADDITIVE_STATS = ("cells", "hits", "misses", "unsupported", "elapsed_s")


@dataclass(frozen=True)
class ShardSpec:
    """One shard's coordinates: ``index`` of ``count`` (0-based).

    Parameters
    ----------
    index:
        Which shard this host runs, in ``[0, count)``.
    count:
        Total number of shards the grid is split into.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError("shard count must be >= 1")
        if not 0 <= self.index < self.count:
            raise ConfigurationError(
                f"shard index {self.index} out of range for count {self.count}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"i/K"`` (e.g. ``--shard 0/3``)."""
        try:
            index_s, count_s = text.split("/", 1)
            return cls(index=int(index_s), count=int(count_s))
        except ValueError as exc:
            raise ConfigurationError(
                f"invalid shard spec {text!r}; expected 'i/K' (e.g. '0/3')"
            ) from exc

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def estimate_cell_cost(cell: SweepCell) -> float:
    """A cheap :mod:`repro.perfmodel`-based runtime estimate for one cell.

    ``E * (bytes per worker per epoch) / compute_mbps`` — the analytic
    compute-bound time, evaluated from the dataset and system models
    alone (no access streams are built, so planning a 10k-cell grid is
    instant). Relative weights are what matters for load balancing;
    absolute accuracy is not.

    Parameters
    ----------
    cell:
        The grid cell to weigh.
    """
    config = cell.config
    per_worker_mb = (
        config.dataset.num_samples
        * config.dataset.mean_size_mb
        / max(config.system.num_workers, 1)
    )
    return config.num_epochs * per_worker_mb / config.system.compute_mbps


@dataclass(frozen=True)
class ShardPlan:
    """A complete, deterministic partition of one grid into shards.

    ``shards[i]`` holds shard ``i``'s cells in their original grid
    order; the concatenation of all shards is a permutation of the
    input cells and every cell appears in exactly one shard.
    """

    shards: tuple[tuple[SweepCell, ...], ...]
    strategy: str

    def __len__(self) -> int:
        return len(self.shards)

    def shard(self, spec: ShardSpec | int) -> list[SweepCell]:
        """The cells of one shard (accepts a :class:`ShardSpec` or index)."""
        index = spec.index if isinstance(spec, ShardSpec) else int(spec)
        if isinstance(spec, ShardSpec) and spec.count != len(self.shards):
            raise ConfigurationError(
                f"shard spec {spec} does not match plan with {len(self.shards)} shards"
            )
        if not 0 <= index < len(self.shards):
            raise ConfigurationError(
                f"shard index {index} out of range for {len(self.shards)}-shard plan"
            )
        return list(self.shards[index])

    def cell_counts(self) -> list[int]:
        """Cells per shard, in shard order."""
        return [len(s) for s in self.shards]


class ShardPlanner:
    """Deterministically partitions grids into disjoint shards.

    Parameters
    ----------
    strategy:
        ``"round_robin"`` (default) or ``"cost"`` (see module docs).
    cost_fn:
        Per-cell weight used by the ``cost`` strategy; defaults to
        :func:`estimate_cell_cost`. Ignored by ``round_robin``.
    """

    def __init__(self, strategy: str = "round_robin", cost_fn=None) -> None:
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown shard strategy {strategy!r}; known: {STRATEGIES}"
            )
        self.strategy = strategy
        self.cost_fn = cost_fn or estimate_cell_cost

    def plan(self, grid: ScenarioGrid | Iterable[SweepCell], count: int) -> ShardPlan:
        """Partition ``grid`` into ``count`` disjoint shards.

        The partition depends only on the expanded cell list, the
        strategy and ``count`` — planning the same grid on two hosts
        yields the same shards.
        """
        if count < 1:
            raise ConfigurationError("shard count must be >= 1")
        cells = as_cells(grid)
        if self.strategy == "round_robin":
            buckets = [cells[i::count] for i in range(count)]
        else:
            buckets = self._plan_by_cost(cells, count)
        return ShardPlan(
            shards=tuple(tuple(b) for b in buckets), strategy=self.strategy
        )

    def _plan_by_cost(self, cells: Sequence[SweepCell], count: int) -> list[list[SweepCell]]:
        # Longest-processing-time greedy: heaviest cell first onto the
        # lightest shard. Costs are evaluated once per cell (cost_fn may
        # be user-supplied and expensive). Ties break on (load, shard
        # index) and the sort on (-cost, original index), both total
        # orders, so the result is reproducible across hosts and Python
        # hash seeds.
        costs = [self.cost_fn(cell) for cell in cells]
        order = sorted(range(len(cells)), key=lambda i: (-costs[i], i))
        loads = [0.0] * count
        assignment: list[list[int]] = [[] for _ in range(count)]
        for i in order:
            target = min(range(count), key=lambda s: (loads[s], s))
            loads[target] += costs[i]
            assignment[target].append(i)
        # Keep each shard's cells in original grid order so the shard's
        # own sweep output is stable and readable.
        return [[cells[i] for i in sorted(bucket)] for bucket in assignment]


@dataclass(frozen=True)
class ShardManifest:
    """What one shard run computed: cells, keys, stats, provenance.

    Written by ``python -m repro sweep run --manifest out.json`` and
    consumed by the ``merge`` step. ``cells`` pairs each cell's
    human-readable tag with its content key (the cache address); the
    ``code`` fingerprint pins the simulator version the keys were
    computed against, so merging manifests from mismatched checkouts
    fails loudly instead of silently unioning incompatible keys.
    ``cache_dir`` records where this shard's results were memoized —
    a directory path, or a backend spec (``dir:``/``mem:``/...) when
    the run used ``--cache`` (see :mod:`repro.sweep.backends`).
    """

    grid: str
    strategy: str
    shard: ShardSpec | None
    code: str
    cells: tuple[tuple[str, str], ...]  # (tag repr, cell key) pairs
    stats: dict[str, Any] = field(default_factory=dict)
    cache_dir: str | None = None

    @classmethod
    def for_cells(
        cls,
        cells: Sequence[SweepCell],
        grid: str = "",
        strategy: str = "round_robin",
        shard: ShardSpec | None = None,
        stats: dict[str, Any] | None = None,
        cache_dir: str | None = None,
    ) -> "ShardManifest":
        """Build a manifest for ``cells`` (computes each cell's key).

        Config serialization is memoized per config object — grids
        share one config across their policy cells, so a large shard's
        manifest costs one ``to_dict`` per scenario, not per cell.
        """
        config_dicts: dict[int, dict[str, Any]] = {}
        pairs: list[tuple[str, str]] = []
        for cell in cells:
            config_dict = config_dicts.get(id(cell.config))
            if config_dict is None:
                config_dict = config_dicts[id(cell.config)] = cell.config.to_dict()
            pairs.append((repr(cell.tag), cell_key_from_dict(config_dict, cell.policy)))
        return cls(
            grid=grid,
            strategy=strategy,
            shard=shard,
            code=code_fingerprint(),
            cells=tuple(pairs),
            stats=dict(stats or {}),
            cache_dir=cache_dir,
        )

    def keys(self) -> list[str]:
        """The content keys of every cell in this manifest."""
        return [key for _, key in self.cells]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "grid": self.grid,
            "strategy": self.strategy,
            "shard": None if self.shard is None else {
                "index": self.shard.index, "count": self.shard.count
            },
            "code": self.code,
            "cells": [list(pair) for pair in self.cells],
            "stats": self.stats,
            "cache_dir": self.cache_dir,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardManifest":
        """Rebuild a manifest from its JSON form."""
        shard = data.get("shard")
        return cls(
            grid=data.get("grid", ""),
            strategy=data.get("strategy", "round_robin"),
            shard=None if shard is None else ShardSpec(shard["index"], shard["count"]),
            code=data.get("code", ""),
            cells=tuple((tag, key) for tag, key in data.get("cells", [])),
            stats=dict(data.get("stats", {})),
            cache_dir=data.get("cache_dir"),
        )

    def save(self, path: str | Path) -> None:
        """Write the manifest as JSON (atomic replace)."""
        atomic_write_json(path, self.to_dict(), indent=2)

    @classmethod
    def load(cls, path: str | Path) -> "ShardManifest":
        """Read a manifest written by :meth:`save`."""
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"unreadable shard manifest {path}: {exc}") from exc
        return cls.from_dict(data)


def merge_manifests(manifests: Sequence[ShardManifest]) -> ShardManifest:
    """Union a completed shard set into one single-host-style manifest.

    Requires every manifest to carry the same code fingerprint (keys
    from different simulator versions do not address the same results).
    Cells are deduplicated by content key; the additive sweep counters
    are summed (gauges like ``n_jobs``, which no single host ran at the
    summed value, are dropped rather than misreported).
    """
    if not manifests:
        raise ConfigurationError("nothing to merge: no manifests given")
    codes = {m.code for m in manifests}
    if len(codes) > 1:
        raise ConfigurationError(
            f"refusing to merge manifests from different code versions: {sorted(codes)}"
        )
    seen: set[str] = set()
    cells: list[tuple[str, str]] = []
    stats: dict[str, Any] = {}
    for manifest in manifests:
        for tag, key in manifest.cells:
            if key not in seen:
                seen.add(key)
                cells.append((tag, key))
        for name in _ADDITIVE_STATS:
            value = manifest.stats.get(name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                stats[name] = stats.get(name, 0) + value
    return ShardManifest(
        grid=manifests[0].grid,
        strategy=manifests[0].strategy,
        shard=None,
        code=manifests[0].code,
        cells=tuple(cells),
        stats=stats,
        cache_dir=None,
    )
