"""The sweep orchestrator: cache lookup, executor dispatch, memoization.

:class:`SweepRunner` evaluates a grid in three steps:

1. Every cell's content key is checked against the
   :class:`~repro.sweep.cache.ResultCache` (when one is configured);
   hits are returned without any simulation.
2. Misses are handed to the runner's
   :class:`~repro.sweep.executors.Executor` — ``serial`` in-process,
   ``process`` one-cell-per-worker, or ``batched`` (the ``n_jobs > 1``
   default) which dispatches whole scenario batches so workers reuse
   one :class:`~repro.sim.engine.Simulator` across a scenario's
   policies. Results are bitwise-identical across all three: the
   simulator is deterministic in the config's seed and every path
   reconstructs results through the same (lossless) serializer.
3. Fresh outcomes are memoized the moment they land (an interrupted
   sweep keeps its finished cells), and all cells — cached and fresh —
   are assembled into a :class:`SweepOutcome` indexed by the cells'
   tags.

Progress streams on the runner's
:class:`~repro.sweep.events.ProgressBus` (``runner.bus``): one typed
event per cell lifecycle transition (cached / started / finished /
unsupported) plus sweep start/finish brackets — what the CLI's
``--progress`` printer and the ROADMAP's sweep service subscribe to.

Policies that reject a scenario (:class:`~repro.errors.PolicyError`,
the paper's "Does not support" cells) land in ``outcome.unsupported``
instead of aborting the sweep, and the rejection itself is memoized.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Hashable, Iterable

from ..errors import ConfigurationError
from ..sim import KERNEL_BACKENDS, SimulationResult
from .backends import CacheBackend
from .cache import CachedOutcome, ResultCache, cell_key_from_dict
from .events import CellCached, ProgressBus, SweepFinished, SweepStarted
from .executors import CellResult, CellTask, Executor, resolve_executor
from .grid import ScenarioGrid, SweepCell, as_cells
from .shard import ShardPlanner, ShardSpec

__all__ = ["SweepOutcome", "SweepRunner", "SweepStats"]


@dataclass
class SweepStats:
    """Bookkeeping for one :meth:`SweepRunner.run` call."""

    cells: int = 0
    hits: int = 0
    misses: int = 0
    unsupported: int = 0
    elapsed_s: float = 0.0
    n_jobs: int = 1
    cached: bool = True
    executor: str = "serial"

    @property
    def hit_rate(self) -> float:
        """Fraction of cells served from the cache."""
        return self.hits / self.cells if self.cells else 0.0

    @property
    def cells_per_sec(self) -> float:
        """Sweep throughput, cache hits included."""
        return self.cells / self.elapsed_s if self.elapsed_s > 0 else 0.0

    #: Counter fields combined by :meth:`accumulate` / :meth:`minus`.
    _COUNTERS = ("cells", "hits", "misses", "unsupported", "elapsed_s")

    def accumulate(self, other: "SweepStats") -> None:
        """Add ``other``'s counters into this instance (lifetime totals)."""
        for attr in self._COUNTERS:
            setattr(self, attr, getattr(self, attr) + getattr(other, attr))

    def minus(self, before: "SweepStats") -> "SweepStats":
        """The counter delta since a ``before`` snapshot."""
        delta = SweepStats(n_jobs=self.n_jobs, cached=self.cached, executor=self.executor)
        for attr in self._COUNTERS:
            setattr(delta, attr, getattr(self, attr) - getattr(before, attr))
        return delta

    def render(self) -> str:
        """One-line human-readable summary."""
        cache = (
            f"cache: {self.hits} hit / {self.misses} miss "
            f"({100 * self.hit_rate:.0f}% hit rate)"
            if self.cached
            else "cache: disabled"
        )
        return (
            f"{self.cells} cells in {self.elapsed_s:.2f}s "
            f"({self.cells_per_sec:.1f} cells/s, n_jobs={self.n_jobs}, "
            f"executor={self.executor}) | "
            f"{cache} | {self.unsupported} unsupported"
        )


@dataclass(frozen=True)
class SweepOutcome:
    """Results of one sweep, indexed by cell tag.

    ``errors`` maps each unsupported tag to the recorded
    :class:`~repro.errors.PolicyError` message (the *why* behind the
    rejection).
    """

    results: dict[Hashable, SimulationResult]
    unsupported: tuple[Hashable, ...] = ()
    stats: SweepStats = field(default_factory=SweepStats)
    errors: dict[Hashable, str] = field(default_factory=dict)

    def __getitem__(self, tag: Hashable) -> SimulationResult:
        return self.results[tag]

    def get(self, tag: Hashable) -> SimulationResult | None:
        """Result for ``tag``, or None when unsupported/absent."""
        return self.results.get(tag)

    def __contains__(self, tag: Hashable) -> bool:
        return tag in self.results

    def __len__(self) -> int:
        return len(self.results)


def _resolve_cache(
    cache: "str | Path | CacheBackend | ResultCache | None",
    cache_dir: str | Path | None,
) -> ResultCache | None:
    """Normalize the two cache namings to one (optional) ResultCache."""
    if cache is not None and cache_dir is not None:
        raise ConfigurationError("pass cache or cache_dir, not both")
    if cache is None:
        return ResultCache(cache_dir) if cache_dir is not None else None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


class SweepRunner:
    """Runs scenario grids through a pluggable executor and cache.

    Parameters
    ----------
    n_jobs:
        Worker processes. ``1`` (the default) runs serially in-process;
        ``None`` uses every available core. Results are identical
        either way.
    cache_dir:
        Root of the on-disk result cache. ``None`` disables caching
        (every cell simulates).
    executor:
        Execution strategy: ``"serial"`` / ``"process"`` /
        ``"batched"``, or any :class:`~repro.sweep.executors.Executor`
        instance. ``None`` picks ``serial`` for ``n_jobs == 1`` and
        ``batched`` otherwise.
    cache:
        Alternative to ``cache_dir``: a
        :class:`~repro.sweep.backends.CacheBackend`, a ``dir:``/
        ``mem:`` spec string, or a ready :class:`ResultCache`.
    bus:
        Share an existing :class:`~repro.sweep.events.ProgressBus`
        (the per-call override runners in
        :meth:`repro.api.session.Session.sweep` keep one subscriber
        set across runners this way). ``None`` creates a fresh bus.
    tile_rows:
        Engine streaming tile height: execute each epoch in bands of
        this many worker rows to bound peak memory on paper-scale
        scenarios (``None`` = whole epochs at once). Results — and
        therefore cache keys and cached bytes — are bitwise identical
        for every value, so it is an execution knob, not part of any
        scenario fingerprint.
    kernel_backend:
        Kernel backend name from :data:`repro.sim.KERNEL_BACKENDS`
        (``None`` = ``"numpy"``). Like ``tile_rows``, an execution knob
        with a bitwise-identity guarantee: results, cache keys and
        cached bytes do not depend on it, so switching backends never
        invalidates a warm cache. Unknown names fail here, at
        construction; the backend itself is built lazily worker-side.
    """

    def __init__(
        self,
        n_jobs: int | None = 1,
        cache_dir: str | Path | None = None,
        *,
        executor: "str | Executor | None" = None,
        cache: "str | Path | CacheBackend | ResultCache | None" = None,
        bus: ProgressBus | None = None,
        tile_rows: int | None = None,
        kernel_backend: str | None = None,
    ) -> None:
        if n_jobs is None:
            n_jobs = os.cpu_count() or 1
        if n_jobs < 1:
            raise ConfigurationError("n_jobs must be >= 1 (or None for all cores)")
        if tile_rows is not None and int(tile_rows) < 1:
            raise ConfigurationError("tile_rows must be >= 1 (or None for untiled)")
        KERNEL_BACKENDS.validate(kernel_backend)
        self.n_jobs = int(n_jobs)
        self.tile_rows = None if tile_rows is None else int(tile_rows)
        self.kernel_backend = kernel_backend
        self.cache = _resolve_cache(cache, cache_dir)
        self.executor = resolve_executor(executor, self.n_jobs)
        #: The progress bus every sweep on this runner publishes to.
        self.bus = bus if bus is not None else ProgressBus()
        #: Totals accumulated over every :meth:`run` call on this runner —
        #: the full-paper driver reports one line for its whole sweep.
        self.lifetime = SweepStats(
            n_jobs=self.n_jobs,
            cached=self.cache is not None,
            executor=self.executor.name,
        )

    def run(self, grid: ScenarioGrid | Iterable[SweepCell]) -> SweepOutcome:
        """Evaluate every cell of ``grid`` and collect the outcome."""
        cells = as_cells(grid)
        stats = SweepStats(
            cells=len(cells),
            n_jobs=self.n_jobs,
            cached=self.cache is not None,
            executor=self.executor.name,
        )
        start = time.perf_counter()
        self.bus.emit(SweepStarted(total=len(cells)))

        # Configs are serialized only when a cache key or a pool
        # payload needs them, and once per config object (grids share
        # one config across their policy cells).
        serialize_configs = self.cache is not None or not self.executor.in_process
        config_dicts: dict[int, dict[str, Any]] = {}  # id(config) -> to_dict()

        def config_dict_of(cell: SweepCell) -> dict[str, Any] | None:
            if not serialize_configs:
                return None
            config_dict = config_dicts.get(id(cell.config))
            if config_dict is None:
                config_dict = config_dicts[id(cell.config)] = cell.config.to_dict()
            return config_dict

        # The hit-stat flush lives in a finally: a sweep that dies
        # mid-execute (worker crash, Ctrl-C) still records the hits it
        # served — hit counters are observability data and must survive
        # the failure, like the memoized cells themselves do.
        try:
            outcomes: dict[int, CachedOutcome] = {}
            tasks: list[CellTask] = []
            keys: dict[int, str] = {}  # task index -> content key
            for idx, cell in enumerate(cells):
                config_dict = config_dict_of(cell)
                cached: CachedOutcome | None = None
                if self.cache is not None:
                    key = cell_key_from_dict(config_dict, cell.policy)
                    keys[idx] = key
                    cached = self.cache.get(key)
                if cached is not None:
                    outcomes[idx] = cached
                    stats.hits += 1
                    self.bus.emit(
                        CellCached(tag=cell.tag, index=idx, supported=cached.supported)
                    )
                else:
                    tasks.append(
                        CellTask(
                            index=idx,
                            cell=cell,
                            config_dict=config_dict,
                            tile_rows=self.tile_rows,
                            kernel_backend=self.kernel_backend,
                        )
                    )
            stats.misses = len(tasks)

            # Memoize each outcome as it lands (not after the whole
            # batch): an interrupted long sweep keeps its finished
            # cells, and a restart only re-simulates the remainder.
            if tasks:
                for result in self.executor.execute(tasks, self.bus.emit):
                    outcomes[result.index] = self._record(
                        keys.get(result.index), result
                    )
        finally:
            if self.cache is not None:
                self.cache.flush_hit_stats()

        results: dict[Hashable, SimulationResult] = {}
        unsupported: list[Hashable] = []
        errors: dict[Hashable, str] = {}
        for idx, cell in enumerate(cells):
            outcome = outcomes[idx]
            if outcome.supported:
                results[cell.tag] = outcome.result
            else:
                unsupported.append(cell.tag)
                errors[cell.tag] = outcome.error or ""
        stats.unsupported = len(unsupported)
        stats.elapsed_s = time.perf_counter() - start
        self.lifetime.accumulate(stats)
        self.bus.emit(SweepFinished(stats=stats))
        return SweepOutcome(
            results=results, unsupported=tuple(unsupported), stats=stats, errors=errors
        )

    def run_shard(
        self,
        grid: ScenarioGrid | Iterable[SweepCell],
        shard: ShardSpec | str,
        strategy: str = "round_robin",
    ) -> SweepOutcome:
        """Evaluate only this host's shard of ``grid``.

        Plans the full grid with :class:`~repro.sweep.shard.ShardPlanner`
        (deterministic: every host planning the same grid computes the
        same partition) and runs shard ``shard`` — the string form
        ``"i/K"`` is accepted as-is from the CLI. Running every shard
        and merging the caches reproduces the single-host sweep bit for
        bit (see :mod:`repro.sweep.gc`).
        """
        spec = ShardSpec.parse(shard) if isinstance(shard, str) else shard
        cells = ShardPlanner(strategy).plan(grid, spec.count).shard(spec)
        return self.run(cells)

    # -- internals -----------------------------------------------------------

    def _record(self, key: str | None, raw: CellResult) -> CachedOutcome:
        """Deserialize one executor result; memoize it when cache-backed."""
        outcome = CachedOutcome(
            result=(
                None
                if raw.result_dict is None
                else SimulationResult.from_dict(raw.result_dict)
            ),
            error=raw.error,
        )
        if self.cache is not None and key is not None:
            self.cache.put(key, outcome, result_dict=raw.result_dict)
        return outcome
