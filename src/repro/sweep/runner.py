"""The sweep executor: cache lookup, fan-out, memoization, stats.

:class:`SweepRunner` evaluates a grid in three steps:

1. Every cell's content key is checked against the
   :class:`~repro.sweep.cache.ResultCache` (when one is configured);
   hits are returned without any simulation.
2. Misses are simulated — in-process when ``n_jobs == 1`` (easiest to
   debug/profile; one shared :class:`~repro.sim.engine.Simulator` per
   scenario reuses the expensive access streams across policies),
   otherwise fanned out over a
   :class:`concurrent.futures.ProcessPoolExecutor`. Workers receive the
   *serialized* config (dict) plus the pickled policy and rebuild both,
   so results are independent of the parent's in-memory state; because
   the simulator is deterministic in the config's seed — and result
   serialization is lossless — parallel and serial sweeps of the same
   grid produce bitwise-identical results.
3. Fresh outcomes are written back to the cache (atomically), and all
   cells — cached and fresh — are assembled into a
   :class:`SweepOutcome` indexed by the cells' tags.

Policies that reject a scenario (:class:`~repro.errors.PolicyError`,
the paper's "Does not support" cells) land in ``outcome.unsupported``
instead of aborting the sweep, and the rejection itself is memoized.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Hashable, Iterable

from ..errors import ConfigurationError, PolicyError
from ..sim import Policy, SimulationConfig, SimulationResult, Simulator
from .cache import CachedOutcome, ResultCache, cell_key_from_dict
from .grid import ScenarioGrid, SweepCell, as_cells
from .shard import ShardPlanner, ShardSpec

__all__ = ["SweepOutcome", "SweepRunner", "SweepStats"]


def _simulate_payload(payload: tuple[dict[str, Any], Policy]) -> tuple[dict[str, Any] | None, str | None]:
    """Run one cell from its serialized form (top-level: picklable).

    Returns ``(result_dict, None)`` or ``(None, policy_error_message)``.
    The result crosses the process boundary in dict form — the same
    representation the cache stores — so every path through the runner
    yields results reconstructed by the same (lossless) deserializer.
    """
    config_dict, policy = payload
    config = SimulationConfig.from_dict(config_dict)
    try:
        result = Simulator(config).run(policy)
    except PolicyError as exc:
        return None, str(exc)
    return result.to_dict(), None


@dataclass
class SweepStats:
    """Bookkeeping for one :meth:`SweepRunner.run` call."""

    cells: int = 0
    hits: int = 0
    misses: int = 0
    unsupported: int = 0
    elapsed_s: float = 0.0
    n_jobs: int = 1
    cached: bool = True

    @property
    def hit_rate(self) -> float:
        """Fraction of cells served from the cache."""
        return self.hits / self.cells if self.cells else 0.0

    @property
    def cells_per_sec(self) -> float:
        """Sweep throughput, cache hits included."""
        return self.cells / self.elapsed_s if self.elapsed_s > 0 else 0.0

    #: Counter fields combined by :meth:`accumulate` / :meth:`minus`.
    _COUNTERS = ("cells", "hits", "misses", "unsupported", "elapsed_s")

    def accumulate(self, other: "SweepStats") -> None:
        """Add ``other``'s counters into this instance (lifetime totals)."""
        for attr in self._COUNTERS:
            setattr(self, attr, getattr(self, attr) + getattr(other, attr))

    def minus(self, before: "SweepStats") -> "SweepStats":
        """The counter delta since a ``before`` snapshot."""
        delta = SweepStats(n_jobs=self.n_jobs, cached=self.cached)
        for attr in self._COUNTERS:
            setattr(delta, attr, getattr(self, attr) - getattr(before, attr))
        return delta

    def render(self) -> str:
        """One-line human-readable summary."""
        cache = (
            f"cache: {self.hits} hit / {self.misses} miss "
            f"({100 * self.hit_rate:.0f}% hit rate)"
            if self.cached
            else "cache: disabled"
        )
        return (
            f"{self.cells} cells in {self.elapsed_s:.2f}s "
            f"({self.cells_per_sec:.1f} cells/s, n_jobs={self.n_jobs}) | "
            f"{cache} | {self.unsupported} unsupported"
        )


@dataclass(frozen=True)
class SweepOutcome:
    """Results of one sweep, indexed by cell tag.

    ``errors`` maps each unsupported tag to the recorded
    :class:`~repro.errors.PolicyError` message (the *why* behind the
    rejection).
    """

    results: dict[Hashable, SimulationResult]
    unsupported: tuple[Hashable, ...] = ()
    stats: SweepStats = field(default_factory=SweepStats)
    errors: dict[Hashable, str] = field(default_factory=dict)

    def __getitem__(self, tag: Hashable) -> SimulationResult:
        return self.results[tag]

    def get(self, tag: Hashable) -> SimulationResult | None:
        """Result for ``tag``, or None when unsupported/absent."""
        return self.results.get(tag)

    def __contains__(self, tag: Hashable) -> bool:
        return tag in self.results

    def __len__(self) -> int:
        return len(self.results)


class SweepRunner:
    """Runs scenario grids, optionally parallel, optionally cached.

    Parameters
    ----------
    n_jobs:
        Worker processes. ``1`` (the default) runs serially in-process;
        ``None`` uses every available core. Results are identical
        either way.
    cache_dir:
        Root of the on-disk result cache. ``None`` disables caching
        (every cell simulates).
    """

    def __init__(self, n_jobs: int | None = 1, cache_dir: str | Path | None = None) -> None:
        if n_jobs is None:
            n_jobs = os.cpu_count() or 1
        if n_jobs < 1:
            raise ConfigurationError("n_jobs must be >= 1 (or None for all cores)")
        self.n_jobs = int(n_jobs)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        #: Totals accumulated over every :meth:`run` call on this runner —
        #: the full-paper driver reports one line for its whole sweep.
        self.lifetime = SweepStats(n_jobs=self.n_jobs, cached=self.cache is not None)

    def run(self, grid: ScenarioGrid | Iterable[SweepCell]) -> SweepOutcome:
        """Evaluate every cell of ``grid`` and collect the outcome."""
        cells = as_cells(grid)
        stats = SweepStats(
            cells=len(cells), n_jobs=self.n_jobs, cached=self.cache is not None
        )
        start = time.perf_counter()

        outcomes: dict[int, CachedOutcome] = {}
        pending: list[tuple[int, SweepCell, str | None, dict[str, Any] | None]] = []
        config_dicts: dict[int, dict[str, Any]] = {}  # id(config) -> to_dict()
        for idx, cell in enumerate(cells):
            # Configs are serialized only when a cache key needs them
            # (or later, for a pool payload), and once per config object
            # (grids share one config across their policy cells).
            config_dict: dict[str, Any] | None = None
            key: str | None = None
            cached: CachedOutcome | None = None
            if self.cache is not None:
                config_dict = config_dicts.get(id(cell.config))
                if config_dict is None:
                    config_dict = config_dicts[id(cell.config)] = cell.config.to_dict()
                key = cell_key_from_dict(config_dict, cell.policy)
                cached = self.cache.get(key)
            if cached is not None:
                outcomes[idx] = cached
                stats.hits += 1
            else:
                pending.append((idx, cell, key, config_dict))
        stats.misses = len(pending)

        for idx, outcome in self._simulate(pending, config_dicts):
            outcomes[idx] = outcome

        results: dict[Hashable, SimulationResult] = {}
        unsupported: list[Hashable] = []
        errors: dict[Hashable, str] = {}
        for idx, cell in enumerate(cells):
            outcome = outcomes[idx]
            if outcome.supported:
                results[cell.tag] = outcome.result
            else:
                unsupported.append(cell.tag)
                errors[cell.tag] = outcome.error or ""
        stats.unsupported = len(unsupported)
        stats.elapsed_s = time.perf_counter() - start
        self.lifetime.accumulate(stats)
        if self.cache is not None:
            self.cache.flush_hit_stats()
        return SweepOutcome(
            results=results, unsupported=tuple(unsupported), stats=stats, errors=errors
        )

    def run_shard(
        self,
        grid: ScenarioGrid | Iterable[SweepCell],
        shard: ShardSpec | str,
        strategy: str = "round_robin",
    ) -> SweepOutcome:
        """Evaluate only this host's shard of ``grid``.

        Plans the full grid with :class:`~repro.sweep.shard.ShardPlanner`
        (deterministic: every host planning the same grid computes the
        same partition) and runs shard ``shard`` — the string form
        ``"i/K"`` is accepted as-is from the CLI. Running every shard
        and merging the caches reproduces the single-host sweep bit for
        bit (see :mod:`repro.sweep.gc`).
        """
        spec = ShardSpec.parse(shard) if isinstance(shard, str) else shard
        cells = ShardPlanner(strategy).plan(grid, spec.count).shard(spec)
        return self.run(cells)

    # -- internals -----------------------------------------------------------

    def _simulate(
        self,
        pending: list[tuple[int, SweepCell, str | None, dict[str, Any] | None]],
        config_dicts: dict[int, dict[str, Any]],
    ) -> list[tuple[int, CachedOutcome]]:
        if not pending:
            return []
        out: list[tuple[int, CachedOutcome]] = []
        if self.n_jobs == 1 or len(pending) == 1:
            # In-process: share one Simulator across consecutive cells
            # on the same config, so comparing many policies on one
            # scenario (Fig 8's nine bars) reuses the expensive
            # access-stream state — but keep only the *current* one
            # alive (grids are config-major; retaining every scenario's
            # streams would balloon peak memory on many-config sweeps).
            sim_config_id: int | None = None
            sim: Simulator | None = None
            for idx, cell, key, _ in pending:
                if sim is None or id(cell.config) != sim_config_id:
                    sim_config_id = id(cell.config)
                    sim = Simulator(cell.config)
                try:
                    raw = (sim.run(cell.policy).to_dict(), None)
                except PolicyError as exc:
                    raw = (None, str(exc))
                out.append((idx, self._record(key, raw)))
        else:
            # Memoize each outcome as it lands (not after the whole
            # batch): an interrupted long sweep keeps its finished
            # cells, and a restart only re-simulates the remainder.
            workers = min(self.n_jobs, len(pending))
            # Uncached runs reach here with config_dict=None; fill the
            # same per-config memo run() uses, so each shared config is
            # serialized once, not once per policy cell.
            for i, (idx, cell, key, config_dict) in enumerate(pending):
                if config_dict is None:
                    config_dict = config_dicts.get(id(cell.config))
                    if config_dict is None:
                        config_dict = config_dicts[id(cell.config)] = cell.config.to_dict()
                    pending[i] = (idx, cell, key, config_dict)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_simulate_payload, (config_dict, cell.policy)): (idx, key)
                    for idx, cell, key, config_dict in pending
                }
                # On an unexpected worker failure, cancel queued cells
                # but keep draining/memoizing the in-flight ones, so a
                # restart after the raise only re-simulates what truly
                # never ran.
                first_error: BaseException | None = None
                for future in as_completed(futures):
                    idx, key = futures[future]
                    try:
                        raw = future.result()
                    except BaseException as exc:
                        if first_error is None:
                            first_error = exc
                            for other in futures:
                                other.cancel()
                        continue
                    out.append((idx, self._record(key, raw)))
                if first_error is not None:
                    raise first_error
        return out

    def _record(
        self, key: str | None, raw: tuple[dict[str, Any] | None, str | None]
    ) -> CachedOutcome:
        result_dict, error = raw
        outcome = CachedOutcome(
            result=None if result_dict is None else SimulationResult.from_dict(result_dict),
            error=error,
        )
        if self.cache is not None and key is not None:
            self.cache.put(key, outcome, result_dict=result_dict)
        return outcome
