"""Parallel scenario-sweep engine with an on-disk result cache.

The paper's evaluation is a large grid of (dataset x system x policy x
batch size x epochs x seed) simulations — embarrassingly parallel and
fully deterministic. This package makes that grid a first-class object:

* :class:`~repro.sweep.grid.ScenarioGrid` declares the axes and expands
  them into :class:`~repro.sweep.grid.SweepCell` s (one simulation each).
* :class:`~repro.sweep.runner.SweepRunner` hands cache misses to a
  pluggable :class:`~repro.sweep.executors.Executor` — ``serial``
  in-process, ``process`` one-cell-per-worker, or ``batched`` (the
  parallel default: whole scenario batches per worker, so access
  streams are built once per scenario, not once per cell) — and
  memoizes every cell's :class:`~repro.sim.result.SimulationResult`
  in a content-addressed cache (:class:`~repro.sweep.cache.ResultCache`)
  over a pluggable :class:`~repro.sweep.backends.CacheBackend`
  (``dir:/path`` on disk, ``mem:`` in-process, remote stores via
  :func:`~repro.sweep.backends.register_backend_scheme`).
* Sweeps stream typed progress events (cell started / cached /
  finished / unsupported) on the runner's
  :class:`~repro.sweep.events.ProgressBus` — what the CLI's
  ``--progress`` flag and ``Session.sweep(on_event=...)`` subscribe to.

Cache entries are keyed by a stable SHA-256 of the fully serialized
:class:`~repro.sim.config.SimulationConfig`, the policy fingerprint
(class, name, constructor state) and the code fingerprint (package
version + a digest of the simulation-relevant source) — identical
scenarios hit, any config/policy/simulator-code change misses. Cached results are
bitwise-identical to freshly simulated ones; parallel and serial runs
of the same grid agree exactly (the simulator is deterministic given
the config's seed).

Sweeps scale past one machine and one disk:

* :mod:`repro.sweep.shard` deterministically partitions a grid into K
  disjoint shards (round-robin or cost-weighted), each runnable on a
  separate host; shard manifests and caches merge back into a result
  set bitwise-identical to a single-host sweep.
* :mod:`repro.sweep.gc` manages the cache directory's lifecycle: an
  on-disk hit index, LRU eviction under ``max_bytes``/``max_age``
  policies, corruption detection with quarantine, and shard-cache
  merging.
* ``python -m repro.sweep`` (:mod:`repro.sweep.cli`) exposes all of it
  as ``run`` / ``merge`` / ``gc`` / ``stats`` / ``verify``.

The experiment harness (:mod:`repro.experiments`) composes on top of
this: figure modules declare their grids via
:func:`repro.experiments.common.policy_cells` and consume the
:class:`~repro.sweep.runner.SweepOutcome`, so the full-paper driver
(:mod:`repro.experiments.paper`) shares one runner — and one cache —
across every figure, and its artifact pipeline
(:mod:`repro.experiments.artifacts`) re-renders only figures whose
cells or rendering code changed.
"""

from .backends import (
    CacheBackend,
    EntryStat,
    InMemoryBackend,
    LocalDirBackend,
    as_backend,
    memory_backend,
    parse_cache_spec,
    register_backend_scheme,
)
from .cache import (
    CACHE_SCHEMA_VERSION,
    QUARANTINE_DIR,
    CachedOutcome,
    ResultCache,
    cell_key,
    code_fingerprint,
    policy_fingerprint,
)
from .events import (
    CellCached,
    CellFinished,
    CellStarted,
    CellUnsupported,
    ProgressBus,
    SweepEvent,
    SweepFinished,
    SweepStarted,
)
from .executors import (
    EXECUTORS,
    BatchedExecutor,
    CellResult,
    CellTask,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
)
from .gc import (
    CacheEntry,
    CacheIndex,
    CacheStatsReport,
    GCReport,
    MergeReport,
    VerifyReport,
    cache_stats,
    collect_garbage,
    merge_caches,
    scan_entries,
    verify_cache,
)
from .grid import ScenarioGrid, SweepCell
from .runner import SweepOutcome, SweepRunner, SweepStats
from .shard import (
    ShardManifest,
    ShardPlan,
    ShardPlanner,
    ShardSpec,
    estimate_cell_cost,
    merge_manifests,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "EXECUTORS",
    "QUARANTINE_DIR",
    "BatchedExecutor",
    "CacheBackend",
    "CacheEntry",
    "CacheIndex",
    "CacheStatsReport",
    "CachedOutcome",
    "CellCached",
    "CellFinished",
    "CellResult",
    "CellStarted",
    "CellTask",
    "CellUnsupported",
    "EntryStat",
    "Executor",
    "GCReport",
    "InMemoryBackend",
    "LocalDirBackend",
    "MergeReport",
    "ProcessExecutor",
    "ProgressBus",
    "ResultCache",
    "ScenarioGrid",
    "SerialExecutor",
    "ShardManifest",
    "ShardPlan",
    "ShardPlanner",
    "ShardSpec",
    "SweepCell",
    "SweepEvent",
    "SweepFinished",
    "SweepOutcome",
    "SweepRunner",
    "SweepStarted",
    "SweepStats",
    "VerifyReport",
    "as_backend",
    "cache_stats",
    "cell_key",
    "code_fingerprint",
    "collect_garbage",
    "estimate_cell_cost",
    "memory_backend",
    "merge_caches",
    "merge_manifests",
    "parse_cache_spec",
    "policy_fingerprint",
    "register_backend_scheme",
    "resolve_executor",
    "scan_entries",
    "verify_cache",
]
