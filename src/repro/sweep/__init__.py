"""Parallel scenario-sweep engine with an on-disk result cache.

The paper's evaluation is a large grid of (dataset x system x policy x
batch size x epochs x seed) simulations — embarrassingly parallel and
fully deterministic. This package makes that grid a first-class object:

* :class:`~repro.sweep.grid.ScenarioGrid` declares the axes and expands
  them into :class:`~repro.sweep.grid.SweepCell` s (one simulation each).
* :class:`~repro.sweep.runner.SweepRunner` fans cells out over a
  process pool (``n_jobs=1`` falls back to plain in-process execution
  for debugging) and memoizes every cell's
  :class:`~repro.sim.result.SimulationResult` in a content-addressed
  on-disk cache (:class:`~repro.sweep.cache.ResultCache`).

Cache entries are keyed by a stable SHA-256 of the fully serialized
:class:`~repro.sim.config.SimulationConfig`, the policy fingerprint
(class, name, constructor state) and the code fingerprint (package
version + a digest of the simulation-relevant source) — identical
scenarios hit, any config/policy/simulator-code change misses. Cached results are
bitwise-identical to freshly simulated ones; parallel and serial runs
of the same grid agree exactly (the simulator is deterministic given
the config's seed).

The experiment harness (:mod:`repro.experiments`) composes on top of
this: figure modules declare their grids via
:func:`repro.experiments.common.policy_cells` and consume the
:class:`~repro.sweep.runner.SweepOutcome`, so the full-paper driver
(:mod:`repro.experiments.paper`) shares one runner — and one cache —
across every figure.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    CachedOutcome,
    ResultCache,
    cell_key,
    code_fingerprint,
    policy_fingerprint,
)
from .grid import ScenarioGrid, SweepCell
from .runner import SweepOutcome, SweepRunner, SweepStats

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CachedOutcome",
    "ResultCache",
    "ScenarioGrid",
    "SweepCell",
    "SweepOutcome",
    "SweepRunner",
    "SweepStats",
    "cell_key",
    "code_fingerprint",
    "policy_fingerprint",
]
