"""Typed sweep progress events and the callback bus they travel on.

Every :class:`~repro.sweep.runner.SweepRunner` owns a
:class:`ProgressBus`; the runner and its
:mod:`~repro.sweep.executors` executor publish one event per lifecycle
transition of every grid cell:

* :class:`SweepStarted` / :class:`SweepFinished` bracket each
  :meth:`~repro.sweep.runner.SweepRunner.run` call;
* :class:`CellCached` — the cell was served from the result cache
  (no simulation);
* :class:`CellStarted` — the cell was dispatched for simulation
  (in-process, or submitted to a worker);
* :class:`CellFinished` — the simulation completed with a result;
* :class:`CellUnsupported` — the policy rejected the scenario
  (:class:`~repro.errors.PolicyError`, the paper's "Does not support"
  cells).

Subscribers are plain callables taking one event. The CLI's
``--progress`` printer, :meth:`Session.sweep(on_event=...)
<repro.api.session.Session.sweep>` and the ROADMAP's long-running sweep
service (streaming job progress to remote clients) all attach here —
the executors never know who is listening.

Events are emitted from the sweeping process (never from pool
workers), in completion order; ``index`` ties an event back to its
cell's position in the sweep's cell list. Subscriber exceptions
propagate to the caller — a broken subscriber is a bug, not something
to swallow silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

__all__ = [
    "CellCached",
    "CellFinished",
    "CellStarted",
    "CellUnsupported",
    "ProgressBus",
    "SweepEvent",
    "SweepFinished",
    "SweepStarted",
]


@dataclass(frozen=True)
class SweepEvent:
    """Base class for everything published on a :class:`ProgressBus`."""


@dataclass(frozen=True)
class SweepStarted(SweepEvent):
    """A sweep began; ``total`` counts every cell, cached or not."""

    total: int


@dataclass(frozen=True)
class SweepFinished(SweepEvent):
    """A sweep completed; ``stats`` is its final counter snapshot."""

    stats: "object"  # SweepStats; untyped to avoid a circular import


@dataclass(frozen=True)
class CellEvent(SweepEvent):
    """Base for per-cell events: which cell, by tag and list position."""

    tag: Hashable
    index: int


@dataclass(frozen=True)
class CellCached(CellEvent):
    """The cell was answered from the cache (``supported`` is the
    memoized verdict — unsupported rejections are cached too)."""

    supported: bool = True


@dataclass(frozen=True)
class CellStarted(CellEvent):
    """The cell was dispatched for simulation."""


@dataclass(frozen=True)
class CellFinished(CellEvent):
    """The cell's simulation completed with a result.

    ``elapsed_s`` is the simulation wall time measured where the
    simulation ran (inside the worker for pool executors).
    """

    elapsed_s: float = 0.0


@dataclass(frozen=True)
class CellUnsupported(CellEvent):
    """The policy rejected the scenario; ``error`` is the recorded why."""

    error: str = ""


#: The subscriber shape: any callable consuming one event.
Subscriber = Callable[[SweepEvent], None]


class ProgressBus:
    """A minimal synchronous callback bus for sweep progress.

    Deliberately not thread-aware: all events are emitted from the
    process driving the sweep, so subscribers run on the caller's
    thread, in subscription order.
    """

    def __init__(self) -> None:
        self._subscribers: list[Subscriber] = []

    def subscribe(self, callback: Subscriber) -> Callable[[], None]:
        """Attach ``callback``; returns a zero-argument unsubscriber."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass  # already unsubscribed; idempotent

        return unsubscribe

    def emit(self, event: SweepEvent) -> None:
        """Deliver ``event`` to every subscriber, in subscription order."""
        for callback in tuple(self._subscribers):
            callback(event)

    def __len__(self) -> int:
        return len(self._subscribers)
