"""CLI entry: ``python -m repro.sweep`` (run/merge/gc/stats/verify).

A dedicated ``__main__`` (rather than ``-m repro.sweep.cli``) keeps the
supported invocation short and avoids runpy's double-import warning for
pre-imported submodules.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
