"""Deprecated CLI entry: ``python -m repro.sweep``.

Superseded by the consolidated CLI — ``python -m repro sweep``
(run/merge) and ``python -m repro cache`` (gc/stats/verify). This shim
keeps the old invocation working, warns, and runs the same underlying
implementation (:mod:`repro.sweep.cli`), so behaviour and exit codes
are unchanged.
"""

import sys
import warnings

from .cli import main

if __name__ == "__main__":
    warnings.warn(
        "'python -m repro.sweep' is deprecated; use 'python -m repro sweep' "
        "(run/merge) or 'python -m repro cache' (gc/stats/verify) instead",
        DeprecationWarning,
        stacklevel=1,
    )
    sys.exit(main())
