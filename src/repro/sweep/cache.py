"""Content-addressed cache for simulation results.

Storage is pluggable (:mod:`repro.sweep.backends`): the default
:class:`~repro.sweep.backends.LocalDirBackend` keeps the original
layout — ``<root>/<key[:2]>/<key>.json``, one JSON file per grid cell —
and :class:`ResultCache` accepts any
:class:`~repro.sweep.backends.CacheBackend` (or a ``dir:``/``mem:``
spec string) in place of a directory. ``key`` is the SHA-256 over the
canonical JSON of

* the full :meth:`~repro.config.ConfigMixin.to_dict` serialization of
  the cell's :class:`~repro.sim.config.SimulationConfig` (dataset,
  system, noise, seed — everything that determines the simulation),
* the policy fingerprint — class name, policy name and constructor
  state (``vars(policy)`` minus cosmetics), and
* the code fingerprint — ``repro.__version__`` plus a digest of the
  simulation-relevant source (``core``, ``datasets``, ``perfmodel``,
  ``sim``, and the shared config/rng/units modules) and this module's
  ``CACHE_SCHEMA_VERSION``.

Invalidation rule: there is none to run by hand. Any change to the
scenario, the policy, or the simulator's own source changes the key
(a *miss*, never a stale hit); bumping ``CACHE_SCHEMA_VERSION`` or the
package version retires every prior entry wholesale. The directory is
safe to delete at any time.

Unsupported combinations (policies raising
:class:`~repro.errors.PolicyError`, the paper's "Does not support"
cells) are cached too, as ``{"error": ...}`` entries, so warm sweeps
re-simulate nothing at all.

Writes are atomic (temp file + :func:`os.replace`), making one cache
directory safe to share between concurrently sweeping processes.

Corrupt entries — truncated writes from a killed process, foreign
files — are *quarantined* on read (set aside by the backend, e.g.
moved to ``<root>/_quarantine/``) and treated as misses, so a damaged
cache degrades into re-simulation, never a mid-sweep crash; ``python
-m repro.sweep verify`` reports and sweeps them in bulk. Lifecycle
management (stats, LRU GC, shard-cache merging) lives in
:mod:`repro.sweep.gc`; each hit bumps the entry's LRU clock so that
module's eviction order reflects real use.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .. import __version__
from ..errors import ConfigurationError
from ..sim import Policy, SimulationConfig, SimulationResult
from .backends import (
    _ENTRY_GLOB,
    QUARANTINE_DIR,
    CacheBackend,
    LocalDirBackend,
    _atomic_write_text,
    as_backend,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "QUARANTINE_DIR",
    "CachedOutcome",
    "ResultCache",
    "cell_key",
    "code_fingerprint",
    "iter_entry_paths",
    "policy_fingerprint",
]

#: Bump to invalidate every existing cache entry (serialization changes).
CACHE_SCHEMA_VERSION = 1


def iter_entry_paths(root: str | Path):
    """Yield every cache entry file under ``root`` (shard dirs only).

    Skips ``index.json``, the quarantine directory and in-flight temp
    files — anything not shaped like ``<xx>/<key>.json``. Directory
    caches only; backend-generic consumers iterate
    :meth:`~repro.sweep.backends.CacheBackend.keys` instead.
    """
    yield from Path(root).glob(_ENTRY_GLOB)


def atomic_write_json(
    path: str | Path, payload: Any, indent: int | None = None, mode: int | None = None
) -> None:
    """Write ``payload`` as JSON crash-safely: temp file + atomic replace.

    The durability idiom shared by the shard/artifact manifests and the
    dir backend's entries/index (one implementation:
    ``backends._atomic_write_text``) — readers never observe a torn
    file, and a failed write leaves no temp litter behind. ``mode``
    restores umask-governed permissions on the mkstemp-created (0600)
    file so shared directories stay readable across users (Unix only;
    the 0600 default stands elsewhere).
    """
    _atomic_write_text(Path(path), json.dumps(payload, indent=indent), mode=mode)

#: Policy instance attributes that do not affect simulation output.
_COSMETIC_ATTRS = ("display_name",)

#: Everything a simulation's *output* depends on, relative to the
#: ``repro`` package root. Experiments/loader/runtime are deliberately
#: excluded — editing the harness must not retire cached simulations.
_SIMULATION_SOURCES = (
    "config.py",
    "errors.py",
    "rng.py",
    "units.py",
    "core",
    "datasets",
    "perfmodel",
    "sim",
)


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Version + digest of the simulation-relevant source files.

    Editing the simulator (noise model, fetch resolution, policies...)
    must invalidate cached results even though ``__version__`` is only
    bumped per release. Falls back to the bare version when the source
    is not readable (zipped installs).
    """
    import repro

    digest = hashlib.sha256()
    try:
        root = Path(repro.__file__).parent
        for part in _SIMULATION_SOURCES:
            path = root / part
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for f in files:
                digest.update(str(f.relative_to(root)).encode("utf-8"))
                digest.update(f.read_bytes())
    except OSError:
        return __version__
    return f"{__version__}+{digest.hexdigest()[:16]}"


@functools.lru_cache(maxsize=None)
def _source_digest(path: str) -> str | None:
    """Process-lifetime digest of one source file (None if unreadable)."""
    try:
        return hashlib.sha256(Path(path).read_bytes()).hexdigest()[:16]
    except OSError:
        return None


def policy_fingerprint(policy: Policy) -> dict[str, Any]:
    """A stable, JSON-safe identity for a policy instance.

    Covers the class, the machine-readable name (which already encodes
    variants such as ``deepio_ordered``), all constructor state — so
    e.g. ``DoubleBufferPolicy(2)`` and ``DoubleBufferPolicy(8)`` key
    differently — and a digest of the class's defining source file, so
    editing an *out-of-tree* :class:`~repro.sim.policies.base.Policy`
    subclass invalidates its cached results too (in-tree policies are
    already covered by :func:`code_fingerprint`).

    Non-JSON-serializable state raises a clear
    :class:`~repro.errors.ConfigurationError` rather than falling back
    to ``repr`` — an elided/unstable repr could alias two different
    policies onto one key and serve stale results.
    """
    try:
        raw_state = vars(policy)
    except TypeError as exc:
        raise ConfigurationError(
            f"policy {type(policy).__qualname__!r} has no __dict__ (slots-based "
            "class?); cached sweeps need inspectable, JSON-safe policy state "
            "(or run with cache_dir=None)"
        ) from exc
    state = {k: v for k, v in sorted(raw_state.items()) if k not in _COSMETIC_ATTRS}
    for attr, value in state.items():
        try:
            json.dumps(value)
        except TypeError as exc:
            raise ConfigurationError(
                f"policy {type(policy).__qualname__!r} attribute {attr!r} "
                f"({type(value).__name__}) is not JSON-serializable; cached "
                "sweeps need JSON-safe policy state (or run with cache_dir=None)"
            ) from exc
    try:
        source_file = inspect.getsourcefile(type(policy))
    except TypeError:
        source_file = None
    return {
        "class": type(policy).__qualname__,
        "name": policy.name,
        "state": state,
        "source": _source_digest(source_file) if source_file else None,
    }


def cell_key(config: SimulationConfig, policy: Policy) -> str:
    """The content hash addressing one (config, policy) cell."""
    return cell_key_from_dict(config.to_dict(), policy)


def cell_key_from_dict(config_dict: dict[str, Any], policy: Policy) -> str:
    """:func:`cell_key` for an already-serialized config (no re-encode)."""
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "code": code_fingerprint(),
        "config": config_dict,
        "policy": policy_fingerprint(policy),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CachedOutcome:
    """A memoized cell: either a result or a recorded PolicyError."""

    result: SimulationResult | None
    error: str | None

    @property
    def supported(self) -> bool:
        """Whether the policy ran on this scenario."""
        return self.result is not None


class ResultCache:
    """Backend-backed store of :class:`CachedOutcome` s by cell key.

    ``store`` names the storage: a directory path (the historical
    spelling), a ``dir:``/``mem:`` spec string, or any live
    :class:`~repro.sweep.backends.CacheBackend`. Serialization —
    what an entry *says* — lives here; how its bytes are kept is
    entirely the backend's business.
    """

    def __init__(self, store: "str | Path | CacheBackend") -> None:
        self.backend = as_backend(store)
        self.backend.prepare()
        #: Hits recorded by this instance since the last flush, folded
        #: into the backend's index by :meth:`flush_hit_stats`.
        self._session_hits: dict[str, int] = {}

    @property
    def root(self) -> Path | None:
        """The cache directory for dir-backed caches; None otherwise."""
        return getattr(self.backend, "root", None)

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (dir-backed caches only)."""
        if not isinstance(self.backend, LocalDirBackend):
            raise ConfigurationError(
                f"cache backend {self.backend.url!r} stores no files; "
                "path_for applies to dir: caches only"
            )
        return self.backend.path_for(key)

    def get(self, key: str) -> CachedOutcome | None:
        """The memoized outcome for ``key``, or None on a miss.

        A missing entry is a plain miss. A present-but-unservable one
        (truncated write from a killed process, foreign JSON, schema
        drift) is *quarantined* — set aside by the backend for
        ``python -m repro cache verify`` to report — and then treated
        as a miss, so the cell re-simulates instead of the sweep
        crashing. Hits bump the entry's LRU clock (what
        :func:`repro.sweep.gc.collect_garbage` orders by) and a session
        hit counter flushed by :meth:`flush_hit_stats`.
        """
        outcome = self._load(key)
        if outcome is None:
            return None
        self.backend.touch(key)
        self._session_hits[key] = self._session_hits.get(key, 0) + 1
        return outcome

    def _load(self, key: str) -> CachedOutcome | None:
        """Deserialize one entry; quarantine it when unservable."""
        raw = self.backend.read(key)
        if raw is None:
            return None
        try:
            data = json.loads(raw)
            result = data.get("result")
            error = data.get("error")
            if result is None and error is None:
                # A legitimate entry always carries a result or an
                # error (possibly empty-stringed); a dict with neither
                # (e.g. `{}`) is foreign.
                raise ValueError("entry carries neither result nor error")
            return CachedOutcome(
                result=None if result is None else SimulationResult.from_dict(result),
                error=error,
            )
        except (json.JSONDecodeError, AttributeError, KeyError, TypeError, ValueError):
            self.backend.quarantine(key)
            return None

    def flush_hit_stats(self) -> None:
        """Fold this session's hit counts into the backend's index.

        Called by :class:`~repro.sweep.runner.SweepRunner` after each
        sweep; safe (best-effort) under concurrent writers. Clears the
        session counters on success.
        """
        if not self._session_hits:
            return
        from .gc import CacheIndex  # deferred: gc imports this module

        index = CacheIndex(self.backend)
        index.record_hits(self._session_hits)
        try:
            index.save()
        except OSError:
            return
        self._session_hits = {}

    def put(
        self,
        key: str,
        outcome: CachedOutcome,
        result_dict: dict[str, Any] | None = None,
    ) -> None:
        """Persist ``outcome`` under ``key`` (atomic replace).

        ``result_dict`` lets callers that already hold the serialized
        result (the sweep runner) skip a redundant ``to_dict``.
        """
        if result_dict is None and outcome.result is not None:
            result_dict = outcome.result.to_dict()
        entry = {
            "key": key,
            "schema": CACHE_SCHEMA_VERSION,
            "code": code_fingerprint(),
            "result": result_dict,
            "error": outcome.error,
        }
        # json.dumps with default separators matches the bytes the
        # pre-backend atomic_write_json path produced, so existing
        # caches stay warm *and* bitwise-stable across the refactor.
        self.backend.write(key, json.dumps(entry))

    def count(self) -> int:
        """Number of stored entries (walks the backend; O(entries)).

        Deliberately not ``__len__``: that would make an *empty* cache
        falsy, turning the natural ``if cache:`` into a bug.
        """
        return sum(1 for _ in self.backend.keys())

    def __contains__(self, key: str) -> bool:
        """Whether :meth:`get` would serve ``key`` (not mere existence).

        A pure probe: unlike :meth:`get` it records no hit and leaves
        the entry's LRU clock untouched, so membership checks from
        monitoring scripts don't shield entries from ``gc --max-age``.
        """
        return self._load(key) is not None
