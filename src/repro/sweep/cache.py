"""Content-addressed on-disk cache for simulation results.

Layout: ``<root>/<key[:2]>/<key>.json``, one JSON file per grid cell,
where ``key`` is the SHA-256 over the canonical JSON of

* the full :meth:`~repro.config.ConfigMixin.to_dict` serialization of
  the cell's :class:`~repro.sim.config.SimulationConfig` (dataset,
  system, noise, seed — everything that determines the simulation),
* the policy fingerprint — class name, policy name and constructor
  state (``vars(policy)`` minus cosmetics), and
* the code fingerprint — ``repro.__version__`` plus a digest of the
  simulation-relevant source (``core``, ``datasets``, ``perfmodel``,
  ``sim``, and the shared config/rng/units modules) and this module's
  ``CACHE_SCHEMA_VERSION``.

Invalidation rule: there is none to run by hand. Any change to the
scenario, the policy, or the simulator's own source changes the key
(a *miss*, never a stale hit); bumping ``CACHE_SCHEMA_VERSION`` or the
package version retires every prior entry wholesale. The directory is
safe to delete at any time.

Unsupported combinations (policies raising
:class:`~repro.errors.PolicyError`, the paper's "Does not support"
cells) are cached too, as ``{"error": ...}`` entries, so warm sweeps
re-simulate nothing at all.

Writes are atomic (temp file + :func:`os.replace`), making one cache
directory safe to share between concurrently sweeping processes.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .. import __version__
from ..errors import ConfigurationError
from ..sim import Policy, SimulationConfig, SimulationResult

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CachedOutcome",
    "ResultCache",
    "cell_key",
    "code_fingerprint",
    "policy_fingerprint",
]

#: Bump to invalidate every existing cache entry (serialization changes).
CACHE_SCHEMA_VERSION = 1

#: Policy instance attributes that do not affect simulation output.
_COSMETIC_ATTRS = ("display_name",)

#: Everything a simulation's *output* depends on, relative to the
#: ``repro`` package root. Experiments/loader/runtime are deliberately
#: excluded — editing the harness must not retire cached simulations.
_SIMULATION_SOURCES = (
    "config.py",
    "errors.py",
    "rng.py",
    "units.py",
    "core",
    "datasets",
    "perfmodel",
    "sim",
)


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Version + digest of the simulation-relevant source files.

    Editing the simulator (noise model, fetch resolution, policies...)
    must invalidate cached results even though ``__version__`` is only
    bumped per release. Falls back to the bare version when the source
    is not readable (zipped installs).
    """
    import repro

    digest = hashlib.sha256()
    try:
        root = Path(repro.__file__).parent
        for part in _SIMULATION_SOURCES:
            path = root / part
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for f in files:
                digest.update(str(f.relative_to(root)).encode("utf-8"))
                digest.update(f.read_bytes())
    except OSError:
        return __version__
    return f"{__version__}+{digest.hexdigest()[:16]}"


@functools.lru_cache(maxsize=None)
def _source_digest(path: str) -> str | None:
    """Process-lifetime digest of one source file (None if unreadable)."""
    try:
        return hashlib.sha256(Path(path).read_bytes()).hexdigest()[:16]
    except OSError:
        return None


def policy_fingerprint(policy: Policy) -> dict[str, Any]:
    """A stable, JSON-safe identity for a policy instance.

    Covers the class, the machine-readable name (which already encodes
    variants such as ``deepio_ordered``), all constructor state — so
    e.g. ``DoubleBufferPolicy(2)`` and ``DoubleBufferPolicy(8)`` key
    differently — and a digest of the class's defining source file, so
    editing an *out-of-tree* :class:`~repro.sim.policies.base.Policy`
    subclass invalidates its cached results too (in-tree policies are
    already covered by :func:`code_fingerprint`).

    Non-JSON-serializable state raises a clear
    :class:`~repro.errors.ConfigurationError` rather than falling back
    to ``repr`` — an elided/unstable repr could alias two different
    policies onto one key and serve stale results.
    """
    try:
        raw_state = vars(policy)
    except TypeError as exc:
        raise ConfigurationError(
            f"policy {type(policy).__qualname__!r} has no __dict__ (slots-based "
            "class?); cached sweeps need inspectable, JSON-safe policy state "
            "(or run with cache_dir=None)"
        ) from exc
    state = {k: v for k, v in sorted(raw_state.items()) if k not in _COSMETIC_ATTRS}
    for attr, value in state.items():
        try:
            json.dumps(value)
        except TypeError as exc:
            raise ConfigurationError(
                f"policy {type(policy).__qualname__!r} attribute {attr!r} "
                f"({type(value).__name__}) is not JSON-serializable; cached "
                "sweeps need JSON-safe policy state (or run with cache_dir=None)"
            ) from exc
    try:
        source_file = inspect.getsourcefile(type(policy))
    except TypeError:
        source_file = None
    return {
        "class": type(policy).__qualname__,
        "name": policy.name,
        "state": state,
        "source": _source_digest(source_file) if source_file else None,
    }


def cell_key(config: SimulationConfig, policy: Policy) -> str:
    """The content hash addressing one (config, policy) cell."""
    return cell_key_from_dict(config.to_dict(), policy)


def cell_key_from_dict(config_dict: dict[str, Any], policy: Policy) -> str:
    """:func:`cell_key` for an already-serialized config (no re-encode)."""
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "code": code_fingerprint(),
        "config": config_dict,
        "policy": policy_fingerprint(policy),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CachedOutcome:
    """A memoized cell: either a result or a recorded PolicyError."""

    result: SimulationResult | None
    error: str | None

    @property
    def supported(self) -> bool:
        """Whether the policy ran on this scenario."""
        return self.result is not None


class ResultCache:
    """Filesystem-backed store of :class:`CachedOutcome` s by cell key."""

    #: Orphaned temp files older than this are swept on init. The age
    #: guard protects a *concurrent* writer's in-flight temp file.
    _TMP_MAX_AGE_S = 600.0

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Read the umask once (os.umask is set-and-restore, a process
        # global — toggling it per write would race other threads).
        umask = os.umask(0)
        os.umask(umask)
        self._entry_mode = 0o666 & ~umask
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove temp files orphaned by a killed writer (best effort)."""
        cutoff = time.time() - self._TMP_MAX_AGE_S
        for tmp in self.root.glob("*/*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
            except OSError:
                continue

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (two-level sharding)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> CachedOutcome | None:
        """The memoized outcome for ``key``, or None on a miss.

        Unreadable or malformed entries (truncated writes from a killed
        process, foreign files, wrong-shaped JSON) are treated as
        misses rather than errors.
        """
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
            result = data.get("result")
            error = data.get("error")
            if result is None and error is None:
                # A legitimate entry always carries a result or an
                # error (possibly empty-stringed); a dict with neither
                # (e.g. `{}`) is foreign.
                return None
            return CachedOutcome(
                result=None if result is None else SimulationResult.from_dict(result),
                error=error,
            )
        except (OSError, json.JSONDecodeError, AttributeError, KeyError, TypeError, ValueError):
            return None

    def put(
        self,
        key: str,
        outcome: CachedOutcome,
        result_dict: dict[str, Any] | None = None,
    ) -> None:
        """Persist ``outcome`` under ``key`` (atomic replace).

        ``result_dict`` lets callers that already hold the serialized
        result (the sweep runner) skip a redundant ``to_dict``.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        if result_dict is None and outcome.result is not None:
            result_dict = outcome.result.to_dict()
        entry = {
            "key": key,
            "schema": CACHE_SCHEMA_VERSION,
            "code": code_fingerprint(),
            "result": result_dict,
            "error": outcome.error,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                # fdopen owns fd first so a failing fchmod can't leak it.
                # mkstemp creates 0600 files; restore umask-governed modes
                # so a shared cache directory stays readable across users.
                # (fchmod is Unix-only; elsewhere the 0600 default stands.)
                if hasattr(os, "fchmod"):
                    os.fchmod(fh.fileno(), self._entry_mode)
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def count(self) -> int:
        """Number of stored entries (walks the directory; O(entries)).

        Deliberately not ``__len__``: that would make an *empty* cache
        falsy, turning the natural ``if cache:`` into a bug.
        """
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __contains__(self, key: str) -> bool:
        """Whether :meth:`get` would serve ``key`` (not mere existence)."""
        return self.get(key) is not None
