"""Pluggable sweep execution: the :class:`Executor` protocol.

:class:`~repro.sweep.runner.SweepRunner` no longer hard-wires *how*
cache misses get simulated — it hands the pending cells to an executor
and records whatever comes back. Three implementations ship:

``serial`` (:class:`SerialExecutor`)
    In-process, one cell at a time — easiest to debug/profile. One
    shared :class:`~repro.sim.engine.Simulator` per scenario reuses the
    expensive access streams across consecutive cells on the same
    config (Fig 8's nine policies on one scenario build their streams
    once), keeping only the *current* scenario's streams alive.

``process`` (:class:`ProcessExecutor`)
    One cell per :class:`~concurrent.futures.ProcessPoolExecutor`
    task. Maximum scheduling freedom, but every cell pays a fresh
    ``Simulator`` — the access streams are rebuilt per *cell*.

``batched`` (:class:`BatchedExecutor`) — **the default when
``n_jobs > 1``**
    Groups cells by their *seed-invariant* scenario fingerprint (the
    canonical serialized config minus ``seed``) and dispatches whole
    *scenario batches* to workers: each worker rebuilds one
    ``Simulator`` and runs all of that scenario's policies — across
    every noise seed in the batch — through the engine's seed-sharing
    path (:meth:`~repro.sim.engine.Simulator.run_seed`). This
    amortizes spawn/pickle overhead and restores the serial path's
    stream reuse under parallelism, and cells that differ only in
    ``SimulationConfig.seed`` (the paper's Sec 7 multi-seed
    replications) additionally share the dataset size tables, prepared
    policies and plan scalars instead of rebuilding them per cell.

All three produce **bitwise-identical** results: every path simulates
from the same serialized config, and the simulator is deterministic in
the config's seed. Executors emit typed
:mod:`~repro.sweep.events` progress events (cell started / finished /
unsupported) through the ``emit`` callback — always from the sweeping
process, never from workers — and *yield* results as they land, so the
runner can memoize each cell the moment it completes (an interrupted
sweep keeps its finished cells).

Failure contract: a :class:`~repro.errors.PolicyError` is data (an
"unsupported" cell result); any other exception aborts the sweep.
Executors cancel undispatched work, keep draining/yielding the results
that did complete, then raise the first error — so a restart only
re-simulates what truly never ran. The batched worker returns its
partial batch alongside the failure for the same reason.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Protocol, Sequence, runtime_checkable

from ..errors import ConfigurationError, PolicyError
from ..sim import Policy, SimulationConfig, Simulator
from .events import CellFinished, CellStarted, CellUnsupported, SweepEvent
from .grid import SweepCell

__all__ = [
    "EXECUTORS",
    "BatchedExecutor",
    "CellResult",
    "CellTask",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "resolve_executor",
]

#: Executor spec names accepted by :func:`resolve_executor` / the CLI.
EXECUTORS = ("serial", "process", "batched")

#: The event sink executors publish progress through.
Emit = Callable[[SweepEvent], None]


@dataclass(frozen=True)
class CellTask:
    """One pending simulation handed to an executor.

    ``config_dict`` is the cell's serialized config — the runner fills
    it (memoized per config object) for out-of-process executors,
    which must rebuild the config worker-side; in-process executors
    may receive None and use ``cell.config`` directly.

    ``tile_rows`` (the engine's streaming tile height; ``None`` = whole
    epochs) and ``kernel_backend`` (a :data:`repro.sim.KERNEL_BACKENDS`
    name; ``None`` = numpy) are execution knobs, not part of the
    scenario: results are bitwise identical for every value, so both
    deliberately stay out of the config dict and therefore out of the
    cache key.
    """

    index: int
    cell: SweepCell
    config_dict: dict[str, Any] | None = None
    tile_rows: int | None = None
    kernel_backend: str | None = None


@dataclass(frozen=True)
class CellResult:
    """One completed simulation, in the wire format the cache stores.

    Either ``result_dict`` (a serialized
    :class:`~repro.sim.result.SimulationResult`) or ``error`` (the
    recorded :class:`~repro.errors.PolicyError` message) is set —
    mirroring :class:`~repro.sweep.cache.CachedOutcome`.
    """

    index: int
    result_dict: dict[str, Any] | None
    error: str | None
    elapsed_s: float = 0.0

    @property
    def supported(self) -> bool:
        """Whether the policy ran on this scenario."""
        return self.result_dict is not None


@runtime_checkable
class Executor(Protocol):
    """How a batch of pending cells gets simulated.

    Implementations yield a :class:`CellResult` per task, in completion
    order, emitting progress events along the way; ``name`` labels the
    strategy in stats and manifests; ``in_process`` tells the runner
    whether tasks need their configs serialized (workers in other
    processes cannot share the parent's objects).
    """

    name: str
    in_process: bool

    def execute(
        self, tasks: Sequence[CellTask], emit: Emit
    ) -> Iterator[CellResult]:
        """Simulate ``tasks``, yielding one result each as it completes."""
        ...


def _task_config_dict(task: CellTask) -> dict[str, Any]:
    """The serialized config a pool payload needs (runner pre-fills it)."""
    if task.config_dict is not None:
        return task.config_dict
    return task.cell.config.to_dict()


def _simulate_cell(
    payload: tuple[dict[str, Any], Policy, int | None, str | None],
) -> tuple[dict[str, Any] | None, str | None, float]:
    """Run one cell from its serialized form (top-level: picklable).

    Returns ``(result_dict, None, elapsed)`` or ``(None, policy_error,
    elapsed)``. The result crosses the process boundary in dict form —
    the same representation the cache stores — so every path through
    the runner yields results reconstructed by the same (lossless)
    deserializer.
    """
    config_dict, policy, tile_rows, kernel_backend = payload
    config = SimulationConfig.from_dict(config_dict)
    start = time.perf_counter()
    try:
        result = Simulator(
            config, tile_rows=tile_rows, kernel_backend=kernel_backend
        ).run(policy)
    except PolicyError as exc:
        return None, str(exc), time.perf_counter() - start
    return result.to_dict(), None, time.perf_counter() - start


def _consecutive_groups(items: Sequence, key: Callable) -> Iterator[list]:
    """Split ``items`` into maximal runs sharing ``key(item)``."""
    group: list = []
    group_key = None
    for item in items:
        item_key = key(item)
        if group and item_key != group_key:
            yield group
            group = []
        group_key = item_key
        group.append(item)
    if group:
        yield group


def _simulate_batch(
    payload: tuple[
        dict[str, Any], list[tuple[int, Policy, int]], int | None, str | None
    ],
) -> tuple[list[tuple[int, dict[str, Any] | None, str | None, float]], BaseException | None]:
    """Run one scenario batch: one Simulator, many (policy, seed) cells.

    Top-level so it pickles. ``config_dict`` is the batch's first
    cell's config; the other cells may differ only in ``seed``.
    Consecutive cells sharing a seed run together through the engine's
    epoch-major multi-policy path
    (:meth:`~repro.sim.engine.Simulator.run_many_seed`), which layers
    the cross-policy permutation/size/noise-state sharing on top of the
    seed sharing (dataset size tables, shareable prepared policies,
    plan scalars) — bitwise identical to fresh per-cell runs either
    way. Grouped cells report the group's mean per-cell wall time.

    Returns ``(completed_cells, failure)``: on an unexpected error the
    cells that finished *before* it are returned alongside the
    exception, so the parent can memoize them before re-raising — a
    crash mid-batch loses only the crashing cell's work. (A group that
    crashes re-runs its cells one at a time — determinism makes the
    re-run bitwise free — to keep that per-cell guarantee.)
    """
    config_dict, items, tile_rows, kernel_backend = payload
    sim = Simulator(
        SimulationConfig.from_dict(config_dict),
        tile_rows=tile_rows,
        kernel_backend=kernel_backend,
    )
    done: list[tuple[int, dict[str, Any] | None, str | None, float]] = []

    def run_one(
        index: int, policy: Policy, seed: int
    ) -> BaseException | None:
        start = time.perf_counter()
        try:
            raw: tuple[dict[str, Any] | None, str | None] = (
                sim.run_seed(policy, seed).to_dict(),
                None,
            )
        except PolicyError as exc:
            raw = (None, str(exc))
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent to re-raise
            return exc
        done.append((index, raw[0], raw[1], time.perf_counter() - start))
        return None

    for group in _consecutive_groups(items, key=lambda item: item[2]):
        if len(group) == 1:
            failure = run_one(*group[0])
            if failure is not None:
                return done, failure
            continue
        start = time.perf_counter()
        try:
            outcomes = sim.run_many_seed(
                [policy for _, policy, _ in group], group[0][2]
            )
        except BaseException as first_exc:  # noqa: BLE001 - recover per cell
            for index, policy, seed in group:
                failure = run_one(index, policy, seed)
                if failure is not None:
                    return done, failure
            return done, first_exc
        elapsed = (time.perf_counter() - start) / len(group)
        for (index, _, _), outcome in zip(group, outcomes):
            if isinstance(outcome, PolicyError):
                done.append((index, None, str(outcome), elapsed))
            else:
                done.append((index, outcome.to_dict(), None, elapsed))
    return done, None


def _emit_completion(emit: Emit, task: CellTask, result: CellResult) -> None:
    """Publish the finished/unsupported event for one completed cell."""
    if result.supported:
        emit(CellFinished(tag=task.cell.tag, index=task.index, elapsed_s=result.elapsed_s))
    else:
        emit(
            CellUnsupported(
                tag=task.cell.tag, index=task.index, error=result.error or ""
            )
        )


def _run_cell(sim: Simulator, task: CellTask, emit: Emit) -> CellResult:
    """One cell through ``Simulator.run``, timed, completion emitted."""
    start = time.perf_counter()
    try:
        raw: tuple[dict[str, Any] | None, str | None] = (
            sim.run(task.cell.policy).to_dict(),
            None,
        )
    except PolicyError as exc:
        raw = (None, str(exc))
    result = CellResult(
        index=task.index,
        result_dict=raw[0],
        error=raw[1],
        elapsed_s=time.perf_counter() - start,
    )
    _emit_completion(emit, task, result)
    return result


class SerialExecutor:
    """In-process execution with per-scenario Simulator reuse.

    Consecutive cells on one scenario (Fig 8's nine policies on one
    config) run together through the engine's epoch-major
    :meth:`~repro.sim.engine.Simulator.run_many_outcomes`, so the
    scenario's permutations, size gathers and noise RNG states are
    materialized once per epoch for the whole group — bitwise identical
    to per-cell runs. Grouped cells report the group's mean per-cell
    wall time; a group hit by an unexpected error re-runs its cells
    one at a time so finished cells still land before the error
    propagates.
    """

    name = "serial"
    in_process = True

    def execute(self, tasks: Sequence[CellTask], emit: Emit) -> Iterator[CellResult]:
        """Simulate each task in order, yielding results as they finish."""
        # Share one Simulator across consecutive cells on the same
        # config — but keep only the *current* one alive (grids are
        # config-major; retaining every scenario's streams would
        # balloon peak memory on many-config sweeps).
        for group in _consecutive_groups(
            tasks,
            key=lambda t: (id(t.cell.config), t.tile_rows, t.kernel_backend),
        ):
            sim = Simulator(
                group[0].cell.config,
                tile_rows=group[0].tile_rows,
                kernel_backend=group[0].kernel_backend,
            )
            for task in group:
                emit(CellStarted(tag=task.cell.tag, index=task.index))
            if len(group) == 1:
                yield _run_cell(sim, group[0], emit)
                continue
            start = time.perf_counter()
            try:
                outcomes = sim.run_many_outcomes(
                    [task.cell.policy for task in group]
                )
            except BaseException:  # noqa: BLE001 - recover per cell, then re-raise
                # Unexpected crash somewhere in the group: re-run one
                # cell at a time (determinism makes the re-run bitwise
                # free) so the cells before the crashing one still
                # yield — and get memoized — before the error aborts
                # the sweep.
                for task in group:
                    yield _run_cell(sim, task, emit)
                raise
            elapsed = (time.perf_counter() - start) / len(group)
            for task, outcome in zip(group, outcomes):
                if isinstance(outcome, PolicyError):
                    result = CellResult(
                        index=task.index,
                        result_dict=None,
                        error=str(outcome),
                        elapsed_s=elapsed,
                    )
                else:
                    result = CellResult(
                        index=task.index,
                        result_dict=outcome.to_dict(),
                        error=None,
                        elapsed_s=elapsed,
                    )
                _emit_completion(emit, task, result)
                yield result


class _PoolExecutorBase:
    """Shared pool plumbing: submit, drain, cancel-on-failure, raise."""

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ConfigurationError("executor max_workers must be >= 1")
        self.max_workers = int(max_workers)

    def _drain(self, futures: dict, handle) -> Iterator[CellResult]:
        """Yield results as futures land; cancel the rest on first failure.

        ``handle(futures[future], future.result())`` turns one future's
        payload into CellResults (or raises what the worker shipped).
        Memoization happens caller-side per yielded result, so cells
        completed before an unexpected failure survive a restart.
        """
        first_error: BaseException | None = None
        for future in as_completed(futures):
            try:
                payload = future.result()
            except BaseException as exc:  # noqa: BLE001 - deferred re-raise below
                if first_error is None:
                    first_error = exc
                    for other in futures:
                        other.cancel()
                continue
            try:
                yield from handle(futures[future], payload)
            except GeneratorExit:
                # The consumer closed us mid-drain (it raised between
                # results); cancel what we can and let close() proceed.
                for other in futures:
                    other.cancel()
                raise
            except BaseException as exc:  # noqa: BLE001 - worker-shipped failure
                if first_error is None:
                    first_error = exc
                    for other in futures:
                        other.cancel()
        if first_error is not None:
            raise first_error


class ProcessExecutor(_PoolExecutorBase):
    """One cell per pool task (the historical ``n_jobs > 1`` path)."""

    name = "process"
    in_process = False

    def execute(self, tasks: Sequence[CellTask], emit: Emit) -> Iterator[CellResult]:
        """Fan one pool task out per cell; yield in completion order."""
        if len(tasks) == 1:
            # A lone cell (Session.run, a warm sweep's single miss)
            # is not worth a worker process — run it in-process, as
            # the pre-protocol runner did. Results are identical.
            yield from SerialExecutor().execute(tasks, emit)
            return
        workers = max(1, min(self.max_workers, len(tasks)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: dict = {}
            for task in tasks:
                future = pool.submit(
                    _simulate_cell,
                    (
                        _task_config_dict(task),
                        task.cell.policy,
                        task.tile_rows,
                        task.kernel_backend,
                    ),
                )
                futures[future] = task
                emit(CellStarted(tag=task.cell.tag, index=task.index))

            def handle(task: CellTask, payload) -> Iterator[CellResult]:
                result_dict, error, elapsed = payload
                result = CellResult(
                    index=task.index,
                    result_dict=result_dict,
                    error=error,
                    elapsed_s=elapsed,
                )
                _emit_completion(emit, task, result)
                yield result

            yield from self._drain(futures, handle)


class BatchedExecutor(_PoolExecutorBase):
    """Scenario-batched dispatch: one Simulator per scenario per worker.

    Cells are grouped by their *seed-invariant* scenario fingerprint —
    the canonical serialized config minus ``seed`` — in first-seen
    order, so two equal-but-distinct config objects still share one
    batch, and so do cells that differ only in their noise seed. Each
    batch is one pool task: the worker rebuilds the scenario's
    ``Simulator`` once and runs every (policy, seed) cell in the batch
    through the engine's seed-sharing path.
    """

    name = "batched"
    in_process = False

    @staticmethod
    def group(tasks: Sequence[CellTask]) -> list[list[CellTask]]:
        """Batches of tasks sharing one scenario, in first-seen order."""
        # The serialization memo keys on the config *object* (kept
        # alive by its cell, so ids cannot be recycled mid-loop), while
        # batches key on the canonical seed-stripped JSON — equal-but-
        # distinct configs still share one batch, as do seed replicas
        # of the same scenario (the worker re-seeds per cell through
        # Simulator.run_seed).
        group_keys: dict[int, str] = {}  # id(cell.config) -> seedless JSON
        batches: dict[tuple[str, int | None, str | None], list[CellTask]] = {}
        for task in tasks:
            config_id = id(task.cell.config)
            group_key = group_keys.get(config_id)
            if group_key is None:
                config_dict = _task_config_dict(task)
                group_key = group_keys[config_id] = json.dumps(
                    {k: v for k, v in config_dict.items() if k != "seed"},
                    sort_keys=True,
                    separators=(",", ":"),
                )
            # tile_rows / kernel_backend ride along in the key (not the
            # scenario JSON): a batch shares one Simulator, so it must
            # be uniform in its execution knobs.
            batches.setdefault(
                (group_key, task.tile_rows, task.kernel_backend), []
            ).append(task)
        return list(batches.values())

    def execute(self, tasks: Sequence[CellTask], emit: Emit) -> Iterator[CellResult]:
        """Fan one pool task out per scenario batch; yield per cell."""
        if len(tasks) == 1:
            # A lone cell is not worth a worker process (see
            # ProcessExecutor); the serial path shares its semantics.
            yield from SerialExecutor().execute(tasks, emit)
            return
        batches = self.group(tasks)
        workers = max(1, min(self.max_workers, len(batches)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: dict = {}
            for batch in batches:
                payload = (
                    _task_config_dict(batch[0]),
                    [(t.index, t.cell.policy, t.cell.config.seed) for t in batch],
                    batch[0].tile_rows,
                    batch[0].kernel_backend,
                )
                future = pool.submit(_simulate_batch, payload)
                futures[future] = batch
                for task in batch:
                    emit(CellStarted(tag=task.cell.tag, index=task.index))
            by_index = {task.index: task for task in tasks}

            def handle(batch: list[CellTask], payload) -> Iterator[CellResult]:
                done, failure = payload
                for index, result_dict, error, elapsed in done:
                    task = by_index[index]
                    result = CellResult(
                        index=index,
                        result_dict=result_dict,
                        error=error,
                        elapsed_s=elapsed,
                    )
                    _emit_completion(emit, task, result)
                    yield result
                if failure is not None:
                    raise failure

            yield from self._drain(futures, handle)


def resolve_executor(spec: "str | Executor | None", n_jobs: int) -> Executor:
    """Normalize an executor naming to a live instance.

    ``None`` picks the default for the worker count: ``serial`` when
    ``n_jobs == 1`` (in-process, debuggable, stream-reusing), else
    ``batched`` (the parallel path that keeps the stream reuse).
    Strings name the built-ins; anything implementing the protocol
    passes through — the seam a distributed executor plugs into.
    """
    if spec is None:
        spec = "serial" if n_jobs == 1 else "batched"
    if isinstance(spec, str):
        if spec == "serial":
            return SerialExecutor()
        if spec == "process":
            return ProcessExecutor(n_jobs)
        if spec == "batched":
            return BatchedExecutor(n_jobs)
        raise ConfigurationError(
            f"unknown executor {spec!r}; known: {', '.join(EXECUTORS)}"
        )
    if isinstance(spec, Executor):
        return spec
    raise ConfigurationError(
        f"cannot interpret {type(spec).__name__!r} as a sweep executor"
    )
