"""Pluggable cache storage: the :class:`CacheBackend` protocol.

:class:`~repro.sweep.cache.ResultCache` and the lifecycle tooling in
:mod:`repro.sweep.gc` (stats, GC, verify, shard merge) do not touch the
filesystem directly any more — they speak this protocol, which models a
cache as a flat store of *entry texts* keyed by content hash plus one
sidecar *index* document (the hit-count ledger):

* :class:`LocalDirBackend` — the original on-disk layout
  (``<root>/<key[:2]>/<key>.json``, atomic temp-file writes, mtime as
  the LRU clock, a ``_quarantine/`` corner for damaged entries).
* :class:`InMemoryBackend` — the same contract in a dict; for tests,
  ephemeral sweeps, and as the reference implementation of the
  protocol's semantics. ``mem:NAME`` specs share one process-wide
  instance per name, so two sessions in one process can share a cache.

Backends are named by URL-style specs (``dir:/path/to/cache``,
``mem:``, ``mem:shared``; a bare path means ``dir:``) parsed by
:func:`parse_cache_spec`; :func:`register_backend_scheme` is the hook
the ROADMAP's remote object-store backend plugs into — implement the
protocol, register a scheme, and every consumer (``SweepRunner``,
``Session(cache=...)``, ``python -m repro sweep run --cache``, gc,
verify, merge) can use it unchanged.

Protocol semantics every implementation must honour:

* ``write`` is atomic: a concurrent ``read`` sees the old text, the
  new text, or a miss — never a torn document.
* ``touch`` (and every successful ``read``-side hit recorded by the
  cache above) advances the entry's LRU clock, observable via
  ``stat().mtime``.
* ``quarantine`` removes the entry from ``keys()``/``read()`` without
  destroying the bytes (operators may inspect them); ``quarantined()``
  counts what has been set aside.
* The index document is opaque text to the backend; only
  :class:`~repro.sweep.gc.CacheIndex` interprets it.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Protocol, runtime_checkable

from ..errors import ConfigurationError

__all__ = [
    "QUARANTINE_DIR",
    "CacheBackend",
    "EntryStat",
    "InMemoryBackend",
    "LocalDirBackend",
    "as_backend",
    "memory_backend",
    "parse_cache_spec",
    "register_backend_scheme",
]

#: Subdirectory corrupt entries are moved to (dir backends).
QUARANTINE_DIR = "_quarantine"

#: Entry files live in two-hex-char shard dirs; this glob skips the
#: index, quarantine and temp files that share the cache root.
_ENTRY_GLOB = "[0-9a-f][0-9a-f]/*.json"

#: The sidecar hit-index document's on-disk name.
_INDEX_FILENAME = "index.json"


@dataclass(frozen=True)
class EntryStat:
    """One entry's storage stats; ``mtime`` doubles as the LRU clock."""

    key: str
    size_bytes: int
    mtime: float
    mtime_ns: int


@runtime_checkable
class CacheBackend(Protocol):
    """Flat keyed storage for cache entry texts plus one index document.

    See the module docstring for the semantics implementations must
    honour. All texts are UTF-8 JSON documents, but the backend treats
    them as opaque strings — serialization lives in
    :class:`~repro.sweep.cache.ResultCache`.
    """

    @property
    def url(self) -> str:
        """The spec that names this store (``dir:/path``, ``mem:...``)."""
        ...

    def prepare(self) -> None:
        """Make the store ready for writes (create it, sweep litter)."""
        ...

    def read(self, key: str) -> str | None:
        """The entry text for ``key``, or None when absent."""
        ...

    def write(self, key: str, text: str, mtime_ns: int | None = None) -> None:
        """Atomically store ``text`` under ``key``.

        ``mtime_ns`` pins the entry's LRU clock (cache merges preserve
        the source's recency); None means "now".
        """
        ...

    def delete(self, key: str) -> bool:
        """Remove ``key``; False when absent or not removable."""
        ...

    def keys(self) -> Iterator[str]:
        """Every stored (non-quarantined) entry key."""
        ...

    def stat(self, key: str) -> EntryStat | None:
        """Size/recency for ``key``, or None when absent."""
        ...

    def touch(self, key: str) -> None:
        """Advance ``key``'s LRU clock to now (best effort)."""
        ...

    def quarantine(self, key: str) -> bool:
        """Set a damaged entry aside so it reads as a miss from now on."""
        ...

    def quarantined(self) -> int:
        """How many entries have been quarantined."""
        ...

    def quarantine_label(self) -> str:
        """Where quarantined entries live, for human-facing reports."""
        ...

    def read_index(self) -> str | None:
        """The sidecar index document, or None when absent."""
        ...

    def write_index(self, text: str) -> None:
        """Atomically replace the sidecar index document."""
        ...

    def same_store(self, other: "CacheBackend") -> bool:
        """Whether ``other`` addresses this same underlying store."""
        ...


def _atomic_write_text(
    path: Path, text: str, mode: int | None = None, mtime_ns: int | None = None
) -> None:
    """Crash-safe text write: temp file in the target dir + atomic replace."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            # fdopen owns fd first so a failing fchmod can't leak it.
            if mode is not None and hasattr(os, "fchmod"):
                os.fchmod(fh.fileno(), mode)
            fh.write(text)
        if mtime_ns is not None:
            os.utime(tmp, ns=(mtime_ns, mtime_ns))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class LocalDirBackend:
    """The on-disk cache layout behind a :class:`CacheBackend` face.

    Layout: ``<root>/<key[:2]>/<key>.json`` entry files,
    ``<root>/index.json`` for the hit index, ``<root>/_quarantine/``
    for damaged entries. Writes are atomic (temp file +
    :func:`os.replace`), making one directory safe to share between
    concurrently sweeping processes; entry mtimes carry LRU recency.
    """

    #: Orphaned temp files older than this are swept by :meth:`prepare`.
    #: The age guard protects a *concurrent* writer's in-flight file.
    _TMP_MAX_AGE_S = 600.0

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        # Read the umask once (os.umask is set-and-restore, a process
        # global — toggling it per write would race other threads).
        umask = os.umask(0)
        os.umask(umask)
        #: Entries are 0666&~umask so shared caches stay readable
        #: across users (mkstemp's 0600 default would not be).
        self._entry_mode = 0o666 & ~umask

    @property
    def url(self) -> str:
        """The ``dir:`` spec naming this store."""
        return f"dir:{self.root}"

    def prepare(self) -> None:
        """Create the root and sweep temp files orphaned by killed writers."""
        self.root.mkdir(parents=True, exist_ok=True)
        cutoff = time.time() - self._TMP_MAX_AGE_S
        for tmp in (*self.root.glob("*.tmp"), *self.root.glob("*/*.tmp")):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
            except OSError:
                continue

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (two-level sharding)."""
        return self.root / key[:2] / f"{key}.json"

    def read(self, key: str) -> str | None:
        """The entry text for ``key``, or None when absent/unreadable."""
        try:
            return self.path_for(key).read_text()
        except OSError:
            return None

    def write(self, key: str, text: str, mtime_ns: int | None = None) -> None:
        """Atomic entry write (temp file + replace); ``mtime_ns`` pins LRU."""
        _atomic_write_text(
            self.path_for(key), text, mode=self._entry_mode, mtime_ns=mtime_ns
        )

    def delete(self, key: str) -> bool:
        """Unlink ``key``'s entry file; False when absent/undeletable."""
        try:
            self.path_for(key).unlink()
        except OSError:
            return False
        return True

    def keys(self) -> Iterator[str]:
        """Every entry key (shard-dir files only; skips index/quarantine)."""
        for path in self.root.glob(_ENTRY_GLOB):
            yield path.stem

    def stat(self, key: str) -> EntryStat | None:
        """Size and mtime (the LRU clock) of ``key``'s entry file."""
        try:
            st = self.path_for(key).stat()
        except OSError:
            return None
        return EntryStat(
            key=key, size_bytes=st.st_size, mtime=st.st_mtime, mtime_ns=st.st_mtime_ns
        )

    def touch(self, key: str) -> None:
        """Bump the entry's mtime to now."""
        try:
            os.utime(self.path_for(key))  # best-effort (read-only mounts)
        except OSError:
            pass

    def quarantine(self, key: str) -> bool:
        """Move a damaged entry to ``_quarantine/`` (reads miss from now on)."""
        qdir = self.root / QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(self.path_for(key), qdir / f"{key}.json")
        except OSError:
            # Last resort (e.g. read-only cache): leave it in place;
            # every read keeps missing it, which is still safe.
            return False
        return True

    def quarantined(self) -> int:
        """How many entries sit in ``_quarantine/``."""
        return sum(1 for _ in (self.root / QUARANTINE_DIR).glob("*.json"))

    def quarantine_label(self) -> str:
        """The quarantine directory, for human-facing reports."""
        return str(self.root / QUARANTINE_DIR)

    def read_index(self) -> str | None:
        """``index.json``'s text, or None when absent."""
        try:
            return (self.root / _INDEX_FILENAME).read_text()
        except OSError:
            return None

    def write_index(self, text: str) -> None:
        """Atomically replace ``index.json``."""
        _atomic_write_text(self.root / _INDEX_FILENAME, text)

    def same_store(self, other: "CacheBackend") -> bool:
        """True when ``other`` is the same directory (resolved paths)."""
        if not isinstance(other, LocalDirBackend):
            return False
        try:
            return self.root.resolve() == other.root.resolve()
        except OSError:
            return self.root == other.root


class InMemoryBackend:
    """A :class:`CacheBackend` in a dict — tests and ephemeral sweeps.

    Process-local (never shared across hosts or processes); pool
    executors still work with it because cache writes always happen in
    the sweeping process. ``name`` gives the store an identity:
    ``memory_backend("shared")`` returns one process-wide instance per
    name, so independently constructed sessions can share entries.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._entries: dict[str, tuple[str, int]] = {}  # key -> (text, mtime_ns)
        self._quarantined: dict[str, str] = {}
        self._index: str | None = None

    @property
    def url(self) -> str:
        """The ``mem:`` spec naming this store."""
        return f"mem:{self.name}"

    def prepare(self) -> None:
        """Nothing to create: the dict is always ready."""

    def read(self, key: str) -> str | None:
        """The entry text for ``key``, or None when absent."""
        entry = self._entries.get(key)
        return None if entry is None else entry[0]

    def write(self, key: str, text: str, mtime_ns: int | None = None) -> None:
        """Store ``text`` under ``key`` (dict assignment is atomic)."""
        self._entries[key] = (text, time.time_ns() if mtime_ns is None else mtime_ns)

    def delete(self, key: str) -> bool:
        """Drop ``key``; False when absent."""
        return self._entries.pop(key, None) is not None

    def keys(self) -> Iterator[str]:
        """Every stored (non-quarantined) entry key."""
        yield from list(self._entries)

    def stat(self, key: str) -> EntryStat | None:
        """Size (UTF-8 bytes) and write/touch recency of ``key``."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        text, mtime_ns = entry
        return EntryStat(
            key=key,
            size_bytes=len(text.encode("utf-8")),
            mtime=mtime_ns / 1e9,
            mtime_ns=mtime_ns,
        )

    def touch(self, key: str) -> None:
        """Advance ``key``'s LRU clock to now."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries[key] = (entry[0], time.time_ns())

    def quarantine(self, key: str) -> bool:
        """Set a damaged entry aside (kept for inspection, reads miss)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._quarantined[key] = entry[0]
        return True

    def quarantined(self) -> int:
        """How many entries have been set aside."""
        return len(self._quarantined)

    def quarantine_label(self) -> str:
        """A synthetic location label for reports (no real directory)."""
        return f"{self.url}#{QUARANTINE_DIR}"

    def read_index(self) -> str | None:
        """The index document, or None when never written."""
        return self._index

    def write_index(self, text: str) -> None:
        """Replace the index document."""
        self._index = text

    def same_store(self, other: "CacheBackend") -> bool:
        """Identity: only this very instance is the same store."""
        return other is self


#: Process-wide named in-memory stores (``mem:NAME`` specs).
_NAMED_MEMORY: dict[str, InMemoryBackend] = {}


def memory_backend(name: str = "") -> InMemoryBackend:
    """An in-memory backend; named ones are process-wide singletons."""
    if not name:
        return InMemoryBackend()
    backend = _NAMED_MEMORY.get(name)
    if backend is None:
        backend = _NAMED_MEMORY[name] = InMemoryBackend(name)
    return backend


def _dir_backend_from_spec(rest: str) -> LocalDirBackend:
    if not rest:
        raise ConfigurationError("cache spec 'dir:' needs a path (e.g. dir:.sweep-cache)")
    return LocalDirBackend(rest)


#: Spec scheme -> factory taking the text after the colon. Remote
#: backends (the ROADMAP's shared object store) register here.
_SCHEMES: dict[str, Callable[[str], CacheBackend]] = {
    "dir": _dir_backend_from_spec,
    "mem": memory_backend,
}


def register_backend_scheme(scheme: str, factory: Callable[[str], CacheBackend]) -> None:
    """Register ``scheme:rest`` specs to construct backends via ``factory``."""
    if not scheme or not scheme.isalnum():
        raise ConfigurationError(f"invalid backend scheme {scheme!r}")
    _SCHEMES[scheme.lower()] = factory


def parse_cache_spec(spec: "str | Path | CacheBackend") -> CacheBackend:
    """A backend from a URL-style spec (``dir:/path``, ``mem:``, bare path).

    Backend instances pass through unchanged; :class:`~pathlib.Path`
    and scheme-less strings mean a local directory. Single-letter
    schemes are treated as paths, so Windows drive spellings
    (``C:\\cache``) stay directories.
    """
    if isinstance(spec, CacheBackend):  # runtime_checkable: structural
        return spec
    if isinstance(spec, Path):
        return LocalDirBackend(spec)
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"cannot interpret {type(spec).__name__!r} as a cache backend"
        )
    if not spec:
        raise ConfigurationError("empty cache spec; expected dir:PATH, mem:, or a path")
    scheme, sep, rest = spec.partition(":")
    if sep and len(scheme) > 1 and scheme.isalnum():
        # Anything shaped like a scheme must be a *known* scheme: a
        # typo ("men:shared") or an unregistered remote backend must
        # fail loudly, not silently become a junk local directory.
        # (Spell a literal path containing a colon as dir:that/path.)
        factory = _SCHEMES.get(scheme.lower())
        if factory is None:
            raise ConfigurationError(
                f"unknown cache backend scheme {scheme!r} in {spec!r}; "
                f"known: {', '.join(sorted(_SCHEMES))} "
                "(use dir:PATH for a literal path containing ':')"
            )
        return factory(rest)
    return LocalDirBackend(spec)


def as_backend(source: "str | Path | CacheBackend") -> CacheBackend:
    """Normalize any accepted cache naming to a live backend."""
    return parse_cache_spec(source)
