"""Declarative scenario grids: axes in, simulation cells out.

A :class:`ScenarioGrid` is the cartesian product of six axes — dataset,
system, policy, batch size, epoch count and seed — mirroring the shape
of the paper's evaluation (Figs 8–16 are all slices of exactly this
product). Each point expands to a :class:`SweepCell`: one
:class:`~repro.sim.config.SimulationConfig` plus the policy to time on
it, tagged with a hashable label the caller uses to index the sweep's
results.

Experiments with irregular grids (Fig 9 varies the *system* per cell,
Fig 10 applies per-framework system tweaks) skip the product and build
their cell lists directly — :class:`~repro.sweep.runner.SweepRunner`
accepts any iterable of cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Hashable, Iterable, Mapping, Sequence

from ..datasets import DatasetModel
from ..errors import ConfigurationError
from ..perfmodel import SystemModel
from ..rng import DEFAULT_SEED
from ..sim import Policy, SimulationConfig

__all__ = ["ScenarioGrid", "SweepCell"]


@dataclass(frozen=True)
class SweepCell:
    """One grid point: simulate ``policy`` on ``config``.

    ``tag`` is the caller's handle for this cell in the sweep outcome
    (e.g. a policy name for Fig 8, a ``(ram_gb, ssd_gb)`` pair for
    Fig 9). Tags must be hashable and unique within one sweep.
    """

    tag: Hashable
    config: SimulationConfig
    policy: Policy


@dataclass(frozen=True)
class ScenarioGrid:
    """The cartesian product of the paper's six evaluation axes.

    Every combination of ``datasets x systems x policies x batch_sizes
    x epoch_counts x seeds`` becomes one :class:`SweepCell`;
    ``config_options`` (noise, barrier, ``record_batch_times``,
    ``network_interference``) apply to every cell.

    Default tags are ``(dataset.name, system.name, num_workers,
    policy.name, batch_size, num_epochs, seed)`` tuples (the worker
    count distinguishes presets like ``sec6_cluster(2)`` vs
    ``sec6_cluster(4)`` that share a name). Systems that differ in
    other fields only need distinct ``name`` s — duplicate tags are
    rejected when the grid expands.
    """

    datasets: Sequence[DatasetModel]
    systems: Sequence[SystemModel]
    policies: Sequence[Policy]
    batch_sizes: Sequence[int]
    epoch_counts: Sequence[int]
    seeds: Sequence[int] = (DEFAULT_SEED,)
    config_options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for axis in ("datasets", "systems", "policies", "batch_sizes", "epoch_counts", "seeds"):
            if not tuple(getattr(self, axis)):
                raise ConfigurationError(f"grid axis {axis!r} must be non-empty")
        names = [p.name for p in self.policies]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate policy names in grid: {sorted(names)}")

    def __len__(self) -> int:
        return (
            len(self.datasets)
            * len(self.systems)
            * len(self.policies)
            * len(self.batch_sizes)
            * len(self.epoch_counts)
            * len(self.seeds)
        )

    def cells(self) -> list[SweepCell]:
        """Expand the axis product into concrete simulation cells."""
        out: list[SweepCell] = []
        for dataset, system, batch, epochs, seed in product(
            self.datasets, self.systems, self.batch_sizes, self.epoch_counts, self.seeds
        ):
            config = SimulationConfig(
                dataset=dataset,
                system=system,
                batch_size=batch,
                num_epochs=epochs,
                seed=seed,
                **dict(self.config_options),
            )
            for policy in self.policies:
                tag = (
                    dataset.name,
                    system.name,
                    system.num_workers,
                    policy.name,
                    batch,
                    epochs,
                    seed,
                )
                out.append(SweepCell(tag=tag, config=config, policy=policy))
        _require_unique_tags(out)
        return out


def _require_unique_tags(cells: Sequence[SweepCell]) -> None:
    seen: set[Hashable] = set()
    for cell in cells:
        if cell.tag in seen:
            raise ConfigurationError(f"duplicate sweep tag {cell.tag!r}")
        seen.add(cell.tag)


def as_cells(grid: ScenarioGrid | Iterable[SweepCell]) -> list[SweepCell]:
    """Normalize a runner input to a validated cell list."""
    if isinstance(grid, ScenarioGrid):
        return grid.cells()
    cells = list(grid)
    for cell in cells:
        if not isinstance(cell, SweepCell):
            raise ConfigurationError(f"expected SweepCell, got {type(cell).__name__}")
    _require_unique_tags(cells)
    return cells
