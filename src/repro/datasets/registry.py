"""Registry of the paper's evaluation datasets (Sec 6.1 / Sec 7).

Each factory returns a :class:`~repro.datasets.model.DatasetModel` with
the exact ``(mu, sigma, F)`` the paper states for its simulations:

========================  ==========  ===========  ============  ========
dataset                   mu           sigma        F             total
========================  ==========  ===========  ============  ========
MNIST                     0.76 KB      0            50,000        ~40 MB
ImageNet-1k               0.1077 MB    0.1 MB       1,281,167     ~135 GB
OpenImages                0.2937 MB    0.2 MB       1,743,042     ~500 GB
ImageNet-22k              0.1077 MB    0.2 MB       14,197,122    ~1.5 TB
CosmoFlow                 17 MB        0            262,144       ~4 TB
CosmoFlow 512^3           1,000 MB     0            10,000        ~10 TB
========================  ==========  ===========  ============  ========

``get_dataset`` resolves by (case/sep-insensitive) name, and ``scaled``
variants let the benchmark harness run shape-preserving smaller copies.
"""

from __future__ import annotations

from typing import Callable

from ..rng import DEFAULT_SEED
from ..units import KB
from .model import DatasetModel

__all__ = [
    "mnist",
    "imagenet1k",
    "openimages",
    "imagenet22k",
    "cosmoflow",
    "cosmoflow512",
    "get_dataset",
    "list_datasets",
]


def mnist(seed: int = DEFAULT_SEED) -> DatasetModel:
    """MNIST: 50,000 train samples of 0.76 KB (constant size), ~40 MB."""
    return DatasetModel("mnist", 50_000, 0.76 * KB, 0.0, seed=seed)


def imagenet1k(seed: int = DEFAULT_SEED) -> DatasetModel:
    """ImageNet-1k: 1,281,167 samples, N(0.1077 MB, 0.1 MB), ~135 GB."""
    return DatasetModel("imagenet1k", 1_281_167, 0.1077, 0.1, seed=seed)


def openimages(seed: int = DEFAULT_SEED) -> DatasetModel:
    """OpenImages: 1,743,042 samples, N(0.2937 MB, 0.2 MB), ~500 GB."""
    return DatasetModel("openimages", 1_743_042, 0.2937, 0.2, seed=seed)


def imagenet22k(seed: int = DEFAULT_SEED) -> DatasetModel:
    """ImageNet-22k: 14,197,122 samples, N(0.1077 MB, 0.2 MB), ~1.5 TB."""
    return DatasetModel("imagenet22k", 14_197_122, 0.1077, 0.2, seed=seed)


def cosmoflow(seed: int = DEFAULT_SEED) -> DatasetModel:
    """CosmoFlow (MLPerf-HPC): 262,144 samples of 17 MB each, ~4 TB."""
    return DatasetModel("cosmoflow", 262_144, 17.0, 0.0, seed=seed)


def cosmoflow512(seed: int = DEFAULT_SEED) -> DatasetModel:
    """CosmoFlow 512^3: 10,000 samples of 1,000 MB each, ~10 TB."""
    return DatasetModel("cosmoflow512", 10_000, 1000.0, 0.0, seed=seed)


_REGISTRY: dict[str, Callable[[int], DatasetModel]] = {
    "mnist": mnist,
    "imagenet1k": imagenet1k,
    "imagenet-1k": imagenet1k,
    "openimages": openimages,
    "imagenet22k": imagenet22k,
    "imagenet-22k": imagenet22k,
    "cosmoflow": cosmoflow,
    "cosmoflow512": cosmoflow512,
    "cosmoflow-512": cosmoflow512,
}


def list_datasets() -> list[str]:
    """Canonical names of every registered dataset preset."""
    return ["mnist", "imagenet1k", "openimages", "imagenet22k", "cosmoflow", "cosmoflow512"]


def get_dataset(name: str, seed: int = DEFAULT_SEED) -> DatasetModel:
    """Resolve a dataset preset by name (case- and separator-insensitive)."""
    key = name.lower().replace("_", "").replace(" ", "")
    key_dash = name.lower().replace("_", "-").replace(" ", "-")
    for candidate in (key, key_dash, name.lower()):
        if candidate in _REGISTRY:
            return _REGISTRY[candidate](seed)
    raise KeyError(f"unknown dataset {name!r}; known: {list_datasets()}")
