"""Dataset models and the paper's evaluation-dataset registry."""

from .model import DatasetModel
from .registry import (
    cosmoflow,
    cosmoflow512,
    get_dataset,
    imagenet1k,
    imagenet22k,
    list_datasets,
    mnist,
    openimages,
)

__all__ = [
    "DatasetModel",
    "mnist",
    "imagenet1k",
    "openimages",
    "imagenet22k",
    "cosmoflow",
    "cosmoflow512",
    "get_dataset",
    "list_datasets",
]
