"""Dataset models: sample counts and per-sample size distributions.

The paper's simulator describes each dataset by its number of samples
``F`` and a (possibly degenerate) normal distribution of per-sample file
sizes: "datasets with different filesizes are assumed to be distributed
normally and we vary the mu and sigma parameters and the number of
samples, F, to match" (Sec 6.1). :class:`DatasetModel` reproduces exactly
that: it deterministically materializes an ``F``-vector of sizes in MB
from ``(mu, sigma, seed)``.

Sizes are truncated below at ``min_size_mb`` (a file cannot have negative
or zero size); truncation is re-centred so the realized mean stays within
a fraction of a percent of ``mu`` for the paper's parameter ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ConfigMixin
from ..errors import ConfigurationError
from ..rng import DEFAULT_SEED, generator

__all__ = ["DatasetModel"]


@dataclass(frozen=True)
class DatasetModel(ConfigMixin):
    """A dataset as seen by the I/O layer: ``F`` samples with sizes in MB.

    Parameters
    ----------
    name:
        Human-readable dataset name (used in harness output).
    num_samples:
        ``F`` — number of training samples.
    mean_size_mb:
        ``mu`` — mean per-sample file size in MB.
    std_size_mb:
        ``sigma`` — standard deviation of the size distribution in MB.
        ``0`` gives constant-size samples (MNIST, CosmoFlow).
    seed:
        Seed of the size-generation stream (independent of shuffle seeds).
    min_size_mb:
        Lower truncation bound for sampled sizes.
    """

    name: str
    num_samples: int
    mean_size_mb: float
    std_size_mb: float = 0.0
    seed: int = DEFAULT_SEED
    min_size_mb: float = 1e-4
    _cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ConfigurationError("num_samples must be positive")
        if self.mean_size_mb <= 0:
            raise ConfigurationError("mean_size_mb must be positive")
        if self.std_size_mb < 0:
            raise ConfigurationError("std_size_mb must be non-negative")
        if self.min_size_mb <= 0 or self.min_size_mb > self.mean_size_mb:
            raise ConfigurationError("min_size_mb must be in (0, mean_size_mb]")

    # -- sizes ---------------------------------------------------------

    def sizes_mb(self) -> np.ndarray:
        """Per-sample sizes in MB, shape ``(F,)``, float64, deterministic.

        The array is computed once and cached on the instance; callers
        must treat it as read-only (it is marked non-writeable).
        """
        cached = self._cache.get("sizes")
        if cached is None:
            cached = self._generate_sizes()
            cached.setflags(write=False)
            self._cache["sizes"] = cached
        return cached

    def _generate_sizes(self) -> np.ndarray:
        if self.std_size_mb == 0.0:
            return np.full(self.num_samples, self.mean_size_mb, dtype=np.float64)
        rng = generator(self.seed, "dataset-sizes", self.name)
        sizes = rng.normal(self.mean_size_mb, self.std_size_mb, self.num_samples)
        np.clip(sizes, self.min_size_mb, None, out=sizes)
        # Re-centre so truncation does not bias the total dataset size.
        realized = float(sizes.mean())
        if realized > 0:
            sizes *= self.mean_size_mb / realized
            np.clip(sizes, self.min_size_mb, None, out=sizes)
        return sizes

    # -- derived quantities ---------------------------------------------

    @property
    def total_size_mb(self) -> float:
        """``S`` — total dataset size in MB (sum of sample sizes)."""
        return float(self.sizes_mb().sum())

    @property
    def mean_realized_size_mb(self) -> float:
        """Realized mean sample size (equals ``mu`` up to truncation)."""
        return float(self.sizes_mb().mean())

    def iterations_per_epoch(self, global_batch: int, drop_last: bool = True) -> int:
        """``T`` — iterations per epoch for a *global* batch size.

        ``floor(F / B_global)`` when ``drop_last`` (the paper's default),
        otherwise ``ceil``.
        """
        if global_batch <= 0:
            raise ConfigurationError("global batch size must be positive")
        if drop_last:
            return self.num_samples // global_batch
        return -(-self.num_samples // global_batch)

    def scaled(self, factor: float, name: str | None = None) -> "DatasetModel":
        """A copy with ``F`` scaled by ``factor`` (size distribution kept).

        Used by the harness to run shape-preserving, laptop-scale versions
        of the paper's multi-terabyte scenarios.
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return DatasetModel(
            name=name or f"{self.name}-x{factor:g}",
            num_samples=max(1, int(round(self.num_samples * factor))),
            mean_size_mb=self.mean_size_mb,
            std_size_mb=self.std_size_mb,
            seed=self.seed,
            min_size_mb=self.min_size_mb,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatasetModel({self.name!r}, F={self.num_samples}, "
            f"mu={self.mean_size_mb} MB, sigma={self.std_size_mb} MB)"
        )
