"""`Session`: the one entry point for running scenarios and sweeps.

A :class:`Session` wraps a configured
:class:`~repro.sweep.runner.SweepRunner` (executor + worker count +
cache backend) behind two verbs:

* :meth:`Session.run` — one :class:`~repro.api.scenario.Scenario` in,
  one :class:`~repro.sim.result.SimulationResult` out (memoized when
  the session is cache-backed).
* :meth:`Session.sweep` — evaluate a whole grid: a
  :class:`~repro.sweep.grid.ScenarioGrid`, a list of
  :class:`~repro.sweep.grid.SweepCell` s, or a list of
  :class:`Scenario` s (tags default to their fingerprints). ``shard``
  runs only this host's deterministic slice.

The engine, the sweep CLI, the figure modules and any future job-queue
service all sit on the same runner underneath, so results and cache
entries are interchangeable across every path.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Callable, Hashable, Iterable, Mapping, Sequence

from ..errors import ConfigurationError, PolicyError
from ..sim import SimulationResult
from ..sweep.backends import CacheBackend
from ..sweep.cache import ResultCache
from ..sweep.events import ProgressBus, SweepEvent
from ..sweep.executors import Executor
from ..sweep.grid import ScenarioGrid, SweepCell, as_cells
from ..sweep.runner import SweepOutcome, SweepRunner, SweepStats
from ..sweep.shard import ShardSpec
from .scenario import Scenario

__all__ = ["Session"]

#: Grid forms :meth:`Session.sweep` accepts.
GridLike = ScenarioGrid | Iterable[SweepCell | Scenario | Mapping[str, Any]]


class Session:
    """A configured simulation context: executor, worker pool, cache.

    Parameters
    ----------
    jobs:
        Sweep worker processes (``1`` = serial in-process, ``None`` =
        all cores). Results are identical either way.
    cache_dir:
        Root of the on-disk result cache; ``None`` disables caching.
    executor:
        Execution strategy: ``"serial"`` / ``"process"`` /
        ``"batched"``, or any :class:`~repro.sweep.executors.Executor`.
        ``None`` picks the default for ``jobs`` (serial when 1,
        batched otherwise). Results are bitwise-identical across all
        built-in executors.
    cache:
        Alternative to ``cache_dir``: a cache spec string
        (``dir:/path``, ``mem:``, ``mem:shared``) or a live
        :class:`~repro.sweep.backends.CacheBackend` — the seam remote
        cache stores plug into.
    tile_rows:
        Engine streaming tile height (worker rows per execute-phase
        band) to bound peak memory on paper-scale scenarios; ``None``
        executes whole epochs at once. Results and cache entries are
        bitwise identical for every value.
    kernel_backend:
        Kernel backend name from :data:`repro.sim.KERNEL_BACKENDS`
        (``None`` = ``"numpy"``; ``"numba"`` JIT-compiles the
        bit-replicable kernels when numba is installed, falling back
        to numpy with a warning otherwise). Results and cache entries
        are bitwise identical for every backend.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache_dir: str | Path | None = None,
        *,
        executor: "str | Executor | None" = None,
        cache: "str | Path | CacheBackend | ResultCache | None" = None,
        tile_rows: int | None = None,
        kernel_backend: str | None = None,
    ) -> None:
        self._executor_spec = executor
        self._runner = SweepRunner(
            n_jobs=jobs,
            cache_dir=cache_dir,
            executor=executor,
            cache=cache,
            tile_rows=tile_rows,
            kernel_backend=kernel_backend,
        )

    @property
    def runner(self) -> SweepRunner:
        """The underlying sweep runner (shared with figure modules)."""
        return self._runner

    @property
    def cache_dir(self) -> Path | None:
        """The cache root for dir-backed caches; None otherwise."""
        return None if self._runner.cache is None else self._runner.cache.root

    @property
    def bus(self) -> ProgressBus:
        """The progress bus this session's sweeps publish on.

        ``session.bus.subscribe(cb)`` attaches for the session's whole
        life; per-sweep listeners pass ``on_event`` to :meth:`sweep`.
        """
        return self._runner.bus

    @property
    def stats(self) -> SweepStats:
        """Lifetime sweep statistics accumulated by this session."""
        return self._runner.lifetime

    # -- scenario normalization ---------------------------------------

    @staticmethod
    def as_scenario(scenario: "Scenario | Mapping[str, Any] | str") -> Scenario:
        """Coerce a scenario argument: instance, dict, or JSON string."""
        if isinstance(scenario, Scenario):
            return scenario
        if isinstance(scenario, Mapping):
            return Scenario.from_dict(dict(scenario))
        if isinstance(scenario, str):
            return Scenario.from_json(scenario)
        raise ConfigurationError(
            f"cannot interpret {type(scenario).__name__!r} as a Scenario"
        )

    @classmethod
    def as_cells(
        cls,
        grid: GridLike,
        tags: Sequence[Hashable] | None = None,
    ) -> list[SweepCell]:
        """Normalize any grid form to a validated :class:`SweepCell` list.

        ``tags`` supplies explicit labels, one per grid entry,
        positionally — relabelling :class:`SweepCell` entries too.
        Without it, scenario entries (instances or dicts) are tagged
        with their fingerprints and cells keep their own tags.
        """
        if isinstance(grid, ScenarioGrid):
            if tags is not None:
                raise ConfigurationError("tags cannot relabel a ScenarioGrid")
            return grid.cells()
        items = list(grid)
        if tags is not None and len(tags) != len(items):
            raise ConfigurationError(
                f"got {len(tags)} tags for {len(items)} grid entries"
            )
        cells: list[SweepCell] = []
        for i, item in enumerate(items):
            if isinstance(item, SweepCell):
                if tags is not None:
                    item = dataclasses.replace(item, tag=tags[i])
                cells.append(item)
                continue
            scenario = cls.as_scenario(item)
            cells.append(scenario.cell(tag=None if tags is None else tags[i]))
        return as_cells(cells)

    # -- execution -----------------------------------------------------

    def run(self, scenario: "Scenario | Mapping[str, Any] | str") -> SimulationResult:
        """Simulate one scenario (cache-memoized) and return its result.

        Raises :class:`~repro.errors.PolicyError` when the policy
        rejects the scenario (the paper's "Does not support" cells) —
        single-scenario callers want the loud failure, not a sentinel.
        """
        scenario = self.as_scenario(scenario)
        cell = scenario.cell()
        outcome = self._runner.run([cell])
        if outcome.unsupported:
            reason = outcome.errors.get(cell.tag) or "no reason recorded"
            raise PolicyError(f"{scenario.label}: {reason}")
        return outcome[cell.tag]

    def sweep(
        self,
        grid: GridLike,
        *,
        tags: Sequence[Hashable] | None = None,
        shard: ShardSpec | str | None = None,
        strategy: str = "round_robin",
        jobs: int | None = None,
        cache_dir: str | Path | None = None,
        executor: "str | Executor | None" = None,
        cache: "str | Path | CacheBackend | ResultCache | None" = None,
        tile_rows: int | None = None,
        kernel_backend: str | None = None,
        on_event: Callable[[SweepEvent], None] | None = None,
    ) -> SweepOutcome:
        """Evaluate a grid (optionally one shard of it) and collect results.

        ``jobs`` / ``cache_dir`` / ``executor`` / ``cache`` /
        ``tile_rows`` / ``kernel_backend`` override the session's
        configuration for this call only (a one-off runner executes the
        sweep on the session's progress bus; its counters are folded
        into :attr:`stats` so the session totals stay complete).
        ``on_event`` subscribes a progress listener for just this sweep
        — every cell lifecycle transition (:mod:`repro.sweep.events`)
        is delivered to it.
        """
        runner = self._runner
        if any(
            v is not None
            for v in (jobs, cache_dir, executor, cache, tile_rows, kernel_backend)
        ):
            if cache is None and cache_dir is None:
                # Inherit the session's cache *object* so overridden
                # sweeps still share its entries (and its backend).
                cache = self._runner.cache
            runner = SweepRunner(
                n_jobs=self._runner.n_jobs if jobs is None else jobs,
                cache_dir=cache_dir,
                cache=cache,
                # An explicit per-call executor wins; otherwise re-derive
                # from the session's spec so a jobs override still picks
                # the right default (serial for 1, batched above).
                executor=executor if executor is not None else self._executor_spec,
                bus=self._runner.bus,
                tile_rows=(
                    self._runner.tile_rows if tile_rows is None else tile_rows
                ),
                kernel_backend=(
                    self._runner.kernel_backend
                    if kernel_backend is None
                    else kernel_backend
                ),
            )
        unsubscribe = None if on_event is None else runner.bus.subscribe(on_event)
        try:
            cells = self.as_cells(grid, tags=tags)
            if shard is not None:
                outcome = runner.run_shard(cells, shard, strategy)
            else:
                outcome = runner.run(cells)
        finally:
            if unsubscribe is not None:
                unsubscribe()
        if runner is not self._runner:
            self._runner.lifetime.accumulate(outcome.stats)
        return outcome
