"""The library's built-in registries: policies, datasets, systems.

Everything the paper evaluates is registered here by name, so any
scenario is constructible from plain data:

* ``POLICIES`` — the Sec 6 I/O strategy lineup. Families with modes
  use the ``name:variant`` shorthand (``"deepio:opportunistic"``,
  ``"lbann:dynamic"``, ``"pytorch:4"``); every concrete policy
  ``.name`` (``"deepio_ordered"``, ...) resolves via aliases.
* ``DATASETS`` — the Sec 6.1 evaluation datasets (``"mnist"`` ...
  ``"cosmoflow512"``), factories keyed on ``seed``, plus the in-memory
  test dataset ``"fake:tiny|small|medium"`` whose byte-level twin
  (:class:`~repro.ports.fakes.FakeDataset`) the parity harness and the
  runtime tests consume.
* ``SYSTEMS`` — the machine presets (``"sec6_cluster"``,
  ``"piz_daint"``, ``"lassen"``); ``:N`` sets the worker count
  (``"sec6_cluster:8"``).

The module-level helpers :func:`make_policy` / :func:`make_dataset` /
:func:`make_system` are the one-line spellings of
``REGISTRY.create(spec)``. Figure lineups (:data:`FIG8_POLICIES`,
:data:`TABLE1_POLICIES`) are tuples of *names*, so experiment modules
never import a concrete policy class.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..datasets import DatasetModel
from ..datasets import registry as _dataset_registry
from ..perfmodel import SystemModel, lassen, piz_daint, sec6_cluster
from ..ports.fakes import fake_dataset_model as _fake_dataset_model
from ..sim.policies import (
    DeepIOPolicy,
    DoubleBufferPolicy,
    LBANNPolicy,
    LocalityAwarePolicy,
    NaivePolicy,
    NoPFSPolicy,
    ParallelStagingPolicy,
    PerfectPolicy,
    Policy,
    StagingBufferPolicy,
)
from .registry import Registry

__all__ = [
    "DATASETS",
    "FIG8_POLICIES",
    "POLICIES",
    "SYSTEMS",
    "TABLE1_POLICIES",
    "fig8_lineup",
    "make_dataset",
    "make_policy",
    "make_system",
    "table1_lineup",
]

#: The Sec 6 I/O strategies, by name.
POLICIES: Registry = Registry("policy", plural="policies")

#: The Sec 6.1 evaluation datasets, by name.
DATASETS: Registry = Registry("dataset")

#: The machine presets (Sec 6.1 cluster, Piz Daint, Lassen), by name.
SYSTEMS: Registry = Registry("system")


# -- policies ----------------------------------------------------------

POLICIES.register("perfect", PerfectPolicy, summary="No-I/O lower bound: skip fetching entirely")
POLICIES.register("naive", NaivePolicy, summary="Synchronous PFS reads, no prefetch or cache")
POLICIES.register(
    "staging_buffer", StagingBufferPolicy, summary="tf.data-style staging ring, no cache"
)
POLICIES.register(
    "pytorch",
    DoubleBufferPolicy,
    summary="PyTorch DataLoader double buffering (:N = prefetch_batches)",
    variant_param="prefetch_batches",
)
POLICIES.register(
    "deepio",
    DeepIOPolicy,
    summary="DeepIO memory-only first-touch cache (:ordered | :opportunistic)",
    variant_param="mode",
)
POLICIES.register(
    "parallel_staging", ParallelStagingPolicy, summary="Staging phase then node-local reads"
)
POLICIES.register(
    "lbann",
    LBANNPolicy,
    summary="LBANN in-memory data store (:dynamic | :preloading)",
    variant_param="mode",
)
POLICIES.register(
    "locality_aware", LocalityAwarePolicy, summary="Locality-aware single-copy caching"
)
POLICIES.register(
    "nopfs", NoPFSPolicy, summary="NoPFS: clairvoyant frequency-ranked hierarchy-aware caching"
)

# Concrete policy .name spellings resolve too, so sweep tags and paper
# row keys (deepio_ordered, lbann_dynamic, ...) are valid specs.
POLICIES.alias("deepio_ordered", "deepio", mode="ordered")
POLICIES.alias("deepio_opportunistic", "deepio", mode="opportunistic")
POLICIES.alias("lbann_dynamic", "lbann", mode="dynamic")
POLICIES.alias("lbann_preloading", "lbann", mode="preloading")


# -- datasets ----------------------------------------------------------

DATASETS.register(
    "fake",
    _fake_dataset_model,
    summary="In-memory test dataset with a byte-level twin (:profile = "
    "tiny | small | medium)",
    variant_param="profile",
)
DATASETS.register("mnist", _dataset_registry.mnist)
DATASETS.register("imagenet1k", _dataset_registry.imagenet1k)
DATASETS.register("openimages", _dataset_registry.openimages)
DATASETS.register("imagenet22k", _dataset_registry.imagenet22k)
DATASETS.register("cosmoflow", _dataset_registry.cosmoflow)
DATASETS.register("cosmoflow512", _dataset_registry.cosmoflow512)

DATASETS.alias("imagenet_1k", "imagenet1k")
DATASETS.alias("imagenet_22k", "imagenet22k")
DATASETS.alias("cosmoflow_512", "cosmoflow512")


# -- systems -----------------------------------------------------------

SYSTEMS.register(
    "sec6_cluster",
    sec6_cluster,
    summary="The paper's Sec 6.1 simulation cluster (:N = num_workers)",
    variant_param="num_workers",
)
SYSTEMS.register(
    "piz_daint",
    piz_daint,
    summary="Piz Daint per-rank model, RAM-only cache (:N = num_workers)",
    variant_param="num_workers",
)
SYSTEMS.register(
    "lassen",
    lassen,
    summary="Lassen per-rank model, RAM + NVMe SSD tiers (:N = num_workers)",
    variant_param="num_workers",
)


# -- helpers -----------------------------------------------------------


def make_policy(spec: str | Mapping[str, Any], **overrides: Any) -> Policy:
    """Build a :class:`~repro.sim.Policy` from a registry spec."""
    return POLICIES.create(spec, **overrides)


def make_dataset(spec: str | Mapping[str, Any], **overrides: Any) -> DatasetModel:
    """Build a :class:`~repro.datasets.DatasetModel` from a registry spec."""
    return DATASETS.create(spec, **overrides)


def make_system(spec: str | Mapping[str, Any], **overrides: Any) -> SystemModel:
    """Build a :class:`~repro.perfmodel.SystemModel` from a registry spec."""
    return SYSTEMS.create(spec, **overrides)


#: Fig 8's nine-policy bar lineup, in the paper's plot order.
FIG8_POLICIES: tuple[str, ...] = (
    "naive",
    "staging_buffer",
    "deepio:ordered",
    "deepio:opportunistic",
    "parallel_staging",
    "lbann:dynamic",
    "lbann:preloading",
    "locality_aware",
    "nopfs",
)

#: Frameworks with a Table 1 row, in the paper's row order.
TABLE1_POLICIES: tuple[str, ...] = (
    "pytorch",
    "staging_buffer",
    "parallel_staging",
    "deepio:ordered",
    "lbann:dynamic",
    "locality_aware",
    "nopfs",
)


def fig8_lineup() -> list[Policy]:
    """Fresh policy instances for the Fig 8 lineup, in plot order."""
    return [make_policy(spec) for spec in FIG8_POLICIES]


def table1_lineup() -> list[Policy]:
    """Fresh policy instances for the Table 1 rows, in row order."""
    return [make_policy(spec) for spec in TABLE1_POLICIES]
