"""String-keyed registries: name an object family, build it from data.

The paper frames every experiment as "arbitrary dataset, system, and
I/O strategy configurations"; a :class:`Registry` makes each of those
axes addressable *by name* so a scenario can be described entirely in
plain dicts/JSON/CLI flags and dispatched as data (the foundation the
ROADMAP's scenario-search and sweep-service items build on).

Three registries ship with the library (:mod:`repro.api.presets`):
``POLICIES``, ``DATASETS`` and ``SYSTEMS``. Each maps a canonical name
to a factory plus optional *aliases* (``deepio_ordered`` is
``deepio`` with ``mode="ordered"`` pre-bound). Specs are resolved from
three spellings::

    registry.create("nopfs")                       # bare name
    registry.create("deepio:opportunistic")        # name:variant shorthand
    registry.create({"name": "lbann", "kwargs": {"mode": "dynamic"}})

The ``name:variant`` form binds the suffix to the entry's declared
``variant_param`` (coerced to int/float when it parses as a number, so
``"pytorch:4"`` means ``prefetch_batches=4`` and ``"lassen:512"`` means
``num_workers=512``).

Failure behaviour is deliberate API surface: registering a name twice
raises :class:`DuplicateNameError` (a silent overwrite could alias two
different factories onto one sweep-cache key), and resolving an unknown
name raises :class:`UnknownNameError` listing near-miss suggestions.
"""

from __future__ import annotations

import difflib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from ..errors import ConfigurationError

__all__ = [
    "DuplicateNameError",
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "UnknownNameError",
    "split_spec_mapping",
]


class RegistryError(ConfigurationError):
    """Base class of registry-specific failures."""


class UnknownNameError(RegistryError, KeyError):
    """A spec named something no entry or alias matches.

    Subclasses :class:`KeyError` so callers that treat registries as
    mappings keep working, but renders its plain message (KeyError's
    default ``str`` is the repr of the missing key).
    """

    def __str__(self) -> str:
        """The plain error message (not KeyError's quoted repr)."""
        return self.args[0] if self.args else ""


class DuplicateNameError(RegistryError):
    """A name or alias was registered twice."""


def split_spec_mapping(kind: str, spec: Mapping[str, Any]) -> tuple[str, dict[str, Any]]:
    """Normalize a spec mapping to ``(name, kwargs)``.

    The one place the accepted mapping spellings are defined: a
    ``"name"`` key (required), an optional nested ``"kwargs"`` mapping,
    and any remaining flat keys merged into the kwargs (flat keys win).
    Shared by :meth:`Registry.resolve` and the
    :mod:`repro.api.scenario` spec parsers so the dialects cannot
    drift.
    """
    data = dict(spec)
    name = data.pop("name", None)
    if name is None:
        raise RegistryError(
            f"{kind} spec mapping needs a 'name' key, got {sorted(spec)}"
        )
    kwargs = {**data.pop("kwargs", {}), **data}
    return str(name), kwargs


def _coerce_variant(text: str) -> Any:
    """Interpret a ``name:variant`` suffix: int, then float, then str."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


@dataclass(frozen=True)
class RegistryEntry:
    """One registered factory: canonical name, callable, metadata.

    ``variant_param`` names the keyword the ``name:variant`` spec
    shorthand binds to (``None`` forbids the shorthand for this entry);
    ``summary`` is the one-line description shown by
    ``python -m repro list``.
    """

    name: str
    factory: Callable[..., Any]
    summary: str = ""
    variant_param: str | None = None
    bound_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def build(self, **kwargs: Any) -> Any:
        """Call the factory with the alias-bound kwargs under ``kwargs``."""
        return self.factory(**{**self.bound_kwargs, **kwargs})


class Registry:
    """A name -> factory mapping with aliases, specs and suggestions.

    Parameters
    ----------
    kind:
        Singular noun for error messages and CLI output
        (``"policy"``, ``"dataset"``, ``"system"``).
    plural:
        Plural form for listings; defaults to ``kind + "s"``.
    """

    def __init__(self, kind: str, plural: str | None = None) -> None:
        self.kind = kind
        self.plural = plural or f"{kind}s"
        self._entries: dict[str, RegistryEntry] = {}
        self._aliases: dict[str, RegistryEntry] = {}
        self._families: dict[type, str] = {}

    # -- registration --------------------------------------------------

    @staticmethod
    def normalize(name: str) -> str:
        """Canonical key form: lowercase, separators collapsed to ``_``."""
        return name.strip().lower().replace("-", "_").replace(" ", "_")

    def register(
        self,
        name: str,
        factory: Callable[..., Any] | None = None,
        *,
        summary: str = "",
        variant_param: str | None = None,
    ) -> Callable[..., Any]:
        """Register ``factory`` under ``name`` (usable as a decorator).

        ``summary`` defaults to the first line of the factory's
        docstring. Re-registering a taken name (or shadowing an alias)
        raises :class:`DuplicateNameError`.
        """

        def _register(f: Callable[..., Any]) -> Callable[..., Any]:
            key = self.normalize(name)
            self._require_free(key)
            doc = (inspect.getdoc(f) or "").strip().splitlines()
            entry = RegistryEntry(
                name=key,
                factory=f,
                summary=summary or (doc[0] if doc else ""),
                variant_param=variant_param,
            )
            self._entries[key] = entry
            if inspect.isclass(f):
                self._families[f] = key
            return f

        return _register if factory is None else _register(factory)

    def alias(self, alias: str, target: str, **bound_kwargs: Any) -> None:
        """Register ``alias`` as ``target`` with ``bound_kwargs`` pre-bound.

        ``deepio_ordered`` is an alias of ``deepio`` with
        ``mode="ordered"`` — every concrete policy ``.name`` resolves
        even though only families are registered.
        """
        key = self.normalize(alias)
        self._require_free(key)
        base = self._lookup(self.normalize(target))
        self._aliases[key] = RegistryEntry(
            name=key,
            factory=base.factory,
            summary=base.summary,
            variant_param=base.variant_param,
            bound_kwargs={**base.bound_kwargs, **bound_kwargs},
        )

    def _require_free(self, key: str) -> None:
        if key in self._entries or key in self._aliases:
            raise DuplicateNameError(
                f"{self.kind} {key!r} is already registered; "
                f"pick a distinct name or remove the earlier registration"
            )

    # -- lookup --------------------------------------------------------

    def names(self) -> list[str]:
        """Canonical entry names, sorted (aliases excluded)."""
        return sorted(self._entries)

    def known(self) -> list[str]:
        """Every resolvable name — entries and aliases — sorted."""
        return sorted({*self._entries, *self._aliases})

    def __contains__(self, name: str) -> bool:
        """Whether ``name`` (entry or alias) resolves."""
        key = self.normalize(name)
        return key in self._entries or key in self._aliases

    def __iter__(self) -> Iterator[str]:
        """Iterate canonical entry names."""
        return iter(self.names())

    def _lookup(self, key: str) -> RegistryEntry:
        entry = self._entries.get(key) or self._aliases.get(key)
        if entry is not None:
            return entry
        close = difflib.get_close_matches(key, self.known(), n=3, cutoff=0.5)
        hint = f"; did you mean: {', '.join(close)}?" if close else ""
        raise UnknownNameError(
            f"unknown {self.kind} {key!r}{hint} "
            f"(known {self.plural}: {', '.join(self.known())})"
        )

    def get(self, name: str) -> RegistryEntry:
        """The entry (or alias entry) for ``name``; may raise UnknownNameError."""
        return self._lookup(self.normalize(name))

    def resolve(self, spec: str | Mapping[str, Any]) -> tuple[RegistryEntry, dict[str, Any]]:
        """Normalize any accepted spec form to ``(entry, kwargs)``.

        Accepts a bare name, the ``name:variant`` shorthand, or a
        mapping ``{"name": ..., "kwargs": {...}}`` (extra mapping keys
        merge into the kwargs, so flat ``{"name": "deepio", "mode":
        "ordered"}`` works too).
        """
        if isinstance(spec, Mapping):
            name, kwargs = split_spec_mapping(self.kind, spec)
            entry, variant_kwargs = self.resolve(name)
            return entry, {**variant_kwargs, **kwargs}
        if not isinstance(spec, str):
            raise RegistryError(
                f"cannot resolve a {self.kind} from {type(spec).__name__!r}; "
                "pass a name string or a spec mapping"
            )
        name, _, variant = spec.partition(":")
        entry = self._lookup(self.normalize(name))
        if not variant:
            return entry, {}
        if entry.variant_param is None:
            raise RegistryError(
                f"{self.kind} {entry.name!r} takes no ':variant' suffix (got {spec!r})"
            )
        return entry, {entry.variant_param: _coerce_variant(variant)}

    def create(self, spec: str | Mapping[str, Any], **overrides: Any) -> Any:
        """Build the object a spec describes (``overrides`` win last)."""
        entry, kwargs = self.resolve(spec)
        return entry.build(**{**kwargs, **overrides})

    def family_of(self, cls: type) -> str | None:
        """The canonical name a class was registered under, if any."""
        return self._families.get(cls)

    def describe(self) -> list[tuple[str, str]]:
        """(name, summary) rows for CLI listings — aliases annotated."""
        rows = [(name, entry.summary) for name, entry in sorted(self._entries.items())]
        for name, entry in sorted(self._aliases.items()):
            bound = ", ".join(f"{k}={v!r}" for k, v in sorted(entry.bound_kwargs.items()))
            target = next(
                (n for n, e in self._entries.items() if e.factory is entry.factory), "?"
            )
            rows.append((name, f"alias of {target}" + (f" ({bound})" if bound else "")))
        return rows
