"""`Scenario`: one simulation described entirely as data.

A :class:`Scenario` names its three axes through the registries
(:mod:`repro.api.presets`) — dataset x system x policy — plus the
simulation knobs (batch size, epochs, seed, scale, noise, barrier,
interference). It round-trips through dicts/JSON via
:class:`~repro.config.ConfigMixin`, so a scenario can live in a config
file, cross a process/host boundary, or be handed to the CLI — and it
*materializes* to exactly the :class:`~repro.sim.config.SimulationConfig`
and :class:`~repro.sim.Policy` the pre-API code built by hand, so its
:meth:`Scenario.fingerprint` is byte-for-byte the sweep-cache key the
:class:`~repro.sweep.runner.SweepRunner` has always used. Warm caches
from constructor-era sweeps stay warm.

The axis spec types (:class:`DatasetSpec`, :class:`SystemSpec`,
:class:`PolicySpec`) each accept the registry spec spellings —
``"nopfs"``, ``"deepio:opportunistic"``, ``{"name": ..., "kwargs":
{...}}`` — and :class:`SystemSpec` additionally carries the preset
tweaks the figure modules apply (field overrides, compute factor,
cache-tier capacities), so every grid in the repo is expressible as
pure data.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..config import ConfigMixin
from ..datasets import DatasetModel
from ..errors import ConfigurationError
from ..perfmodel import SystemModel
from ..rng import DEFAULT_SEED
from ..sim import NoiseConfig, Policy, SimulationConfig
from ..sweep.cache import cell_key
from ..sweep.grid import SweepCell
from .presets import DATASETS, POLICIES, SYSTEMS
from .registry import split_spec_mapping

__all__ = [
    "DatasetSpec",
    "PolicySpec",
    "Scenario",
    "SystemSpec",
    "scaled_scenario",
]


def scaled_scenario(
    dataset: DatasetModel,
    system: SystemModel,
    batch_size: int,
    num_epochs: int,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    **config_kwargs: Any,
) -> SimulationConfig:
    """Build a :class:`SimulationConfig`, shrunk by ``scale`` regime-true.

    ``scale`` multiplies the sample count and every cache-tier capacity;
    sample sizes, batch size, worker count, PFS curve and compute rates
    are untouched, so per-batch behaviour and all capacity *ratios* are
    preserved.
    """
    if not 0 < scale <= 1.0:
        raise ConfigurationError("scale must be in (0, 1]")
    ds = dataset if scale == 1.0 else dataset.scaled(scale)
    sys_ = system
    if scale != 1.0 and system.storage_classes:
        sys_ = system.with_class_capacities(
            [c.capacity_mb * scale for c in system.storage_classes]
        )
    return SimulationConfig(
        dataset=ds,
        system=sys_,
        batch_size=batch_size,
        num_epochs=num_epochs,
        seed=seed,
        **config_kwargs,
    )


@dataclass(frozen=True)
class DatasetSpec(ConfigMixin):
    """A dataset axis value: registry name plus factory kwargs."""

    name: str
    kwargs: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def parse(cls, spec: "DatasetSpec | str | Mapping[str, Any]") -> "DatasetSpec":
        """Coerce any accepted spelling (spec/str/mapping) to a spec."""
        if isinstance(spec, DatasetSpec):
            return spec
        if isinstance(spec, str):
            return cls(name=spec)
        if isinstance(spec, Mapping):
            name, kwargs = split_spec_mapping("dataset", spec)
            return cls(name=name, kwargs=kwargs)
        raise ConfigurationError(f"cannot parse a dataset spec from {type(spec).__name__!r}")

    def build(self, default_seed: int | None = None) -> DatasetModel:
        """Materialize the dataset (``default_seed`` fills a missing seed)."""
        kwargs = dict(self.kwargs)
        if default_seed is not None:
            kwargs.setdefault("seed", default_seed)
        return DATASETS.create(self.name, **kwargs)


@dataclass(frozen=True)
class SystemSpec(ConfigMixin):
    """A system axis value: preset name, factory kwargs, preset tweaks.

    The tweak fields mirror what the experiment harness does to presets,
    applied in this order after the factory call:

    1. ``overrides`` — :meth:`~repro.perfmodel.SystemModel.replace`
       fields (e.g. a calibrated ``compute_mbps``);
    2. ``compute_factor`` —
       :meth:`~repro.perfmodel.SystemModel.with_compute_factor`
       (Fig 9's "5x compute and preprocessing");
    3. ``preprocess_factor`` — scales ``preprocess_mbps`` alone
       (Fig 10's DALI pipeline);
    4. ``class_capacities_mb`` —
       :meth:`~repro.perfmodel.SystemModel.with_class_capacities`
       (Fig 9's RAM x SSD design-space axes).
    """

    name: str
    kwargs: dict[str, Any] = field(default_factory=dict)
    overrides: dict[str, Any] = field(default_factory=dict)
    compute_factor: float | None = None
    preprocess_factor: float | None = None
    class_capacities_mb: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.class_capacities_mb is not None and not isinstance(
            self.class_capacities_mb, tuple
        ):
            # JSON round-trips deliver lists; normalize so round-tripped
            # specs compare equal to their originals.
            object.__setattr__(self, "class_capacities_mb", tuple(self.class_capacities_mb))

    @classmethod
    def parse(cls, spec: "SystemSpec | str | Mapping[str, Any]") -> "SystemSpec":
        """Coerce any accepted spelling (spec/str/mapping) to a spec."""
        if isinstance(spec, SystemSpec):
            return spec
        if isinstance(spec, str):
            return cls(name=spec)
        if isinstance(spec, Mapping):
            data = dict(spec)
            fields = {
                key: data.pop(key)
                for key in (
                    "overrides",
                    "compute_factor",
                    "preprocess_factor",
                    "class_capacities_mb",
                )
                if key in data
            }
            name, kwargs = split_spec_mapping("system", data)
            return cls(name=name, kwargs=kwargs, **fields)
        raise ConfigurationError(f"cannot parse a system spec from {type(spec).__name__!r}")

    def build(self) -> SystemModel:
        """Materialize the system: factory call, then the tweak pipeline."""
        model = SYSTEMS.create(self.name, **self.kwargs)
        if self.overrides:
            model = model.replace(**self.overrides)
        if self.compute_factor is not None:
            model = model.with_compute_factor(self.compute_factor)
        if self.preprocess_factor is not None:
            model = model.replace(preprocess_mbps=model.preprocess_mbps * self.preprocess_factor)
        if self.class_capacities_mb is not None:
            model = model.with_class_capacities(list(self.class_capacities_mb))
        return model


@dataclass(frozen=True)
class PolicySpec(ConfigMixin):
    """A policy axis value: registry name plus constructor kwargs."""

    name: str
    kwargs: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def parse(cls, spec: "PolicySpec | Policy | str | Mapping[str, Any]") -> "PolicySpec":
        """Coerce any accepted spelling — including a live policy instance."""
        if isinstance(spec, PolicySpec):
            return spec
        if isinstance(spec, Policy):
            return cls.from_policy(spec)
        if isinstance(spec, str):
            return cls(name=spec)
        if isinstance(spec, Mapping):
            name, kwargs = split_spec_mapping("policy", spec)
            return cls(name=name, kwargs=kwargs)
        raise ConfigurationError(f"cannot parse a policy spec from {type(spec).__name__!r}")

    @classmethod
    def from_policy(cls, policy: Policy) -> "PolicySpec":
        """The spec that reconstructs ``policy`` (inverse of :meth:`build`).

        Recovers the registered family name of the policy's class and
        its constructor state (the intersection of ``vars(policy)``
        with the constructor's parameters), then *verifies* the spec
        rebuilds a policy with the identical cache fingerprint —
        constructors that transform their arguments (state not stored
        under the parameter name) are rejected loudly instead of
        silently reconstructing a different policy.
        """
        from ..sweep.cache import policy_fingerprint

        family = POLICIES.family_of(type(policy))
        if family is None:
            raise ConfigurationError(
                f"policy class {type(policy).__qualname__!r} is not registered; "
                "register it with repro.api.POLICIES.register(...) first"
            )
        params = {
            name
            for name, p in inspect.signature(type(policy).__init__).parameters.items()
            if name != "self"
            and p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        }
        kwargs = {k: v for k, v in vars(policy).items() if k in params}
        spec = cls(name=family, kwargs=kwargs)
        if policy_fingerprint(spec.build()) != policy_fingerprint(policy):
            raise ConfigurationError(
                f"cannot express {type(policy).__qualname__!r} as a registry spec: "
                "its constructor state is not recoverable from its attributes; "
                "pass an explicit PolicySpec(name=..., kwargs=...) instead"
            )
        return spec

    def build(self) -> Policy:
        """Materialize the policy instance."""
        return POLICIES.create(self.name, **self.kwargs)


@dataclass(frozen=True)
class Scenario(ConfigMixin):
    """Dataset x system x policy x simulation knobs, as plain data.

    The axis fields accept any spec spelling (string, mapping, spec
    object — and a live :class:`~repro.sim.Policy` for ``policy``);
    they are normalized to spec dataclasses on construction, so
    ``Scenario(dataset="mnist", system="sec6_cluster:2",
    policy="nopfs", batch_size=16, num_epochs=2)`` is valid and
    round-trips through :meth:`~repro.config.ConfigMixin.to_dict` /
    :meth:`~repro.config.ConfigMixin.from_dict` unchanged.

    ``noise=None`` means the simulator's default noise model; pass an
    explicit :class:`~repro.sim.NoiseConfig` to pin or disable it.
    """

    dataset: DatasetSpec
    system: SystemSpec
    policy: PolicySpec
    batch_size: int
    num_epochs: int
    seed: int = DEFAULT_SEED
    scale: float = 1.0
    noise: NoiseConfig | None = None
    barrier: bool = True
    record_batch_times: bool = False
    network_interference: float = 0.25

    def __post_init__(self) -> None:
        object.__setattr__(self, "dataset", DatasetSpec.parse(self.dataset))
        object.__setattr__(self, "system", SystemSpec.parse(self.system))
        object.__setattr__(self, "policy", PolicySpec.parse(self.policy))
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.num_epochs <= 0:
            raise ConfigurationError("num_epochs must be positive")
        if not 0 < self.scale <= 1.0:
            raise ConfigurationError("scale must be in (0, 1]")

    @property
    def label(self) -> str:
        """A short human-readable handle (not necessarily unique)."""
        return (
            f"{self.dataset.name}/{self.system.name}/{self.policy.name}"
            f"/b{self.batch_size}/e{self.num_epochs}/s{self.seed}"
        )

    def build_config(self) -> SimulationConfig:
        """Materialize the :class:`SimulationConfig` this scenario names."""
        config_kwargs: dict[str, Any] = {}
        if self.noise is not None:
            config_kwargs["noise"] = self.noise
        return scaled_scenario(
            self.dataset.build(default_seed=self.seed),
            self.system.build(),
            batch_size=self.batch_size,
            num_epochs=self.num_epochs,
            scale=self.scale,
            seed=self.seed,
            barrier=self.barrier,
            record_batch_times=self.record_batch_times,
            network_interference=self.network_interference,
            **config_kwargs,
        )

    def build_policy(self) -> Policy:
        """Materialize the :class:`~repro.sim.Policy` this scenario names."""
        return self.policy.build()

    def cell(self, tag: Any | None = None) -> SweepCell:
        """This scenario as a sweep cell (``tag`` defaults to the fingerprint)."""
        config = self.build_config()
        policy = self.build_policy()
        if tag is None:
            tag = cell_key(config, policy)
        return SweepCell(tag=tag, config=config, policy=policy)

    def fingerprint(self) -> str:
        """The content hash addressing this scenario in the sweep cache.

        Identical to :func:`repro.sweep.cache.cell_key` over the
        materialized config and policy — the exact key the pre-API
        constructor path produced, so caches interoperate both ways.
        """
        return cell_key(self.build_config(), self.build_policy())
