"""The unified scenario layer: registries, `Scenario`, `Session`.

One import gives callers everything needed to describe and run an
experiment as data::

    from repro.api import Scenario, Session

    scenario = Scenario(
        dataset="mnist", system="sec6_cluster:2", policy="nopfs",
        batch_size=16, num_epochs=2, scale=0.2,
    )
    result = Session(jobs=2, cache_dir=".cache").run(scenario)

* :mod:`repro.api.registry` — the generic string-keyed
  :class:`~repro.api.registry.Registry` (duplicate registration
  raises; unknown names suggest near-misses).
* :mod:`repro.api.presets` — the built-in ``POLICIES`` / ``DATASETS``
  / ``SYSTEMS`` registries and the paper's figure lineups.
* :mod:`repro.api.scenario` — :class:`~repro.api.scenario.Scenario`
  and its axis specs: JSON round-trip, materialization, sweep-cache
  fingerprints identical to the constructor-era path.
* :mod:`repro.api.session` — :class:`~repro.api.session.Session`, the
  run/sweep facade shared by the CLI, the figure modules and future
  services.

``SEARCHERS`` — the :mod:`repro.search` driver registry — and
``KERNEL_BACKENDS`` — the :mod:`repro.sim` kernel backend registry —
are exported lazily from here too, alongside the other registries.

The consolidated CLI (``python -m repro``) lives in :mod:`repro.cli`.
"""

from .presets import (
    DATASETS,
    FIG8_POLICIES,
    POLICIES,
    SYSTEMS,
    TABLE1_POLICIES,
    fig8_lineup,
    make_dataset,
    make_policy,
    make_system,
    table1_lineup,
)
from .registry import (
    DuplicateNameError,
    Registry,
    RegistryEntry,
    RegistryError,
    UnknownNameError,
)
from .scenario import DatasetSpec, PolicySpec, Scenario, SystemSpec, scaled_scenario
from .session import Session

#: Lazily-resolved exports (PEP 562) — :mod:`repro.search` imports this
#: package's submodules, so its registry must load on first access
#: rather than eagerly here.
_LAZY_EXPORTS = {
    "SEARCHERS": ("repro.search", "SEARCHERS"),
    "KERNEL_BACKENDS": ("repro.sim.backends", "KERNEL_BACKENDS"),
}


def __getattr__(name: str):
    """Resolve a lazy export on first access (PEP 562)."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: subsequent accesses skip __getattr__
    return value


def __dir__() -> list:
    """Advertise lazy exports to introspection alongside real globals."""
    return sorted({*globals(), *_LAZY_EXPORTS})


__all__ = [
    "DATASETS",
    "DatasetSpec",
    "DuplicateNameError",
    "FIG8_POLICIES",
    "KERNEL_BACKENDS",
    "POLICIES",
    "PolicySpec",
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "SEARCHERS",
    "SYSTEMS",
    "Scenario",
    "Session",
    "SystemSpec",
    "TABLE1_POLICIES",
    "UnknownNameError",
    "fig8_lineup",
    "make_dataset",
    "make_policy",
    "make_system",
    "scaled_scenario",
    "table1_lineup",
]
