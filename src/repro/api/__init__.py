"""The unified scenario layer: registries, `Scenario`, `Session`.

One import gives callers everything needed to describe and run an
experiment as data::

    from repro.api import Scenario, Session

    scenario = Scenario(
        dataset="mnist", system="sec6_cluster:2", policy="nopfs",
        batch_size=16, num_epochs=2, scale=0.2,
    )
    result = Session(jobs=2, cache_dir=".cache").run(scenario)

* :mod:`repro.api.registry` — the generic string-keyed
  :class:`~repro.api.registry.Registry` (duplicate registration
  raises; unknown names suggest near-misses).
* :mod:`repro.api.presets` — the built-in ``POLICIES`` / ``DATASETS``
  / ``SYSTEMS`` registries and the paper's figure lineups.
* :mod:`repro.api.scenario` — :class:`~repro.api.scenario.Scenario`
  and its axis specs: JSON round-trip, materialization, sweep-cache
  fingerprints identical to the constructor-era path.
* :mod:`repro.api.session` — :class:`~repro.api.session.Session`, the
  run/sweep facade shared by the CLI, the figure modules and future
  services.

The consolidated CLI (``python -m repro``) lives in :mod:`repro.cli`.
"""

from .presets import (
    DATASETS,
    FIG8_POLICIES,
    POLICIES,
    SYSTEMS,
    TABLE1_POLICIES,
    fig8_lineup,
    make_dataset,
    make_policy,
    make_system,
    table1_lineup,
)
from .registry import (
    DuplicateNameError,
    Registry,
    RegistryEntry,
    RegistryError,
    UnknownNameError,
)
from .scenario import DatasetSpec, PolicySpec, Scenario, SystemSpec, scaled_scenario
from .session import Session

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "DuplicateNameError",
    "FIG8_POLICIES",
    "POLICIES",
    "PolicySpec",
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "SYSTEMS",
    "Scenario",
    "Session",
    "SystemSpec",
    "TABLE1_POLICIES",
    "UnknownNameError",
    "fig8_lineup",
    "make_dataset",
    "make_policy",
    "make_system",
    "scaled_scenario",
    "table1_lineup",
]
