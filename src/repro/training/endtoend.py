"""End-to-end training composition: epoch times x accuracy (Fig 16).

Combines simulated per-epoch wall times of two loaders with the
accuracy model to produce the paper's accuracy-vs-time comparison: the
same per-epoch learning curve, compressed in wall-clock by the faster
loader ("due to the speedup, NoPFS's curve is compressed").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .accuracy import AccuracyModel

__all__ = ["TrainingCurve", "EndToEndComparison", "compose_curve", "compare_curves"]


@dataclass(frozen=True)
class TrainingCurve:
    """Accuracy-vs-wall-clock trajectory of one training run."""

    label: str
    epoch_end_times_s: np.ndarray
    top1_at_epoch_end: np.ndarray

    @property
    def total_time_s(self) -> float:
        """Wall time of the full run."""
        return float(self.epoch_end_times_s[-1])

    @property
    def final_top1(self) -> float:
        """Final validation accuracy (%)."""
        return float(self.top1_at_epoch_end[-1])

    def time_to_accuracy_s(self, threshold_top1: float) -> float | None:
        """First wall time at which ``threshold_top1`` is reached."""
        hits = np.nonzero(self.top1_at_epoch_end >= threshold_top1)[0]
        if hits.size == 0:
            return None
        return float(self.epoch_end_times_s[hits[0]])


def compose_curve(
    label: str, epoch_times_s: np.ndarray, accuracy: AccuracyModel
) -> TrainingCurve:
    """Build a :class:`TrainingCurve` from per-epoch wall times."""
    times = np.asarray(epoch_times_s, dtype=np.float64)
    if times.ndim != 1 or times.size == 0 or np.any(times <= 0):
        raise ConfigurationError("epoch_times_s must be positive and 1-D")
    ends = np.cumsum(times)
    epochs = np.arange(1, times.size + 1, dtype=np.float64)
    return TrainingCurve(label, ends, np.asarray(accuracy.top1(epochs)))


@dataclass(frozen=True)
class EndToEndComparison:
    """Two loaders, same learning dynamics, different clocks."""

    baseline: TrainingCurve
    contender: TrainingCurve

    @property
    def speedup(self) -> float:
        """Baseline total time over contender total time (paper: 1.42x)."""
        return self.baseline.total_time_s / self.contender.total_time_s

    def speedup_to_accuracy(self, threshold_top1: float) -> float | None:
        """Speedup measured at a time-to-accuracy threshold."""
        b = self.baseline.time_to_accuracy_s(threshold_top1)
        c = self.contender.time_to_accuracy_s(threshold_top1)
        if b is None or c is None:
            return None
        return b / c


def compare_curves(
    baseline_times_s: np.ndarray,
    contender_times_s: np.ndarray,
    accuracy: AccuracyModel,
    baseline_label: str = "PyTorch",
    contender_label: str = "NoPFS",
) -> EndToEndComparison:
    """Compose both curves over the shared accuracy dynamics."""
    if len(baseline_times_s) != len(contender_times_s):
        raise ConfigurationError("runs must train the same number of epochs")
    return EndToEndComparison(
        baseline=compose_curve(baseline_label, baseline_times_s, accuracy),
        contender=compose_curve(contender_label, contender_times_s, accuracy),
    )
