"""Training-side models: compute rates, accuracy dynamics, real SGD."""

from .accuracy import AccuracyModel, AccuracyStage, goyal_resnet50_schedule
from .compute import (
    COSMOFLOW_V100,
    RESNET50_22K_V100,
    RESNET50_P100,
    RESNET50_V100,
    ComputeModel,
)
from .endtoend import (
    EndToEndComparison,
    TrainingCurve,
    compare_curves,
    compose_curve,
)
from .sgd import MLPClassifier, TrainResult, batch_to_features, train_classifier

__all__ = [
    "ComputeModel",
    "RESNET50_P100",
    "RESNET50_V100",
    "RESNET50_22K_V100",
    "COSMOFLOW_V100",
    "AccuracyModel",
    "AccuracyStage",
    "goyal_resnet50_schedule",
    "TrainingCurve",
    "EndToEndComparison",
    "compose_curve",
    "compare_curves",
    "MLPClassifier",
    "TrainResult",
    "batch_to_features",
    "train_classifier",
]
