"""A real NumPy SGD trainer driven through the functional loaders.

The laptop-scale counterpart of the paper's end-to-end run: a small MLP
trained with mini-batch SGD whose data arrives through any of the
library's loaders (NoPFS job, naive, double-buffered). Because all
loaders serve the identical clairvoyant sample stream for a given seed,
the learning trajectory is bit-identical across loaders — only the
wall-clock differs. The integration test asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..loader.collate import Batch
from ..rng import generator

__all__ = ["MLPClassifier", "TrainResult", "train_classifier", "batch_to_features"]


def batch_to_features(batch: Batch, feature_dim: int) -> np.ndarray:
    """Turn raw sample bytes into ``(B, feature_dim)`` float features.

    The first ``feature_dim`` bytes are scaled to [0, 1); short samples
    are zero-padded (the stand-in for decode/normalize preprocessing).
    """
    rows = []
    data = batch.data if not batch.is_contiguous else list(batch.data)
    for sample in data:
        arr = np.asarray(sample[:feature_dim], dtype=np.float64) / 255.0
        if arr.size < feature_dim:
            arr = np.pad(arr, (0, feature_dim - arr.size))
        rows.append(arr)
    return np.stack(rows)


@dataclass
class TrainResult:
    """Outcome of one training run."""

    losses: list[float]
    train_accuracy: float
    steps: int


class MLPClassifier:
    """One-hidden-layer MLP with softmax cross-entropy, pure NumPy."""

    def __init__(
        self,
        feature_dim: int,
        hidden_dim: int,
        num_classes: int,
        seed: int = 0,
        lr: float = 0.1,
    ) -> None:
        if min(feature_dim, hidden_dim, num_classes) <= 0:
            raise ConfigurationError("dimensions must be positive")
        if lr <= 0:
            raise ConfigurationError("learning rate must be positive")
        rng = generator(seed, "mlp-init")
        scale1 = np.sqrt(2.0 / feature_dim)
        scale2 = np.sqrt(2.0 / hidden_dim)
        self.w1 = rng.normal(0, scale1, (feature_dim, hidden_dim))
        self.b1 = np.zeros(hidden_dim)
        self.w2 = rng.normal(0, scale2, (hidden_dim, num_classes))
        self.b2 = np.zeros(num_classes)
        self.lr = lr

    def _forward(self, x: np.ndarray):
        h_pre = x @ self.w1 + self.b1
        h = np.maximum(h_pre, 0.0)
        logits = h @ self.w2 + self.b2
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        probs = exp / exp.sum(axis=1, keepdims=True)
        return h_pre, h, probs

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions for a feature matrix."""
        return self._forward(x)[2].argmax(axis=1)

    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        """One SGD step; returns the batch cross-entropy loss."""
        n = x.shape[0]
        h_pre, h, probs = self._forward(x)
        loss = float(-np.log(probs[np.arange(n), y] + 1e-12).mean())
        grad_logits = probs
        grad_logits[np.arange(n), y] -= 1.0
        grad_logits /= n
        grad_w2 = h.T @ grad_logits
        grad_b2 = grad_logits.sum(axis=0)
        grad_h = grad_logits @ self.w2.T
        grad_h[h_pre <= 0] = 0.0
        grad_w1 = x.T @ grad_h
        grad_b1 = grad_h.sum(axis=0)
        self.w2 -= self.lr * grad_w2
        self.b2 -= self.lr * grad_b2
        self.w1 -= self.lr * grad_w1
        self.b1 -= self.lr * grad_b1
        return loss

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on a feature matrix."""
        return float((self.predict(x) == y).mean())


def train_classifier(
    batches,
    feature_dim: int,
    num_classes: int,
    hidden_dim: int = 32,
    seed: int = 0,
    lr: float = 0.1,
) -> TrainResult:
    """Train an MLP over an iterable of :class:`Batch` objects.

    Deterministic given ``seed`` and the batch stream — the property the
    loader-equivalence integration test relies on.
    """
    model = MLPClassifier(feature_dim, hidden_dim, num_classes, seed=seed, lr=lr)
    losses: list[float] = []
    correct = 0
    seen = 0
    for batch in batches:
        x = batch_to_features(batch, feature_dim)
        y = batch.labels
        correct += int((model.predict(x) == y).sum())
        seen += len(batch)
        losses.append(model.train_step(x, y))
    if seen == 0:
        raise ConfigurationError("no batches to train on")
    return TrainResult(losses=losses, train_accuracy=correct / seen, steps=len(losses))
