"""Parametric ResNet-50/ImageNet accuracy dynamics (Fig 16's y-axis).

The end-to-end experiment (Sec 7.2) trains with "the learning procedure
in Goyal et al." — 90 epochs, linear-warmup + step-decay learning-rate
schedule with drops at epochs 30, 60 and 80, reaching 76.5% top-1.

We reproduce the *learning-curve shape* with a piecewise saturating-
exponential model anchored at the schedule's milestones: each
learning-rate stage relaxes toward its stage accuracy, producing the
familiar staircase curve. The paper's Fig 16 point is about the time
axis (NoPFS compresses it 1.42x while the per-epoch curve is
unchanged); the curve model supplies a faithful, deterministic y-axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ConfigMixin
from ..errors import ConfigurationError

__all__ = ["AccuracyStage", "AccuracyModel", "goyal_resnet50_schedule"]


@dataclass(frozen=True)
class AccuracyStage(ConfigMixin):
    """One learning-rate stage of a step schedule.

    Attributes
    ----------
    start_epoch:
        Epoch the stage begins (its learning-rate drop).
    target_top1:
        Accuracy the stage relaxes toward (%).
    rate:
        Exponential relaxation rate (per epoch) within the stage.
    """

    start_epoch: float
    target_top1: float
    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("stage rate must be positive")
        if not 0 <= self.target_top1 <= 100:
            raise ConfigurationError("target_top1 must be a percentage")


@dataclass(frozen=True)
class AccuracyModel(ConfigMixin):
    """Piecewise saturating-exponential top-1 accuracy vs epoch."""

    stages: tuple[AccuracyStage, ...]
    initial_top1: float = 0.1

    def __post_init__(self) -> None:
        starts = [s.start_epoch for s in self.stages]
        if not self.stages or starts != sorted(starts):
            raise ConfigurationError("stages must be non-empty and ordered")

    def top1(self, epoch) -> np.ndarray | float:
        """Top-1 validation accuracy (%) at (fractional) ``epoch``."""
        epochs = np.asarray(epoch, dtype=np.float64)
        acc = np.full(epochs.shape, self.initial_top1, dtype=np.float64)
        level = self.initial_top1
        for stage in self.stages:
            inside = epochs >= stage.start_epoch
            dt = np.where(inside, epochs - stage.start_epoch, 0.0)
            stage_acc = stage.target_top1 - (stage.target_top1 - level) * np.exp(
                -stage.rate * dt
            )
            acc = np.where(inside, stage_acc, acc)
            # The accuracy the *next* stage starts from: this stage's
            # value at the next stage boundary (or its target).
            level = float(
                stage.target_top1
                - (stage.target_top1 - level)
                * np.exp(-stage.rate * _stage_span(self.stages, stage))
            )
        out = np.clip(acc, 0.0, 100.0)
        return float(out) if np.isscalar(epoch) else out

    @property
    def final_top1(self) -> float:
        """Accuracy at the end of the last stage's asymptote."""
        return self.stages[-1].target_top1


def _stage_span(stages: tuple[AccuracyStage, ...], stage: AccuracyStage) -> float:
    idx = stages.index(stage)
    if idx + 1 < len(stages):
        return stages[idx + 1].start_epoch - stage.start_epoch
    return np.inf


def goyal_resnet50_schedule(final_top1: float = 76.5) -> AccuracyModel:
    """The 90-epoch Goyal et al. schedule reaching ``final_top1`` (76.5%).

    LR drops at epochs 30/60/80; stage targets calibrated to the
    published ResNet-50 learning curve (rapid rise to the high 50s,
    jumps at each decay, saturation at 76.5%).
    """
    return AccuracyModel(
        stages=(
            AccuracyStage(start_epoch=0.0, target_top1=64.0, rate=0.12),
            AccuracyStage(start_epoch=30.0, target_top1=72.5, rate=0.25),
            AccuracyStage(start_epoch=60.0, target_top1=75.8, rate=0.30),
            AccuracyStage(start_epoch=80.0, target_top1=final_top1, rate=0.45),
        ),
        initial_top1=0.1,
    )
