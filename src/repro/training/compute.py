"""Compute-throughput models: samples/s per GPU -> the model's ``c``.

The performance model wants compute as MB of raw input per second
(Sec 4: "if it is known only in terms of samples/second, it can be
approximated by multiplying this by the average file size"). This
module does that conversion and carries the calibrated per-GPU training
rates used by the Sec 7 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ConfigMixin
from ..datasets import DatasetModel
from ..errors import ConfigurationError

__all__ = ["ComputeModel", "RESNET50_P100", "RESNET50_V100", "RESNET50_22K_V100", "COSMOFLOW_V100"]


@dataclass(frozen=True)
class ComputeModel(ConfigMixin):
    """Per-worker training throughput in samples/second.

    Attributes
    ----------
    name:
        Model/hardware label.
    samples_per_second:
        Sustained training throughput of one worker (one GPU).
    """

    name: str
    samples_per_second: float

    def __post_init__(self) -> None:
        if self.samples_per_second <= 0:
            raise ConfigurationError("samples_per_second must be positive")

    def mbps(self, dataset: DatasetModel) -> float:
        """``c`` — MB of raw input consumed per second on ``dataset``."""
        return self.samples_per_second * dataset.mean_realized_size_mb

    def epoch_compute_seconds(
        self, dataset: DatasetModel, num_workers: int
    ) -> float:
        """Pure-compute epoch time at ``num_workers`` (the scaling floor)."""
        if num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        return dataset.num_samples / (self.samples_per_second * num_workers)


#: ResNet-50 on a P100 (Piz Daint), calibrated vs the paper's epoch times.
RESNET50_P100 = ComputeModel("resnet50/p100", 230.0)
#: ResNet-50 on a V100 rank (Lassen, 4 ranks/node).
RESNET50_V100 = ComputeModel("resnet50/v100", 750.0)
#: ResNet-50 with the 21,841-way ImageNet-22k head (bigger classifier).
RESNET50_22K_V100 = ComputeModel("resnet50-22k/v100", 520.0)
#: CosmoFlow's 3D CNN on a V100 rank (large 16 MB samples).
COSMOFLOW_V100 = ComputeModel("cosmoflow/v100", 7.5)
