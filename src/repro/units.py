"""Unit conventions and conversion helpers.

The whole library follows the paper's conventions (Table 2):

* **sizes** are megabytes (MB, 1e6 bytes would be ambiguous; we follow the
  paper's informal usage and treat 1 MB = 2**20 bytes for conversions from
  byte counts, but all model arithmetic stays in MB so the base never
  matters),
* **throughputs** are MB/s,
* **times** are seconds.

Helpers here convert to/from human-friendly magnitudes and format values
for harness output.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "BYTES_PER_MB",
    "mb",
    "from_bytes",
    "to_bytes",
    "fmt_size",
    "fmt_time",
    "fmt_rate",
]

#: One kilobyte expressed in MB.
KB = 1.0 / 1024.0
#: One megabyte (the base size unit).
MB = 1.0
#: One gigabyte expressed in MB.
GB = 1024.0
#: One terabyte expressed in MB.
TB = 1024.0 * 1024.0
#: Bytes per MB used when converting real byte counts.
BYTES_PER_MB = 1 << 20


def mb(value: float, unit: str = "MB") -> float:
    """Convert ``value`` expressed in ``unit`` to MB.

    ``unit`` is one of ``"B"``, ``"KB"``, ``"MB"``, ``"GB"``, ``"TB"``
    (case-insensitive).
    """
    factors = {"b": 1.0 / BYTES_PER_MB, "kb": KB, "mb": MB, "gb": GB, "tb": TB}
    key = unit.lower()
    if key not in factors:
        raise ValueError(f"unknown size unit {unit!r}")
    return float(value) * factors[key]


def from_bytes(nbytes: float) -> float:
    """Convert a byte count to MB."""
    return float(nbytes) / BYTES_PER_MB


def to_bytes(size_mb: float) -> int:
    """Convert a size in MB to a whole number of bytes."""
    return int(round(float(size_mb) * BYTES_PER_MB))


def fmt_size(size_mb: float) -> str:
    """Format a size in MB with an adaptive unit (``"1.32 GB"`` style)."""
    size_mb = float(size_mb)
    if size_mb >= TB:
        return f"{size_mb / TB:.2f} TB"
    if size_mb >= GB:
        return f"{size_mb / GB:.2f} GB"
    if size_mb >= 1.0:
        return f"{size_mb:.2f} MB"
    return f"{size_mb / KB:.2f} KB"


def fmt_time(seconds: float) -> str:
    """Format a duration in seconds with an adaptive unit."""
    seconds = float(seconds)
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.2f} h"
    if seconds >= 60.0:
        return f"{seconds / 60.0:.2f} min"
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1e3:.2f} ms"


def fmt_rate(mb_per_s: float) -> str:
    """Format a throughput in MB/s with an adaptive unit."""
    mb_per_s = float(mb_per_s)
    if mb_per_s >= GB:
        return f"{mb_per_s / GB:.2f} GB/s"
    return f"{mb_per_s:.2f} MB/s"
