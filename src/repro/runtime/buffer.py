"""The staging buffer: a bounded, in-order, drop-after-use sample ring.

This is the functional analogue of the paper's storage class 0: "a
special prefetcher for the staging buffer, which is filled in a
circular manner. This prefetcher coordinates with the Python interface
via a producer/consumer queue to ensure that the consumer knows when
samples are available, and that the prefetcher knows when samples have
been consumed (and therefore can be replaced)." (Sec 5.2.2)

Producers (the staging prefetch threads) deposit samples keyed by their
*sequence position* in the access stream ``R``; the consumer retrieves
strictly in sequence order and each retrieval frees the slot — the
paper's approximation of Bélády replacement ("immediately dropping
samples from the staging buffer after access").
"""

from __future__ import annotations

import threading

from ..errors import CapacityError, ConfigurationError

__all__ = ["StagingBuffer"]


class StagingBuffer:
    """Bounded byte-budgeted buffer with sequence-ordered consumption.

    Parameters
    ----------
    capacity_bytes:
        Total byte budget; producers block while a deposit would exceed
        it (unless the buffer is empty, in which case one oversized
        sample is admitted so progress is always possible).
    timeout_s:
        Safety timeout for blocking operations; expiry raises
        :class:`~repro.errors.CapacityError` rather than deadlocking a
        test run.
    """

    def __init__(self, capacity_bytes: int, timeout_s: float = 30.0) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("staging buffer capacity must be positive")
        self._capacity = int(capacity_bytes)
        self._timeout = float(timeout_s)
        self._lock = threading.Lock()
        self._space_free = threading.Condition(self._lock)
        self._available = threading.Condition(self._lock)
        self._slots: dict[int, tuple[int, bytes]] = {}
        self._used = 0
        self._closed = False
        self._error: Exception | None = None
        self._peak_used = 0
        self._next_deposit = 0

    # -- introspection -----------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """The configured byte budget."""
        return self._capacity

    @property
    def used_bytes(self) -> int:
        """Bytes currently held."""
        with self._lock:
            return self._used

    @property
    def peak_used_bytes(self) -> int:
        """High-water mark of buffer occupancy."""
        with self._lock:
            return self._peak_used

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)

    # -- producer side -----------------------------------------------------

    def put(self, seq: int, sample_id: int, data: bytes) -> None:
        """Deposit ``data`` for stream position ``seq``.

        Deposits commit **in sequence order** — a producer holding a
        later position waits for earlier positions to land first. This
        is both the paper's semantics ("filled ... according to the
        reference string", Rule 1) and the liveness guarantee: the
        buffer can never fill up with future samples while the one the
        consumer needs is starved of space. Fetching still happens in
        parallel; only the final insert is serialized.

        Raises :class:`CapacityError` on timeout and ``RuntimeError`` if
        the buffer was closed while waiting (shutdown path).
        """
        size = len(data)
        with self._space_free:
            deadline_misses = 0
            while True:
                if self._error is not None:
                    raise self._error
                if self._closed:
                    raise RuntimeError("staging buffer closed")
                if seq < self._next_deposit or seq in self._slots:
                    raise CapacityError(f"stream position {seq} deposited twice")
                in_turn = seq == self._next_deposit
                fits = self._used + size <= self._capacity or not self._slots
                if in_turn and fits:
                    break
                if not self._space_free.wait(self._timeout):
                    deadline_misses += 1
                    if deadline_misses >= 2:
                        raise CapacityError(
                            f"timed out depositing position {seq} "
                            f"(next_deposit {self._next_deposit}, "
                            f"used {self._used}/{self._capacity} B)"
                        )
            self._slots[seq] = (sample_id, data)
            self._used += size
            self._peak_used = max(self._peak_used, self._used)
            self._next_deposit = seq + 1
            self._available.notify_all()
            self._space_free.notify_all()  # wake the next producer in line

    # -- consumer side -----------------------------------------------------

    def get(self, seq: int) -> tuple[int, bytes]:
        """Retrieve stream position ``seq``; frees the slot (drop-after-use).

        Blocks until a producer deposits that position. If a producer
        reported a failure via :meth:`fail`, that exception is re-raised
        here — in the consumer's thread — instead of timing out.
        """
        with self._available:
            while seq not in self._slots:
                if self._error is not None:
                    raise self._error
                if self._closed:
                    raise RuntimeError("staging buffer closed")
                if not self._available.wait(self._timeout):
                    raise CapacityError(
                        f"timed out waiting for stream position {seq}"
                    )
            sample_id, data = self._slots.pop(seq)
            self._used -= len(data)
            self._space_free.notify_all()
            return sample_id, data

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release all waiters and reject further use (idempotent)."""
        with self._lock:
            self._closed = True
            self._slots.clear()
            self._used = 0
            self._space_free.notify_all()
            self._available.notify_all()

    def fail(self, exc: Exception) -> None:
        """Poison the buffer with a producer-side failure.

        Every blocked or future :meth:`put`/:meth:`get` re-raises
        ``exc``, so a prefetcher error surfaces in the consumer's thread
        instead of as a silent daemon death followed by a timeout. The
        first failure wins; later ones are ignored.
        """
        with self._lock:
            if self._error is None:
                self._error = exc
            self._space_free.notify_all()
            self._available.notify_all()

    @property
    def error(self) -> Exception | None:
        """The failure recorded by :meth:`fail`, if any."""
        return self._error

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed
