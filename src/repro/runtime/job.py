"""The ``Job`` API: the paper's Python-facing middleware object (Sec 5.2.1).

"The Python interface provides the Job class, which represents the
execution of a machine learning job on a particular dataset. [...] Once
initialized, the Job exposes two key features: buffer_p, a pointer to
NoPFS's staging buffer, allowing zero-copy access to samples; and a get
method, which returns samples and their labels, enabling iterator-style
access to data."

A :class:`Job` is one worker's view of a distributed run: it owns that
worker's storage backends, staging buffer and prefetcher threads, and
talks to its peers through a :class:`~repro.runtime.comm.WorkerGroup`.
Construct one Job per rank over a shared group (see
:mod:`repro.runtime.distributed` for the convenience builder).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core import AccessStream, StreamConfig
from ..errors import ConfigurationError
from ..loader.dataset import Dataset
from .backends import StorageBackend
from .buffer import StagingBuffer
from .comm import WorkerGroup
from .metadata import MetadataStore
from .planner import RuntimePlan, build_runtime_plan
from .prefetcher import SharedCursor, StagingPrefetcher, TierPrefetcher

__all__ = ["JobStats", "Job"]


@dataclass
class JobStats:
    """Where this worker's staged samples actually came from."""

    local_hits: int = 0
    remote_hits: int = 0
    dataset_reads: int = 0
    heuristic_false_positives: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, source: str, false_positive: bool = False) -> None:
        """Count one staged sample by source."""
        with self._lock:
            if source == "local":
                self.local_hits += 1
            elif source == "remote":
                self.remote_hits += 1
            elif source == "dataset":
                self.dataset_reads += 1
            else:
                raise ConfigurationError(f"unknown source {source!r}")
            if false_positive:
                self.heuristic_false_positives += 1

    @property
    def total(self) -> int:
        """Total staged samples."""
        return self.local_hits + self.remote_hits + self.dataset_reads

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for reporting."""
        return {
            "local_hits": self.local_hits,
            "remote_hits": self.remote_hits,
            "dataset_reads": self.dataset_reads,
            "heuristic_false_positives": self.heuristic_false_positives,
        }


class Job:
    """One worker's NoPFS middleware instance.

    Parameters
    ----------
    dataset:
        The shared dataset (the "PFS" of the functional runtime).
    batch_size:
        ``B`` — this worker's batch size.
    num_epochs:
        ``E`` — epochs the job will serve.
    seed:
        Shared shuffle seed (the clairvoyance key; all ranks must agree).
    rank / group:
        This worker's rank and the shared in-process worker group.
    tiers:
        This worker's cache backends, fastest first (may be empty).
    staging_bytes:
        Staging-buffer capacity in bytes.
    staging_threads:
        ``p_0`` — staging prefetcher threads.
    tier_threads:
        Prefetch threads per cache tier (``p_j``); length must match
        ``tiers`` (defaults to one each).
    preprocess:
        Optional ``bytes -> bytes`` transform applied before staging
        (decode/augment stage).
    use_progress_heuristic:
        ``True`` reproduces the paper's remote-availability heuristic
        (estimate from the holder's progress counter; false positives
        are detected and fall back to the dataset). ``False`` asks the
        holder directly (exact, in-process shortcut).
    drop_last:
        Drop the ragged final global batch each epoch.
    metrics_sink:
        Optional :class:`~repro.ports.ports.MetricsSink`: receives one
        ``record_fetch(rank, epoch, source, sample_id, nbytes)`` event
        per staged sample, with ``source`` in ``{"local", "remote",
        "pfs"}`` and ``epoch`` derived from the sample's stream
        position (deterministic under any thread timing).
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        num_epochs: int,
        seed: int,
        rank: int,
        group: WorkerGroup,
        tiers: list[StorageBackend] | None = None,
        staging_bytes: int = 64 << 20,
        staging_threads: int = 2,
        tier_threads: list[int] | None = None,
        preprocess: Callable[[bytes], bytes] | None = None,
        use_progress_heuristic: bool = True,
        drop_last: bool = True,
        buffer_timeout_s: float = 30.0,
        metrics_sink=None,
    ) -> None:
        if staging_threads < 1:
            raise ConfigurationError("staging_threads must be >= 1 (p_0 >= 1)")
        self.dataset = dataset
        self.rank = rank
        self.group = group
        self.tiers = list(tiers or [])
        self.tier_threads = list(tier_threads or [1] * len(self.tiers))
        if len(self.tier_threads) != len(self.tiers):
            raise ConfigurationError("tier_threads must match tiers")
        self.stream_config = StreamConfig(
            seed=seed,
            num_samples=len(dataset),
            num_workers=group.size,
            batch_size=batch_size,
            num_epochs=num_epochs,
            drop_last=drop_last,
        )
        self.metadata = MetadataStore()
        self.buffer = StagingBuffer(staging_bytes, timeout_s=buffer_timeout_s)
        self.stats = JobStats()
        self._staging_threads = staging_threads
        self._preprocess = preprocess
        self._heuristic = use_progress_heuristic
        self._sink = metrics_sink
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._consume_seq = 0
        self._started = False

        # Build this worker's multi-epoch stream and exchange setup data
        # with the group (the paper's allgather of access sequences).
        stream = AccessStream(self.stream_config)
        self._stream_ids = stream.worker_stream(rank)
        gathered = group.allgather(rank, "stream_lengths", int(self._stream_ids.size))
        if len(set(gathered)) != 1:
            raise ConfigurationError("workers disagree on stream length")

        sizes = np.array(
            [dataset.size(i) for i in range(len(dataset))], dtype=np.float64
        )
        self.plan: RuntimePlan = build_runtime_plan(
            self.stream_config,
            sizes,
            [t.capacity_bytes for t in self.tiers],
        )
        group.register(rank, self._serve_sample, lambda: self.metadata.progress)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Job":
        """Spawn the tier and staging prefetcher threads."""
        if self._started:
            raise ConfigurationError("job already started")
        self._started = True
        tier_lists = self.plan.tier_prefetch_lists(self.rank)
        for tier, (ids, n_threads) in enumerate(zip(tier_lists, self.tier_threads)):
            for idx in range(n_threads):
                t = TierPrefetcher(
                    tier,
                    idx,
                    n_threads,
                    ids,
                    self.dataset.read,
                    self._store_in_tier,
                    self.metadata.advance_progress,
                    self._stop,
                    fail_fn=self.buffer.fail,
                )
                self._threads.append(t)
                t.start()
        cursor = SharedCursor(self._stream_ids.size)
        for idx in range(self._staging_threads):
            t = StagingPrefetcher(
                idx,
                self._stream_ids,
                cursor,
                self._fetch_for_staging,
                self.buffer.put,
                self._stop,
                fail_fn=self.buffer.fail,
            )
            self._threads.append(t)
            t.start()
        return self

    def stop(self) -> None:
        """Stop all prefetchers and release the staging buffer."""
        self._stop.set()
        self.buffer.close()
        stuck = []
        for t in self._threads:
            t.join(timeout=10.0)
            if t.is_alive():  # pragma: no cover - would be a deadlock bug
                stuck.append(t.name)
        if stuck:  # pragma: no cover - would be a deadlock bug
            raise ConfigurationError(
                f"prefetcher threads failed to stop: {', '.join(stuck)}"
            )

    @property
    def errors(self) -> list[Exception]:
        """Errors recorded by prefetcher threads (empty when healthy)."""
        found = [t.error for t in self._threads if t.error is not None]
        buffer_error = self.buffer.error
        if buffer_error is not None and buffer_error not in found:
            found.append(buffer_error)
        return found

    def __enter__(self) -> "Job":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the consumer API (paper Fig 7) ------------------------------------------

    def get(self) -> tuple[int, bytes, int]:
        """Next ``(sample_id, data, label)`` of this worker's stream.

        Blocks until the staging prefetchers have deposited it; dropping
        the slot afterwards frees buffer space (drop-after-use).
        """
        if not self._started:
            raise ConfigurationError("job not started")
        if self._consume_seq >= self._stream_ids.size:
            raise StopIteration
        sample_id, data = self.buffer.get(self._consume_seq)
        self._consume_seq += 1
        return sample_id, data, self.dataset.label(sample_id)

    def __iter__(self):
        """Iterate the remaining stream as ``(id, data, label)`` triples."""
        while self._consume_seq < self._stream_ids.size:
            yield self.get()

    @property
    def samples_per_epoch(self) -> int:
        """Samples this worker consumes each epoch."""
        return self.stream_config.samples_per_worker_per_epoch

    @property
    def total_samples(self) -> int:
        """Samples across all epochs."""
        return int(self._stream_ids.size)

    @property
    def stream_ids(self) -> np.ndarray:
        """This worker's full clairvoyant access stream (read-only view)."""
        return self._stream_ids

    # -- internals -----------------------------------------------------------

    def _store_in_tier(self, tier: int, sample_id: int, data: bytes) -> bool:
        stored = self.tiers[tier].put(sample_id, data)
        if stored:
            self.metadata.record(sample_id, tier)
        return stored

    def _serve_sample(self, sample_id: int) -> bytes | None:
        tier = self.metadata.tier_of(sample_id)
        if tier is None:
            return None
        return self.tiers[tier].get(sample_id)

    def _remote_probably_cached(self, holder: int, sample_id: int) -> bool:
        position = int(self.plan.holder_position[sample_id])
        if position < 0:
            return False
        return self.group.progress(holder) > position

    def _emit(self, seq: int, source: str, sample_id: int, data: bytes) -> None:
        if self._sink is not None:
            epoch = seq // self.stream_config.samples_per_worker_per_epoch
            self._sink.record_fetch(self.rank, epoch, source, sample_id, len(data))

    def _fetch_for_staging(self, seq: int, sample_id: int) -> bytes:
        # 1. Local cache (fastest tier recorded wins).
        tier = self.metadata.tier_of(sample_id)
        if tier is not None:
            data = self.tiers[tier].get(sample_id)
            if data is not None:
                self.stats.record("local")
                self._emit(seq, "local", sample_id, data)
                return self._apply_preprocess(data)
        # 2. Remote holder, gated by the availability heuristic.
        holder = int(self.plan.holder_of[sample_id])
        if holder >= 0 and holder != self.rank:
            if not self._heuristic or self._remote_probably_cached(
                holder, sample_id
            ):
                data = self.group.request_sample(holder, sample_id)
                if data is not None:
                    self.stats.record("remote")
                    self._emit(seq, "remote", sample_id, data)
                    return self._apply_preprocess(data)
                # "the failure of this heuristic is not an error" — fall
                # through to the dataset and count the false positive.
                self.stats.record("dataset", false_positive=self._heuristic)
                data = self.dataset.read(sample_id)
                self._emit(seq, "pfs", sample_id, data)
                return self._apply_preprocess(data)
        # 3. The dataset itself (the PFS path).
        self.stats.record("dataset")
        data = self.dataset.read(sample_id)
        self._emit(seq, "pfs", sample_id, data)
        return self._apply_preprocess(data)

    def _apply_preprocess(self, data: bytes) -> bytes:
        if self._preprocess is None:
            return data
        return self._preprocess(data)
