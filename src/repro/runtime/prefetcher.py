"""Prefetcher threads: tier fillers and the staging-buffer producer.

"The core prefetching logic is managed by prefetcher backends, which
implement all the logic for prefetching to a particular storage class.
[...] We also implement a special prefetcher for the staging buffer,
which is filled in a circular manner." (Sec 5.2.2)

Two thread bodies live here:

* :class:`TierPrefetcher` — fills one cache tier with its planned
  samples *in access order* (Rule 1), reading from the dataset, and
  advances the worker's progress counter (the heuristic's input).
* :class:`StagingPrefetcher` — pulls the next positions of the access
  stream ``R`` from a shared cursor, resolves each sample from the
  cheapest source (local tier -> remote holder -> dataset), applies the
  preprocessing callable, and deposits into the staging buffer.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from ..errors import ReproError

__all__ = ["SharedCursor", "TierPrefetcher", "StagingPrefetcher"]


class SharedCursor:
    """A thread-safe monotonically increasing position dispenser."""

    def __init__(self, limit: int) -> None:
        self._lock = threading.Lock()
        self._next = 0
        self._limit = int(limit)

    def next(self) -> int | None:
        """Claim the next position, or ``None`` when exhausted."""
        with self._lock:
            if self._next >= self._limit:
                return None
            value = self._next
            self._next += 1
            return value

    @property
    def position(self) -> int:
        """Next unclaimed position."""
        with self._lock:
            return self._next


class TierPrefetcher(threading.Thread):
    """Fills one storage tier with its planned samples, access order."""

    def __init__(
        self,
        tier: int,
        thread_index: int,
        num_threads: int,
        planned_ids: np.ndarray,
        read_fn: Callable[[int], bytes],
        store_fn: Callable[[int, int, bytes], bool],
        advance_fn: Callable[[], int],
        stop_event: threading.Event,
    ) -> None:
        super().__init__(daemon=True, name=f"tier{tier}-prefetch{thread_index}")
        self._tier = tier
        # Round-robin split of the tier's list across its threads keeps
        # the access-order property per thread.
        self._ids = planned_ids[thread_index::num_threads]
        self._read = read_fn
        self._store = store_fn
        self._advance = advance_fn
        self._stop_event = stop_event
        self.error: Exception | None = None

    def run(self) -> None:  # pragma: no cover - exercised via Job tests
        try:
            for sample_id in self._ids:
                if self._stop_event.is_set():
                    return
                data = self._read(int(sample_id))
                self._store(self._tier, int(sample_id), data)
                self._advance()
        except ReproError as exc:
            self.error = exc
        except RuntimeError as exc:  # buffer closed during shutdown
            self.error = exc


class StagingPrefetcher(threading.Thread):
    """Deposits the access stream into the staging buffer, in order."""

    def __init__(
        self,
        thread_index: int,
        stream: np.ndarray,
        cursor: SharedCursor,
        fetch_fn: Callable[[int], bytes],
        put_fn: Callable[[int, int, bytes], None],
        stop_event: threading.Event,
    ) -> None:
        super().__init__(daemon=True, name=f"staging-prefetch{thread_index}")
        self._stream = stream
        self._cursor = cursor
        self._fetch = fetch_fn
        self._put = put_fn
        self._stop_event = stop_event
        self.error: Exception | None = None

    def run(self) -> None:  # pragma: no cover - exercised via Job tests
        try:
            while not self._stop_event.is_set():
                seq = self._cursor.next()
                if seq is None:
                    return
                sample_id = int(self._stream[seq])
                data = self._fetch(sample_id)
                self._put(seq, sample_id, data)
        except ReproError as exc:
            self.error = exc
        except RuntimeError as exc:  # buffer closed during shutdown
            self.error = exc
