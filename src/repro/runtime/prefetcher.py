"""Prefetcher threads: tier fillers and the staging-buffer producer.

"The core prefetching logic is managed by prefetcher backends, which
implement all the logic for prefetching to a particular storage class.
[...] We also implement a special prefetcher for the staging buffer,
which is filled in a circular manner." (Sec 5.2.2)

Two thread bodies live here:

* :class:`TierPrefetcher` — fills one cache tier with its planned
  samples *in access order* (Rule 1), reading from the dataset, and
  advances the worker's progress counter (the heuristic's input).
* :class:`StagingPrefetcher` — pulls the next positions of the access
  stream ``R`` from a shared cursor, resolves each sample from the
  cheapest source (local tier -> remote holder -> dataset), applies the
  preprocessing callable, and deposits into the staging buffer.

Both are :class:`_PrefetchThread` subclasses, which fixes the shutdown
discipline: a failure during an orderly stop (the staging buffer closing
under a blocked ``put``) is a *clean* exit, while any other exception is
recorded on ``.error`` **and** pushed through ``fail_fn`` — typically
:meth:`StagingBuffer.fail <repro.runtime.buffer.StagingBuffer.fail>` —
so it re-raises in the consuming thread instead of dying silently with
the daemon.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

__all__ = ["SharedCursor", "TierPrefetcher", "StagingPrefetcher"]


class SharedCursor:
    """A thread-safe monotonically increasing position dispenser."""

    def __init__(self, limit: int) -> None:
        self._lock = threading.Lock()
        self._next = 0
        self._limit = int(limit)

    def next(self) -> int | None:
        """Claim the next position, or ``None`` when exhausted."""
        with self._lock:
            if self._next >= self._limit:
                return None
            value = self._next
            self._next += 1
            return value

    @property
    def position(self) -> int:
        """Next unclaimed position."""
        with self._lock:
            return self._next


class _PrefetchThread(threading.Thread):
    """Shared error/shutdown discipline for the prefetcher threads."""

    def __init__(
        self,
        name: str,
        stop_event: threading.Event,
        fail_fn: Callable[[Exception], None] | None,
    ) -> None:
        super().__init__(daemon=True, name=name)
        self._stop_event = stop_event
        self._fail = fail_fn
        self.error: Exception | None = None

    def run(self) -> None:  # pragma: no cover - exercised via thread tests
        try:
            self._work()
        except Exception as exc:
            if self._stop_event.is_set():
                # Orderly shutdown: the buffer closing (or a tier being
                # torn down) under a blocked call is expected noise, not
                # a failure to report.
                return
            self.error = exc
            if self._fail is not None:
                self._fail(exc)

    def _work(self) -> None:
        raise NotImplementedError


class TierPrefetcher(_PrefetchThread):
    """Fills one storage tier with its planned samples, access order."""

    def __init__(
        self,
        tier: int,
        thread_index: int,
        num_threads: int,
        planned_ids: np.ndarray,
        read_fn: Callable[[int], bytes],
        store_fn: Callable[[int, int, bytes], bool],
        advance_fn: Callable[[], int],
        stop_event: threading.Event,
        fail_fn: Callable[[Exception], None] | None = None,
    ) -> None:
        super().__init__(f"tier{tier}-prefetch{thread_index}", stop_event, fail_fn)
        self._tier = tier
        # Round-robin split of the tier's list across its threads keeps
        # the access-order property per thread.
        self._ids = planned_ids[thread_index::num_threads]
        self._read = read_fn
        self._store = store_fn
        self._advance = advance_fn

    def _work(self) -> None:
        for sample_id in self._ids:
            if self._stop_event.is_set():
                return
            data = self._read(int(sample_id))
            self._store(self._tier, int(sample_id), data)
            self._advance()


class StagingPrefetcher(_PrefetchThread):
    """Deposits the access stream into the staging buffer, in order.

    ``fetch_fn`` receives ``(seq, sample_id)`` — the stream position as
    well as the id — so the fetch path can attribute each sample to its
    epoch deterministically (``epoch = seq // samples_per_epoch``)
    regardless of thread timing.
    """

    def __init__(
        self,
        thread_index: int,
        stream: np.ndarray,
        cursor: SharedCursor,
        fetch_fn: Callable[[int, int], bytes],
        put_fn: Callable[[int, int, bytes], None],
        stop_event: threading.Event,
        fail_fn: Callable[[Exception], None] | None = None,
    ) -> None:
        super().__init__(f"staging-prefetch{thread_index}", stop_event, fail_fn)
        self._stream = stream
        self._cursor = cursor
        self._fetch = fetch_fn
        self._put = put_fn

    def _work(self) -> None:
        while not self._stop_event.is_set():
            seq = self._cursor.next()
            if seq is None:
                return
            sample_id = int(self._stream[seq])
            data = self._fetch(seq, sample_id)
            self._put(seq, sample_id, data)
