"""Runtime planner: clairvoyant placement and fetch routing for real jobs.

This module turns the core analysis (:mod:`repro.core`) into the
concrete tables a running :class:`~repro.runtime.job.Job` consults:

* each worker's tier placement (hottest samples to fastest tiers),
* the per-tier *prefetch order* (access order — Rule 1),
* for every sample, the best remote holder ``(worker, tier)``,
* each sample's position in its holder's prefetch order, which is what
  the paper's remote-availability heuristic compares against the
  holder's progress counter.

Because every worker knows the seed, every worker computes identical
tables — no metadata traffic, exactly the paper's design.
"""

from __future__ import annotations

import numpy as np

from ..core import AccessStream, CachePlan, StreamConfig, frequency_placement_sparse
from ..errors import ConfigurationError

__all__ = ["RuntimePlan", "best_holders", "build_runtime_plan"]


class RuntimePlan:
    """Fetch-routing tables shared by all workers of one job group."""

    def __init__(
        self,
        plan: CachePlan,
        prefetch_orders: list[np.ndarray],
        holder_of: np.ndarray,
        holder_position: np.ndarray,
    ) -> None:
        self.plan = plan
        #: Per worker: cached ids in prefetch (access) order, fast tiers first.
        self.prefetch_orders = prefetch_orders
        #: Best remote worker caching each sample (-1 = nobody).
        self.holder_of = holder_of
        #: Position of each sample in its holder's prefetch order.
        self.holder_position = holder_position

    def tier_prefetch_lists(self, worker: int) -> list[np.ndarray]:
        """Per-tier prefetch lists for ``worker``, each in access order."""
        placement = self.plan.placements[worker]
        order_pos = {
            int(sid): pos
            for pos, sid in enumerate(self.prefetch_orders[worker])
        }
        lists = []
        for ids in placement.class_ids:
            arr = np.asarray(ids, dtype=np.int64)
            if arr.size:
                keys = np.array([order_pos[int(s)] for s in arr])
                arr = arr[np.argsort(keys)]
            lists.append(arr)
        return lists


def best_holders(placements, num_samples: int) -> tuple[np.ndarray, np.ndarray]:
    """Best holder per sample: fastest tier wins, ties -> lowest rank.

    Returns ``(holder_of, holder_tier)``; ``holder_of`` is ``-1`` (and
    ``holder_tier`` 127) for samples nobody caches. Shared with the
    parity harness, which routes the simulator's cache plan through the
    very same resolution the runtime uses.
    """
    holder_of = np.full(num_samples, -1, dtype=np.int32)
    holder_tier = np.full(num_samples, np.int8(127), dtype=np.int8)
    for worker, placement in enumerate(placements):
        for tier, ids in enumerate(placement.class_ids):
            arr = np.asarray(ids, dtype=np.int64)
            if arr.size:
                better = holder_tier[arr] > tier
                holder_of[arr[better]] = worker
                holder_tier[arr[better]] = tier
    return holder_of, holder_tier


def build_runtime_plan(
    stream_config: StreamConfig,
    sizes_bytes: np.ndarray,
    tier_capacities_bytes: list[int],
) -> RuntimePlan:
    """Compute the full routing plan for a job group.

    Parameters
    ----------
    stream_config:
        The shared access-stream configuration (seed, F, N, B, E).
    sizes_bytes:
        Per-sample sizes in bytes (shape ``(F,)``).
    tier_capacities_bytes:
        Capacity of each cache tier, fastest first (same for every
        worker, matching the paper's homogeneous-node assumption).
    """
    sizes = np.asarray(sizes_bytes, dtype=np.float64)
    if sizes.shape != (stream_config.num_samples,):
        raise ConfigurationError("sizes must have shape (F,)")
    stream = AccessStream(stream_config)
    n = stream_config.num_workers
    f = stream_config.num_samples

    placements = []
    prefetch_orders: list[np.ndarray] = []
    for worker in range(n):
        full = stream.worker_stream(worker)
        uids, first_pos, counts = np.unique(
            full, return_index=True, return_counts=True
        )
        placement = frequency_placement_sparse(
            uids, counts, sizes[uids], list(map(float, tier_capacities_bytes)), worker
        )
        placements.append(placement)
        # Prefetch order: cached ids sorted by first access (Rule 1),
        # faster tiers first so hot samples land early.
        pos_of = dict(zip(uids.tolist(), first_pos.tolist()))
        ordered_parts = []
        for ids in placement.class_ids:
            arr = np.asarray(ids, dtype=np.int64)
            if arr.size:
                keys = np.array([pos_of[int(s)] for s in arr])
                arr = arr[np.argsort(keys)]
            ordered_parts.append(arr)
        prefetch_orders.append(
            np.concatenate(ordered_parts)
            if ordered_parts
            else np.empty(0, dtype=np.int64)
        )

    plan = CachePlan(placements, f, max(len(tier_capacities_bytes), 1))
    holder_of, _ = best_holders(placements, f)

    holder_position = np.full(f, -1, dtype=np.int64)
    for worker, order in enumerate(prefetch_orders):
        if order.size:
            mine = holder_of[order] == worker
            holder_position[order[mine]] = np.nonzero(mine)[0]
    return RuntimePlan(plan, prefetch_orders, holder_of, holder_position)
