"""Storage backends: capacity-enforced sample caches (Sec 5.2.2).

"Storage backends need only implement a generic interface, and NoPFS
currently supports filesystem- and memory-based storage backends, which
are sufficient to support most storage classes (including RAM, SSDs,
and HDDs). Additional backends (e.g., for key-value stores or
databases) can easily be added."

Both backends here enforce their byte capacity strictly and are safe
for concurrent use by prefetcher threads and remote-serving calls.
"""

from __future__ import annotations

import abc
import threading
from pathlib import Path

from ..errors import ConfigurationError, RuntimeIOError

__all__ = ["StorageBackend", "MemoryBackend", "FilesystemBackend"]


class StorageBackend(abc.ABC):
    """A byte-budgeted key/value store for cached samples.

    Subclasses implement the raw operations; this base provides the
    shared capacity accounting and locking discipline.
    """

    def __init__(self, name: str, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ConfigurationError("capacity_bytes must be non-negative")
        self.name = name
        self._capacity = int(capacity_bytes)
        self._lock = threading.RLock()
        self._used = 0
        self._sizes: dict[int, int] = {}

    # -- public API ----------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Configured byte budget."""
        return self._capacity

    @property
    def used_bytes(self) -> int:
        """Bytes currently cached."""
        with self._lock:
            return self._used

    def __contains__(self, sample_id: int) -> bool:
        with self._lock:
            return sample_id in self._sizes

    def __len__(self) -> int:
        with self._lock:
            return len(self._sizes)

    def sample_ids(self) -> list[int]:
        """Snapshot of the cached sample ids."""
        with self._lock:
            return list(self._sizes)

    def put(self, sample_id: int, data: bytes) -> bool:
        """Cache ``data`` under ``sample_id``.

        Returns ``False`` (without storing) when the sample would exceed
        the remaining capacity — the prefetcher then targets the next
        storage class. Re-putting an existing id is a no-op returning
        ``True``.
        """
        size = len(data)
        with self._lock:
            if sample_id in self._sizes:
                return True
            if self._used + size > self._capacity:
                return False
            self._write(sample_id, data)
            self._sizes[sample_id] = size
            self._used += size
            return True

    def get(self, sample_id: int) -> bytes | None:
        """Return the cached bytes, or ``None`` on a miss."""
        with self._lock:
            if sample_id not in self._sizes:
                return None
            return self._read(sample_id)

    def delete(self, sample_id: int) -> bool:
        """Evict one sample; returns whether it was present."""
        with self._lock:
            size = self._sizes.pop(sample_id, None)
            if size is None:
                return False
            self._remove(sample_id)
            self._used -= size
            return True

    def clear(self) -> None:
        """Evict everything."""
        with self._lock:
            for sample_id in list(self._sizes):
                self._remove(sample_id)
            self._sizes.clear()
            self._used = 0

    # -- backend primitives ----------------------------------------------------

    @abc.abstractmethod
    def _write(self, sample_id: int, data: bytes) -> None:
        """Store bytes (capacity already checked, lock held)."""

    @abc.abstractmethod
    def _read(self, sample_id: int) -> bytes:
        """Load bytes (presence already checked, lock held)."""

    @abc.abstractmethod
    def _remove(self, sample_id: int) -> None:
        """Drop stored bytes (presence already checked, lock held)."""


class MemoryBackend(StorageBackend):
    """RAM-class backend: a plain in-process dict of byte strings."""

    def __init__(self, capacity_bytes: int, name: str = "memory") -> None:
        super().__init__(name, capacity_bytes)
        self._store: dict[int, bytes] = {}

    def _write(self, sample_id: int, data: bytes) -> None:
        self._store[sample_id] = data

    def _read(self, sample_id: int) -> bytes:
        return self._store[sample_id]

    def _remove(self, sample_id: int) -> None:
        self._store.pop(sample_id, None)


class FilesystemBackend(StorageBackend):
    """SSD/HDD-class backend: one file per sample under a cache dir.

    The functional counterpart of the paper's mmap/POSIX filesystem
    prefetcher backend.
    """

    def __init__(
        self, capacity_bytes: int, cache_dir: str | Path, name: str = "filesystem"
    ) -> None:
        super().__init__(name, capacity_bytes)
        self._dir = Path(cache_dir)
        self._dir.mkdir(parents=True, exist_ok=True)

    def _path(self, sample_id: int) -> Path:
        return self._dir / f"sample_{sample_id}.bin"

    def _write(self, sample_id: int, data: bytes) -> None:
        try:
            self._path(sample_id).write_bytes(data)
        except OSError as exc:  # pragma: no cover - environment dependent
            raise RuntimeIOError(f"cache write failed for {sample_id}") from exc

    def _read(self, sample_id: int) -> bytes:
        try:
            return self._path(sample_id).read_bytes()
        except OSError as exc:
            raise RuntimeIOError(f"cache read failed for {sample_id}") from exc

    def _remove(self, sample_id: int) -> None:
        try:
            self._path(sample_id).unlink(missing_ok=True)
        except OSError as exc:  # pragma: no cover - environment dependent
            raise RuntimeIOError(f"cache evict failed for {sample_id}") from exc
