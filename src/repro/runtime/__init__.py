"""The functional NoPFS middleware (Sec 5): Job API, buffers, backends."""

from .backends import FilesystemBackend, MemoryBackend, StorageBackend
from .buffer import StagingBuffer
from .comm import WorkerGroup
from .distributed import DistributedJobGroup
from .job import Job, JobStats
from .metadata import MetadataStore
from .planner import RuntimePlan, best_holders, build_runtime_plan
from .prefetcher import SharedCursor, StagingPrefetcher, TierPrefetcher

__all__ = [
    "StagingBuffer",
    "StorageBackend",
    "MemoryBackend",
    "FilesystemBackend",
    "MetadataStore",
    "WorkerGroup",
    "RuntimePlan",
    "best_holders",
    "build_runtime_plan",
    "SharedCursor",
    "TierPrefetcher",
    "StagingPrefetcher",
    "Job",
    "JobStats",
    "DistributedJobGroup",
]
