"""In-process worker group: the distributed substrate (Sec 5.2.2).

"A distributed manager class handles all distributed operations among
workers, using MPI for the underlying communication infrastructure.
During setup, it is responsible for distributing a worker's access
sequence R to all other workers (an allgather). It also provides
functionality for serving locally cached samples to and requesting
samples from remote nodes."

We have no multi-node fabric, so :class:`WorkerGroup` reproduces the
same protocol in one process: an allgather rendezvous for setup data, a
request/serve path for remote sample fetches (a direct, thread-safe
call into the holder's backends — the moral equivalent of an RDMA
read), and shared prefetch-progress counters that power the paper's
remote-availability heuristic. An optional per-MB delay models network
transfer time for experiments that want wall-clock realism.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from ..errors import CommunicationError, ConfigurationError

__all__ = ["WorkerGroup"]


class WorkerGroup:
    """Rendezvous + sample-serving fabric for ``size`` in-process workers."""

    def __init__(
        self,
        size: int,
        network_delay_s_per_mb: float = 0.0,
        timeout_s: float = 30.0,
        clock=None,
    ) -> None:
        if size <= 0:
            raise ConfigurationError("group size must be positive")
        if network_delay_s_per_mb < 0:
            raise ConfigurationError("network delay must be non-negative")
        self._size = size
        self._delay_per_mb = float(network_delay_s_per_mb)
        self._timeout = float(timeout_s)
        # Any ClusterClock; the stdlib time module satisfies the port
        # structurally, so it is the default. Tests inject a FakeClock
        # to make the network delay model assertable without sleeping.
        self._clock = clock if clock is not None else time
        self._lock = threading.Lock()
        self._gathered = threading.Condition(self._lock)
        self._allgather_slots: dict[str, dict[int, Any]] = {}
        self._serve_fns: dict[int, Callable[[int], bytes | None]] = {}
        self._progress_fns: dict[int, Callable[[], int]] = {}
        self._remote_bytes_served = 0
        self._remote_requests = 0

    @property
    def size(self) -> int:
        """Number of workers in the group."""
        return self._size

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._size:
            raise CommunicationError(f"rank {rank} out of range [0, {self._size})")

    # -- setup: allgather ----------------------------------------------------

    def allgather(self, rank: int, key: str, value: Any) -> list[Any]:
        """Contribute ``value`` under ``key`` and collect everyone's.

        Blocks until all ranks have contributed (works both when jobs
        are constructed sequentially in one thread and when they run in
        parallel threads). Each rank may contribute once per key.
        """
        self._check_rank(rank)
        with self._gathered:
            slot = self._allgather_slots.setdefault(key, {})
            if rank in slot:
                raise CommunicationError(
                    f"rank {rank} already contributed to allgather {key!r}"
                )
            slot[rank] = value
            self._gathered.notify_all()
            deadline = time.monotonic() + self._timeout
            while len(slot) < self._size:
                remaining = deadline - time.monotonic()  # real time: waits a Condition
                if remaining <= 0:
                    raise CommunicationError(
                        f"allgather {key!r} timed out with "
                        f"{len(slot)}/{self._size} contributions"
                    )
                self._gathered.wait(remaining)
            return [slot[r] for r in range(self._size)]

    # -- serving: remote sample fetches -----------------------------------------

    def register(
        self,
        rank: int,
        serve_fn: Callable[[int], bytes | None],
        progress_fn: Callable[[], int],
    ) -> None:
        """Register a worker's sample-serving and progress endpoints."""
        self._check_rank(rank)
        with self._lock:
            self._serve_fns[rank] = serve_fn
            self._progress_fns[rank] = progress_fn

    def request_sample(self, target_rank: int, sample_id: int) -> bytes | None:
        """Fetch ``sample_id`` from ``target_rank``'s caches.

        Returns ``None`` when the target has not (yet) cached the sample
        — the paper's heuristic false-positive case, which callers must
        treat as a miss, not an error.
        """
        self._check_rank(target_rank)
        with self._lock:
            serve = self._serve_fns.get(target_rank)
        if serve is None:
            raise CommunicationError(f"rank {target_rank} is not serving yet")
        data = serve(sample_id)
        with self._lock:
            self._remote_requests += 1
            if data is not None:
                self._remote_bytes_served += len(data)
        if data is not None and self._delay_per_mb > 0:
            self._clock.sleep(self._delay_per_mb * len(data) / (1 << 20))
        return data

    def progress(self, target_rank: int) -> int:
        """The target's prefetch-progress counter (heuristic input)."""
        self._check_rank(target_rank)
        with self._lock:
            fn = self._progress_fns.get(target_rank)
        return fn() if fn is not None else 0

    # -- stats ---------------------------------------------------------------

    @property
    def remote_requests(self) -> int:
        """Total cross-worker sample requests (hits and misses)."""
        with self._lock:
            return self._remote_requests

    @property
    def remote_bytes_served(self) -> int:
        """Total bytes served across workers."""
        with self._lock:
            return self._remote_bytes_served
