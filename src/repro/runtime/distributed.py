"""Distributed-run builder: N jobs over one shared group and dataset.

The functional analogue of launching one NoPFS rank per GPU: build the
worker group, give every rank its own staging buffer and cache
backends, start all prefetchers, and (optionally) drive every rank's
consumption loop on its own thread.
"""

from __future__ import annotations

import threading
from typing import Callable

from ..errors import ConfigurationError
from ..loader.dataset import Dataset
from .backends import MemoryBackend, StorageBackend
from .comm import WorkerGroup
from .job import Job

__all__ = ["DistributedJobGroup"]


class DistributedJobGroup:
    """All ranks of one training job, running in-process.

    Parameters
    ----------
    dataset / batch_size / num_epochs / seed:
        Shared training parameters (see :class:`~repro.runtime.job.Job`).
    num_workers:
        ``N`` — ranks to create.
    tier_factories:
        Callables building each rank's cache backends, fastest first,
        e.g. ``[lambda rank: MemoryBackend(64 << 20)]``. Every rank gets
        fresh instances. Defaults to one memory tier sized to a quarter
        of the dataset.
    job_kwargs:
        Extra keyword arguments forwarded to every :class:`Job`.
    """

    def __init__(
        self,
        dataset: Dataset,
        num_workers: int,
        batch_size: int,
        num_epochs: int,
        seed: int,
        tier_factories: list[Callable[[int], StorageBackend]] | None = None,
        **job_kwargs,
    ) -> None:
        if num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        if tier_factories is None:
            default_capacity = max(dataset.total_bytes() // 4, 1 << 20)
            tier_factories = [lambda rank: MemoryBackend(default_capacity)]
        self.group = WorkerGroup(num_workers)
        # Construct ranks concurrently: Job setup contains a collective
        # rendezvous (the allgather of access-sequence metadata), exactly
        # like real MPI ranks starting together.
        slots: list[Job | None] = [None] * num_workers
        errors: list[Exception] = []

        def build(rank: int) -> None:
            try:
                tiers = [factory(rank) for factory in tier_factories]
                slots[rank] = Job(
                    dataset,
                    batch_size=batch_size,
                    num_epochs=num_epochs,
                    seed=seed,
                    rank=rank,
                    group=self.group,
                    tiers=tiers,
                    **job_kwargs,
                )
            except Exception as exc:
                errors.append(exc)

        builders = [
            threading.Thread(target=build, args=(rank,), daemon=True)
            for rank in range(num_workers)
        ]
        for t in builders:
            t.start()
        for t in builders:
            t.join(timeout=300.0)
        if errors:
            raise errors[0]
        if any(job is None for job in slots):
            raise ConfigurationError("job construction timed out")
        self.jobs: list[Job] = [job for job in slots if job is not None]

    def start(self) -> "DistributedJobGroup":
        """Start every rank's prefetchers."""
        for job in self.jobs:
            job.start()
        return self

    def stop(self) -> None:
        """Stop every rank."""
        for job in self.jobs:
            job.stop()

    def __enter__(self) -> "DistributedJobGroup":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def errors(self) -> list[Exception]:
        """Prefetcher errors across all ranks (empty when healthy)."""
        found: list[Exception] = []
        for job in self.jobs:
            found.extend(job.errors)
        return found

    def run_consumers(
        self,
        consume_fn: Callable[[Job, int, bytes, int], None] | None = None,
        timeout_s: float = 120.0,
    ) -> list[dict[str, int]]:
        """Drive every rank's full consumption loop on its own thread.

        ``consume_fn(job, sample_id, data, label)`` is called for every
        sample (default: discard). Returns each rank's source statistics.
        Raises the first worker error encountered, if any.
        """
        errors: list[Exception] = []

        def consumer(job: Job) -> None:
            try:
                for sample_id, data, label in job:
                    if consume_fn is not None:
                        consume_fn(job, sample_id, data, label)
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=consumer, args=(job,), daemon=True)
            for job in self.jobs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout_s)
            if t.is_alive():
                raise ConfigurationError("consumer thread timed out")
        errors.extend(self.errors())
        if errors:
            raise errors[0]
        return [job.stats.as_dict() for job in self.jobs]
