"""Metadata store: catalog of locally cached samples (Sec 5.2.2).

"For tracking samples, a metadata store keeps a catalog of locally
cached samples."

One :class:`MetadataStore` per worker maps sample ids to the storage
tier caching them, under a lock shared with the prefetchers and the
remote-serving path. It also carries the *prefetch progress counter*
other workers consult through the paper's remote-availability heuristic
(see :mod:`repro.runtime.comm`).
"""

from __future__ import annotations

import threading

__all__ = ["MetadataStore"]


class MetadataStore:
    """Thread-safe sample-id -> storage-tier catalog for one worker."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tier_of: dict[int, int] = {}
        self._progress = 0

    # -- catalog ---------------------------------------------------------------

    def record(self, sample_id: int, tier: int) -> None:
        """Register ``sample_id`` as cached in ``tier`` (fastest wins)."""
        with self._lock:
            current = self._tier_of.get(sample_id)
            if current is None or tier < current:
                self._tier_of[sample_id] = tier

    def forget(self, sample_id: int) -> None:
        """Remove a sample from the catalog (eviction path)."""
        with self._lock:
            self._tier_of.pop(sample_id, None)

    def tier_of(self, sample_id: int) -> int | None:
        """Tier caching ``sample_id`` locally, or ``None``."""
        with self._lock:
            return self._tier_of.get(sample_id)

    def __contains__(self, sample_id: int) -> bool:
        with self._lock:
            return sample_id in self._tier_of

    def __len__(self) -> int:
        with self._lock:
            return len(self._tier_of)

    # -- prefetch progress -------------------------------------------------------

    def advance_progress(self, count: int = 1) -> int:
        """Bump the prefetch progress counter; returns the new value.

        The counter is the number of entries of this worker's planned
        prefetch order that have been attempted so far — the quantity the
        paper's heuristic compares against ("if the local prefetching has
        reached the corresponding access stream location, then the remote
        worker likely has, too").
        """
        with self._lock:
            self._progress += count
            return self._progress

    @property
    def progress(self) -> int:
        """Current prefetch progress counter."""
        with self._lock:
            return self._progress
