"""`SearchManifest`: a search, fully reconstructible from its artifact.

The manifest records everything a search *decided* — the space, the
driver and its parameters, the seed, every evaluation's scenario and
cache fingerprint in evaluation order, the incumbent trajectory, the
winner and the final counters — and deliberately nothing a re-run
could legitimately change: no wall-clock durations, no cache hit/miss
split (a warm re-search hits where the cold run missed, yet is the
same search). Drivers take time from an injected clock and randomness
from :func:`repro.rng.generator` keyed on the manifest's seed, so the
same seed + space + driver produce a **byte-identical** manifest on
every run and under every executor; ``created_at`` is an optional
caller-supplied stamp (``python -m repro search --timestamp ...``),
never read from the system clock.

That determinism is also the resume story: re-running an interrupted
search replays the identical evaluation sequence, and every already-
completed evaluation is answered by the result cache — zero
re-simulations — until the frontier is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..api.scenario import Scenario
from ..config import ConfigMixin
from .space import SearchSpace

__all__ = ["EvaluationRecord", "IncumbentStep", "SearchManifest", "SearchStats"]

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class EvaluationRecord(ConfigMixin):
    """One simulated candidate, in evaluation order.

    ``fingerprint`` is the scenario's sweep-cache key (the evaluation
    is replayable — and warm — through it); ``objective_s`` is the
    simulated total time, ``None`` for unsupported candidates;
    ``full`` distinguishes full-fidelity evaluations (eligible to set
    the incumbent) from truncated-epoch rung evaluations of the
    ``halving`` driver.
    """

    index: int
    fingerprint: str
    scenario: Scenario
    objective_s: float | None
    full: bool = True


@dataclass(frozen=True)
class IncumbentStep(ConfigMixin):
    """One improvement of the best-known objective.

    ``evaluation`` indexes into the manifest's evaluation list.
    """

    evaluation: int
    fingerprint: str
    objective_s: float


@dataclass
class SearchStats(ConfigMixin):
    """Counters accumulated by a driver (mutable while it runs).

    ``opened`` counts tree nodes opened (subtrees and leaves);
    ``pruned_nodes`` / ``pruned_leaves`` count bound-based discards
    (nodes cut, and the candidate scenarios inside them);
    ``backtracks`` counts returns from an explored subtree;
    ``evaluations`` counts simulations requested (cache hits included
    — a warm search still *evaluates*); ``unsupported`` the candidates
    their policy rejected. ``status`` ends as ``solved``,
    ``budget_exhausted``, or ``timed_out``.
    """

    opened: int = 0
    pruned_nodes: int = 0
    pruned_leaves: int = 0
    backtracks: int = 0
    evaluations: int = 0
    unsupported: int = 0
    status: str = "initialized"

    def render(self) -> str:
        """One-line human-readable summary."""
        return (
            f"search: {self.status} | {self.evaluations} evaluated "
            f"({self.unsupported} unsupported) | "
            f"{self.pruned_leaves} pruned in {self.pruned_nodes} cuts | "
            f"{self.opened} opened / {self.backtracks} backtracks"
        )


@dataclass(frozen=True)
class SearchManifest(ConfigMixin):
    """The complete, byte-reproducible record of one search run."""

    driver: str
    seed: int
    space: SearchSpace
    params: dict[str, Any] = field(default_factory=dict)
    budget: int | None = None
    timeout_s: float | None = None
    created_at: str | None = None
    evaluations: tuple[EvaluationRecord, ...] = ()
    incumbents: tuple[IncumbentStep, ...] = ()
    best: EvaluationRecord | None = None
    stats: SearchStats = field(default_factory=SearchStats)
    version: int = MANIFEST_VERSION

    def __post_init__(self) -> None:
        if not isinstance(self.evaluations, tuple):
            object.__setattr__(self, "evaluations", tuple(self.evaluations))
        if not isinstance(self.incumbents, tuple):
            object.__setattr__(self, "incumbents", tuple(self.incumbents))

    def write(self, path: str | Path) -> Path:
        """Serialize to ``path`` as canonical (sorted-key) JSON."""
        path = Path(path)
        path.write_text(self.to_json(sort_keys=True) + "\n")
        return path

    @classmethod
    def read(cls, path: str | Path) -> "SearchManifest":
        """Load a manifest written by :meth:`write`."""
        return cls.from_json(Path(path).read_text())
