"""`repro.search`: policy/knob search over the cached sweep layer.

The paper's core question — which prefetching policy and knob settings
minimize epoch I/O time for a given dataset x system — is answered
here by *searching* the design space instead of enumerating it:

* :mod:`repro.search.space` — :class:`SearchSpace`: the candidate set
  (policy specs x knob domains over a base
  :class:`~repro.api.scenario.Scenario`) declared as plain,
  JSON-round-trippable data.
* :mod:`repro.search.drivers` — the :data:`SEARCHERS` registry and the
  three drivers behind it: ``bb`` branch-and-bound pruning on
  :func:`~repro.sim.bounds.policy_lower_bound`, plus ``random`` and
  ``halving`` (successive halving on truncated-epoch evaluations)
  baselines.
* :mod:`repro.search.evaluator` — :class:`Evaluator`: every candidate
  flows through :meth:`Session.sweep <repro.api.session.Session.sweep>`
  and the content-addressed result cache, so repeated and overlapping
  searches are warm (the hit/miss counters prove it).
* :mod:`repro.search.events` — typed search progress events
  (:class:`CandidateOpened`, :class:`CandidatePruned`,
  :class:`IncumbentImproved`, ...) published on the session's existing
  :class:`~repro.sweep.events.ProgressBus`.
* :mod:`repro.search.manifest` — :class:`SearchManifest`: space + seed
  + driver + every evaluation's cache fingerprint + the incumbent
  trajectory, making any search byte-reproducible and resumable.
* :mod:`repro.search.run` — :func:`run_search`, the one-call entry the
  CLI (``python -m repro search``) wraps.

Determinism is load-bearing throughout: drivers take their clock and
RNG from injected seams (:func:`repro.rng.generator` keyed on the
search seed; no ambient ``time.time()`` or global RNG), so the same
seed and space produce a byte-identical manifest on every run and
every executor — and resuming an interrupted search is simply
re-running it against the warm cache.
"""

from .drivers import (
    SEARCHERS,
    BranchBoundSearcher,
    HalvingSearcher,
    RandomSearcher,
    Searcher,
    SearchResult,
)
from .evaluator import Evaluator
from .events import (
    CandidateOpened,
    CandidatePruned,
    IncumbentImproved,
    SearchEvent,
    SearchFinished,
    SearchStarted,
)
from .manifest import EvaluationRecord, IncumbentStep, SearchManifest, SearchStats
from .run import run_search
from .space import KnobDomain, SearchSpace

__all__ = [
    "SEARCHERS",
    "BranchBoundSearcher",
    "CandidateOpened",
    "CandidatePruned",
    "Evaluator",
    "EvaluationRecord",
    "HalvingSearcher",
    "IncumbentImproved",
    "IncumbentStep",
    "KnobDomain",
    "RandomSearcher",
    "SearchEvent",
    "SearchFinished",
    "SearchManifest",
    "SearchResult",
    "SearchSpace",
    "SearchStarted",
    "SearchStats",
    "Searcher",
    "run_search",
]
