"""The search drivers and the `SEARCHERS` registry that names them.

Three drivers, one :class:`Searcher` protocol:

``bb`` — :class:`BranchBoundSearcher`
    Best-first branch-and-bound over a two-level candidate tree
    (policy subtrees above, knob-assignment leaves below), shaped after
    the mongodb-d4 design search: bound every node with the admissible
    :func:`~repro.sim.bounds.policy_lower_bound`, explore
    cheapest-bound-first, prune any node whose bound (times the
    ``relaxation`` knob) cannot beat the incumbent, count backtracks,
    and stop on budget or the injected-clock timeout. With
    ``relaxation=1.0`` the incumbent is exactly the exhaustive-sweep
    optimum while strictly fewer candidates are simulated (whenever any
    bound exceeds the optimum); ``relaxation > 1`` prunes harder and
    guarantees the result within that factor of the optimum.

``random`` — :class:`RandomSearcher`
    Seeded uniform sampling without replacement — the honest baseline
    B&B must beat on evaluations-to-optimum.

``halving`` — :class:`HalvingSearcher`
    Successive halving on truncated-epoch evaluations: every survivor
    is priced at a rung's (cheap) epoch count, the best ``1/eta``
    advance, epochs multiply by ``eta`` per rung, and only full-epoch
    evaluations may set the incumbent. Truncated evaluations are real
    scenarios with their own cache fingerprints, so rungs are warm
    across repeated searches too.

Determinism is a hard contract for every driver: time comes only from
the injected ``clock``, randomness only from
:func:`repro.rng.generator` keyed on the search seed, and candidate
traversal derives from the space's declared order — no ambient
``time.time()``, no global RNG. Same seed + space ⇒ identical
evaluation sequence, byte-identical manifest.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

from ..api.registry import Registry
from ..api.scenario import Scenario
from ..errors import ConfigurationError
from ..rng import generator
from .events import (
    CandidateOpened,
    CandidatePruned,
    IncumbentImproved,
    SearchFinished,
    SearchStarted,
)
from .evaluator import Evaluator
from .manifest import EvaluationRecord, IncumbentStep, SearchStats
from .space import SearchSpace

__all__ = [
    "SEARCHERS",
    "BranchBoundSearcher",
    "HalvingSearcher",
    "RandomSearcher",
    "SearchResult",
    "Searcher",
]

#: The search drivers, by name — the fourth registry next to
#: ``POLICIES`` / ``DATASETS`` / ``SYSTEMS`` (also reachable as
#: ``repro.api.SEARCHERS``).
SEARCHERS: Registry = Registry("searcher")


@dataclass(frozen=True)
class SearchResult:
    """What a driver hands back to :func:`~repro.search.run.run_search`."""

    evaluations: tuple[EvaluationRecord, ...]
    incumbents: tuple[IncumbentStep, ...]
    best: EvaluationRecord | None
    stats: SearchStats


@runtime_checkable
class Searcher(Protocol):
    """The driver contract: explore a space through an evaluator.

    ``name`` keys events and manifests; :meth:`params` reports the
    driver's own knobs (relaxation, eta, ...) for the manifest;
    :meth:`search` runs the exploration — taking its time *only* from
    ``clock`` and its randomness *only* from the ``seed`` — and
    returns the full trace.
    """

    name: str

    def params(self) -> dict[str, Any]:
        """The driver's knob settings, for the manifest."""
        ...

    def search(
        self,
        space: SearchSpace,
        evaluator: Evaluator,
        *,
        seed: int,
        budget: int | None = None,
        timeout_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> SearchResult:
        """Explore ``space``; every simulation goes through ``evaluator``."""
        ...


@dataclass
class _Trace:
    """Shared driver bookkeeping: evaluations, incumbent, budget, clock."""

    evaluator: Evaluator
    budget: int | None
    timeout_s: float | None
    clock: Callable[[], float]
    stats: SearchStats
    started_at: float = 0.0
    incumbent_s: float = math.inf
    best: EvaluationRecord | None = None
    evaluations: list[EvaluationRecord] = field(default_factory=list)
    incumbents: list[IncumbentStep] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.started_at = self.clock()

    def timed_out(self) -> bool:
        """Whether the injected clock has passed the timeout."""
        return (
            self.timeout_s is not None
            and self.clock() - self.started_at >= self.timeout_s
        )

    def exhausted(self) -> bool:
        """Whether the evaluation budget is spent."""
        return self.budget is not None and self.stats.evaluations >= self.budget

    def stopping(self) -> bool:
        """Set the terminal status if budget or timeout says stop."""
        if self.timed_out():
            self.stats.status = "timed_out"
            return True
        if self.exhausted():
            self.stats.status = "budget_exhausted"
            return True
        return False

    def record(
        self, scenario: Scenario, objective: float | None, *, full: bool
    ) -> EvaluationRecord:
        """Append one evaluation; full evaluations may take the incumbent.

        Ties on the objective break toward the smaller fingerprint, so
        the incumbent is the canonical ``min((objective, fingerprint))``
        of everything evaluated — independent of exploration order, and
        always the same candidate an exhaustive sweep would name.
        """
        record = EvaluationRecord(
            index=len(self.evaluations),
            fingerprint=scenario.fingerprint(),
            scenario=scenario,
            objective_s=objective,
            full=full,
        )
        self.evaluations.append(record)
        self.stats.evaluations += 1
        improves = objective is not None and (
            objective < self.incumbent_s
            or (
                objective == self.incumbent_s
                and self.best is not None
                and record.fingerprint < self.best.fingerprint
            )
        )
        if objective is None:
            self.stats.unsupported += 1
        elif full and improves:
            self.incumbent_s = objective
            self.best = record
            self.incumbents.append(
                IncumbentStep(
                    evaluation=record.index,
                    fingerprint=record.fingerprint,
                    objective_s=objective,
                )
            )
            self.evaluator.emit(
                IncumbentImproved(
                    fingerprint=record.fingerprint,
                    label=scenario.label,
                    objective_s=objective,
                )
            )
        return record

    def evaluate(self, scenario: Scenario, *, full: bool = True) -> EvaluationRecord:
        """Price one candidate through the evaluator and record it."""
        return self.record(scenario, self.evaluator.evaluate(scenario), full=full)

    def evaluate_batch(
        self, scenarios: list[Scenario], *, full: bool = True
    ) -> list[EvaluationRecord]:
        """Price a batch in one sweep call and record each in order."""
        objectives = self.evaluator.evaluate_many(scenarios)
        return [
            self.record(scenario, objective, full=full)
            for scenario, objective in zip(scenarios, objectives)
        ]

    def result(self) -> SearchResult:
        """Freeze the trace into the driver's return value."""
        if self.stats.status in ("initialized", "solving"):
            self.stats.status = "solved"
        self.evaluator.emit(SearchFinished(stats=self.stats))
        return SearchResult(
            evaluations=tuple(self.evaluations),
            incumbents=tuple(self.incumbents),
            best=self.best,
            stats=self.stats,
        )


def _start(
    name: str,
    space: SearchSpace,
    evaluator: Evaluator,
    budget: int | None,
    timeout_s: float | None,
    clock: Callable[[], float],
) -> _Trace:
    """Validate common driver inputs and open a trace."""
    if budget is not None and budget < 1:
        raise ConfigurationError(f"search budget must be >= 1, got {budget}")
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError(f"search timeout must be positive, got {timeout_s}")
    stats = SearchStats(status="solving")
    evaluator.emit(SearchStarted(driver=name, space_size=space.size()))
    return _Trace(
        evaluator=evaluator,
        budget=budget,
        timeout_s=timeout_s,
        clock=clock,
        stats=stats,
    )


class BranchBoundSearcher:
    """Best-first branch-and-bound with admissible-bound pruning.

    ``relaxation`` (``>= 1``) multiplies a node's bound before the
    incumbent comparison: ``1.0`` (default) prunes only provably
    non-improving nodes (exact optimum), larger values trade optimality
    — bounded to within the factor — for fewer evaluations. Reachable
    as the ``bb:1.5`` spec shorthand.
    """

    name = "bb"

    def __init__(self, relaxation: float = 1.0) -> None:
        self.relaxation = float(relaxation)
        if self.relaxation < 1.0:
            raise ConfigurationError(
                f"relaxation must be >= 1.0, got {relaxation!r}"
            )

    def params(self) -> dict[str, Any]:
        """The driver's knob settings, for the manifest."""
        return {"relaxation": self.relaxation}

    def _prunable(self, bound: float, trace: _Trace) -> bool:
        """Whether a node with ``bound`` cannot (relaxedly) improve."""
        return bound * self.relaxation >= trace.incumbent_s

    def search(
        self,
        space: SearchSpace,
        evaluator: Evaluator,
        *,
        seed: int,
        budget: int | None = None,
        timeout_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> SearchResult:
        """Bound, order, prune, evaluate — until solved, broke, or late."""
        trace = _start(self.name, space, evaluator, budget, timeout_s, clock)
        assignments = list(space.assignments())

        # Bound every leaf up front (bounds are cheap — no simulation);
        # a policy subtree's bound is its best leaf's.
        subtrees = []
        for policy in space.policies:
            leaves = [
                (space.candidate(policy, assignment), assignment)
                for assignment in assignments
            ]
            bounds = evaluator.lower_bounds([scenario for scenario, _ in leaves])
            node_bound = min(bounds)
            ordered = sorted(
                zip(leaves, bounds), key=lambda pair: (pair[1], pair[0][0].label)
            )
            subtrees.append((node_bound, policy, ordered))
        # Best-first: cheapest-bound subtree explored first, so the
        # incumbent tightens as early as possible.
        subtrees.sort(key=lambda node: (node[0], node[1]))

        for node_bound, policy, ordered in subtrees:
            if trace.stopping():
                break
            trace.stats.opened += 1
            evaluator.emit(CandidateOpened(label=policy, bound_s=node_bound))
            if self._prunable(node_bound, trace):
                trace.stats.pruned_nodes += 1
                trace.stats.pruned_leaves += len(ordered)
                evaluator.emit(
                    CandidatePruned(
                        label=policy,
                        bound_s=node_bound,
                        incumbent_s=trace.incumbent_s,
                        leaves=len(ordered),
                    )
                )
                continue
            for (scenario, _assignment), bound in ordered:
                if trace.stopping():
                    break
                label = scenario.label
                if self._prunable(bound, trace):
                    trace.stats.pruned_nodes += 1
                    trace.stats.pruned_leaves += 1
                    evaluator.emit(
                        CandidatePruned(
                            label=label,
                            bound_s=bound,
                            incumbent_s=trace.incumbent_s,
                            leaves=1,
                        )
                    )
                    continue
                trace.stats.opened += 1
                evaluator.emit(CandidateOpened(label=label, bound_s=bound))
                trace.evaluate(scenario)
            else:
                trace.stats.backtracks += 1
                continue
            break  # inner loop stopped on budget/timeout
        return trace.result()


class RandomSearcher:
    """Seeded uniform sampling without replacement (the baseline)."""

    name = "random"

    def params(self) -> dict[str, Any]:
        """The driver's knob settings, for the manifest."""
        return {}

    def search(
        self,
        space: SearchSpace,
        evaluator: Evaluator,
        *,
        seed: int,
        budget: int | None = None,
        timeout_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> SearchResult:
        """Evaluate candidates in a seeded random order until stopped."""
        trace = _start(self.name, space, evaluator, budget, timeout_s, clock)
        candidates = list(space.candidates())
        rng = generator(seed, "search", self.name)
        for index in rng.permutation(len(candidates)):
            if trace.stopping():
                break
            scenario = candidates[int(index)]
            trace.stats.opened += 1
            evaluator.emit(CandidateOpened(label=scenario.label, bound_s=math.nan))
            trace.evaluate(scenario)
        return trace.result()


class HalvingSearcher:
    """Successive halving on truncated-epoch evaluations.

    Rung ``k`` prices every survivor at ``min_epochs * eta**k`` epochs
    (capped at the candidate's own epoch count) and keeps the best
    ``1/eta`` fraction; the final rung runs at full epochs and is the
    only one allowed to set the incumbent. Reachable as the
    ``halving:2`` spec shorthand (``eta``).
    """

    name = "halving"

    def __init__(self, eta: int = 3, min_epochs: int = 1) -> None:
        self.eta = int(eta)
        self.min_epochs = int(min_epochs)
        if self.eta < 2:
            raise ConfigurationError(f"eta must be >= 2, got {eta!r}")
        if self.min_epochs < 1:
            raise ConfigurationError(f"min_epochs must be >= 1, got {min_epochs!r}")

    def params(self) -> dict[str, Any]:
        """The driver's knob settings, for the manifest."""
        return {"eta": self.eta, "min_epochs": self.min_epochs}

    def _truncated(self, scenario: Scenario, epochs: int) -> tuple[Scenario, bool]:
        """The rung-priced variant of a candidate (and whether it's full)."""
        import dataclasses

        epochs = min(epochs, scenario.num_epochs)
        if epochs == scenario.num_epochs:
            return scenario, True
        return dataclasses.replace(scenario, num_epochs=epochs), False

    def search(
        self,
        space: SearchSpace,
        evaluator: Evaluator,
        *,
        seed: int,
        budget: int | None = None,
        timeout_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> SearchResult:
        """Run the rungs, culling 1/eta of the survivors at each."""
        trace = _start(self.name, space, evaluator, budget, timeout_s, clock)
        survivors = list(space.candidates())
        full_epochs = max(s.num_epochs for s in survivors)
        epochs = min(self.min_epochs, full_epochs)

        while survivors:
            if trace.stopping():
                break
            rung = [self._truncated(s, epochs) for s in survivors]
            batch = [scenario for scenario, _ in rung]
            if trace.budget is not None:
                remaining = trace.budget - trace.stats.evaluations
                if remaining < len(batch):
                    # A culled rung would be decided by a biased subset;
                    # stop cleanly at the budget instead.
                    batch = batch[:remaining]
                    rung = rung[:remaining]
            for scenario, _ in rung:
                trace.stats.opened += 1
                evaluator.emit(CandidateOpened(label=scenario.label, bound_s=math.nan))
            records = trace.evaluate_batch(
                batch, full=all(full for _, full in rung) and bool(rung)
            )
            if trace.stopping() or len(records) < len(survivors):
                break
            if all(full for _, full in rung):
                break  # everything priced at full fidelity; done
            # Rank by rung objective (unsupported last), keep the top
            # 1/eta; ties break on rung order for determinism.
            ranked = sorted(
                range(len(survivors)),
                key=lambda i: (
                    records[i].objective_s is None,
                    records[i].objective_s if records[i].objective_s is not None else 0.0,
                    i,
                ),
            )
            keep = max(1, -(-len(survivors) // self.eta))  # ceil division
            survivors = [survivors[i] for i in ranked[:keep]]
            trace.stats.backtracks += 1
            epochs = min(epochs * self.eta, full_epochs)
        return trace.result()


SEARCHERS.register(
    "bb",
    BranchBoundSearcher,
    summary="Branch-and-bound pruning on analytic lower bounds (:R = relaxation)",
    variant_param="relaxation",
)
SEARCHERS.register(
    "random",
    RandomSearcher,
    summary="Seeded random sampling without replacement (baseline)",
)
SEARCHERS.register(
    "halving",
    HalvingSearcher,
    summary="Successive halving on truncated-epoch evaluations (:N = eta)",
    variant_param="eta",
)
SEARCHERS.alias("branch_and_bound", "bb")
