"""`SearchSpace`: the candidate design space, declared as data.

A space is a base :class:`~repro.api.scenario.Scenario` (the fixed
dataset x system x simulation knobs), a tuple of policy registry specs
(the policy axis), and zero or more :class:`KnobDomain` axes — each a
scenario field name with the discrete values to try. Candidates are
the cross product, materialized as plain ``Scenario`` values via
:func:`dataclasses.replace`, so every candidate inherits the scenario
layer's serialization, validation and — crucially — its sweep-cache
fingerprint.

Like everything in :mod:`repro.api`, a space round-trips through
dicts/JSON (:class:`~repro.config.ConfigMixin`), so the exact space a
search explored can live in its manifest and in version control.

Candidate *order* is part of the contract: policies in declaration
order, knob assignments in row-major :func:`itertools.product` order
over the declared domains. Drivers derive their traversal (and the
``random`` driver its permutation) from this order, which is what
makes search manifests byte-reproducible.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Any, Iterator

from ..api.presets import FIG8_POLICIES
from ..api.scenario import Scenario
from ..config import ConfigMixin
from ..errors import ConfigurationError

__all__ = ["KnobDomain", "SearchSpace"]

#: Scenario fields a knob domain may range over. ``policy`` is the
#: dedicated policy axis; ``record_batch_times`` is an output toggle,
#: not a design choice.
_KNOB_FIELDS = (
    "dataset",
    "system",
    "batch_size",
    "num_epochs",
    "seed",
    "scale",
    "barrier",
    "network_interference",
)


@dataclass(frozen=True)
class KnobDomain(ConfigMixin):
    """One searched scenario axis: a field name and its candidate values.

    ``name`` must be a non-policy :class:`~repro.api.scenario.Scenario`
    field (``batch_size``, ``scale``, ``system``, ...); ``values`` is
    the ordered tuple of values to try (duplicates rejected — they
    would alias distinct tree nodes onto one cache fingerprint).
    """

    name: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            # JSON round-trips and literals deliver lists; normalize so
            # round-tripped domains compare equal to their originals.
            object.__setattr__(self, "values", tuple(self.values))
        if self.name not in _KNOB_FIELDS:
            raise ConfigurationError(
                f"knob {self.name!r} is not a searchable scenario field "
                f"(choose from: {', '.join(_KNOB_FIELDS)})"
            )
        if not self.values:
            raise ConfigurationError(f"knob {self.name!r} needs at least one value")
        seen = set()
        for value in self.values:
            key = repr(value)
            if key in seen:
                raise ConfigurationError(
                    f"knob {self.name!r} lists {value!r} twice"
                )
            seen.add(key)


@dataclass(frozen=True)
class SearchSpace(ConfigMixin):
    """Policy specs x knob domains over a base scenario.

    ``base`` fixes every axis the space does not search (its own
    ``policy`` field is a placeholder — candidates always override it);
    ``policies`` is the ordered tuple of policy registry specs
    (defaults to the Fig 8 lineup); ``knobs`` the searched scenario
    fields. :meth:`candidates` enumerates the cross product in the
    deterministic order drivers traverse.
    """

    base: Scenario
    policies: tuple[str, ...] = ()
    knobs: tuple[KnobDomain, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.policies, tuple):
            object.__setattr__(self, "policies", tuple(self.policies))
        if not isinstance(self.knobs, tuple):
            object.__setattr__(self, "knobs", tuple(self.knobs))
        if not self.policies:
            object.__setattr__(self, "policies", tuple(FIG8_POLICIES))
        seen_policies = set()
        for spec in self.policies:
            if not isinstance(spec, str):
                raise ConfigurationError(
                    f"policy specs must be registry strings, got {spec!r}"
                )
            if spec in seen_policies:
                raise ConfigurationError(f"policy spec {spec!r} listed twice")
            seen_policies.add(spec)
        names = [knob.name for knob in self.knobs]
        for name in names:
            if names.count(name) > 1:
                raise ConfigurationError(f"knob {name!r} declared twice")

    def size(self) -> int:
        """Number of candidate scenarios (leaves of the search tree)."""
        n = len(self.policies)
        for knob in self.knobs:
            n *= len(knob.values)
        return n

    def assignments(self) -> Iterator[dict[str, Any]]:
        """Knob assignments in row-major declaration order."""
        names = [knob.name for knob in self.knobs]
        for values in itertools.product(*(knob.values for knob in self.knobs)):
            yield dict(zip(names, values))

    def candidate(self, policy: str, assignment: dict[str, Any]) -> Scenario:
        """Materialize one candidate scenario (validated on construction)."""
        return dataclasses.replace(self.base, policy=policy, **assignment)

    def candidates(self) -> Iterator[Scenario]:
        """Every candidate, policies outer, knob assignments inner."""
        for policy in self.policies:
            for assignment in self.assignments():
                yield self.candidate(policy, assignment)
