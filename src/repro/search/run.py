"""`run_search`: one call from a declared space to a written manifest.

This is the function behind ``python -m repro search``: resolve the
driver spec through :data:`~repro.search.drivers.SEARCHERS` (so
``bb:1.5`` shorthand and near-miss suggestions work exactly as for
policies), wire an :class:`~repro.search.evaluator.Evaluator` onto a
:class:`~repro.api.session.Session`, run the driver, and fold its
trace into a :class:`~repro.search.manifest.SearchManifest`.

The determinism seams are all injectable here: ``clock`` (defaults to
``time.monotonic``; tests pass fake clocks to exercise timeouts),
``timestamp`` (the manifest's ``created_at`` — never read from the
system clock, so manifests stay byte-reproducible unless the caller
opts in), and ``seed`` (the only randomness any driver sees).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping

from ..api.session import Session
from ..rng import DEFAULT_SEED
from ..sweep.events import SweepEvent
from .drivers import SEARCHERS, Searcher
from .evaluator import Evaluator
from .manifest import SearchManifest
from .space import SearchSpace

__all__ = ["run_search"]


def run_search(
    space: SearchSpace,
    *,
    driver: "str | Mapping[str, Any] | Searcher" = "bb",
    session: Session | None = None,
    seed: int = DEFAULT_SEED,
    budget: int | None = None,
    timeout_s: float | None = None,
    clock: Callable[[], float] | None = None,
    timestamp: str | None = None,
    on_event: Callable[[SweepEvent], None] | None = None,
) -> SearchManifest:
    """Search ``space`` and return the manifest of everything that happened.

    ``driver`` is a :data:`SEARCHERS` spec (``"bb"``, ``"bb:1.5"``,
    ``{"name": "halving", "eta": 2}``) or an already-built
    :class:`~repro.search.drivers.Searcher`. ``session`` supplies the
    executor and result cache every evaluation routes through (a fresh
    serial, uncached session when omitted). ``on_event`` subscribes to
    the session bus for the duration of the search only.
    """
    if session is None:
        session = Session()
    searcher: Searcher
    if isinstance(driver, (str, Mapping)):
        searcher = SEARCHERS.create(driver)
    else:
        searcher = driver
    evaluator = Evaluator(session)
    unsubscribe = session.bus.subscribe(on_event) if on_event is not None else None
    try:
        result = searcher.search(
            space,
            evaluator,
            seed=seed,
            budget=budget,
            timeout_s=timeout_s,
            clock=time.monotonic if clock is None else clock,
        )
    finally:
        if unsubscribe is not None:
            unsubscribe()
    return SearchManifest(
        driver=searcher.name,
        seed=seed,
        space=space,
        params=searcher.params(),
        budget=budget,
        timeout_s=timeout_s,
        created_at=timestamp,
        evaluations=result.evaluations,
        incumbents=result.incumbents,
        best=result.best,
        stats=result.stats,
    )
