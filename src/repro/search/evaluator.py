"""`Evaluator`: candidate pricing through the cached sweep layer.

Every candidate a driver wants simulated goes through
:meth:`Session.sweep <repro.api.session.Session.sweep>` — never a bare
:class:`~repro.sim.engine.Simulator` — so each evaluation lands in (or
is answered by) the content-addressed result cache under the
scenario's fingerprint. Repeated searches, overlapping spaces and
interrupted-then-resumed runs are therefore warm for free; the
evaluator's :attr:`~Evaluator.hits` / :attr:`~Evaluator.misses`
counters split evaluations into cache-served and freshly simulated,
which is how the tests *prove* a warm re-search performs zero
re-simulations.

Lower bounds (:func:`~repro.sim.bounds.policy_lower_bound`) are priced
here too, memoized per fingerprint, with one
:class:`~repro.sim.context.ScenarioContext` shared across every
candidate that differs only in policy — the ``run_many`` trick applied
to bounding, so bounding a nine-policy lineup builds the scenario's
access streams once.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from ..api.scenario import Scenario
from ..api.session import Session
from ..sim.bounds import policy_lower_bound
from ..sim.context import ScenarioContext
from ..sweep.events import SweepEvent

__all__ = ["Evaluator"]


class Evaluator:
    """Prices candidates (objective and bound) for the search drivers.

    The objective is the simulated end-to-end time
    (:attr:`~repro.sim.result.SimulationResult.total_time_s`:
    prestaging plus every epoch — the same structure the lower bound
    refines); unsupported candidates (the paper's "Does not support"
    cells) price to ``None`` and can never become the incumbent.
    """

    def __init__(self, session: Session) -> None:
        self.session = session
        #: Evaluations answered from the result cache.
        self.hits = 0
        #: Evaluations that actually simulated (cache misses).
        self.misses = 0
        self._bounds: dict[str, float] = {}
        self._contexts: dict[str, ScenarioContext] = {}

    # -- events --------------------------------------------------------

    def emit(self, event: SweepEvent) -> None:
        """Publish a search event on the session's progress bus."""
        self.session.bus.emit(event)

    # -- objectives ----------------------------------------------------

    def evaluate_many(self, scenarios: Sequence[Scenario]) -> list[float | None]:
        """Objectives for ``scenarios``, in order (one sweep, deduped).

        Duplicate fingerprints are evaluated once; the whole batch is
        a single :meth:`Session.sweep` call, so it parallelizes across
        the session's executor and memoizes per candidate.
        """
        order: list[str] = []
        unique: dict[str, Scenario] = {}
        for scenario in scenarios:
            fingerprint = scenario.fingerprint()
            order.append(fingerprint)
            unique.setdefault(fingerprint, scenario)
        if not unique:
            return []
        cells = [s.cell(tag=fp) for fp, s in unique.items()]
        outcome = self.session.sweep(cells)
        self.hits += outcome.stats.hits
        self.misses += outcome.stats.misses
        objectives = {
            fp: (None if (res := outcome.get(fp)) is None else float(res.total_time_s))
            for fp in unique
        }
        return [objectives[fp] for fp in order]

    def evaluate(self, scenario: Scenario) -> float | None:
        """Objective for one candidate (``None`` = unsupported)."""
        return self.evaluate_many([scenario])[0]

    # -- bounds --------------------------------------------------------

    def _context_for(self, scenario: Scenario) -> ScenarioContext:
        """A scenario context shared across the policy axis.

        Keyed on every scenario field except the policy, because the
        context (access streams, sample sizes) is policy-independent.
        """
        payload = scenario.to_dict()
        payload.pop("policy", None)
        key = json.dumps(payload, sort_keys=True, default=repr)
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = ScenarioContext(scenario.build_config())
            self._contexts[key] = ctx
        return ctx

    def lower_bound(self, scenario: Scenario) -> float:
        """Admissible lower bound on the candidate's objective.

        Memoized per fingerprint; ``inf`` for unsupported candidates
        (:func:`~repro.sim.bounds.policy_lower_bound` semantics), so
        they are pruned rather than simulated whenever an incumbent
        exists.
        """
        fingerprint = scenario.fingerprint()
        bound = self._bounds.get(fingerprint)
        if bound is None:
            bound = policy_lower_bound(
                scenario.build_config(),
                scenario.build_policy(),
                self._context_for(scenario),
            )
            self._bounds[fingerprint] = bound
        return bound

    def lower_bounds(self, scenarios: Iterable[Scenario]) -> list[float]:
        """:meth:`lower_bound` for each scenario, in order."""
        return [self.lower_bound(s) for s in scenarios]
