"""Typed search progress events, published on the sweep progress bus.

Search events subclass :class:`~repro.sweep.events.SweepEvent`, so
they ride the exact bus the sweep layer already owns: a subscriber on
:attr:`Session.bus <repro.api.session.Session.bus>` sees the per-cell
sweep lifecycle (each candidate evaluation is a one-cell sweep) *and*
the search-level narrative interleaved, in emission order:

* :class:`SearchStarted` / :class:`SearchFinished` bracket a driver
  run (``search_finished`` carries the final counter snapshot);
* :class:`CandidateOpened` — a tree node (a policy subtree or a leaf
  scenario) was opened for exploration, with its lower bound;
* :class:`CandidatePruned` — a node's bound (times the driver's
  relaxation) met or beat the incumbent, so its ``leaves`` candidate
  scenarios were discarded without simulation;
* :class:`IncumbentImproved` — a full-fidelity evaluation beat the
  best objective seen so far.

Like all bus traffic these are emitted synchronously from the process
driving the search, never from pool workers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sweep.events import SweepEvent

__all__ = [
    "CandidateOpened",
    "CandidatePruned",
    "IncumbentImproved",
    "SearchEvent",
    "SearchFinished",
    "SearchStarted",
]


@dataclass(frozen=True)
class SearchEvent(SweepEvent):
    """Base class of every search-level event."""


@dataclass(frozen=True)
class SearchStarted(SearchEvent):
    """A driver began exploring; ``space_size`` counts every candidate."""

    driver: str
    space_size: int


@dataclass(frozen=True)
class CandidateOpened(SearchEvent):
    """A node was opened: ``label`` names it (policy spec, or policy
    spec plus knob assignment for a leaf), ``bound_s`` is its admissible
    lower bound on the objective."""

    label: str
    bound_s: float


@dataclass(frozen=True)
class CandidatePruned(SearchEvent):
    """A node was discarded by its bound: ``leaves`` candidates were
    skipped because ``bound_s`` (under the driver's relaxation) could
    not beat ``incumbent_s``."""

    label: str
    bound_s: float
    incumbent_s: float
    leaves: int = 1


@dataclass(frozen=True)
class IncumbentImproved(SearchEvent):
    """A full evaluation produced a new best objective."""

    fingerprint: str
    label: str
    objective_s: float


@dataclass(frozen=True)
class SearchFinished(SearchEvent):
    """The driver returned; ``stats`` is the final
    :class:`~repro.search.manifest.SearchStats` snapshot (untyped here
    to keep the event layer import-light)."""

    stats: "object"
