"""Batch collation: raw sample bytes -> framework-ready arrays.

The functional analogue of the paper's "batch collation directly into a
pinned memory buffer, which we observed could be a bottleneck
otherwise" (Sec 5.2.2): equal-sized samples are packed into one
contiguous array with a single copy; ragged batches fall back to a list.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["collate_batch", "Batch"]


class Batch:
    """One collated mini-batch.

    Attributes
    ----------
    ids:
        Sample ids, shape ``(B,)``.
    data:
        ``(B, size)`` uint8 array when samples share a size, else a list
        of per-sample uint8 arrays.
    labels:
        Class labels, shape ``(B,)``.
    """

    __slots__ = ("ids", "data", "labels")

    def __init__(self, ids: np.ndarray, data, labels: np.ndarray) -> None:
        self.ids = ids
        self.data = data
        self.labels = labels

    def __len__(self) -> int:
        return int(self.ids.size)

    @property
    def is_contiguous(self) -> bool:
        """Whether the batch packed into one contiguous array."""
        return isinstance(self.data, np.ndarray)


def collate_batch(samples: list[tuple[int, bytes, int]]) -> Batch:
    """Collate ``(id, data, label)`` triples into a :class:`Batch`.

    Equal-length samples are packed into a single ``(B, size)`` uint8
    array (one pass, preallocated); mixed lengths return per-sample
    arrays.
    """
    if not samples:
        raise ConfigurationError("cannot collate an empty batch")
    ids = np.fromiter((s[0] for s in samples), dtype=np.int64, count=len(samples))
    labels = np.fromiter((s[2] for s in samples), dtype=np.int64, count=len(samples))
    sizes = {len(s[1]) for s in samples}
    if len(sizes) == 1:
        size = sizes.pop()
        out = np.empty((len(samples), size), dtype=np.uint8)
        for row, (_, data, _) in enumerate(samples):
            out[row] = np.frombuffer(data, dtype=np.uint8)
        return Batch(ids, out, labels)
    data = [np.frombuffer(s[1], dtype=np.uint8) for s in samples]
    return Batch(ids, data, labels)
