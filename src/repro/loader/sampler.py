"""Clairvoyant distributed sampler (the baseline loaders' index source).

Mirrors PyTorch's ``DistributedSampler`` semantics — each rank sees a
disjoint slice of a seeded epoch shuffle — but implemented on top of
the library's :class:`~repro.core.stream.AccessStream`, so the sample
order is *identical* to what a NoPFS :class:`~repro.runtime.job.Job`
with the same seed serves. That identity is what makes loader
comparisons apples-to-apples (and is asserted by the test suite).
"""

from __future__ import annotations

import numpy as np

from ..core import AccessStream, StreamConfig
from ..errors import ConfigurationError

__all__ = ["ClairvoyantDistributedSampler"]


class ClairvoyantDistributedSampler:
    """Per-rank, per-epoch sample indices from the shared seeded shuffle."""

    def __init__(self, config: StreamConfig, rank: int) -> None:
        if not 0 <= rank < config.num_workers:
            raise ConfigurationError(
                f"rank {rank} out of range [0, {config.num_workers})"
            )
        self.config = config
        self.rank = rank
        self._stream = AccessStream(config)
        self._epoch = 0

    def set_epoch(self, epoch: int) -> None:
        """Select the epoch the next iteration will shuffle for."""
        if epoch < 0:
            raise ConfigurationError("epoch must be non-negative")
        self._epoch = int(epoch)

    def indices(self, epoch: int | None = None) -> np.ndarray:
        """This rank's sample ids for ``epoch`` (default: current)."""
        e = self._epoch if epoch is None else epoch
        return self._stream.worker_epoch_stream(self.rank, e)

    def __iter__(self):
        return iter(self.indices().tolist())

    def __len__(self) -> int:
        return self.config.samples_per_worker_per_epoch
