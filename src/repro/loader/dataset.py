"""Datasets for the functional runtime: the "PFS" the loaders read from.

Three implementations cover testing and the examples:

* :class:`InMemoryDataset` — samples held as byte strings (unit tests).
* :class:`SyntheticFileDataset` — real files on disk with a configurable
  size distribution, class labels and an optional artificial per-read
  latency that stands in for a contended parallel filesystem. This is
  the substitution for ImageNet/CosmoFlow data (see DESIGN.md).
* :class:`BinaryFolderDataset` — the paper's ImageNet layout, "one
  directory per class containing all images of that class"; the
  functional analogue of ``NoPFSImageFolder``.
"""

from __future__ import annotations

import abc
import json
import time
from pathlib import Path

import numpy as np

from ..errors import ConfigurationError, RuntimeIOError
from ..rng import DEFAULT_SEED, generator

__all__ = [
    "Dataset",
    "InMemoryDataset",
    "SyntheticFileDataset",
    "BinaryFolderDataset",
]


class Dataset(abc.ABC):
    """Sample storage as the loaders see it: sized, labelled byte blobs."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of samples ``F``."""

    @abc.abstractmethod
    def read(self, sample_id: int) -> bytes:
        """Read one sample's raw bytes (may be slow — this is the PFS)."""

    @abc.abstractmethod
    def size(self, sample_id: int) -> int:
        """Sample size in bytes without reading it (metadata only)."""

    @abc.abstractmethod
    def label(self, sample_id: int) -> int:
        """The sample's class label."""

    @property
    def num_classes(self) -> int:
        """Number of distinct labels (default: scan)."""
        return len({self.label(i) for i in range(len(self))})

    def total_bytes(self) -> int:
        """Total dataset size in bytes."""
        return sum(self.size(i) for i in range(len(self)))

    def _check_id(self, sample_id: int) -> None:
        if not 0 <= sample_id < len(self):
            raise ConfigurationError(
                f"sample id {sample_id} out of range [0, {len(self)})"
            )


class InMemoryDataset(Dataset):
    """Samples held in memory; the fastest possible 'storage'."""

    def __init__(self, samples: list[bytes], labels: list[int] | None = None) -> None:
        if not samples:
            raise ConfigurationError("dataset must not be empty")
        self._samples = list(samples)
        self._labels = list(labels) if labels is not None else [0] * len(samples)
        if len(self._labels) != len(self._samples):
            raise ConfigurationError("labels must match samples")

    @classmethod
    def random(
        cls,
        num_samples: int,
        sample_bytes: int,
        num_classes: int = 10,
        seed: int = DEFAULT_SEED,
    ) -> "InMemoryDataset":
        """Generate random fixed-size samples with balanced labels."""
        rng = generator(seed, "inmemory-dataset")
        samples = [
            rng.integers(0, 256, sample_bytes, dtype=np.uint8).tobytes()
            for _ in range(num_samples)
        ]
        labels = [i % num_classes for i in range(num_samples)]
        return cls(samples, labels)

    @classmethod
    def classification(
        cls,
        num_samples: int,
        sample_bytes: int,
        num_classes: int = 4,
        noise: float = 20.0,
        seed: int = DEFAULT_SEED,
    ) -> "InMemoryDataset":
        """Generate a *learnable* dataset: class-dependent byte means.

        Each class has a random mean byte pattern; samples are the mean
        plus Gaussian noise, quantized to uint8 — linearly separable
        enough that a small MLP trained through the loaders converges
        (the end-to-end SGD demo and tests use this).
        """
        if num_classes <= 0 or noise < 0:
            raise ConfigurationError("num_classes > 0 and noise >= 0 required")
        rng = generator(seed, "inmemory-classification")
        means = rng.uniform(40, 215, size=(num_classes, sample_bytes))
        samples = []
        labels = []
        for i in range(num_samples):
            label = i % num_classes
            values = means[label] + rng.normal(0, noise, sample_bytes)
            samples.append(
                np.clip(values, 0, 255).astype(np.uint8).tobytes()
            )
            labels.append(label)
        return cls(samples, labels)

    def __len__(self) -> int:
        return len(self._samples)

    def read(self, sample_id: int) -> bytes:
        self._check_id(sample_id)
        return self._samples[sample_id]

    def size(self, sample_id: int) -> int:
        self._check_id(sample_id)
        return len(self._samples[sample_id])

    def label(self, sample_id: int) -> int:
        self._check_id(sample_id)
        return self._labels[sample_id]


class SyntheticFileDataset(Dataset):
    """Real files on disk with a manifest; optional artificial read latency.

    Use :meth:`generate` to materialize a dataset directory, then open it
    (from any number of "workers") with the constructor. ``latency_s``
    is added to every :meth:`read` to emulate a contended PFS — the knob
    the loader benchmarks turn to make I/O the bottleneck on a laptop.
    """

    MANIFEST = "manifest.json"

    def __init__(self, root: str | Path, latency_s: float = 0.0) -> None:
        self._root = Path(root)
        manifest_path = self._root / self.MANIFEST
        if not manifest_path.exists():
            raise ConfigurationError(
                f"{self._root} is not a SyntheticFileDataset (no manifest)"
            )
        manifest = json.loads(manifest_path.read_text())
        self._sizes = list(manifest["sizes"])
        self._labels = list(manifest["labels"])
        self._num_classes = int(manifest["num_classes"])
        self._latency = float(latency_s)

    @classmethod
    def generate(
        cls,
        root: str | Path,
        num_samples: int,
        mean_bytes: int,
        std_bytes: int = 0,
        num_classes: int = 10,
        seed: int = DEFAULT_SEED,
        latency_s: float = 0.0,
        learnable: bool = False,
    ) -> "SyntheticFileDataset":
        """Write ``num_samples`` random files plus a manifest to ``root``.

        With ``learnable=True``, samples carry a class-dependent mean
        byte pattern plus noise (instead of uniform random bytes), so a
        classifier trained through the loaders actually converges.
        """
        if num_samples <= 0 or mean_bytes <= 0:
            raise ConfigurationError("num_samples and mean_bytes must be positive")
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        rng = generator(seed, "synthetic-dataset")
        if std_bytes > 0:
            sizes = np.maximum(
                rng.normal(mean_bytes, std_bytes, num_samples), 16
            ).astype(np.int64)
        else:
            sizes = np.full(num_samples, mean_bytes, dtype=np.int64)
        labels = (np.arange(num_samples) % num_classes).tolist()
        class_means = (
            rng.uniform(40, 215, size=(num_classes, int(sizes.max())))
            if learnable
            else None
        )
        for i, size in enumerate(sizes):
            if class_means is not None:
                values = class_means[labels[i], : int(size)] + rng.normal(
                    0, 20.0, int(size)
                )
                payload = np.clip(values, 0, 255).astype(np.uint8).tobytes()
            else:
                payload = rng.integers(0, 256, int(size), dtype=np.uint8).tobytes()
            (root / f"sample_{i:08d}.bin").write_bytes(payload)
        (root / cls.MANIFEST).write_text(
            json.dumps(
                {
                    "sizes": sizes.tolist(),
                    "labels": labels,
                    "num_classes": num_classes,
                }
            )
        )
        return cls(root, latency_s=latency_s)

    def __len__(self) -> int:
        return len(self._sizes)

    def read(self, sample_id: int) -> bytes:
        self._check_id(sample_id)
        if self._latency > 0:
            time.sleep(self._latency)
        path = self._root / f"sample_{sample_id:08d}.bin"
        try:
            return path.read_bytes()
        except OSError as exc:
            raise RuntimeIOError(f"failed reading {path}") from exc

    def size(self, sample_id: int) -> int:
        self._check_id(sample_id)
        return int(self._sizes[sample_id])

    def label(self, sample_id: int) -> int:
        self._check_id(sample_id)
        return int(self._labels[sample_id])

    @property
    def num_classes(self) -> int:
        return self._num_classes

    @property
    def root(self) -> Path:
        """The dataset directory."""
        return self._root


class BinaryFolderDataset(Dataset):
    """Class-per-directory layout ("the standard data layout" of Sec 7).

    ``root/<class_name>/<file>`` — labels are assigned by sorted class
    directory order, exactly like torchvision's ``ImageFolder``.
    """

    def __init__(self, root: str | Path, latency_s: float = 0.0) -> None:
        self._root = Path(root)
        if not self._root.is_dir():
            raise ConfigurationError(f"{self._root} is not a directory")
        class_dirs = sorted(p for p in self._root.iterdir() if p.is_dir())
        if not class_dirs:
            raise ConfigurationError(f"{self._root} contains no class directories")
        self.classes = [p.name for p in class_dirs]
        self._files: list[Path] = []
        self._labels: list[int] = []
        for label, class_dir in enumerate(class_dirs):
            for f in sorted(class_dir.iterdir()):
                if f.is_file():
                    self._files.append(f)
                    self._labels.append(label)
        if not self._files:
            raise ConfigurationError(f"{self._root} contains no sample files")
        self._sizes = [f.stat().st_size for f in self._files]
        self._latency = float(latency_s)

    @classmethod
    def generate(
        cls,
        root: str | Path,
        num_classes: int,
        samples_per_class: int,
        sample_bytes: int,
        seed: int = DEFAULT_SEED,
    ) -> "BinaryFolderDataset":
        """Write a small class-per-directory tree of random files."""
        root = Path(root)
        rng = generator(seed, "binary-folder")
        for c in range(num_classes):
            class_dir = root / f"class_{c:04d}"
            class_dir.mkdir(parents=True, exist_ok=True)
            for s in range(samples_per_class):
                payload = rng.integers(0, 256, sample_bytes, dtype=np.uint8)
                (class_dir / f"img_{s:06d}.bin").write_bytes(payload.tobytes())
        return cls(root)

    def __len__(self) -> int:
        return len(self._files)

    def read(self, sample_id: int) -> bytes:
        self._check_id(sample_id)
        if self._latency > 0:
            time.sleep(self._latency)
        try:
            return self._files[sample_id].read_bytes()
        except OSError as exc:
            raise RuntimeIOError(f"failed reading {self._files[sample_id]}") from exc

    def size(self, sample_id: int) -> int:
        self._check_id(sample_id)
        return self._sizes[sample_id]

    def label(self, sample_id: int) -> int:
        self._check_id(sample_id)
        return self._labels[sample_id]

    @property
    def num_classes(self) -> int:
        return len(self.classes)
