"""Iterator-style data loaders: the Fig 7 API plus the baselines.

``NoPFSDataLoader`` wraps a running :class:`~repro.runtime.job.Job` —
the three-line integration the paper demonstrates:

    job = Job(dataset, batch_size, num_epochs, seed, rank, group, ...)
    loader = NoPFSDataLoader(job.start())
    for batch in loader.epoch(e): ...

Two baselines mirror the loaders the paper compares against:

* :class:`NaiveLoader` — synchronous per-batch reads straight from the
  dataset (no prefetching or caching).
* :class:`DoubleBufferLoader` — PyTorch-``DataLoader``-style background
  prefetching with a bounded queue (``prefetch_factor`` batches), still
  cacheless.

All three consume the *same* clairvoyant sample order for a given seed,
so their timings and outputs are directly comparable.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator

from ..core import StreamConfig
from ..errors import ConfigurationError
from ..runtime.job import Job
from .collate import Batch, collate_batch
from .dataset import Dataset
from .sampler import ClairvoyantDistributedSampler

__all__ = ["NoPFSDataLoader", "NaiveLoader", "DoubleBufferLoader"]


class NoPFSDataLoader:
    """Batched iteration over a started :class:`Job` (one rank's view)."""

    def __init__(self, job: Job) -> None:
        self.job = job
        self.batch_size = job.stream_config.batch_size
        self._next_epoch = 0

    @property
    def batches_per_epoch(self) -> int:
        """``T`` — batches served per epoch."""
        return self.job.stream_config.iterations_per_epoch

    def epoch(self, epoch: int) -> Iterator[Batch]:
        """Iterate epoch ``epoch``'s batches (must be consumed in order).

        The staging buffer serves samples strictly in stream order, so
        epochs must be consumed sequentially starting from 0; asking for
        any other epoch raises.
        """
        if epoch != self._next_epoch:
            raise ConfigurationError(
                f"epochs must be consumed in order; expected {self._next_epoch}, "
                f"got {epoch}"
            )
        self._next_epoch += 1
        for _ in range(self.batches_per_epoch):
            samples = [self.job.get() for _ in range(self.batch_size)]
            yield collate_batch(samples)

    def __iter__(self) -> Iterator[Batch]:
        """Iterate every remaining epoch's batches, in order."""
        for epoch in range(self._next_epoch, self.job.stream_config.num_epochs):
            yield from self.epoch(epoch)


class NaiveLoader:
    """Synchronous, cacheless batch loading (the Naive policy, for real)."""

    def __init__(self, dataset: Dataset, config: StreamConfig, rank: int) -> None:
        self.dataset = dataset
        self.config = config
        self.rank = rank
        self.sampler = ClairvoyantDistributedSampler(config, rank)

    def epoch(self, epoch: int) -> Iterator[Batch]:
        """Read and collate each batch on demand."""
        ids = self.sampler.indices(epoch)
        b = self.config.batch_size
        for start in range(0, ids.size, b):
            chunk = ids[start : start + b]
            samples = [
                (int(i), self.dataset.read(int(i)), self.dataset.label(int(i)))
                for i in chunk
            ]
            yield collate_batch(samples)

    def __iter__(self) -> Iterator[Batch]:
        for epoch in range(self.config.num_epochs):
            yield from self.epoch(epoch)


class DoubleBufferLoader:
    """Background-thread prefetching with a bounded batch queue.

    Models PyTorch's ``DataLoader(num_workers=1, prefetch_factor=k)``:
    overlap, bounded lookahead, no caching across epochs.
    """

    _SENTINEL = None

    def __init__(
        self,
        dataset: Dataset,
        config: StreamConfig,
        rank: int,
        prefetch_factor: int = 2,
    ) -> None:
        if prefetch_factor < 1:
            raise ConfigurationError("prefetch_factor must be >= 1")
        self.dataset = dataset
        self.config = config
        self.rank = rank
        self.prefetch_factor = prefetch_factor
        self.sampler = ClairvoyantDistributedSampler(config, rank)

    def epoch(self, epoch: int) -> Iterator[Batch]:
        """Iterate one epoch with a producer thread ``k`` batches ahead."""
        ids = self.sampler.indices(epoch)
        b = self.config.batch_size
        q: queue.Queue = queue.Queue(maxsize=self.prefetch_factor)
        error: list[Exception] = []

        def producer() -> None:
            try:
                for start in range(0, ids.size, b):
                    chunk = ids[start : start + b]
                    samples = [
                        (
                            int(i),
                            self.dataset.read(int(i)),
                            self.dataset.label(int(i)),
                        )
                        for i in chunk
                    ]
                    q.put(collate_batch(samples))
            except Exception as exc:  # propagate to the consumer
                error.append(exc)
            finally:
                q.put(self._SENTINEL)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        try:
            while True:
                batch = q.get()
                if batch is self._SENTINEL:
                    break
                yield batch
            if error:
                raise error[0]
        finally:
            thread.join(timeout=10.0)

    def __iter__(self) -> Iterator[Batch]:
        for epoch in range(self.config.num_epochs):
            yield from self.epoch(epoch)
