"""Data loaders and datasets (the paper's Fig 7 user-facing layer)."""

from .collate import Batch, collate_batch
from .dataset import BinaryFolderDataset, Dataset, InMemoryDataset, SyntheticFileDataset
from .loader import DoubleBufferLoader, NaiveLoader, NoPFSDataLoader
from .sampler import ClairvoyantDistributedSampler

__all__ = [
    "Dataset",
    "InMemoryDataset",
    "SyntheticFileDataset",
    "BinaryFolderDataset",
    "Batch",
    "collate_batch",
    "ClairvoyantDistributedSampler",
    "NoPFSDataLoader",
    "NaiveLoader",
    "DoubleBufferLoader",
]
