"""The four optimal prefetching/caching rules and Bélády utilities (Sec 3).

Cao, Felten, Karlin & Li (1995) showed any optimal single-disk integrated
prefetching/caching strategy obeys four rules, which the paper adapts:

1. **Optimal prefetching** — every prefetch fetches the next sample in
   ``R`` that is not in the cache.
2. **Optimal replacement** — every prefetch discards the sample whose
   next use is furthest in the future.
3. **Do no harm** — never discard ``A`` to prefetch ``B`` when ``A`` is
   used before ``B``.
4. **First opportunity** — never prefetch-and-replace when the same
   operation could have been done earlier.

NoPFS "is able to implement Rule 1 exactly and approximates the
remaining rules within a limited time horizon, using the fact that a
sample is accessed exactly once per epoch". This module provides the
rule predicates as executable checks (used by the test suite to verify
the staging-buffer policy) plus a reference Bélády cache simulator.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "next_use_index",
    "next_uncached_index",
    "furthest_future_use",
    "violates_do_no_harm",
    "belady_evictions",
    "staging_order_is_rule1",
]


def next_use_index(stream: np.ndarray) -> np.ndarray:
    """For each position ``f`` in ``stream``, the next position accessing
    the same sample (``len(stream)`` if never re-accessed).

    Classic Bélády preprocessing, computed in one backward pass.
    """
    stream = np.asarray(stream)
    n = stream.size
    out = np.empty(n, dtype=np.int64)
    last_seen: dict[int, int] = {}
    for pos in range(n - 1, -1, -1):
        sample = int(stream[pos])
        out[pos] = last_seen.get(sample, n)
        last_seen[sample] = pos
    return out


def next_uncached_index(
    stream: np.ndarray, position: int, cached: set[int]
) -> int | None:
    """Rule 1 target: index of the next stream entry not in ``cached``.

    Returns ``None`` when everything from ``position`` onward is cached.
    """
    stream = np.asarray(stream)
    for pos in range(position, stream.size):
        if int(stream[pos]) not in cached:
            return pos
    return None


def furthest_future_use(
    stream: np.ndarray, position: int, candidates: set[int]
) -> int:
    """Rule 2 victim: the candidate whose next use after ``position`` is
    furthest in the future (never-used candidates win immediately).

    Ties are broken toward the smaller sample id for determinism.
    """
    if not candidates:
        raise ConfigurationError("no eviction candidates")
    stream = np.asarray(stream)
    remaining = set(candidates)
    victim_distance = {c: np.inf for c in remaining}
    for pos in range(position, stream.size):
        sample = int(stream[pos])
        if sample in remaining:
            victim_distance[sample] = pos
            remaining.discard(sample)
            if not remaining:
                break
    # max distance; ties -> smallest id.
    return min(
        victim_distance, key=lambda c: (-victim_distance[c], c)
    )


def violates_do_no_harm(
    stream: np.ndarray, position: int, evicted: int, prefetched: int
) -> bool:
    """Rule 3 predicate: ``True`` iff ``evicted`` is used before
    ``prefetched`` in the remaining stream (the harmful case)."""
    stream = np.asarray(stream)
    for pos in range(position, stream.size):
        sample = int(stream[pos])
        if sample == evicted:
            return True
        if sample == prefetched:
            return False
    return False  # neither used again: eviction harmless


def belady_evictions(stream: np.ndarray, cache_size: int) -> tuple[int, list[int]]:
    """Reference Bélády (clairvoyant) cache simulation.

    Returns ``(misses, evictions)`` for a demand-fetch cache of
    ``cache_size`` samples processing ``stream``. Used as the optimality
    baseline in tests: no online policy can miss less.
    """
    if cache_size <= 0:
        raise ConfigurationError("cache_size must be positive")
    stream = np.asarray(stream)
    nxt = next_use_index(stream)
    cache: dict[int, int] = {}  # sample -> next use position
    misses = 0
    evictions: list[int] = []
    for pos in range(stream.size):
        sample = int(stream[pos])
        if sample in cache:
            cache[sample] = int(nxt[pos])
            continue
        misses += 1
        if len(cache) >= cache_size:
            victim = min(cache, key=lambda c: (-cache[c], c))
            del cache[victim]
            evictions.append(victim)
        cache[sample] = int(nxt[pos])
    return misses, evictions


def staging_order_is_rule1(
    stream: np.ndarray, prefetch_order: np.ndarray
) -> bool:
    """Check a staging-buffer fill order satisfies Rule 1.

    With drop-after-use semantics (NoPFS's staging buffer) nothing is in
    cache when first prefetched, so Rule 1 reduces to: the prefetch order
    must be exactly the access order. This helper verifies that.
    """
    stream = np.asarray(stream)
    prefetch_order = np.asarray(prefetch_order)
    return stream.shape == prefetch_order.shape and bool(
        np.array_equal(stream, prefetch_order)
    )
