"""Seed-deterministic epoch shuffling — the source of clairvoyance.

"Training consists of many epochs; each epoch is a complete pass over the
training dataset in a different, random order. [...] Given the seed used
to shuffle the indices, we can exactly replicate the result of the
shuffles, no matter the shuffle algorithm, and hence predict the access
pattern, giving us clairvoyance." (Sec 2)

:class:`EpochShuffler` maps ``(seed, epoch) -> permutation of range(F)``
with these guarantees:

* identical output for identical inputs, across processes and platforms
  (PCG64 + Fisher-Yates via :meth:`numpy.random.Generator.permutation`);
* statistically independent permutations across epochs (each epoch uses
  a ``SeedSequence`` spawned with the epoch number as its key);
* random access: epoch ``e`` can be generated without generating epochs
  ``0..e-1``, which is what lets every worker compute every other
  worker's future accesses "arbitrarily far in the future" (Sec 1).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..rng import generator

__all__ = ["EpochShuffler"]


class EpochShuffler:
    """Deterministic per-epoch permutations of ``num_samples`` indices.

    Parameters
    ----------
    seed:
        Root PRNG seed. Sharing this seed is what gives all workers
        clairvoyance over the global access stream.
    num_samples:
        Dataset size ``F``; each epoch is a permutation of ``range(F)``.
    """

    def __init__(self, seed: int, num_samples: int) -> None:
        if num_samples <= 0:
            raise ConfigurationError("num_samples must be positive")
        self._seed = int(seed)
        self._num_samples = int(num_samples)

    @property
    def seed(self) -> int:
        """Root seed generating every epoch's permutation."""
        return self._seed

    @property
    def num_samples(self) -> int:
        """Dataset size ``F``."""
        return self._num_samples

    def permutation(self, epoch: int) -> np.ndarray:
        """The shuffled sample indices of ``epoch`` (shape ``(F,)``, int64).

        Pure function of ``(seed, epoch)``: calling it twice — in the same
        process or on different "nodes" — yields the same array.
        """
        if epoch < 0:
            raise ConfigurationError("epoch must be non-negative")
        rng = generator(self._seed, "shuffle", int(epoch))
        return rng.permutation(self._num_samples)

    def permutations(self, num_epochs: int) -> np.ndarray:
        """Stacked permutations for epochs ``0..num_epochs-1``.

        Shape ``(E, F)``. Convenience for analyses that scan all epochs;
        prefer :meth:`permutation` in streaming code to bound memory.
        """
        if num_epochs <= 0:
            raise ConfigurationError("num_epochs must be positive")
        out = np.empty((num_epochs, self._num_samples), dtype=np.int64)
        for epoch in range(num_epochs):
            out[epoch] = self.permutation(epoch)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EpochShuffler(seed={self._seed}, num_samples={self._num_samples})"
