"""Clairvoyance core: shuffles, access streams, frequency analysis, plans.

This package is the paper's "primary contribution" layer: everything
needed to turn a PRNG seed into exact knowledge of who reads what when,
and to turn that knowledge into cache placement decisions.
"""

from .frequency import (
    FrequencyHistogram,
    access_frequency_distribution,
    expected_histogram,
    expected_samples_above,
    lemma1_lower_bound,
    lemma1_upper_bound,
    monte_carlo_histogram,
    tail_probability,
    verify_lemma1,
)
from .plan import (
    CachePlan,
    WorkerPlacement,
    frequency_placement,
    frequency_placement_sparse,
    partition_placement,
)
from .rules import (
    belady_evictions,
    furthest_future_use,
    next_uncached_index,
    next_use_index,
    staging_order_is_rule1,
    violates_do_no_harm,
)
from .shuffle import EpochShuffler
from .stream import AccessStream, StreamConfig

__all__ = [
    "EpochShuffler",
    "AccessStream",
    "StreamConfig",
    "FrequencyHistogram",
    "access_frequency_distribution",
    "tail_probability",
    "expected_samples_above",
    "expected_histogram",
    "monte_carlo_histogram",
    "lemma1_lower_bound",
    "lemma1_upper_bound",
    "verify_lemma1",
    "CachePlan",
    "WorkerPlacement",
    "frequency_placement",
    "frequency_placement_sparse",
    "partition_placement",
    "belady_evictions",
    "next_use_index",
    "next_uncached_index",
    "furthest_future_use",
    "violates_do_no_harm",
    "staging_order_is_rule1",
]
