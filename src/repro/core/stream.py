"""Per-worker access streams ``R`` derived from the epoch shuffles.

This module implements the paper's data-parallel access-pattern
formalism (Sec 4): at iteration ``h`` the global batch ``B_h`` is the
``h``-th slice of the epoch's permutation, and ``B_h`` is partitioned
among the ``N`` workers, worker ``i`` receiving the ``i``-th contiguous
block of ``B`` samples. A worker's access stream is the concatenation of
its per-batch blocks across iterations and epochs:

``R = (B^{1,i}_1, ..., B^{1,i}_b, B^{2,i}_1, ...)``

Everything is a pure function of ``(seed, F, N, B, E)`` — this is the
clairvoyance the rest of the library consumes. Key invariants (enforced
by the test suite, and by construction):

* within one epoch, every sample index appears **exactly once** across
  all workers (minus the dropped tail when ``drop_last``);
* worker streams are pairwise disjoint within an epoch;
* the same configuration always yields the same streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ConfigMixin
from ..errors import ConfigurationError
from .shuffle import EpochShuffler

__all__ = ["StreamConfig", "AccessStream"]


@dataclass(frozen=True)
class StreamConfig(ConfigMixin):
    """Parameters that fully determine every worker's access stream.

    Attributes
    ----------
    seed:
        Root shuffle seed (shared by all workers — the clairvoyance key).
    num_samples:
        Dataset size ``F``.
    num_workers:
        ``N`` — data-parallel workers; each global batch is split N ways.
    batch_size:
        ``B`` — *per-worker* batch size (the paper's per-GPU batch size).
    num_epochs:
        ``E`` — training epochs.
    drop_last:
        Drop the ragged final global batch (the paper's ``floor(F/B)``
        iteration count); if ``False`` the tail forms a short batch.
    """

    seed: int
    num_samples: int
    num_workers: int
    batch_size: int
    num_epochs: int
    drop_last: bool = True

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ConfigurationError("num_samples must be positive")
        if self.num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.num_epochs <= 0:
            raise ConfigurationError("num_epochs must be positive")
        if self.global_batch > self.num_samples:
            raise ConfigurationError(
                f"global batch {self.global_batch} exceeds dataset size "
                f"{self.num_samples}: no complete iteration exists"
            )

    @property
    def global_batch(self) -> int:
        """Global mini-batch size ``N * B``."""
        return self.num_workers * self.batch_size

    @property
    def iterations_per_epoch(self) -> int:
        """``T`` — complete iterations per epoch (``floor(F / NB)``)."""
        return self.num_samples // self.global_batch

    @property
    def samples_per_worker_per_epoch(self) -> int:
        """Length of one worker's per-epoch stream (``T * B`` if dropping)."""
        return self.iterations_per_epoch * self.batch_size

    @property
    def dropped_per_epoch(self) -> int:
        """Samples skipped each epoch when ``drop_last`` (the ragged tail)."""
        if not self.drop_last:
            return 0
        return self.num_samples - self.iterations_per_epoch * self.global_batch


class AccessStream:
    """Clairvoyant access streams for every worker under a config.

    This is the library's oracle: given only the :class:`StreamConfig`
    (in particular the seed), it produces the exact sequence of sample
    indices each worker will request, arbitrarily far into the future.
    """

    def __init__(self, config: StreamConfig) -> None:
        self._config = config
        self._shuffler = EpochShuffler(config.seed, config.num_samples)

    @property
    def config(self) -> StreamConfig:
        """The generating configuration."""
        return self._config

    @property
    def shuffler(self) -> EpochShuffler:
        """The underlying epoch shuffler (shared-seed PRNG)."""
        return self._shuffler

    # -- epoch-level views ----------------------------------------------

    def epoch_batches(self, epoch: int) -> np.ndarray:
        """Complete batches of ``epoch`` as an ``(T, N, B)`` array.

        ``out[h, i]`` is worker ``i``'s block of global batch ``h``. The
        dropped tail (if any) is excluded; see :meth:`epoch_tail`.
        """
        cfg = self._config
        perm = self._shuffler.permutation(epoch)
        used = cfg.iterations_per_epoch * cfg.global_batch
        return perm[:used].reshape(
            cfg.iterations_per_epoch, cfg.num_workers, cfg.batch_size
        )

    def epoch_tail(self, epoch: int) -> np.ndarray:
        """The ragged final samples of ``epoch`` (empty when none)."""
        cfg = self._config
        perm = self._shuffler.permutation(epoch)
        used = cfg.iterations_per_epoch * cfg.global_batch
        return perm[used:]

    def worker_epoch_stream(self, worker: int, epoch: int) -> np.ndarray:
        """Worker ``worker``'s access sequence within ``epoch`` (1-D).

        With ``drop_last`` this has length ``T * B``; otherwise the
        worker's share of the tail batch is appended (workers split the
        tail in rank order, earlier ranks possibly receiving one extra
        sample).
        """
        self._check_worker(worker)
        cfg = self._config
        stream = self.epoch_batches(epoch)[:, worker, :].reshape(-1)
        if not cfg.drop_last:
            tail = self.epoch_tail(epoch)
            if tail.size:
                share = np.array_split(tail, cfg.num_workers)[worker]
                stream = np.concatenate([stream, share])
        return stream

    def worker_stream(self, worker: int, num_epochs: int | None = None) -> np.ndarray:
        """Worker's full multi-epoch access stream ``R`` (concatenated)."""
        epochs = self._config.num_epochs if num_epochs is None else num_epochs
        parts = [self.worker_epoch_stream(worker, e) for e in range(epochs)]
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def epoch_assignment(self, epoch: int) -> np.ndarray:
        """Owner worker of every sample in ``epoch`` (shape ``(F,)``).

        ``out[k]`` is the worker that consumes sample ``k`` this epoch, or
        ``-1`` if the sample falls in a dropped tail. Useful for bulk
        frequency analyses without materializing per-worker streams.
        """
        cfg = self._config
        perm = self._shuffler.permutation(epoch)
        used = cfg.iterations_per_epoch * cfg.global_batch
        owner_of_position = np.full(cfg.num_samples, -1, dtype=np.int32)
        positions = np.arange(used, dtype=np.int64)
        owner_of_position[:used] = (positions % cfg.global_batch) // cfg.batch_size
        if not cfg.drop_last and used < cfg.num_samples:
            tail_len = cfg.num_samples - used
            bounds = np.linspace(0, tail_len, cfg.num_workers + 1).astype(np.int64)
            tail_owner = np.repeat(
                np.arange(cfg.num_workers, dtype=np.int32), np.diff(bounds)
            )
            owner_of_position[used:] = tail_owner
        assignment = np.empty(cfg.num_samples, dtype=np.int32)
        assignment[perm] = owner_of_position
        return assignment

    # -- frequency views --------------------------------------------------

    def worker_frequencies(self, worker: int, num_epochs: int | None = None) -> np.ndarray:
        """Access count of every sample by one worker over ``E`` epochs.

        Shape ``(F,)``, dtype int64. This is the empirical realization of
        the paper's ``X ~ Binomial(E, 1/N)`` per-sample access frequency
        (Sec 3.1 / Fig 3).
        """
        self._check_worker(worker)
        epochs = self._config.num_epochs if num_epochs is None else num_epochs
        counts = np.zeros(self._config.num_samples, dtype=np.int64)
        for epoch in range(epochs):
            ids = self.worker_epoch_stream(worker, epoch)
            counts += np.bincount(ids, minlength=self._config.num_samples)
        return counts

    def all_frequencies(self, num_epochs: int | None = None) -> np.ndarray:
        """Access counts for *all* workers, shape ``(N, F)``.

        Memory scales as ``N * F``; intended for analysis-scale configs.
        Large-``N`` simulation code iterates epoch reshapes instead.
        """
        cfg = self._config
        epochs = cfg.num_epochs if num_epochs is None else num_epochs
        counts = np.zeros((cfg.num_workers, cfg.num_samples), dtype=np.int64)
        for epoch in range(epochs):
            batches = self.epoch_batches(epoch)  # (T, N, B)
            for worker in range(cfg.num_workers):
                ids = batches[:, worker, :].reshape(-1)
                counts[worker] += np.bincount(ids, minlength=cfg.num_samples)
            if not cfg.drop_last:
                tail = self.epoch_tail(epoch)
                if tail.size:
                    for worker, share in enumerate(
                        np.array_split(tail, cfg.num_workers)
                    ):
                        counts[worker] += np.bincount(
                            share, minlength=cfg.num_samples
                        )
        return counts

    # -- helpers ----------------------------------------------------------

    def _check_worker(self, worker: int) -> None:
        if not 0 <= worker < self._config.num_workers:
            raise ConfigurationError(
                f"worker {worker} out of range [0, {self._config.num_workers})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AccessStream({self._config!r})"
