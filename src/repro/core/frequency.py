"""Probabilistic analysis of access frequencies (Sec 3.1).

For a fixed worker and sample, the per-epoch access indicator is
``X_e ~ Bernoulli(1/N)`` and the access frequency over ``E`` epochs is
``X = sum_e X_e ~ Binomial(E, 1/N)``, with mean ``mu = E/N``. The paper
exploits the *tail* of this distribution: the expected number of samples
a worker accesses more than ``(1+delta) * mu`` times is
``F * P(X > (1+delta) mu)``, which for ImageNet-scale runs is tens of
thousands of "hot" samples worth caching locally (Fig 3).

This module provides the closed forms, Monte-Carlo verification against
the *exact* shuffle-derived streams, and the paper's Lemma 1 (frequency
imbalance across workers) as a checkable predicate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..config import ConfigMixin
from ..errors import ConfigurationError
from .stream import AccessStream, StreamConfig

__all__ = [
    "access_frequency_distribution",
    "tail_probability",
    "expected_samples_above",
    "expected_histogram",
    "FrequencyHistogram",
    "monte_carlo_histogram",
    "lemma1_lower_bound",
    "lemma1_upper_bound",
    "verify_lemma1",
]


def access_frequency_distribution(num_epochs: int, num_workers: int):
    """The frozen ``Binomial(E, 1/N)`` access-frequency distribution."""
    if num_epochs <= 0 or num_workers <= 0:
        raise ConfigurationError("num_epochs and num_workers must be positive")
    return stats.binom(num_epochs, 1.0 / num_workers)


def tail_probability(num_epochs: int, num_workers: int, delta: float) -> float:
    """``P(X > (1+delta) * E/N)`` for ``X ~ Binomial(E, 1/N)``.

    This is the paper's hot-sample probability: the chance a given sample
    is accessed by a given worker more than ``(1+delta)`` times the mean.
    The sum starts at ``k = ceil((1+delta) * mu)`` exactly as in Sec 3.1.
    """
    if delta < 0:
        raise ConfigurationError("delta must be non-negative")
    dist = access_frequency_distribution(num_epochs, num_workers)
    mu = num_epochs / num_workers
    threshold = math.ceil((1.0 + delta) * mu)
    # P(X >= threshold) == sf(threshold - 1).
    return float(dist.sf(threshold - 1))


def expected_samples_above(
    num_samples: int, num_epochs: int, num_workers: int, delta: float
) -> float:
    """Expected number of samples a worker accesses ``> (1+delta) mu`` times.

    ``F * P(X > (1+delta) mu)`` by linearity of expectation (Sec 3.1).
    For the paper's example (``N=16, E=90, F=1281167, delta=0.8``) this is
    ~31,635 samples accessed more than 10 times.
    """
    if num_samples <= 0:
        raise ConfigurationError("num_samples must be positive")
    return num_samples * tail_probability(num_epochs, num_workers, delta)


def expected_histogram(
    num_samples: int, num_epochs: int, num_workers: int
) -> np.ndarray:
    """Expected count of samples at each access frequency ``0..E``.

    ``out[k] = F * P(X = k)`` — the analytic curve underlying Fig 3.
    """
    dist = access_frequency_distribution(num_epochs, num_workers)
    ks = np.arange(num_epochs + 1)
    return num_samples * dist.pmf(ks)


@dataclass(frozen=True)
class FrequencyHistogram(ConfigMixin):
    """Empirical access-frequency histogram for one worker (Fig 3).

    Attributes
    ----------
    counts:
        ``counts[k]`` = number of samples this worker accessed exactly
        ``k`` times (tuple so the dataclass stays hashable/serializable).
    num_epochs / num_workers / num_samples:
        The generating configuration.
    """

    counts: tuple[int, ...]
    num_epochs: int
    num_workers: int
    num_samples: int

    @property
    def mean_frequency(self) -> float:
        """Empirical mean accesses per sample (``~ E/N``)."""
        ks = np.arange(len(self.counts))
        total = sum(self.counts)
        if total == 0:
            return 0.0
        return float((ks * np.asarray(self.counts)).sum() / total)

    def samples_above(self, threshold: int) -> int:
        """Number of samples accessed strictly more than ``threshold`` times."""
        return int(sum(self.counts[threshold + 1 :]))


def monte_carlo_histogram(
    config: StreamConfig, worker: int = 0
) -> FrequencyHistogram:
    """Exact-stream access-frequency histogram for one worker.

    This is the paper's Monte-Carlo verification (Fig 3): rather than
    sampling from the binomial model it derives frequencies from the real
    seeded shuffles, so it also captures the (tiny) without-replacement
    correlation the model ignores.
    """
    stream = AccessStream(config)
    freqs = stream.worker_frequencies(worker)
    hist = np.bincount(freqs, minlength=config.num_epochs + 1)
    return FrequencyHistogram(
        counts=tuple(int(c) for c in hist),
        num_epochs=config.num_epochs,
        num_workers=config.num_workers,
        num_samples=config.num_samples,
    )


# -- Lemma 1 ---------------------------------------------------------------


def lemma1_upper_bound(num_epochs: int, num_workers: int, delta: float) -> float:
    """Lemma 1 bound: if some worker accesses a sample ``ceil((1+delta)E/N)``
    times, at least one other worker accesses it at most
    ``ceil(((N-1-delta)/(N-1)) * E/N)`` times."""
    if num_workers < 2:
        raise ConfigurationError("Lemma 1 requires at least two workers")
    return math.ceil((num_workers - 1 - delta) / (num_workers - 1) * num_epochs / num_workers)


def lemma1_lower_bound(num_epochs: int, num_workers: int, delta: float) -> float:
    """Symmetric Lemma 1 bound for under-accessing workers: if some worker
    accesses a sample ``floor((1-delta)E/N)`` times, at least one other
    worker accesses it at least ``floor(((N-1+delta)/(N-1)) * E/N)`` times."""
    if num_workers < 2:
        raise ConfigurationError("Lemma 1 requires at least two workers")
    return math.floor((num_workers - 1 + delta) / (num_workers - 1) * num_epochs / num_workers)


def verify_lemma1(frequencies: np.ndarray, num_epochs: int) -> bool:
    """Check Lemma 1 empirically on an ``(N, F)`` frequency matrix.

    For every sample, total accesses must equal ``E`` (full-dataset
    without-replacement sampling), which is the invariant Lemma 1's proof
    rests on; and for every sample and every ``delta`` realized by some
    worker's count, a complementary under/over-accessing worker must
    exist. Because column sums equal ``E`` the complementary condition is
    implied; we verify both the invariant and the explicit bound on the
    min/max columns, returning ``True`` only if all hold.
    """
    freqs = np.asarray(frequencies)
    if freqs.ndim != 2:
        raise ConfigurationError("frequencies must be an (N, F) matrix")
    n = freqs.shape[0]
    if n < 2:
        raise ConfigurationError("Lemma 1 requires at least two workers")
    totals = freqs.sum(axis=0)
    if not np.all(totals == num_epochs):
        return False
    mu = num_epochs / n
    col_max = freqs.max(axis=0).astype(np.float64)
    col_min = freqs.min(axis=0).astype(np.float64)
    # For each sample, derive the delta realized by the most frequent
    # accessor and check the least frequent accessor obeys the bound.
    with np.errstate(divide="ignore", invalid="ignore"):
        delta = np.maximum(col_max / mu - 1.0, 0.0)
    bound = np.ceil((n - 1 - delta) / (n - 1) * mu)
    return bool(np.all(col_min <= bound))
