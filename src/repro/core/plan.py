"""Cache-placement plans: mapping samples to workers' storage classes.

The NoPFS placement rule (Sec 5.1): "A worker fetches samples with the
largest ``r_k`` [its own access frequency for sample ``k``] to its
fastest storage class, and so on for slower classes until either it has
cached the entire dataset or filled its local storage."

:class:`CachePlan` is the shared representation consumed by both the
performance simulator (:mod:`repro.sim`) and the functional runtime
(:mod:`repro.runtime`): for each worker, which sample ids live in which
storage class. Storage classes are indexed **fastest first** (index 0 is
the fastest *cache* class — the staging buffer is not a cache target and
is excluded).

The frequency-ranked builder breaks ties with a deterministic per-worker
hash jitter so that equally-hot samples spread across workers instead of
all workers caching the same low-index samples; this realizes the
paper's "samples should be well-distributed among workers" conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "WorkerPlacement",
    "CachePlan",
    "frequency_placement",
    "frequency_placement_sparse",
    "partition_placement",
]

_HASH_MULT = np.uint64(2654435761)
_WORKER_SALT = np.uint64(0x9E3779B97F4A7C15)


def _tie_jitter(ids: np.ndarray, worker: int) -> np.ndarray:
    """Deterministic per-(sample, worker) jitter in [0, 2**64) for tie-breaks."""
    salt = np.uint64(((worker + 1) * int(_WORKER_SALT)) & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        x = ids.astype(np.uint64) * _HASH_MULT
        x ^= salt
        x ^= x >> np.uint64(33)
        x *= np.uint64(0xFF51AFD7ED558CCD)
        x ^= x >> np.uint64(33)
    return x


@dataclass(frozen=True)
class WorkerPlacement:
    """The sample ids one worker caches, per storage class (fastest first)."""

    worker: int
    class_ids: tuple[np.ndarray, ...]

    @property
    def cached_ids(self) -> np.ndarray:
        """All sample ids this worker caches (concatenated across classes)."""
        if not self.class_ids:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.asarray(c, dtype=np.int64) for c in self.class_ids])

    def cached_bytes(self, sizes_mb: np.ndarray) -> float:
        """Total MB this worker caches under ``sizes_mb``."""
        ids = self.cached_ids
        return float(np.asarray(sizes_mb)[ids].sum()) if ids.size else 0.0


class CachePlan:
    """Placement of samples into every worker's cache hierarchy.

    Parameters
    ----------
    placements:
        One :class:`WorkerPlacement` per worker, rank order.
    num_samples:
        Dataset size ``F`` (bounds the id space).
    num_classes:
        Number of cache storage classes (placements may use fewer).
    """

    def __init__(
        self,
        placements: list[WorkerPlacement],
        num_samples: int,
        num_classes: int,
    ) -> None:
        if num_samples <= 0:
            raise ConfigurationError("num_samples must be positive")
        if num_classes < 0:
            raise ConfigurationError("num_classes must be non-negative")
        for p in placements:
            if len(p.class_ids) > num_classes:
                raise ConfigurationError(
                    f"worker {p.worker} places into {len(p.class_ids)} classes, "
                    f"plan only has {num_classes}"
                )
        self._placements = list(placements)
        self._num_samples = int(num_samples)
        self._num_classes = int(num_classes)
        self._best_remote: np.ndarray | None = None
        self._holders: np.ndarray | None = None

    @property
    def num_workers(self) -> int:
        """Number of workers covered by the plan."""
        return len(self._placements)

    @property
    def num_samples(self) -> int:
        """Dataset size ``F``."""
        return self._num_samples

    @property
    def num_classes(self) -> int:
        """Number of cache storage classes."""
        return self._num_classes

    @property
    def placements(self) -> list[WorkerPlacement]:
        """Per-worker placements (rank order)."""
        return self._placements

    def local_class_map(self, worker: int) -> np.ndarray:
        """Class index caching each sample on ``worker`` (``-1`` = not cached).

        Shape ``(F,)``, dtype int8. Built on demand; callers in hot loops
        should hold onto the result rather than re-requesting it.
        """
        placement = self._placements[worker]
        out = np.full(self._num_samples, -1, dtype=np.int8)
        # Fill slowest-first so that if an id were (incorrectly) placed in
        # two classes the fastest one wins.
        for class_idx in range(len(placement.class_ids) - 1, -1, -1):
            ids = placement.class_ids[class_idx]
            if len(ids):
                out[np.asarray(ids)] = class_idx
        return out

    def best_class_map(self) -> np.ndarray:
        """Fastest class holding each sample on *any* worker (``-1`` = none).

        This is what lets every worker — which knows everyone's stream and
        hence everyone's placement — decide the cheapest remote source
        without extra metadata traffic (Sec 5.2.2).
        """
        if self._best_remote is None:
            best = np.full(self._num_samples, np.iinfo(np.int8).max, dtype=np.int8)
            seen = np.zeros(self._num_samples, dtype=bool)
            for placement in self._placements:
                for class_idx, ids in enumerate(placement.class_ids):
                    if len(ids):
                        idx = np.asarray(ids)
                        np.minimum.at(best, idx, np.int8(class_idx))
                        seen[idx] = True
            best[~seen] = -1
            self._best_remote = best
        return self._best_remote

    def holder_counts(self) -> np.ndarray:
        """Number of workers caching each sample (shape ``(F,)``)."""
        if self._holders is None:
            counts = np.zeros(self._num_samples, dtype=np.int32)
            for placement in self._placements:
                ids = placement.cached_ids
                if ids.size:
                    np.add.at(counts, ids, 1)
            self._holders = counts
        return self._holders

    def coverage_fraction(self) -> float:
        """Fraction of the dataset cached by at least one worker."""
        return float((self.holder_counts() > 0).mean())

    def cached_bytes_per_worker(self, sizes_mb: np.ndarray) -> list[float]:
        """MB cached by each worker under ``sizes_mb``."""
        return [p.cached_bytes(sizes_mb) for p in self._placements]


def frequency_placement(
    frequencies: np.ndarray,
    sizes_mb: np.ndarray,
    capacities_mb: list[float],
    worker: int,
) -> WorkerPlacement:
    """NoPFS placement for one worker: hottest samples to fastest classes.

    Parameters
    ----------
    frequencies:
        The worker's per-sample access counts, shape ``(F,)``.
    sizes_mb:
        Per-sample sizes in MB, shape ``(F,)``.
    capacities_mb:
        Capacity of each cache class in MB, fastest first.
    worker:
        Worker rank (used only for the deterministic tie-break jitter).

    Samples with zero frequency are never cached (the worker will never
    read them, so caching them wastes capacity). A sample that does not
    fit in the remaining space of a class spills to the next class.
    """
    freqs = np.asarray(frequencies)
    sizes = np.asarray(sizes_mb, dtype=np.float64)
    if freqs.shape != sizes.shape:
        raise ConfigurationError("frequencies and sizes must have equal shape")
    accessed = np.nonzero(freqs > 0)[0]
    return frequency_placement_sparse(
        accessed, freqs[accessed], sizes[accessed], capacities_mb, worker
    )


def frequency_placement_sparse(
    accessed_ids: np.ndarray,
    counts: np.ndarray,
    sizes_of_accessed_mb: np.ndarray,
    capacities_mb: list[float],
    worker: int,
) -> WorkerPlacement:
    """NoPFS placement from a sparse ``(ids, counts)`` frequency view.

    Identical semantics to :func:`frequency_placement`, but memory and
    time scale with the number of samples the worker actually accesses
    rather than with ``F`` — essential at large worker counts, where
    each worker touches only ``~ E*F/N`` distinct samples.
    """
    accessed = np.asarray(accessed_ids, dtype=np.int64)
    counts = np.asarray(counts)
    sizes = np.asarray(sizes_of_accessed_mb, dtype=np.float64)
    if not (accessed.shape == counts.shape == sizes.shape):
        raise ConfigurationError("ids/counts/sizes must have equal shape")
    if accessed.size == 0 or not capacities_mb:
        return WorkerPlacement(
            worker, tuple(np.empty(0, dtype=np.int64) for _ in capacities_mb)
        )
    jitter = _tie_jitter(accessed, worker)
    # lexsort: last key is primary -> primary = descending frequency,
    # secondary = jitter (pseudo-random, deterministic).
    order_idx = np.lexsort((jitter, -counts))
    order = accessed[order_idx]
    cum = np.cumsum(sizes[order_idx])
    class_ids: list[np.ndarray] = []
    start = 0
    for capacity in capacities_mb:
        if capacity <= 0 or start >= order.size:
            class_ids.append(np.empty(0, dtype=np.int64))
            continue
        # Largest prefix of the remaining ranked list fitting this class:
        # base is the MB already consumed by faster classes, so a sample
        # straddling the boundary spills to the next class and this class
        # never exceeds its own capacity.
        base = float(cum[start - 1]) if start > 0 else 0.0
        end = int(np.searchsorted(cum, base + float(capacity), side="right"))
        class_ids.append(order[start:end].astype(np.int64, copy=False))
        start = end
    return WorkerPlacement(worker, tuple(class_ids))


def partition_placement(
    shard_ids: np.ndarray,
    sizes_mb: np.ndarray,
    capacities_mb: list[float],
    worker: int,
) -> WorkerPlacement:
    """Placement for sharding-style policies: a fixed id set, fastest-first.

    Used by the ParallelStaging / DeepIO / LBANN baselines, which assign
    each worker a shard (or first-touch set) rather than ranking by
    frequency. Ids beyond the total capacity are simply not cached.
    """
    ids = np.asarray(shard_ids, dtype=np.int64)
    sizes = np.asarray(sizes_mb, dtype=np.float64)
    class_ids: list[np.ndarray] = []
    start = 0
    if ids.size:
        cum = np.cumsum(sizes[ids])
        for capacity in capacities_mb:
            if capacity <= 0 or start >= ids.size:
                class_ids.append(np.empty(0, dtype=np.int64))
                continue
            base = float(cum[start - 1]) if start > 0 else 0.0
            end = int(np.searchsorted(cum, base + float(capacity), side="right"))
            class_ids.append(ids[start:end])
            start = end
    else:
        class_ids = [np.empty(0, dtype=np.int64) for _ in capacities_mb]
    return WorkerPlacement(worker, tuple(class_ids))
