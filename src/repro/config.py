"""Configuration serialization helpers.

The paper's C++ core reads "a system-wide configuration file" describing
the performance-model parameters (Sec 5.2.2). We reproduce that with
plain dataclasses plus a small mixin that round-trips any of the
library's config objects through dicts/JSON, so system and simulation
descriptions can live in version-controlled files.
"""

from __future__ import annotations

import dataclasses
import json
import typing
from typing import Any, Type, TypeVar

from .errors import ConfigurationError

__all__ = ["ConfigMixin", "asdict_shallow"]

T = TypeVar("T", bound="ConfigMixin")


def asdict_shallow(obj: Any) -> dict[str, Any]:
    """Shallow dataclass-to-dict conversion (nested configs stay objects)."""
    if not dataclasses.is_dataclass(obj):
        raise ConfigurationError(f"{obj!r} is not a dataclass")
    return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}


class ConfigMixin:
    """Adds dict/JSON round-tripping to a dataclass config.

    Nested fields whose declared type is itself a ``ConfigMixin`` dataclass
    are recursively (de)serialized; lists/tuples of such configs are
    handled one level deep, which covers every config in this library.
    """

    def to_dict(self) -> dict[str, Any]:
        """Recursively convert this config to plain Python containers."""
        out: dict[str, Any] = {}
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            if f.name.startswith("_"):
                continue  # private/cache fields are not part of the config
            value = getattr(self, f.name)
            out[f.name] = _encode(value)
        return out

    def to_json(self, **kwargs: Any) -> str:
        """Serialize to a JSON string (``kwargs`` go to :func:`json.dumps`)."""
        kwargs.setdefault("indent", 2)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls: Type[T], data: dict[str, Any]) -> T:
        """Build a config from :meth:`to_dict` output.

        Unknown keys raise :class:`~repro.errors.ConfigurationError` to
        catch typos in hand-written config files early.
        """
        field_names = {f.name for f in dataclasses.fields(cls)}  # type: ignore[arg-type]
        unknown = set(data) - field_names
        if unknown:
            raise ConfigurationError(
                f"unknown {cls.__name__} config keys: {sorted(unknown)}"
            )
        # PEP 563 stringifies annotations; resolve them to real types so
        # nested configs decode into their classes.
        hints = typing.get_type_hints(cls)
        kwargs: dict[str, Any] = {}
        for name, value in data.items():
            kwargs[name] = _decode(hints.get(name), value)
        return cls(**kwargs)

    @classmethod
    def from_json(cls: Type[T], text: str) -> T:
        """Build a config from a JSON string produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def _encode(value: Any) -> Any:
    if isinstance(value, ConfigMixin):
        return value.to_dict()
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if hasattr(value, "tolist"):  # numpy scalars/arrays
        return value.tolist()
    return value


def _decode(ftype: Any, value: Any) -> Any:
    # Dataclass configs arrive as dicts; anything else passes through.
    if isinstance(value, dict):
        target = _resolve_config_type(ftype)
        if target is not None:
            return target.from_dict(value)
    if isinstance(value, list):
        inner = _resolve_config_type(_first_type_arg(ftype))
        if inner is not None and all(isinstance(v, dict) for v in value):
            return tuple(inner.from_dict(v) for v in value)
        return tuple(value) if _is_tuple_type(ftype) else value
    return value


def _resolve_config_type(ftype: Any) -> Any:
    """Return the ConfigMixin subclass named by a field type, if any.

    Unwraps ``Optional[X]`` / unions to find a config class among the
    alternatives.
    """
    if isinstance(ftype, type) and issubclass(ftype, ConfigMixin):
        return ftype
    for arg in getattr(ftype, "__args__", ()):
        if isinstance(arg, type) and issubclass(arg, ConfigMixin):
            return arg
    return None


def _first_type_arg(ftype: Any) -> Any:
    args = getattr(ftype, "__args__", ())
    return args[0] if args else None


def _is_tuple_type(ftype: Any) -> bool:
    origin = getattr(ftype, "__origin__", None)
    return origin in (tuple,) or ftype in (tuple,)
