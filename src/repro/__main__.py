"""CLI entry: ``python -m repro`` (run/sweep/cache/experiments/list).

The consolidated interface over :mod:`repro.api`; see :mod:`repro.cli`
for the subcommand reference. The historical ``python -m repro.sweep``
and ``python -m repro.experiments`` entry points remain as deprecated
shims over the same implementation.
"""

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piping into `head`/`grep -q` closes stdout early; that is not
        # an error. Point stdout at devnull so the interpreter's final
        # flush doesn't raise again, and exit cleanly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
